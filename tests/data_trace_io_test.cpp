#include "data/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "data/dataset.hpp"
#include "data/household.hpp"

namespace pfdrl::data {
namespace {

DeviceTrace sample_trace() {
  NeighborhoodConfig nc;
  nc.num_households = 1;
  nc.min_devices = 3;
  nc.max_devices = 3;
  const auto home = make_neighborhood(nc)[0];
  TraceConfig tc;
  tc.days = 1;
  return generate_household_trace(home, tc).devices[0];
}

TEST(TraceIo, CsvRoundTrip) {
  const auto trace = sample_trace();
  const auto csv = trace_to_csv(trace);
  EXPECT_EQ(csv.num_rows(), trace.minutes());
  const auto back = trace_from_csv(csv, trace.spec);
  ASSERT_EQ(back.minutes(), trace.minutes());
  for (std::size_t m = 0; m < trace.minutes(); ++m) {
    ASSERT_NEAR(back.watts[m], trace.watts[m], 1e-3);  // %.4f precision
    ASSERT_EQ(back.modes[m], trace.modes[m]);
  }
}

TEST(TraceIo, FileRoundTrip) {
  const auto trace = sample_trace();
  const auto path =
      (std::filesystem::temp_directory_path() / "pfdrl_trace.csv").string();
  save_trace_csv(trace, path);
  const auto back = load_trace_csv(path, trace.spec);
  EXPECT_EQ(back.minutes(), trace.minutes());
  std::remove(path.c_str());
}

TEST(TraceIo, ModesClassifiedWhenColumnAbsent) {
  util::CsvTable csv({"minute", "watts"});
  csv.add_row({"0", "0.0"});
  csv.add_row({"1", "5.0"});
  csv.add_row({"2", "100.0"});
  DeviceSpec spec;
  spec.standby_watts = 5.0;
  spec.on_watts = 100.0;
  const auto trace = trace_from_csv(csv, spec);
  ASSERT_EQ(trace.minutes(), 3u);
  EXPECT_EQ(trace.modes[0], DeviceMode::kOff);
  EXPECT_EQ(trace.modes[1], DeviceMode::kStandby);
  EXPECT_EQ(trace.modes[2], DeviceMode::kOn);
}

TEST(TraceIo, RejectsMissingColumns) {
  util::CsvTable csv({"time", "power"});
  csv.add_row({"0", "1.0"});
  EXPECT_THROW(trace_from_csv(csv, DeviceSpec{}), std::runtime_error);
}

TEST(TraceIo, RejectsNonConsecutiveMinutes) {
  util::CsvTable csv({"minute", "watts"});
  csv.add_row({"0", "1.0"});
  csv.add_row({"5", "1.0"});
  EXPECT_THROW(trace_from_csv(csv, DeviceSpec{}), std::runtime_error);
}

TEST(TraceIo, RejectsNegativeWatts) {
  util::CsvTable csv({"minute", "watts"});
  csv.add_row({"0", "-1.0"});
  EXPECT_THROW(trace_from_csv(csv, DeviceSpec{}), std::runtime_error);
}

TEST(TraceIo, RejectsUnknownMode) {
  util::CsvTable csv({"minute", "watts", "mode"});
  csv.add_row({"0", "5.0", "idle"});
  EXPECT_THROW(trace_from_csv(csv, DeviceSpec{}), std::runtime_error);
}

TEST(TraceIo, ImportedTraceUsableByDatasets) {
  const auto trace = sample_trace();
  const auto back = trace_from_csv(trace_to_csv(trace), trace.spec);
  WindowConfig cfg;
  cfg.window = 8;
  cfg.horizon = 5;
  const auto set = make_supervised(back, cfg, 0, back.minutes());
  EXPECT_GT(set.size(), 0u);
}

}  // namespace
}  // namespace pfdrl::data
