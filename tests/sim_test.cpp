#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl::sim {
namespace {

TEST(Scenario, GenerateShapes) {
  const auto scenario = Scenario::generate(tiny_scenario(1));
  EXPECT_EQ(scenario.num_homes(), 2u);
  EXPECT_EQ(scenario.minutes(), 2 * data::kMinutesPerDay);
  EXPECT_GT(scenario.num_devices(), 0u);
  EXPECT_EQ(scenario.profiles.size(), scenario.traces.size());
}

TEST(Scenario, DeterministicPerSeed) {
  const auto a = Scenario::generate(tiny_scenario(7));
  const auto b = Scenario::generate(tiny_scenario(7));
  ASSERT_EQ(a.num_homes(), b.num_homes());
  for (std::size_t h = 0; h < a.num_homes(); ++h) {
    ASSERT_EQ(a.traces[h].devices.size(), b.traces[h].devices.size());
    for (std::size_t d = 0; d < a.traces[h].devices.size(); ++d) {
      ASSERT_EQ(a.traces[h].devices[d].watts, b.traces[h].devices[d].watts);
    }
  }
}

TEST(Scenario, StandbyEnergyPositive) {
  const auto scenario = Scenario::generate(tiny_scenario(2));
  EXPECT_GT(scenario.total_standby_kwh(0, scenario.minutes()), 0.0);
  EXPECT_DOUBLE_EQ(scenario.total_standby_kwh(100, 100), 0.0);
}

TEST(Scenario, PresetsScale) {
  const auto tiny = tiny_scenario();
  const auto small = small_scenario();
  const auto medium = medium_scenario();
  EXPECT_LT(tiny.neighborhood.num_households,
            small.neighborhood.num_households);
  EXPECT_LT(small.neighborhood.num_households,
            medium.neighborhood.num_households);
  EXPECT_LE(tiny.trace.days, small.trace.days);
}

TEST(PipelinePresets, PaperHyperparameters) {
  const auto cfg = paper_pipeline(core::EmsMethod::kPfdrl);
  EXPECT_EQ(cfg.dqn.hidden, (std::vector<std::size_t>(8, 100)));
  EXPECT_DOUBLE_EQ(cfg.dqn.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.dqn.discount, 0.9);
  EXPECT_EQ(cfg.dqn.replay_capacity, 2000u);
  EXPECT_EQ(cfg.dqn.target_replace_every, 100u);
  EXPECT_EQ(cfg.alpha, 6u);
  EXPECT_DOUBLE_EQ(cfg.beta_hours, 12.0);
  EXPECT_DOUBLE_EQ(cfg.gamma_hours, 12.0);
  EXPECT_EQ(cfg.forecast_method, forecast::Method::kLstm);
}

TEST(PipelinePresets, BenchKeepsEightHiddenLayers) {
  const auto cfg = bench_pipeline(core::EmsMethod::kPfdrl);
  EXPECT_EQ(cfg.dqn.hidden.size(), 8u);  // alpha in 1..8 must stay valid
}

TEST(PipelinePresets, FastIsSmaller) {
  const auto fast = fast_pipeline(core::EmsMethod::kPfdrl);
  const auto paper = paper_pipeline(core::EmsMethod::kPfdrl);
  EXPECT_LT(fast.dqn.hidden.size(), paper.dqn.hidden.size());
  EXPECT_LE(fast.alpha, fast.dqn.hidden.size());
}

TEST(Convergence, ProducesMonotoneDaysAndSaneRanges) {
  auto sc_cfg = tiny_scenario(3);
  sc_cfg.trace.days = 4;
  const auto scenario = Scenario::generate(sc_cfg);
  auto cfg = fast_pipeline(core::EmsMethod::kPfdrl, 3);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.dqn.hidden = {12, 12};
  const auto points = run_convergence(scenario, cfg, 1, 2);
  ASSERT_GE(points.size(), 1u);
  std::size_t prev_day = 0;
  for (const auto& p : points) {
    EXPECT_GT(p.day, prev_day);
    prev_day = p.day;
    EXPECT_GE(p.saved_fraction, 0.0);
    EXPECT_LE(p.saved_fraction, 1.0);
    EXPECT_GE(p.gross_saved_fraction, p.saved_fraction - 1e-9);
    EXPECT_GE(p.saved_kwh_per_client, 0.0);
  }
}

TEST(Convergence, StopsAtEvalBoundary) {
  // Asking for more EMS days than exist: points end before the held-out
  // evaluation day.
  auto sc_cfg = tiny_scenario(4);
  sc_cfg.trace.days = 3;
  const auto scenario = Scenario::generate(sc_cfg);
  auto cfg = fast_pipeline(core::EmsMethod::kLocal, 4);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.dqn.hidden = {12, 12};
  const auto points = run_convergence(scenario, cfg, 1, 10);
  EXPECT_LE(points.size(), 2u);
}

}  // namespace
}  // namespace pfdrl::sim
