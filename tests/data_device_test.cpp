#include <gtest/gtest.h>

#include <set>

#include "data/device.hpp"
#include "data/household.hpp"

namespace pfdrl::data {
namespace {

TEST(DeviceCatalog, OneArchetypePerType) {
  const auto& catalog = device_catalog();
  ASSERT_EQ(catalog.size(), kNumDeviceTypes);
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(catalog[i].spec.type), i);
  }
}

TEST(DeviceCatalog, PowerLevelsOrdered) {
  for (const auto& d : device_catalog()) {
    EXPECT_GT(d.spec.standby_watts, 0.0) << d.spec.label;
    EXPECT_GT(d.spec.on_watts, d.spec.standby_watts * 2) << d.spec.label;
  }
}

TEST(DeviceCatalog, HourlyCurvesComplete) {
  for (const auto& d : device_catalog()) {
    ASSERT_EQ(d.hourly_usage_weight.size(), 24u) << d.spec.label;
    for (double w : d.hourly_usage_weight) EXPECT_GE(w, 0.0);
  }
}

TEST(DeviceCatalog, DutyCyclersAreProtected) {
  for (const auto& d : device_catalog()) {
    EXPECT_EQ(d.spec.protected_device, d.behavior.duty_cycling)
        << d.spec.label;
  }
}

TEST(DeviceCatalog, UserDevicesHaveSessions) {
  for (const auto& d : device_catalog()) {
    if (!d.behavior.duty_cycling) {
      EXPECT_GT(d.behavior.sessions_per_day, 0.0) << d.spec.label;
      EXPECT_GT(d.behavior.mean_session_minutes, 0.0) << d.spec.label;
    }
  }
}

TEST(DeviceNames, Stable) {
  EXPECT_STREQ(device_type_name(DeviceType::kTv), "tv");
  EXPECT_STREQ(device_type_name(DeviceType::kHvac), "hvac");
  EXPECT_STREQ(device_mode_name(DeviceMode::kStandby), "standby");
  EXPECT_STREQ(device_mode_name(DeviceMode::kOff), "off");
  EXPECT_STREQ(device_mode_name(DeviceMode::kOn), "on");
}

TEST(Household, EveryHomeHasFridge) {
  NeighborhoodConfig cfg;
  cfg.num_households = 20;
  const auto homes = make_neighborhood(cfg);
  for (const auto& home : homes) {
    bool has_fridge = false;
    for (const auto& d : home.devices) {
      if (d.spec.type == DeviceType::kFridge) has_fridge = true;
    }
    EXPECT_TRUE(has_fridge) << home.name;
  }
}

TEST(Household, DeviceCountInRange) {
  NeighborhoodConfig cfg;
  cfg.num_households = 30;
  cfg.min_devices = 4;
  cfg.max_devices = 6;
  for (const auto& home : make_neighborhood(cfg)) {
    EXPECT_GE(home.devices.size(), 4u);
    EXPECT_LE(home.devices.size(), 6u);
  }
}

TEST(Household, NoDuplicateDeviceTypesWithinHome) {
  NeighborhoodConfig cfg;
  cfg.num_households = 25;
  for (const auto& home : make_neighborhood(cfg)) {
    std::set<DeviceType> types;
    for (const auto& d : home.devices) {
      EXPECT_TRUE(types.insert(d.spec.type).second)
          << home.name << " has duplicate " << device_type_name(d.spec.type);
    }
  }
}

TEST(Household, DeterministicPerSeed) {
  NeighborhoodConfig cfg;
  cfg.num_households = 8;
  cfg.seed = 77;
  const auto a = make_neighborhood(cfg);
  const auto b = make_neighborhood(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t h = 0; h < a.size(); ++h) {
    ASSERT_EQ(a[h].devices.size(), b[h].devices.size());
    EXPECT_EQ(a[h].archetype, b[h].archetype);
    EXPECT_DOUBLE_EQ(a[h].schedule_shift_hours, b[h].schedule_shift_hours);
    for (std::size_t d = 0; d < a[h].devices.size(); ++d) {
      EXPECT_DOUBLE_EQ(a[h].devices[d].spec.standby_watts,
                       b[h].devices[d].spec.standby_watts);
    }
  }
}

TEST(Household, DifferentSeedsDiffer) {
  NeighborhoodConfig a_cfg;
  a_cfg.num_households = 8;
  a_cfg.seed = 1;
  NeighborhoodConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const auto a = make_neighborhood(a_cfg);
  const auto b = make_neighborhood(b_cfg);
  bool any_diff = false;
  for (std::size_t h = 0; h < a.size(); ++h) {
    if (a[h].devices.size() != b[h].devices.size() ||
        a[h].archetype != b[h].archetype) {
      any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Household, JitterKeepsSaneRanges) {
  NeighborhoodConfig cfg;
  cfg.num_households = 40;
  const auto& catalog = device_catalog();
  for (const auto& home : make_neighborhood(cfg)) {
    for (const auto& d : home.devices) {
      const auto& proto = catalog[static_cast<std::size_t>(d.spec.type)];
      EXPECT_GE(d.spec.standby_watts, proto.spec.standby_watts * 0.5 - 1e-9);
      EXPECT_LE(d.spec.standby_watts, proto.spec.standby_watts * 2.0 + 1e-9);
      EXPECT_GE(d.spec.on_watts, proto.spec.on_watts * 0.7 - 1e-9);
      EXPECT_LE(d.spec.on_watts, proto.spec.on_watts * 1.4 + 1e-9);
      EXPECT_GE(d.behavior.off_after_use_prob, 0.0);
      EXPECT_LE(d.behavior.off_after_use_prob, 0.95);
    }
  }
}

TEST(Archetypes, PoolGrowsBeyondThreshold) {
  NeighborhoodConfig cfg;
  cfg.base_archetypes = 5;
  cfg.archetype_growth_threshold = 100;
  cfg.num_households = 50;
  EXPECT_EQ(effective_archetypes(cfg), 5u);
  cfg.num_households = 100;
  EXPECT_EQ(effective_archetypes(cfg), 5u);
  cfg.num_households = 110;
  EXPECT_EQ(effective_archetypes(cfg), 6u);
  cfg.num_households = 190;
  EXPECT_EQ(effective_archetypes(cfg), 14u);
}

TEST(Archetypes, LargeNeighborhoodUsesNewArchetypes) {
  NeighborhoodConfig cfg;
  cfg.num_households = 160;
  const auto homes = make_neighborhood(cfg);
  std::set<std::uint32_t> archetypes;
  for (const auto& home : homes) archetypes.insert(home.archetype);
  bool has_procedural = false;
  for (auto a : archetypes) {
    if (a >= 5) has_procedural = true;
  }
  EXPECT_TRUE(has_procedural);
}

}  // namespace
}  // namespace pfdrl::data
