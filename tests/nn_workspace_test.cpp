#include "nn/workspace.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "nn/gru.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

TEST(Workspace, TakeReturnsRequestedShape) {
  Workspace ws;
  Matrix& a = ws.take(3, 4);
  EXPECT_EQ(a.rows(), 3u);
  EXPECT_EQ(a.cols(), 4u);
  Matrix& b = ws.take(1, 7);
  EXPECT_EQ(b.cols(), 7u);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(ws.slots(), 2u);
}

TEST(Workspace, TakeSpanIsWritable) {
  Workspace ws;
  auto s = ws.take_span(5);
  ASSERT_EQ(s.size(), 5u);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<double>(i);
  EXPECT_EQ(s[4], 4.0);
}

TEST(Workspace, ResetReusesSlotsWithoutAllocating) {
  Workspace ws;
  Matrix& slot0 = ws.take(2, 3);
  ws.take(4, 5);
  // Identical take sequence after reset: same slots, zero new heap work.
  const std::uint64_t allocs_before = Workspace::total_allocations();
  for (int cycle = 0; cycle < 10; ++cycle) {
    ws.reset();
    Matrix& a = ws.take(2, 3);
    Matrix& b = ws.take(4, 5);
    EXPECT_EQ(&a, &slot0);
    EXPECT_EQ(b.rows(), 4u);
  }
  EXPECT_EQ(Workspace::total_allocations(), allocs_before);
  EXPECT_EQ(ws.slots(), 2u);
}

TEST(Workspace, GrowthIsCountedOnce) {
  Workspace ws;
  const std::uint64_t allocs0 = Workspace::total_allocations();
  ws.take(8, 8);
  EXPECT_GT(Workspace::total_allocations(), allocs0);
  EXPECT_GT(ws.bytes(), 0u);
  const std::uint64_t allocs1 = Workspace::total_allocations();
  const std::size_t bytes1 = ws.bytes();
  ws.reset();
  ws.take(4, 4);  // smaller: reuses the slot's capacity
  EXPECT_EQ(Workspace::total_allocations(), allocs1);
  EXPECT_EQ(ws.bytes(), bytes1);
  ws.reset();
  ws.take(16, 16);  // larger: must grow, counted again
  EXPECT_GT(Workspace::total_allocations(), allocs1);
  EXPECT_GT(ws.bytes(), bytes1);
}

TEST(Workspace, SlotAddressesSurvivePoolGrowth) {
  Workspace ws;
  Matrix& a = ws.take(2, 2);
  double* data = a.row(0).data();
  a(0, 0) = 42.0;
  // Force the slot vector to reallocate many times over.
  for (int i = 0; i < 100; ++i) ws.take(1, 1);
  EXPECT_EQ(a(0, 0), 42.0);
  EXPECT_EQ(a.row(0).data(), data);
}

TEST(Workspace, DestructorReleasesTrackedBytes) {
  const std::uint64_t bytes0 = Workspace::total_bytes();
  {
    Workspace ws;
    ws.take(32, 32);
    EXPECT_GT(Workspace::total_bytes(), bytes0);
  }
  EXPECT_EQ(Workspace::total_bytes(), bytes0);
}

TEST(Workspace, MlpPredictMatchesAllocatingPredict) {
  util::Rng rng(41);
  Mlp net({4, 10, 10, 3}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Matrix x(3, 4);
  for (double& v : x.data()) v = rng.normal();
  const Matrix expected = net.predict(x);
  Workspace ws;
  const Matrix& got = net.predict(x, ws);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], expected.data()[i]);
  }
}

TEST(Workspace, MlpPredictSteadyStateIsAllocationFree) {
  util::Rng rng(42);
  Mlp net({4, 16, 16, 2}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Matrix x(1, 4);
  for (double& v : x.data()) v = rng.normal();
  Workspace ws;
  ws.reset();
  (void)net.predict(x, ws);  // warm-up sizes every slot
  const std::uint64_t allocs = Workspace::total_allocations();
  for (int i = 0; i < 100; ++i) {
    ws.reset();
    (void)net.predict(x, ws);
  }
  EXPECT_EQ(Workspace::total_allocations(), allocs);
}

TEST(Workspace, LstmPredictMatchesAllocatingPredict) {
  util::Rng rng(43);
  LstmRegressor net(3, 8, 1, rng);
  std::vector<Matrix> xs(5, Matrix(2, 3));
  for (auto& x : xs) {
    for (double& v : x.data()) v = rng.normal();
  }
  const Matrix expected = net.predict(xs);
  Workspace ws;
  const Matrix& got = net.predict(xs, ws);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], expected.data()[i]);
  }
  // Steady state: repeated predicts over the same shapes stop allocating.
  ws.reset();
  (void)net.predict(xs, ws);
  const std::uint64_t allocs = Workspace::total_allocations();
  for (int i = 0; i < 20; ++i) {
    ws.reset();
    (void)net.predict(xs, ws);
  }
  EXPECT_EQ(Workspace::total_allocations(), allocs);
}

TEST(Workspace, GruPredictMatchesAllocatingPredict) {
  util::Rng rng(44);
  GruRegressor net(3, 8, 1, rng);
  std::vector<Matrix> xs(5, Matrix(2, 3));
  for (auto& x : xs) {
    for (double& v : x.data()) v = rng.normal();
  }
  const Matrix expected = net.predict(xs);
  Workspace ws;
  const Matrix& got = net.predict(xs, ws);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], expected.data()[i]);
  }
  ws.reset();
  (void)net.predict(xs, ws);
  const std::uint64_t allocs = Workspace::total_allocations();
  for (int i = 0; i < 20; ++i) {
    ws.reset();
    (void)net.predict(xs, ws);
  }
  EXPECT_EQ(Workspace::total_allocations(), allocs);
}

// predict() after forward() must not disturb the training caches: the
// workspace inference path is const and shares no state with backward.
TEST(Workspace, PredictDoesNotDisturbTrainingState) {
  util::Rng rng(45);
  Mlp net({3, 6, 2}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Matrix x(2, 3);
  for (double& v : x.data()) v = rng.normal();
  const Matrix& fwd = net.forward(x);
  const Matrix before = fwd;
  Workspace ws;
  Matrix probe(1, 3);
  probe.fill(0.5);
  (void)net.predict(probe, ws);
  EXPECT_EQ(fwd, before);
}

}  // namespace
}  // namespace pfdrl::nn
