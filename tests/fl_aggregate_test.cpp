#include "fl/aggregate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset.hpp"
#include "forecast/forecaster.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace pfdrl::fl {
namespace {

// The owning convenience overload is gone (the exchange engine is the
// only production caller and uses the span form); tests wrap it once.
std::vector<double> avg_of(const std::vector<std::vector<double>>& inputs) {
  std::vector<std::span<const double>> views(inputs.begin(), inputs.end());
  std::vector<double> out(inputs.empty() ? 0 : inputs.front().size(), 0.0);
  fedavg(views, out);
  return out;
}

TEST(FedAvg, ExactAverage) {
  const std::vector<std::vector<double>> inputs = {{1.0, 2.0}, {3.0, 6.0}};
  const auto out = avg_of(inputs);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 4.0);
}

TEST(FedAvg, SingleInputIdentity) {
  const std::vector<std::vector<double>> inputs = {{5.0, -1.0}};
  EXPECT_EQ(avg_of(inputs), inputs[0]);
}

TEST(FedAvg, EmptyThrows) {
  EXPECT_THROW(avg_of({}), std::invalid_argument);
}

TEST(FedAvg, SizeMismatchThrows) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  std::vector<std::span<const double>> views = {a, b};
  std::vector<double> out(2);
  EXPECT_THROW(fedavg(views, out), std::invalid_argument);
}

TEST(FedAvg, PermutationInvariance) {
  util::Rng rng(1);
  std::vector<std::vector<double>> inputs;
  for (int k = 0; k < 5; ++k) {
    std::vector<double> v(16);
    for (double& x : v) x = rng.normal();
    inputs.push_back(std::move(v));
  }
  const auto a = avg_of(inputs);
  std::reverse(inputs.begin(), inputs.end());
  const auto b = avg_of(inputs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-15);
}

TEST(FedAvg, LinearityProperty) {
  // fedavg(c * x_i) == c * fedavg(x_i).
  util::Rng rng(2);
  std::vector<std::vector<double>> inputs(3, std::vector<double>(8));
  for (auto& v : inputs) {
    for (double& x : v) x = rng.normal();
  }
  const auto base = avg_of(inputs);
  auto scaled = inputs;
  for (auto& v : scaled) {
    for (double& x : v) x *= 2.5;
  }
  const auto got = avg_of(scaled);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(got[i], base[i] * 2.5, 1e-12);
  }
}

TEST(FedAvg, OutMayAliasInput) {
  std::vector<double> a = {2.0, 4.0};
  const std::vector<double> b = {4.0, 0.0};
  std::vector<std::span<const double>> views = {a, b};
  fedavg(views, a);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(FedAvgWeighted, RespectsWeights) {
  const std::vector<double> a = {0.0};
  const std::vector<double> b = {10.0};
  std::vector<std::span<const double>> views = {a, b};
  const std::vector<double> w = {3.0, 1.0};
  std::vector<double> out(1);
  fedavg_weighted(views, w, out);
  EXPECT_DOUBLE_EQ(out[0], 2.5);
}

TEST(FedAvgWeighted, UniformWeightsMatchPlain) {
  util::Rng rng(3);
  std::vector<std::vector<double>> inputs(4, std::vector<double>(6));
  for (auto& v : inputs) {
    for (double& x : v) x = rng.normal();
  }
  std::vector<std::span<const double>> views(inputs.begin(), inputs.end());
  std::vector<double> weighted(6);
  const std::vector<double> w(4, 0.25);
  fedavg_weighted(views, w, weighted);
  const auto plain = avg_of(inputs);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(weighted[i], plain[i], 1e-12);
  }
}

TEST(FedAvgWeighted, InvalidWeightsThrow) {
  const std::vector<double> a = {1.0};
  std::vector<std::span<const double>> views = {a};
  std::vector<double> out(1);
  EXPECT_THROW(fedavg_weighted(views, std::vector<double>{-1.0}, out),
               std::invalid_argument);
  EXPECT_THROW(fedavg_weighted(views, std::vector<double>{0.0}, out),
               std::invalid_argument);
  EXPECT_THROW(fedavg_weighted(views, std::vector<double>{1.0, 1.0}, out),
               std::invalid_argument);
}

TEST(FedAvgPrefix, SuffixUntouched) {
  const std::vector<double> a = {1.0, 2.0, 100.0};
  const std::vector<double> b = {3.0, 4.0, 200.0};
  std::vector<std::span<const double>> views = {a, b};
  std::vector<double> out = {0.0, 0.0, -7.0};
  fedavg_prefix(views, 2, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 3.0);
  EXPECT_DOUBLE_EQ(out[2], -7.0);  // personalization slot untouched
}

TEST(FedAvgPrefix, FullPrefixEqualsFedAvg) {
  const std::vector<double> a = {1.0, 5.0};
  const std::vector<double> b = {3.0, 7.0};
  std::vector<std::span<const double>> views = {a, b};
  std::vector<double> out(2);
  fedavg_prefix(views, 2, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(FedAvgPrefix, ZeroPrefixIsNoOp) {
  const std::vector<double> a = {1.0};
  std::vector<std::span<const double>> views = {a, a};
  std::vector<double> out = {42.0};
  fedavg_prefix(views, 0, out);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(FedAvgPrefix, Validation) {
  const std::vector<double> a = {1.0};
  std::vector<std::span<const double>> views = {a};
  std::vector<double> out = {0.0};
  EXPECT_THROW(fedavg_prefix(views, 2, out), std::invalid_argument);
  EXPECT_THROW(fedavg_prefix({}, 0, out), std::invalid_argument);
  const std::vector<double> shorty;
  std::vector<std::span<const double>> bad = {a, shorty};
  EXPECT_THROW(fedavg_prefix(bad, 1, out), std::invalid_argument);
}

TEST(FedAvg, LrModelAveragingEqualsPredictionAveraging) {
  // For linear forecasters, averaging parameters IS averaging
  // predictions — the property that makes FedAvg exact rather than a
  // heuristic for the LR/SVR methods.
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 2;
  sc.neighborhood.min_devices = 3;
  sc.neighborhood.max_devices = 3;
  sc.trace.days = 1;
  const auto scenario = sim::Scenario::generate(sc);
  const auto& trace = scenario.traces[0].devices[1];

  data::WindowConfig w;
  w.window = 8;
  w.horizon = 5;
  auto a = forecast::make_forecaster(forecast::Method::kLr, w, 1);
  auto b = forecast::make_forecaster(forecast::Method::kLr, w, 1);
  forecast::TrainConfig tc;
  util::Rng rng(2);
  a->train(trace, 0, 700, tc, rng);
  b->train(trace, 700, 1400, tc, rng);

  // Average parameters into a third model.
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  std::vector<double> avg(pa.size());
  for (std::size_t i = 0; i < pa.size(); ++i) avg[i] = (pa[i] + pb[i]) / 2;
  auto c = forecast::make_forecaster(forecast::Method::kLr, w, 1);
  c->set_parameters(avg);

  // Compare in the model's (log-encoded) output space: re-encode the
  // decoded predictions to undo the nonlinear decode.
  const double scale = data::normalization_scale(trace.spec);
  const auto series_a = a->predict_series(trace, 100, 150);
  const auto series_b = b->predict_series(trace, 100, 150);
  const auto series_c = c->predict_series(trace, 100, 150);
  for (std::size_t i = 0; i < series_c.size(); ++i) {
    const double ea = data::encode_watts(series_a[i], scale, true);
    const double eb = data::encode_watts(series_b[i], scale, true);
    const double ec = data::encode_watts(series_c[i], scale, true);
    // decode clamps at 0, which breaks linearity only when a raw
    // prediction was negative; skip those.
    if (series_a[i] == 0.0 || series_b[i] == 0.0 || series_c[i] == 0.0) {
      continue;
    }
    ASSERT_NEAR(ec, (ea + eb) / 2, 1e-9);
  }
}

class FedAvgSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FedAvgSizes, MeanOfIdenticalIsIdentity) {
  util::Rng rng(GetParam());
  std::vector<double> v(GetParam() * 3 + 1);
  for (double& x : v) x = rng.normal();
  std::vector<std::vector<double>> inputs(GetParam() + 1, v);
  const auto out = avg_of(inputs);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(out[i], v[i], 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FedAvgSizes, ::testing::Values(1, 2, 5, 16));

}  // namespace
}  // namespace pfdrl::fl
