// Equivalence and determinism suite for the strip-mined nn::kernels
// layer against the preserved scalar reference (nn::ref):
//   * axpy-family results must match the reference BITWISE (dropping the
//     zero-skip branch adds exact +0.0 terms);
//   * dot-family results (reassociated into 4 lanes) must stay within
//     1e-12 relative error across a shape grid that includes the LSTM/GRU
//     gate widths (4H = 128, 3H = 96, and ragged sizes for the tail path);
//   * the lane combine order is pinned (a permutation-sensitivity probe);
//   * threaded matmul must be bitwise identical to single-threaded;
//   * FP contraction must be off in the flags this binary was built with.
#include "nn/kernels.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "nn/matrix.hpp"
#include "nn/ref.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

std::vector<double> random_vec(std::size_t n, util::Rng& rng,
                               double sparsity = 0.0) {
  std::vector<double> v(n);
  for (double& x : v) {
    x = rng.uniform() < sparsity ? 0.0 : rng.normal();
  }
  return v;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, util::Rng& rng,
                     double sparsity = 0.0) {
  Matrix m(rows, cols);
  for (double& x : m.data()) {
    x = rng.uniform() < sparsity ? 0.0 : rng.normal();
  }
  return m;
}

double rel_err(double got, double want) {
  const double scale = std::max(1.0, std::abs(want));
  return std::abs(got - want) / scale;
}

// The shape grid: the dimensions the recurrent gate math actually uses
// (H = 32 → 4H = 128, 3H = 96; H = 7 for ragged-tail coverage) plus
// degenerate and sub-lane sizes.
const std::size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16,
                              28, 31, 32, 96, 100, 128, 257};

TEST(NnKernels, DotMatchesReferenceWithinTolerance) {
  util::Rng rng(7);
  for (const std::size_t n : kSizes) {
    for (const double sparsity : {0.0, 0.5}) {
      const auto x = random_vec(n, rng, sparsity);
      const auto y = random_vec(n, rng, sparsity);
      const double got = kernels::dot(x.data(), y.data(), n);
      const double want = ref::dot(x.data(), y.data(), n);
      EXPECT_LE(rel_err(got, want), 1e-12) << "n=" << n;
    }
  }
}

TEST(NnKernels, DotIsDeterministicAcrossCalls) {
  util::Rng rng(8);
  const auto x = random_vec(257, rng);
  const auto y = random_vec(257, rng);
  const double first = kernels::dot(x.data(), y.data(), x.size());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(kernels::dot(x.data(), y.data(), x.size()), first);
  }
}

// Pins the documented combine order ((l0+l1)+(l2+l3)) + tail: an input
// crafted so any other association of the lane partials produces a
// different double. Lane partials: l0 = 1.0, l1 = 0x1p-53, l2 = -1.0,
// l3 = 0x1p-53, tail (n = 9) = 0x1p-60.
//   documented: ((1 + 2^-53) + (-1 + 2^-53)) + 2^-60
//     = (1.0 + (-1 + 2^-53)) + 2^-60         [1 + 2^-53 rounds to 1.0]
//     = 2^-53 + 2^-60
// whereas e.g. ((l0+l2)+(l1+l3)) + tail = (0 + 2^-52) + 2^-60 which is
// a strictly different value. The test also guards kLanes = 4: any lane
// count change re-buckets the terms and breaks the expectation.
TEST(NnKernels, DotLaneCombineOrderPinned) {
  static_assert(kernels::kLanes == 4);
  const double x[9] = {1.0, 0x1p-53, -1.0, 0x1p-53, 0.0, 0.0, 0.0, 0.0,
                       0x1p-60};
  const double y[9] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  const double got = kernels::dot(x, y, 9);
  const double want = ((1.0 + 0x1p-53) + (-1.0 + 0x1p-53)) + 0x1p-60;
  EXPECT_EQ(got, want);
  EXPECT_EQ(want, 0x1p-53 + 0x1p-60);  // sanity: the order matters
  EXPECT_NE(got, (0x1p-53 + 0x1p-53) + 0x1p-60);
}

TEST(NnKernels, AxpyBitwiseMatchesReference) {
  util::Rng rng(9);
  for (const std::size_t n : kSizes) {
    // Sparse scalars exercise the dropped a == 0 skip: +0.0 terms must
    // leave y bitwise unchanged.
    for (const double a : {0.0, 1.7, -0.3}) {
      const auto x = random_vec(n, rng, 0.3);
      auto y_got = random_vec(n, rng);
      auto y_want = y_got;
      kernels::axpy(a, x.data(), y_got.data(), n);
      ref::axpy(a, x.data(), y_want.data(), n);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(y_got[j], y_want[j]) << "n=" << n << " a=" << a;
      }
    }
  }
}

TEST(NnKernels, OuterAccBitwiseMatchesRowwiseReference) {
  util::Rng rng(10);
  const std::size_t m = 13, n = 96;  // GRU gate width, ragged row count
  const auto x = random_vec(m, rng, 0.4);
  const auto d = random_vec(n, rng);
  auto g_got = random_vec(m * n, rng);
  auto g_want = g_got;
  kernels::outer_acc(x.data(), m, d.data(), n, g_got.data());
  for (std::size_t k = 0; k < m; ++k) {
    ref::axpy(x[k], d.data(), g_want.data() + k * n, n);
  }
  EXPECT_EQ(g_got, g_want);
}

TEST(NnKernels, MatmulBitwiseMatchesReference) {
  // The production matmul reordered its loops (ijk -> ikj through axpy)
  // but each output element is still one ascending-k accumulator, so it
  // must stay BITWISE equal to the scalar reference — the invariant that
  // let the golden constants survive the act-path kernels unchanged.
  util::Rng rng(11);
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 3, 1}, {2, 16, 3}, {5, 7, 9}, {32, 28, 128}, {8, 32, 96}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s.m, s.k, rng, 0.3);
    const Matrix b = random_matrix(s.k, s.n, rng);
    Matrix got, want;
    matmul(a, b, got);
    ref::matmul(a, b, want);
    EXPECT_EQ(got, want) << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(NnKernels, MatmulAtBBitwiseMatchesReference) {
  util::Rng rng(12);
  const Matrix a = random_matrix(17, 28, rng, 0.3);
  const Matrix b = random_matrix(17, 96, rng);
  Matrix got, want;
  matmul_at_b(a, b, got);
  ref::matmul_at_b(a, b, want);
  EXPECT_EQ(got, want);
}

TEST(NnKernels, MatmulABtMatchesReferenceWithinTolerance) {
  // a * b^T now runs through the strip-mined dot, so it reassociates the
  // reduction: tolerance-bounded against the reference, not bitwise.
  util::Rng rng(13);
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{3, 7, 5}, {16, 128, 32}, {8, 96, 24}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.n, s.k, rng);
    Matrix got, want;
    matmul_a_bt(a, b, got);
    ref::matmul_a_bt(a, b, want);
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_LE(rel_err(got.data()[i], want.data()[i]), 1e-12);
    }
  }
}

TEST(NnKernels, ThreadedMatmulBitwiseEqualsSingleThreaded) {
  // 64x64x64 = 262144 flops — past the threading cutoff with rows > 1,
  // so the threaded call actually shards across the pool. Row sharding
  // must never change results: each output element is produced by
  // exactly one thread in the same ascending-k order.
  util::Rng rng(14);
  const Matrix a = random_matrix(64, 64, rng);
  const Matrix b = random_matrix(64, 64, rng);
  Matrix serial, threaded;
  matmul(a, b, serial, /*threaded=*/false);
  matmul(a, b, threaded, /*threaded=*/true);
  EXPECT_EQ(serial, threaded);
  // And repeat runs of the threaded path are self-consistent.
  Matrix again;
  matmul(a, b, again, /*threaded=*/true);
  EXPECT_EQ(threaded, again);
}

TEST(NnKernels, SquaredNormMatchesDotOfSelf) {
  util::Rng rng(15);
  const Matrix m = random_matrix(9, 31, rng);
  EXPECT_EQ(m.squared_norm(),
            kernels::dot(m.data().data(), m.data().data(), m.size()));
}

// The batched gate nonlinearities may route through libmvec (4 ulp
// accuracy bound), so they are tolerance-checked against the scalar
// formulas — never bitwise across build configurations.
TEST(NnKernels, SigmoidInplaceMatchesScalarWithinTolerance) {
  util::Rng rng(16);
  for (const std::size_t n : kSizes) {
    auto x = random_vec(n, rng);
    for (double& v : x) v *= 4.0;  // cover the saturating range too
    auto got = x;
    kernels::sigmoid_inplace(got.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      const double want = 1.0 / (1.0 + std::exp(-x[j]));
      EXPECT_LE(rel_err(got[j], want), 1e-12) << "n=" << n << " j=" << j;
    }
  }
}

TEST(NnKernels, TanhInplaceMatchesScalarWithinTolerance) {
  util::Rng rng(17);
  for (const std::size_t n : kSizes) {
    auto x = random_vec(n, rng);
    auto got = x;
    kernels::tanh_inplace(got.data(), n);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_LE(rel_err(got[j], std::tanh(x[j])), 1e-12)
          << "n=" << n << " j=" << j;
    }
  }
}

// Per the determinism contract the batched nonlinearities depend only on
// (contents, n): repeat calls on the same slice must be bitwise equal,
// including the ragged tail that falls off the vector path.
TEST(NnKernels, BatchedNonlinearitiesDeterministicAcrossCalls) {
  util::Rng rng(18);
  const auto x = random_vec(131, rng);  // 131 = 32 groups of 4 + tail of 3
  auto first_s = x, first_t = x;
  kernels::sigmoid_inplace(first_s.data(), first_s.size());
  kernels::tanh_inplace(first_t.data(), first_t.size());
  for (int i = 0; i < 5; ++i) {
    auto s = x, t = x;
    kernels::sigmoid_inplace(s.data(), s.size());
    kernels::tanh_inplace(t.data(), t.size());
    EXPECT_EQ(s, first_s);
    EXPECT_EQ(t, first_t);
  }
}

TEST(NnKernels, SigmoidInplaceSaturatesCleanly) {
  double x[6] = {-1000.0, -40.0, 0.0, 40.0, 1000.0, 0.5};
  kernels::sigmoid_inplace(x, 6);
  EXPECT_EQ(x[0], 0.0);
  EXPECT_NEAR(x[1], 0.0, 1e-15);
  EXPECT_EQ(x[2], 0.5);
  EXPECT_NEAR(x[3], 1.0, 1e-15);
  EXPECT_EQ(x[4], 1.0);
  EXPECT_GT(x[5], 0.5);
}

TEST(NnKernels, VectorMathFlagStable) {
  // Machine-dependent value, but it must be a stable build-time property.
  EXPECT_EQ(kernels::vector_math_active(), kernels::vector_math_active());
}

// Build-flag guard: fails if -ffp-contract=off is ever dropped from the
// top-level CMakeLists. Contraction would re-round a*b+c differently per
// compiler/arch and silently invalidate every golden constant.
TEST(NnKernels, FpContractionDisabled) {
  EXPECT_FALSE(kernels::fp_contraction_active());
}

TEST(NnKernels, TrainBatchCounterMonotonic) {
  const std::uint64_t before = kernels::total_train_batches();
  kernels::note_train_batch();
  kernels::note_train_batch();
  EXPECT_EQ(kernels::total_train_batches(), before + 2);
}

}  // namespace
}  // namespace pfdrl::nn
