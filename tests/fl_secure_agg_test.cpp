#include "fl/secure_agg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "fl/dfl.hpp"
#include "sim/scenario.hpp"
#include "util/rng.hpp"

namespace pfdrl::fl {
namespace {

std::vector<std::vector<double>> random_params(std::size_t agents,
                                               std::size_t size,
                                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<double>> out(agents, std::vector<double>(size));
  for (auto& v : out) {
    for (double& x : v) x = rng.normal();
  }
  return out;
}

TEST(SecureAgg, PairwiseMaskSymmetric) {
  SecureAggregator agg;
  const auto m1 = agg.pairwise_mask(2, 5, 7, 32);
  const auto m2 = agg.pairwise_mask(5, 2, 7, 32);
  EXPECT_EQ(m1, m2);  // both endpoints derive the identical mask
}

TEST(SecureAgg, MasksDifferPerRoundAndPair) {
  SecureAggregator agg;
  EXPECT_NE(agg.pairwise_mask(0, 1, 0, 16), agg.pairwise_mask(0, 1, 1, 16));
  EXPECT_NE(agg.pairwise_mask(0, 1, 0, 16), agg.pairwise_mask(0, 2, 0, 16));
}

TEST(SecureAgg, MaskedVectorHidesParameters) {
  SecureAggregator agg;
  const std::vector<net::AgentId> group = {0, 1, 2};
  const std::vector<double> params(64, 0.5);
  const auto masked = agg.mask(0, 0, group, params);
  // At mask_scale 32 the masked values should be far from the originals.
  double max_dev = 0.0;
  for (std::size_t i = 0; i < masked.size(); ++i) {
    max_dev = std::max(max_dev, std::abs(masked[i] - params[i]));
  }
  EXPECT_GT(max_dev, 1.0);
}

TEST(SecureAgg, SelfNotInGroupThrows) {
  SecureAggregator agg;
  const std::vector<net::AgentId> group = {1, 2};
  EXPECT_THROW(agg.mask(0, 0, group, std::vector<double>(4)),
               std::invalid_argument);
}

class GroupSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupSizes, MasksCancelInTheSum) {
  const std::size_t agents = GetParam();
  SecureAggregator agg;
  std::vector<net::AgentId> group;
  for (std::size_t a = 0; a < agents; ++a) {
    group.push_back(static_cast<net::AgentId>(a));
  }
  const auto plain = random_params(agents, 100, 42 + agents);
  std::vector<std::vector<double>> masked;
  for (std::size_t a = 0; a < agents; ++a) {
    masked.push_back(
        agg.mask(static_cast<net::AgentId>(a), /*round=*/3, group, plain[a]));
  }
  EXPECT_LT(SecureAggregator::sum_residual(masked, plain), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GroupSizes, ::testing::Values(2, 3, 5, 16));

TEST(SecureAgg, SingleAgentGroupIsIdentity) {
  SecureAggregator agg;
  const std::vector<net::AgentId> group = {4};
  const std::vector<double> params = {1.0, -2.0};
  EXPECT_EQ(agg.mask(4, 0, group, params), params);
}

TEST(SecureAgg, PartialGroupDoesNotCancel) {
  // Dropping one member leaves residual masks — the full-participation
  // requirement is real.
  SecureAggregator agg;
  const std::vector<net::AgentId> group = {0, 1, 2};
  const auto plain = random_params(3, 32, 9);
  std::vector<std::vector<double>> masked;
  for (std::size_t a = 0; a < 2; ++a) {  // third member missing
    masked.push_back(
        agg.mask(static_cast<net::AgentId>(a), 0, group, plain[a]));
  }
  const std::vector<std::vector<double>> plain2(plain.begin(),
                                                plain.begin() + 2);
  EXPECT_GT(SecureAggregator::sum_residual(masked, plain2), 1.0);
}

TEST(SecureAgg, DpNoiseDoesNotCancel) {
  SecureAggConfig cfg;
  cfg.pairwise_masking = false;
  cfg.dp_sigma = 0.5;
  SecureAggregator agg(cfg);
  const std::vector<net::AgentId> group = {0, 1};
  const auto plain = random_params(2, 64, 11);
  std::vector<std::vector<double>> masked;
  for (std::size_t a = 0; a < 2; ++a) {
    masked.push_back(
        agg.mask(static_cast<net::AgentId>(a), 0, group, plain[a]));
  }
  const double residual = SecureAggregator::sum_residual(masked, plain);
  EXPECT_GT(residual, 0.01);
  EXPECT_LT(residual, 10.0);  // bounded: sigma-scale, not mask-scale
}

TEST(SecureAgg, DflWithSecureAggregationMatchesPlain) {
  // The end-to-end property: DFL accuracy with masking on equals DFL
  // accuracy with masking off (up to floating-point residue).
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 3;
  sc.neighborhood.max_devices = 3;
  sc.trace.days = 2;
  const auto scenario = sim::Scenario::generate(sc);

  DflConfig plain_cfg;
  plain_cfg.method = forecast::Method::kLr;
  plain_cfg.window.window = 8;
  plain_cfg.window.horizon = 5;
  DflConfig secure_cfg = plain_cfg;
  secure_cfg.secure_aggregation = true;

  DflTrainer plain(scenario.traces, plain_cfg);
  DflTrainer secure(scenario.traces, secure_cfg);
  plain.run(0, data::kMinutesPerDay);
  secure.run(0, data::kMinutesPerDay);

  const double acc_plain =
      plain.mean_test_accuracy(data::kMinutesPerDay, scenario.minutes());
  const double acc_secure =
      secure.mean_test_accuracy(data::kMinutesPerDay, scenario.minutes());
  EXPECT_NEAR(acc_plain, acc_secure, 1e-6);
}

TEST(SecureAgg, DflBroadcastsAreMasked) {
  // Homologous models across homes end up identical after aggregation,
  // yet individual parameters were never on the wire in the clear. We
  // verify indirectly: secure and plain runs produce the same *averaged*
  // models even though masking perturbed every payload.
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 3;
  sc.neighborhood.max_devices = 3;
  sc.trace.days = 1;
  const auto scenario = sim::Scenario::generate(sc);

  DflConfig cfg;
  cfg.method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  DflConfig secure_cfg = cfg;
  secure_cfg.secure_aggregation = true;

  DflTrainer plain(scenario.traces, cfg);
  DflTrainer secure(scenario.traces, secure_cfg);
  plain.run(0, data::kMinutesPerDay);
  secure.run(0, data::kMinutesPerDay);
  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
      const auto pp = plain.forecaster(h, d).parameters();
      const auto ps = secure.forecaster(h, d).parameters();
      for (std::size_t i = 0; i < pp.size(); ++i) {
        ASSERT_NEAR(pp[i], ps[i], 1e-8);
      }
    }
  }
}

}  // namespace
}  // namespace pfdrl::fl
