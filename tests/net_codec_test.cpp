// net::WireCodec — lossless delta-frame roundtrips over adversarial fp64
// contents, hardened-decoder negatives (truncation / bit flips, in the
// util::records style: corrupt input must throw, never crash or read out
// of bounds), stream-state semantics (keyframes, repeats, reset_agent,
// capture/restore), and the quantize mode's twin-run determinism.
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "net/codec.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

namespace {

using pfdrl::net::CodecOptions;
using pfdrl::net::Message;
using pfdrl::net::MessageKind;
using pfdrl::net::WireCodec;

void expect_bitwise(const std::vector<double>& got,
                    const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                           want.size() * sizeof(double)))
      << what;
}

/// Roundtrip `values` against `prev` through the stateless frame layer
/// and require bitwise recovery.
void roundtrip(const std::vector<double>& values,
               const std::vector<double>& prev, const char* what) {
  std::vector<std::uint8_t> frame;
  const std::size_t coded = WireCodec::encode_frame(values, prev, frame);
  ASSERT_GT(coded, 0u) << what;
  ASSERT_LE(coded, WireCodec::max_frame_bytes(values.size())) << what;
  std::vector<double> decoded;
  WireCodec::decode_frame(std::span(frame.data(), coded), prev, values.size(),
                          decoded);
  expect_bitwise(decoded, values, what);
}

TEST(NetCodec, RoundtripsAdversarialValues) {
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> nasty = {0.0,     -0.0,   denorm, -denorm,
                                     qnan,    -qnan,  inf,    -inf,
                                     1.0,     -1.0,   1e-300, 1e300,
                                     5e-324,  -5e-324};
  roundtrip(nasty, {}, "nasty keyframe");
  roundtrip(nasty, nasty, "nasty repeat");
  std::vector<double> shifted(nasty.rbegin(), nasty.rend());
  roundtrip(shifted, nasty, "nasty delta");
  // NaN payload bits must survive exactly (the XOR path never interprets
  // the values as numbers).
  std::vector<std::uint8_t> frame;
  const std::size_t coded = WireCodec::encode_frame(nasty, {}, frame);
  std::vector<double> decoded;
  WireCodec::decode_frame(std::span(frame.data(), coded), {}, nasty.size(),
                          decoded);
  EXPECT_TRUE(std::isnan(decoded[4]));
}

TEST(NetCodec, RoundtripsRampsAndRandomWalks) {
  pfdrl::util::Rng rng(20260809);
  std::vector<double> ramp(512);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = -3.0 + 0.01 * static_cast<double>(i);
  }
  roundtrip(ramp, {}, "monotone ramp keyframe");

  std::vector<double> prev = ramp;
  std::vector<double> cur = ramp;
  for (int step = 0; step < 8; ++step) {
    for (double& v : cur) v += 1e-9 * rng.normal();
    roundtrip(cur, prev, "random walk step");
    prev = cur;
  }
  // Small-delta walks must actually compress (that is the whole point).
  std::vector<std::uint8_t> frame;
  const std::size_t coded = WireCodec::encode_frame(cur, prev, frame);
  EXPECT_LT(coded, cur.size() * sizeof(double) / 2);
}

TEST(NetCodec, RoundtripsEveryPrevSizeMismatch) {
  // prev of the wrong size means keyframe, same as empty prev.
  const std::vector<double> values = {1.5, -2.25, 0.0, 1e-12};
  const std::vector<double> stale = {9.0, 9.0};
  std::vector<std::uint8_t> a;
  std::vector<std::uint8_t> b;
  const std::size_t ca = WireCodec::encode_frame(values, {}, a);
  const std::size_t cb = WireCodec::encode_frame(values, stale, b);
  ASSERT_EQ(ca, cb);
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), ca));
}

TEST(NetCodec, RepeatAndRawFrames) {
  // Exact retransmission collapses to the one-byte repeat marker.
  const std::vector<double> values = {1.0, 2.0, 3.0};
  std::vector<std::uint8_t> frame;
  std::size_t coded = WireCodec::encode_frame(values, values, frame);
  ASSERT_EQ(coded, 1u);
  EXPECT_EQ(frame[0], WireCodec::kRepeat);
  std::vector<double> decoded;
  WireCodec::decode_frame(std::span(frame.data(), coded), values,
                          values.size(), decoded);
  expect_bitwise(decoded, values, "repeat frame");

  // Incompressible deltas (every significant byte set) take the raw
  // escape and never expand past 1 + 8n.
  pfdrl::util::Rng rng(7);
  std::vector<double> noise(64);
  for (double& v : noise) v = rng.uniform(-1e9, 1e9);
  coded = WireCodec::encode_frame(noise, {}, frame);
  EXPECT_EQ(frame[0], WireCodec::kRaw);
  EXPECT_EQ(coded, WireCodec::max_frame_bytes(noise.size()));
  WireCodec::decode_frame(std::span(frame.data(), coded), {}, noise.size(),
                          decoded);
  expect_bitwise(decoded, noise, "raw escape");
}

TEST(NetCodec, DecoderRejectsTruncationAndGarbage) {
  std::vector<double> prev(33);
  for (std::size_t i = 0; i < prev.size(); ++i) {
    prev[i] = 0.125 * static_cast<double>(i);
  }
  std::vector<double> values = prev;
  for (double& v : values) v += 1e-12;  // small deltas -> packed frame
  std::vector<std::uint8_t> frame;
  const std::size_t coded = WireCodec::encode_frame(values, prev, frame);
  ASSERT_EQ(frame[0], WireCodec::kPacked);
  std::vector<double> decoded;

  // Every proper prefix must throw, including the empty frame.
  for (std::size_t cut = 0; cut < coded; ++cut) {
    EXPECT_THROW(WireCodec::decode_frame(std::span(frame.data(), cut), prev,
                                         values.size(), decoded),
                 std::runtime_error)
        << "cut=" << cut;
  }
  // Trailing garbage must throw too — a frame is exactly sized.
  std::vector<std::uint8_t> padded(frame.begin(), frame.begin() + coded);
  padded.push_back(0xAB);
  EXPECT_THROW(WireCodec::decode_frame(padded, prev, values.size(), decoded),
               std::runtime_error);
  // Unknown flag byte.
  std::vector<std::uint8_t> bad(frame.begin(), frame.begin() + coded);
  bad[0] = 0x7F;
  EXPECT_THROW(WireCodec::decode_frame(bad, prev, values.size(), decoded),
               std::runtime_error);
}

TEST(NetCodec, DecoderSurvivesBitFlips) {
  // A flipped byte anywhere in the frame either throws (structural
  // damage) or decodes cleanly to different values — it must never read
  // out of bounds or crash. (The ASan stress job runs the same sweep
  // under -fsanitize=address.)
  std::vector<double> prev(48);
  for (std::size_t i = 0; i < prev.size(); ++i) {
    prev[i] = std::sin(static_cast<double>(i)) * 1e-3;
  }
  std::vector<double> values = prev;
  for (double& v : values) v += 1e-15;  // small deltas -> packed frame
  std::vector<std::uint8_t> frame;
  const std::size_t coded = WireCodec::encode_frame(values, prev, frame);
  ASSERT_EQ(frame[0], WireCodec::kPacked);
  std::vector<double> decoded;
  std::size_t throws = 0;
  for (std::size_t pos = 0; pos < coded; ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> mut(frame.begin(), frame.begin() + coded);
      mut[pos] = static_cast<std::uint8_t>(mut[pos] ^ (1u << bit));
      try {
        WireCodec::decode_frame(mut, prev, values.size(), decoded);
        ASSERT_EQ(decoded.size(), values.size());
      } catch (const std::runtime_error&) {
        ++throws;
      }
    }
  }
  // Length-nibble damage is detectable, so a healthy share must throw.
  EXPECT_GT(throws, 0u);
}

TEST(NetCodec, StatefulEncodeKeysStreamsAndStampsFrames) {
  WireCodec codec;
  const std::vector<double> params = {0.5, 0.25, -0.125, 8.0};

  Message msg;
  msg.sender = 3;
  msg.kind = MessageKind::kForecastParams;
  msg.device_type = 1;
  msg.payload.assign(params.begin(), params.end());
  codec.encode(msg);
  ASSERT_GT(msg.coded_bytes, 0u);
  const std::uint64_t keyframe = msg.coded_bytes;
  // Lossless: the payload is untouched by the default codec.
  expect_bitwise(std::vector<double>(msg.payload.span().begin(),
                                     msg.payload.span().end()),
                 params, "payload after encode");

  // Re-encode of an already-coded message is a no-op (relay semantics).
  codec.encode(msg);
  EXPECT_EQ(msg.coded_bytes, keyframe);

  // A fresh message with identical params on the same stream is a repeat.
  Message again = msg;
  again.coded_bytes = 0;
  codec.encode(again);
  EXPECT_EQ(again.coded_bytes, 1u);

  // Different stream key (other device type) gets its own keyframe.
  Message other = msg;
  other.coded_bytes = 0;
  other.device_type = 2;
  codec.encode(other);
  EXPECT_EQ(other.coded_bytes, keyframe);

  // reset_agent drops the sender's streams: next frame is a keyframe.
  codec.reset_agent(3);
  Message after = msg;
  after.coded_bytes = 0;
  codec.encode(after);
  EXPECT_EQ(after.coded_bytes, keyframe);

  const auto stats = codec.stats();
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_EQ(stats.repeat_frames, 1u);
  EXPECT_EQ(stats.raw_bytes, 4u * params.size() * sizeof(double));
  EXPECT_GE(stats.ratio(), 1.0);
}

TEST(NetCodec, CaptureRestoreResumesTheFrameSequence) {
  const auto send = [](WireCodec& codec, double scale) {
    Message msg;
    msg.sender = 11;
    msg.kind = MessageKind::kDrlBaseParams;
    std::vector<double> params(32);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] = scale * (static_cast<double>(i) + 0.5);
    }
    msg.payload.assign(params.begin(), params.end());
    codec.encode(msg);
    return msg.coded_bytes;
  };

  WireCodec uninterrupted;
  send(uninterrupted, 1.0);
  send(uninterrupted, 1.0 + 1e-12);

  WireCodec crashed;
  send(crashed, 1.0);
  const auto streams = crashed.capture_streams();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].sender, 11u);

  WireCodec resumed;
  resumed.restore_streams(streams);
  // The resumed codec continues the delta chain: same frame size as the
  // uninterrupted second round, far below a keyframe.
  const std::uint64_t resumed_frame = send(resumed, 1.0 + 1e-12);
  WireCodec fresh;
  const std::uint64_t fresh_frame = send(fresh, 1.0 + 1e-12);
  EXPECT_EQ(resumed_frame, uninterrupted.stats().coded_bytes -
                               crashed.stats().coded_bytes);
  EXPECT_LT(resumed_frame, fresh_frame);

  // Restoring an empty capture simply forces keyframes.
  WireCodec blank;
  blank.restore_streams({});
  EXPECT_EQ(send(blank, 1.0 + 1e-12), fresh_frame);
}

TEST(NetCodec, QuantizeModeIsDeterministicWithErrorFeedback) {
  const auto run = [](std::size_t rounds) {
    WireCodec codec(CodecOptions{.quantize = true});
    pfdrl::util::Rng rng(99);
    std::vector<double> params(64);
    for (double& v : params) v = rng.uniform(-1.0, 1.0);
    std::vector<std::vector<double>> delivered;
    std::uint64_t coded_total = 0;
    for (std::size_t r = 0; r < rounds; ++r) {
      for (double& v : params) v += 1e-3 * rng.normal();
      Message msg;
      msg.sender = 5;
      msg.kind = MessageKind::kForecastParams;
      msg.payload.assign(params.begin(), params.end());
      codec.encode(msg);
      coded_total += msg.coded_bytes;
      delivered.emplace_back(msg.payload.span().begin(),
                             msg.payload.span().end());
      // Quantization is lossy: receivers observe the dequantized values.
      EXPECT_NE(0, std::memcmp(delivered.back().data(), params.data(),
                               params.size() * sizeof(double)));
    }
    return std::make_pair(delivered, coded_total);
  };
  const auto [a, a_bytes] = run(6);
  const auto [b, b_bytes] = run(6);
  // Twin identically seeded runs deliver bitwise identical payloads.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    expect_bitwise(a[r], b[r], "quantized twin-run payload");
  }
  EXPECT_EQ(a_bytes, b_bytes);
  // int8 frames are ~8x smaller than the raw payload stream.
  EXPECT_LT(a_bytes, 6u * 64u * sizeof(double) / 4);
}

}  // namespace
