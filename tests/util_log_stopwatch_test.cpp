#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace pfdrl::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, EmittingBelowThresholdIsSafe) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must be a no-op, not a crash; nothing observable to assert beyond
  // "returns".
  log_debug("dropped ", 1);
  log_info("dropped ", 2.5);
  log_warn("dropped");
  log_error("dropped ", "x", 'y');
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
  EXPECT_EQ(detail::concat(), "");
}

TEST(Log, ThreadSafetySmoke) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the lock path, mute output
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) log_line(LogLevel::kError, "x");
    });
  }
  for (auto& t : threads) t.join();
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double s = watch.elapsed_seconds();
  EXPECT_GE(s, 0.025);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(watch.elapsed_ms(), watch.elapsed_seconds() * 1000.0,
              watch.elapsed_ms() * 0.5);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  watch.reset();
  EXPECT_LT(watch.elapsed_seconds(), 0.025);
}

TEST(Stopwatch, Monotone) {
  Stopwatch watch;
  double prev = watch.elapsed_seconds();
  for (int i = 0; i < 100; ++i) {
    const double cur = watch.elapsed_seconds();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace pfdrl::util
