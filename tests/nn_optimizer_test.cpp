#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace pfdrl::nn {
namespace {

TEST(Sgd, ExactStep) {
  Sgd opt(0.1);
  std::vector<double> params = {1.0, -2.0};
  const std::vector<double> grads = {10.0, -10.0};
  opt.step(params, grads);
  EXPECT_DOUBLE_EQ(params[0], 0.0);
  EXPECT_DOUBLE_EQ(params[1], -1.0);
}

TEST(Momentum, AccumulatesVelocity) {
  Momentum opt(0.1, 0.9);
  std::vector<double> params = {0.0};
  const std::vector<double> grads = {1.0};
  opt.step(params, grads);  // v=1, p=-0.1
  EXPECT_DOUBLE_EQ(params[0], -0.1);
  opt.step(params, grads);  // v=1.9, p=-0.1-0.19
  EXPECT_NEAR(params[0], -0.29, 1e-12);
}

TEST(Momentum, ResetClearsVelocity) {
  Momentum opt(0.1, 0.9);
  std::vector<double> params = {0.0};
  const std::vector<double> grads = {1.0};
  opt.step(params, grads);
  opt.reset();
  params[0] = 0.0;
  opt.step(params, grads);
  EXPECT_DOUBLE_EQ(params[0], -0.1);  // same as the very first step
}

TEST(Adam, FirstStepMagnitudeIsLearningRate) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Adam opt(0.01);
  std::vector<double> params = {0.0, 0.0};
  const std::vector<double> grads = {3.0, -0.5};
  opt.step(params, grads);
  EXPECT_NEAR(params[0], -0.01, 1e-6);
  EXPECT_NEAR(params[1], 0.01, 1e-6);
}

TEST(Adam, StateResizesWithParams) {
  Adam opt(0.01);
  std::vector<double> p1 = {0.0};
  opt.step(p1, std::vector<double>{1.0});
  std::vector<double> p2 = {0.0, 0.0, 0.0};
  opt.step(p2, std::vector<double>{1.0, 1.0, 1.0});  // must not crash
  EXPECT_LT(p2[0], 0.0);
}

TEST(Optimizer, LearningRateMutable) {
  Sgd opt(0.1);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.1);
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
}

TEST(Optimizer, CloneIsIndependent) {
  Adam opt(0.01);
  std::vector<double> p = {1.0};
  opt.step(p, std::vector<double>{1.0});
  auto clone = opt.clone();
  EXPECT_EQ(clone->name(), "adam");
  // Stepping the clone must not disturb the original's state: run both
  // and expect identical behaviour from identical state? The clone is
  // state-fresh by design; just check it steps without issue.
  std::vector<double> q = {1.0};
  clone->step(q, std::vector<double>{1.0});
  EXPECT_LT(q[0], 1.0);
}

struct QuadraticCase {
  const char* name;
  std::unique_ptr<Optimizer> (*make)();
};

class DescentProperty : public ::testing::TestWithParam<int> {};

TEST_P(DescentProperty, ConvergesOnQuadratic) {
  // Minimize f(p) = sum (p_i - t_i)^2 from a fixed start.
  std::unique_ptr<Optimizer> opt;
  switch (GetParam()) {
    case 0: opt = std::make_unique<Sgd>(0.05); break;
    case 1: opt = std::make_unique<Momentum>(0.01, 0.9); break;
    default: opt = std::make_unique<Adam>(0.05); break;
  }
  const std::vector<double> target = {3.0, -1.0, 0.5};
  std::vector<double> params = {0.0, 0.0, 0.0};
  std::vector<double> grads(3);
  for (int it = 0; it < 500; ++it) {
    for (std::size_t i = 0; i < 3; ++i) grads[i] = 2 * (params[i] - target[i]);
    opt->step(params, grads);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(params[i], target[i], 0.05) << opt->name();
  }
}

INSTANTIATE_TEST_SUITE_P(All, DescentProperty, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace pfdrl::nn
