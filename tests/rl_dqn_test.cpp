#include "rl/dqn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <vector>

#include "nn/workspace.hpp"
#include "rl/fused.hpp"
#include "util/rng.hpp"

namespace pfdrl::rl {
namespace {

DqnConfig small_config() {
  DqnConfig cfg;
  cfg.state_dim = 3;
  cfg.num_actions = 3;
  cfg.hidden = {16, 16};
  cfg.replay_capacity = 256;
  cfg.batch_size = 16;
  cfg.target_replace_every = 10;
  cfg.epsilon_decay_steps = 100;
  cfg.seed = 5;
  return cfg;
}

TEST(Dqn, QValuesShape) {
  DqnAgent agent(small_config());
  const auto q = agent.q_values(std::vector<double>{0.1, 0.2, 0.3});
  EXPECT_EQ(q.size(), 3u);
}

TEST(Dqn, GreedyIsArgmax) {
  DqnAgent agent(small_config());
  const std::vector<double> state = {0.5, -0.5, 1.0};
  const auto q = agent.q_values(state);
  const int greedy = agent.act_greedy(state);
  const auto best =
      static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
  EXPECT_EQ(greedy, best);
}

TEST(Dqn, EpsilonSchedule) {
  auto cfg = small_config();
  cfg.epsilon_start = 1.0;
  cfg.epsilon_end = 0.1;
  cfg.epsilon_decay_steps = 10;
  DqnAgent agent(cfg);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 1.0);
  const std::vector<double> state = {0, 0, 0};
  for (int i = 0; i < 5; ++i) agent.act(state);
  EXPECT_NEAR(agent.epsilon(), 0.55, 1e-12);
  for (int i = 0; i < 20; ++i) agent.act(state);
  EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
}

TEST(Dqn, LearnNoOpUntilBatchAvailable) {
  DqnAgent agent(small_config());
  EXPECT_EQ(agent.learn(), 0.0);
  EXPECT_EQ(agent.learn_steps(), 0u);
}

TEST(Dqn, TargetSyncSchedule) {
  auto cfg = small_config();
  cfg.target_replace_every = 3;
  DqnAgent agent(cfg);
  for (int i = 0; i < 20; ++i) {
    Transition t;
    t.state = {0.1, 0.2, 0.3};
    t.action = i % 3;
    t.reward = 1.0;
    t.next_state = {0.2, 0.3, 0.4};
    agent.remember(t);
  }
  for (int i = 0; i < 7; ++i) agent.learn();
  EXPECT_EQ(agent.learn_steps(), 7u);
}

TEST(Dqn, SetNetworkParametersRoundTrip) {
  DqnAgent agent(small_config());
  std::vector<double> values(agent.network().parameter_count(), 0.25);
  agent.set_network_parameters(values);
  for (double v : agent.network().parameters()) EXPECT_EQ(v, 0.25);
}

TEST(Dqn, SameSeedSameInit) {
  DqnAgent a(small_config());
  DqnAgent b(small_config());
  const auto pa = a.network().parameters();
  const auto pb = b.network().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
}

TEST(Dqn, ExplorationSeedDecorrelatesActions) {
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.exploration_seed = 999;
  DqnAgent a(cfg_a);
  DqnAgent b(cfg_b);
  const std::vector<double> state = {0, 0, 0};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.act(state) == b.act(state)) ++same;
  }
  EXPECT_LT(same, 75);  // epsilon = 1 early: actions mostly random
}

TEST(Dqn, LearnsContextualBandit) {
  // Reward depends only on matching action to state argmax: the agent
  // must learn the mapping within a few hundred steps.
  auto cfg = small_config();
  cfg.discount = 0.0;  // bandit
  cfg.epsilon_decay_steps = 500;
  cfg.epsilon_end = 0.05;
  cfg.learning_rate = 3e-3;
  DqnAgent agent(cfg);
  util::Rng rng(3);

  for (int step = 0; step < 1500; ++step) {
    std::vector<double> state(3);
    for (double& s : state) s = rng.uniform();
    const int best = static_cast<int>(
        std::max_element(state.begin(), state.end()) - state.begin());
    const int action = agent.act(state);
    Transition t;
    t.state = state;
    t.action = action;
    t.reward = action == best ? 1.0 : -1.0;
    t.next_state = state;
    t.terminal = true;
    agent.remember(std::move(t));
    agent.learn();
  }

  int correct = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    std::vector<double> state(3);
    for (double& s : state) s = rng.uniform();
    const int best = static_cast<int>(
        std::max_element(state.begin(), state.end()) - state.begin());
    if (agent.act_greedy(state) == best) ++correct;
  }
  EXPECT_GT(correct, trials * 3 / 4);
}

TEST(Dqn, DoubleDqnLearnsBanditToo) {
  auto cfg = small_config();
  cfg.double_dqn = true;
  cfg.discount = 0.0;
  cfg.epsilon_decay_steps = 500;
  cfg.epsilon_end = 0.05;
  cfg.learning_rate = 3e-3;
  DqnAgent agent(cfg);
  util::Rng rng(4);
  for (int step = 0; step < 1500; ++step) {
    std::vector<double> state(3);
    for (double& s : state) s = rng.uniform();
    const int best = static_cast<int>(
        std::max_element(state.begin(), state.end()) - state.begin());
    const int action = agent.act(state);
    Transition t;
    t.state = state;
    t.action = action;
    t.reward = action == best ? 1.0 : -1.0;
    t.next_state = state;
    t.terminal = true;
    agent.remember(std::move(t));
    agent.learn();
  }
  int correct = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> state(3);
    for (double& s : state) s = rng.uniform();
    const int best = static_cast<int>(
        std::max_element(state.begin(), state.end()) - state.begin());
    if (agent.act_greedy(state) == best) ++correct;
  }
  EXPECT_GT(correct, 225);
}

TEST(Dqn, DoubleDqnChangesLearningTrajectory) {
  auto cfg_a = small_config();
  auto cfg_b = small_config();
  cfg_b.double_dqn = true;
  DqnAgent a(cfg_a);
  DqnAgent b(cfg_b);
  util::Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    Transition t;
    t.state = {rng.uniform(), rng.uniform(), rng.uniform()};
    t.action = static_cast<int>(rng.uniform_int(0, 2));
    t.reward = rng.uniform(-1, 1);
    t.next_state = {rng.uniform(), rng.uniform(), rng.uniform()};
    a.remember(t);
    b.remember(t);
  }
  for (int i = 0; i < 30; ++i) {
    a.learn();
    b.learn();
  }
  // Non-terminal transitions bootstrap differently under double DQN.
  const auto pa = a.network().parameters();
  const auto pb = b.network().parameters();
  bool any_diff = false;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    if (pa[i] != pb[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Dqn, PaperDefaultsEncoded) {
  const DqnConfig cfg;
  EXPECT_EQ(cfg.hidden, (std::vector<std::size_t>(8, 100)));
  EXPECT_DOUBLE_EQ(cfg.learning_rate, 1e-3);
  EXPECT_DOUBLE_EQ(cfg.discount, 0.9);
  EXPECT_EQ(cfg.replay_capacity, 2000u);
  EXPECT_EQ(cfg.target_replace_every, 100u);
  EXPECT_EQ(cfg.num_actions, 3u);
}

TEST(Dqn, NetworkExposesPaperArchitecture) {
  DqnConfig cfg;
  cfg.state_dim = 5;
  DqnAgent agent(cfg);
  // 8 hidden layers + output = 9 dense layers; hidden width 100.
  EXPECT_EQ(agent.network().num_layers(), 9u);
  EXPECT_EQ(agent.network().dims()[1], 100u);
  EXPECT_EQ(agent.network().output_dim(), 3u);
}

TEST(Dqn, QValuesIntoMatchesQValues) {
  DqnAgent agent(small_config());
  const std::vector<double> state = {0.3, -0.7, 0.2};
  const auto expected = agent.q_values(state);
  std::array<double, 3> got{};
  agent.q_values_into(state, got);
  for (std::size_t a = 0; a < expected.size(); ++a) {
    EXPECT_EQ(got[a], expected[a]);
  }
}

// The per-decision inference path must stop allocating once the agent's
// workspace is warm — same style of pin as the exchange-engine
// payload_copies test: the process-wide counter must not move across a
// steady-state burst.
TEST(Dqn, ActPathAllocationFreeSteadyState) {
  DqnAgent agent(small_config());
  const std::vector<double> state = {0.1, 0.4, -0.2};
  std::array<double, 3> q{};
  // Warm-up: first calls size the workspace slots.
  (void)agent.act_greedy(state);
  agent.q_values_into(state, q);
  const std::uint64_t allocs = nn::Workspace::total_allocations();
  for (int i = 0; i < 500; ++i) {
    (void)agent.act_greedy(state);
    agent.q_values_into(state, q);
  }
  EXPECT_EQ(nn::Workspace::total_allocations(), allocs);
}

// Same pin for the paper-default architecture (8 x 100 ReLU): the depth
// of the net must not reintroduce per-call growth.
TEST(Dqn, ActPathAllocationFreePaperNet) {
  DqnAgent agent{DqnConfig{}};
  std::vector<double> state(DqnConfig{}.state_dim, 0.25);
  (void)agent.act_greedy(state);
  const std::uint64_t allocs = nn::Workspace::total_allocations();
  for (int i = 0; i < 50; ++i) (void)agent.act_greedy(state);
  EXPECT_EQ(nn::Workspace::total_allocations(), allocs);
}

// The learn path gets the same pin: once the replay is full and a few
// warm-up steps have sized the gradient slot (the slot buffer and the
// Mlp ping-pong scratch trade places across backward(), so capacities
// converge over the first couple of calls), further learn() calls must
// not grow any workspace arena.
TEST(Dqn, LearnPathAllocationFreeSteadyState) {
  DqnAgent agent(small_config());
  util::Rng rng(77);
  for (int i = 0; i < 64; ++i) {
    Transition t;
    t.state = {rng.normal(), rng.normal(), rng.normal()};
    t.action = i % 3;
    t.reward = rng.normal();
    t.next_state = {rng.normal(), rng.normal(), rng.normal()};
    agent.remember(t);
  }
  for (int i = 0; i < 4; ++i) agent.learn();  // warm the slots
  const std::uint64_t allocs = nn::Workspace::total_allocations();
  for (int i = 0; i < 200; ++i) agent.learn();
  EXPECT_EQ(nn::Workspace::total_allocations(), allocs);
}

// --- Warm-restart state capture ---------------------------------------

namespace {
/// Drive `agent` through n interleaved act/remember/learn steps with its
/// own trajectory RNG, so exploration, replay sampling and Adam all move.
void drive(DqnAgent& agent, util::Rng& rng, int steps) {
  for (int i = 0; i < steps; ++i) {
    std::vector<double> state = {rng.uniform(), rng.uniform(), rng.uniform()};
    const int action = agent.act(state);
    Transition t;
    t.state = state;
    t.action = action;
    t.reward = rng.uniform(-1, 1);
    t.next_state = {rng.uniform(), rng.uniform(), rng.uniform()};
    agent.remember(std::move(t));
    agent.learn();
  }
}
}  // namespace

// The core warm-restart property: a restored agent continues bitwise —
// identical actions (exploration RNG), identical losses (replay
// sampling + Adam moments) and identical parameters after further
// training.
TEST(Dqn, CaptureRestoreContinuesBitwise) {
  DqnAgent original(small_config());
  util::Rng traj(901);
  drive(original, traj, 120);  // past the first target refresh

  const DqnAgentState state = original.capture_state();
  DqnAgent restored(small_config());
  restored.restore_state(state);

  // Same trajectory stream for both from here on.
  util::Rng traj_a(902), traj_b(902);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> s = {traj_a.uniform(), traj_a.uniform(),
                             traj_a.uniform()};
    std::vector<double> s2 = {traj_b.uniform(), traj_b.uniform(),
                              traj_b.uniform()};
    ASSERT_EQ(original.act(s), restored.act(s2)) << "step " << i;
    Transition ta;
    ta.state = s;
    ta.action = 0;
    ta.reward = 0.5;
    ta.next_state = s;
    Transition tb = ta;
    original.remember(std::move(ta));
    restored.remember(std::move(tb));
    ASSERT_EQ(original.learn(), restored.learn()) << "step " << i;
  }
  EXPECT_EQ(original.epsilon(), restored.epsilon());
  EXPECT_EQ(original.learn_steps(), restored.learn_steps());
  const auto pa = original.network().parameters();
  const auto pb = restored.network().parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
}

// restore_state must keep the captured target network and Adam moments;
// set_network_parameters (checkpoint-style restore) resets both. The
// two must therefore diverge after the same subsequent learn step.
TEST(Dqn, RestoreKeepsTargetAndAdamUnlikeSetNetworkParameters) {
  DqnAgent trained(small_config());
  util::Rng traj(903);
  drive(trained, traj, 60);  // online and target have drifted apart

  const DqnAgentState state = trained.capture_state();
  // The capture really holds two distinct networks.
  ASSERT_EQ(state.online_params.size(), state.target_params.size());
  bool nets_differ = false;
  for (std::size_t i = 0; i < state.online_params.size(); ++i) {
    if (state.online_params[i] != state.target_params[i]) nets_differ = true;
  }
  ASSERT_TRUE(nets_differ);

  DqnAgent warm(small_config());
  warm.restore_state(state);
  DqnAgent cold(small_config());
  cold.set_network_parameters(state.online_params);

  // Same online parameters either way...
  const auto pw = warm.network().parameters();
  const auto pc = cold.network().parameters();
  for (std::size_t i = 0; i < pw.size(); ++i) ASSERT_EQ(pw[i], pc[i]);

  // ...but the warm restore preserved the drifted target (cold synced
  // it), so identical learn batches produce different updates.
  util::Rng fill(904);
  for (int i = 0; i < 40; ++i) {
    Transition t;
    t.state = {fill.uniform(), fill.uniform(), fill.uniform()};
    t.action = i % 3;
    t.reward = fill.uniform(-1, 1);
    t.next_state = {fill.uniform(), fill.uniform(), fill.uniform()};
    Transition t2 = t;
    warm.remember(std::move(t));
    cold.remember(std::move(t2));
  }
  warm.learn();
  cold.learn();
  const auto aw = warm.network().parameters();
  const auto ac = cold.network().parameters();
  bool diverged = false;
  for (std::size_t i = 0; i < aw.size(); ++i) {
    if (aw[i] != ac[i]) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Dqn, RestoreRejectsShapeMismatch) {
  DqnAgent agent(small_config());
  DqnAgentState state = agent.capture_state();
  state.online_params.pop_back();
  EXPECT_THROW(agent.restore_state(state), std::invalid_argument);

  DqnAgentState state2 = agent.capture_state();
  state2.target_params.push_back(0.0);
  EXPECT_THROW(agent.restore_state(state2), std::invalid_argument);
}

// --- Cross-home fused learning (rl/fused.hpp) -------------------------

namespace {

/// A group of agents with distinct seeds (distinct initial parameters
/// and replay-sampling streams) and distinct replay contents.
std::vector<std::unique_ptr<DqnAgent>> make_group(std::size_t n,
                                                  bool double_dqn,
                                                  int replay_fill) {
  std::vector<std::unique_ptr<DqnAgent>> agents;
  for (std::size_t i = 0; i < n; ++i) {
    auto cfg = small_config();
    cfg.seed = 50 + i;
    cfg.double_dqn = double_dqn;
    cfg.target_replace_every = 5;  // hit a few syncs within the test
    agents.push_back(std::make_unique<DqnAgent>(cfg));
    util::Rng fill(300 + i);
    for (int t = 0; t < replay_fill; ++t) {
      Transition tr;
      tr.state = {fill.normal(), fill.normal(), fill.normal()};
      tr.action = static_cast<int>(fill.uniform_int(0, 2));
      tr.reward = fill.uniform(-1, 1);
      tr.next_state = {fill.normal(), fill.normal(), fill.normal()};
      tr.terminal = fill.uniform() < 0.1;
      agents[i]->remember(std::move(tr));
    }
  }
  return agents;
}

std::vector<DqnAgent*> pointers(
    const std::vector<std::unique_ptr<DqnAgent>>& agents) {
  std::vector<DqnAgent*> ptrs;
  for (const auto& a : agents) ptrs.push_back(a.get());
  return ptrs;
}

}  // namespace

// The fused-learning contract: one FusedDqnLearner::learn() call is
// bitwise one DqnAgent::learn() per agent — identical losses every step
// and identical parameters after many steps (replay sampling, Adam
// moments and target syncs all included).
TEST(FusedDqn, LearnMatchesPerAgentBitwise) {
  for (const bool double_dqn : {false, true}) {
    auto fused_group = make_group(4, double_dqn, 64);
    auto legacy_group = make_group(4, double_dqn, 64);
    const auto ptrs = pointers(fused_group);
    FusedDqnLearner learner;
    std::vector<double> losses(ptrs.size(), -1.0);
    for (int step = 0; step < 12; ++step) {
      ASSERT_TRUE(learner.learn(ptrs, losses));
      for (std::size_t i = 0; i < legacy_group.size(); ++i) {
        ASSERT_EQ(losses[i], legacy_group[i]->learn())
            << "double_dqn=" << double_dqn << " step " << step << " agent "
            << i;
      }
    }
    for (std::size_t i = 0; i < legacy_group.size(); ++i) {
      EXPECT_EQ(fused_group[i]->learn_steps(), legacy_group[i]->learn_steps());
      const auto pf = fused_group[i]->network().parameters();
      const auto pl = legacy_group[i]->network().parameters();
      ASSERT_EQ(pf.size(), pl.size());
      for (std::size_t k = 0; k < pf.size(); ++k) {
        ASSERT_EQ(pf[k], pl[k])
            << "double_dqn=" << double_dqn << " agent " << i << " param " << k;
      }
    }
  }
}

// Agents whose replay is still below one batch are skipped exactly like
// the per-agent early return: loss 0.0, no learn step, no RNG use — so
// the cold agent trains identically once it does warm up.
TEST(FusedDqn, ColdAgentSkippedWithoutRngUse) {
  auto fused_group = make_group(3, false, 64);
  auto legacy_group = make_group(3, false, 64);
  // Rebuild agent 1 with an under-filled replay in both groups.
  auto cfg = small_config();
  cfg.seed = 51;
  fused_group[1] = std::make_unique<DqnAgent>(cfg);
  legacy_group[1] = std::make_unique<DqnAgent>(cfg);
  const auto ptrs = pointers(fused_group);
  FusedDqnLearner learner;
  std::vector<double> losses(ptrs.size(), -1.0);
  ASSERT_TRUE(learner.learn(ptrs, losses));
  EXPECT_EQ(losses[1], 0.0);
  EXPECT_EQ(fused_group[1]->learn_steps(), 0u);
  EXPECT_NE(losses[0], 0.0);
  // Warm the cold agent up and keep fusing: it must still track its
  // per-agent twin bitwise (its sampling RNG was never touched early).
  util::Rng fill(999);
  for (int t = 0; t < 32; ++t) {
    Transition tr;
    tr.state = {fill.normal(), fill.normal(), fill.normal()};
    tr.action = t % 3;
    tr.reward = fill.uniform(-1, 1);
    tr.next_state = {fill.normal(), fill.normal(), fill.normal()};
    Transition tr2 = tr;
    fused_group[1]->remember(std::move(tr));
    legacy_group[1]->remember(std::move(tr2));
  }
  legacy_group[0]->learn();  // catch the twins up to the fused step above
  legacy_group[2]->learn();
  for (int step = 0; step < 6; ++step) {
    ASSERT_TRUE(learner.learn(ptrs, losses));
    for (std::size_t i = 0; i < legacy_group.size(); ++i) {
      ASSERT_EQ(losses[i], legacy_group[i]->learn()) << "step " << step;
    }
  }
  const auto pf = fused_group[1]->network().parameters();
  const auto pl = legacy_group[1]->network().parameters();
  for (std::size_t k = 0; k < pf.size(); ++k) ASSERT_EQ(pf[k], pl[k]);
}

// Non-fusable groups must be refused with no agent state touched, so the
// caller's per-agent fallback starts from a clean slate.
TEST(FusedDqn, RejectsMixedGroupsUntouched) {
  auto group = make_group(2, false, 64);
  auto cfg = small_config();
  cfg.hidden = {16, 16, 16};  // different architecture
  group.push_back(std::make_unique<DqnAgent>(cfg));
  util::Rng fill(77);
  for (int t = 0; t < 64; ++t) {
    Transition tr;
    tr.state = {fill.normal(), fill.normal(), fill.normal()};
    tr.action = t % 3;
    tr.reward = fill.uniform(-1, 1);
    tr.next_state = {fill.normal(), fill.normal(), fill.normal()};
    group[2]->remember(std::move(tr));
  }
  const auto ptrs = pointers(group);
  const auto before = [&] {
    std::vector<double> all;
    for (const auto& a : group) {
      const auto p = a->network().parameters();
      all.insert(all.end(), p.begin(), p.end());
    }
    return all;
  };
  const auto snapshot = before();
  FusedDqnLearner learner;
  std::vector<double> losses(ptrs.size(), -1.0);
  EXPECT_FALSE(learner.learn(ptrs, losses));
  EXPECT_EQ(before(), snapshot);
  for (const auto& a : group) EXPECT_EQ(a->learn_steps(), 0u);
}

}  // namespace
}  // namespace pfdrl::rl
