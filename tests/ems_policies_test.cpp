#include "ems/policies.hpp"

#include <gtest/gtest.h>

#include "ems/accounting.hpp"

namespace pfdrl::ems {
namespace {

using data::DeviceMode;

data::DeviceTrace two_day_trace() {
  // Day pattern: standby overnight (0-6h), on 9-10h, standby rest.
  data::DeviceTrace t;
  t.spec.type = data::DeviceType::kTv;
  t.spec.standby_watts = 6.0;
  t.spec.on_watts = 120.0;
  const std::size_t minutes = 2 * data::kMinutesPerDay;
  t.watts.resize(minutes);
  t.modes.resize(minutes);
  for (std::size_t m = 0; m < minutes; ++m) {
    const std::size_t hour = data::hour_of_day(m);
    if (hour == 9) {
      t.modes[m] = DeviceMode::kOn;
      t.watts[m] = 120.0;
    } else {
      t.modes[m] = DeviceMode::kStandby;
      t.watts[m] = 6.0;
    }
  }
  return t;
}

EmsEnvironment make_env(const data::DeviceTrace& trace) {
  return EmsEnvironment(trace,
                        std::vector<double>(data::kMinutesPerDay, 6.0),
                        data::kMinutesPerDay, 5);
}

TEST(Policies, OracleIsPerfect) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const auto result = score_actions(env, oracle_actions(env));
  EXPECT_DOUBLE_EQ(result.saved_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(result.net_saved_fraction(), 1.0);
  EXPECT_EQ(result.comfort_violations, 0u);
}

TEST(Policies, ReactiveNearOracleOnSlowDevices) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const auto result = score_actions(env, reactive_actions(env));
  // Loses only the meter-staleness window around transitions.
  EXPECT_GT(result.net_saved_fraction(), 0.9);
  EXPECT_LE(result.comfort_violations, 2u);
}

TEST(Policies, TimerSavesOnlyItsWindow) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const auto result = score_actions(env, timer_actions(env, 0, 6));
  // 6 of 23 standby hours fall inside the timer window.
  EXPECT_NEAR(result.saved_fraction(), 6.0 / 23.0, 0.02);
  // The on-hour is outside the window; only the meter-staleness gap at
  // the 9 AM transition can register (the hold rule reads a stale
  // standby report for up to one interval).
  EXPECT_LE(result.comfort_violations, 1u);
}

TEST(Policies, TimerWindowWrapsMidnight) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const auto actions = timer_actions(env, 22, 6);
  // Minute at hour 23 must be off, at hour 12 must not.
  const std::size_t idx23 = 23 * 60;
  const std::size_t idx12 = 12 * 60;
  EXPECT_EQ(actions[idx23], mode_to_action(DeviceMode::kOff));
  EXPECT_NE(actions[idx12], mode_to_action(DeviceMode::kOff));
}

TEST(Policies, TimerInterruptsUsageInsideWindow) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  // Window covering the 9-10h usage hour: one interruption.
  const auto result = score_actions(env, timer_actions(env, 8, 12));
  EXPECT_GE(result.comfort_violations, 1u);
}

TEST(Policies, PassiveSavesNothingHarmsNothing) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const auto result = score_actions(env, passive_actions(env));
  EXPECT_DOUBLE_EQ(result.saved_kwh, 0.0);
  // Holding the reported mode can only mismatch within the staleness
  // window around the single on-transition.
  EXPECT_LE(result.comfort_violations, 1u);
}

TEST(Policies, OrderingOracleGeReactiveGeTimerGePassive) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  const double oracle =
      score_actions(env, oracle_actions(env)).net_saved_fraction();
  const double reactive =
      score_actions(env, reactive_actions(env)).net_saved_fraction();
  const double timer =
      score_actions(env, timer_actions(env, 0, 6)).net_saved_fraction();
  const double passive =
      score_actions(env, passive_actions(env)).net_saved_fraction();
  EXPECT_GE(oracle, reactive);
  EXPECT_GE(reactive, timer);
  EXPECT_GE(timer, passive);
}

TEST(Policies, AllReturnFullLengthVectors) {
  const auto trace = two_day_trace();
  const auto env = make_env(trace);
  EXPECT_EQ(oracle_actions(env).size(), env.length());
  EXPECT_EQ(reactive_actions(env).size(), env.length());
  EXPECT_EQ(timer_actions(env).size(), env.length());
  EXPECT_EQ(passive_actions(env).size(), env.length());
}

}  // namespace
}  // namespace pfdrl::ems
