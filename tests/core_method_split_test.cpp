#include <gtest/gtest.h>

#include "core/layer_split.hpp"
#include "core/method.hpp"
#include "util/rng.hpp"

namespace pfdrl::core {
namespace {

TEST(MethodTraits, Table2Local) {
  const auto t = method_traits(EmsMethod::kLocal);
  EXPECT_EQ(t.load_forecasting, "Local NN");
  EXPECT_EQ(t.ems, "Local RL");
  EXPECT_TRUE(t.local_area);
  EXPECT_TRUE(t.data_privacy);
  EXPECT_FALSE(t.small_batch_training);
  EXPECT_FALSE(t.shares_ems);
  EXPECT_TRUE(t.personalization);
}

TEST(MethodTraits, Table2Cloud) {
  const auto t = method_traits(EmsMethod::kCloud);
  EXPECT_EQ(t.load_forecasting, "Cloud NN");
  EXPECT_FALSE(t.local_area);
  EXPECT_FALSE(t.data_privacy);
  EXPECT_TRUE(t.small_batch_training);
  EXPECT_FALSE(t.personalization);
}

TEST(MethodTraits, Table2Fl) {
  const auto t = method_traits(EmsMethod::kFl);
  EXPECT_EQ(t.load_forecasting, "Federated Learning");
  EXPECT_EQ(t.ems, "Local RL");
  EXPECT_FALSE(t.shares_ems);
}

TEST(MethodTraits, Table2Frl) {
  const auto t = method_traits(EmsMethod::kFrl);
  EXPECT_EQ(t.ems, "Federated RL");
  EXPECT_TRUE(t.shares_ems);
  EXPECT_FALSE(t.personalization);
}

TEST(MethodTraits, Table2Pfdrl) {
  const auto t = method_traits(EmsMethod::kPfdrl);
  EXPECT_EQ(t.load_forecasting, "Decentralized Federated Learning");
  EXPECT_EQ(t.ems, "Personalized Federated RL");
  EXPECT_TRUE(t.local_area);
  EXPECT_TRUE(t.data_privacy);
  EXPECT_TRUE(t.small_batch_training);
  EXPECT_TRUE(t.shares_ems);
  EXPECT_TRUE(t.personalization);
}

TEST(MethodTraits, OnlyPfdrlHasAllProperties) {
  for (auto m : {EmsMethod::kLocal, EmsMethod::kCloud, EmsMethod::kFl,
                 EmsMethod::kFrl}) {
    const auto t = method_traits(m);
    const bool all = t.local_area && t.data_privacy &&
                     t.small_batch_training && t.shares_ems &&
                     t.personalization;
    EXPECT_FALSE(all) << ems_method_name(m);
  }
  const auto t = method_traits(EmsMethod::kPfdrl);
  EXPECT_TRUE(t.local_area && t.data_privacy && t.small_batch_training &&
              t.shares_ems && t.personalization);
}

TEST(MethodNames, Stable) {
  EXPECT_STREQ(ems_method_name(EmsMethod::kLocal), "Local");
  EXPECT_STREQ(ems_method_name(EmsMethod::kCloud), "Cloud");
  EXPECT_STREQ(ems_method_name(EmsMethod::kFl), "FL");
  EXPECT_STREQ(ems_method_name(EmsMethod::kFrl), "FRL");
  EXPECT_STREQ(ems_method_name(EmsMethod::kPfdrl), "PFDRL");
}

nn::Mlp dqn_like_net() {
  util::Rng rng(1);
  return nn::Mlp({5, 10, 10, 10, 3}, nn::Activation::kRelu,
                 nn::Activation::kIdentity, nn::InitScheme::kHeNormal, rng);
}

TEST(LayerSplit, PrefixGrowsWithAlpha) {
  const auto net = dqn_like_net();
  std::size_t prev = 0;
  for (std::size_t alpha = 0; alpha <= net.num_layers(); ++alpha) {
    const std::size_t p = base_prefix_params(net, alpha);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_EQ(base_prefix_params(net, 0), 0u);
  EXPECT_EQ(base_prefix_params(net, net.num_layers()), net.parameter_count());
}

TEST(LayerSplit, AlphaClampedToLayerCount) {
  const auto net = dqn_like_net();
  EXPECT_EQ(base_prefix_params(net, 100), net.parameter_count());
}

TEST(LayerSplit, PrefixMatchesLayerOffsets) {
  const auto net = dqn_like_net();
  for (std::size_t alpha = 1; alpha < net.num_layers(); ++alpha) {
    EXPECT_EQ(base_prefix_params(net, alpha), net.layer_offset(alpha));
  }
}

TEST(LayerSplit, HiddenLayerCount) {
  const auto net = dqn_like_net();
  EXPECT_EQ(hidden_layer_count(net), 3u);  // 4 dense layers - output
}

}  // namespace
}  // namespace pfdrl::core
