#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace pfdrl::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 7;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng rng(7);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalProportions) {
  Rng rng(11);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, CategoricalAllZeroFallsBack) {
  Rng rng(12);
  EXPECT_EQ(rng.categorical({0.0, 0.0}), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIndependentStreams) {
  Rng root(42);
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkDeterministic) {
  Rng r1(42);
  Rng r2(42);
  Rng a = r1.fork(5);
  Rng b = r2.fork(5);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ForkUnaffectedByParentUse) {
  Rng r1(42);
  Rng r2(42);
  r2.next();
  r2.next();  // consuming the parent must not change fork streams
  Rng a = r1.fork(9);
  Rng b = r2.fork(9);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StateRoundTripContinuesStreamBitwise) {
  Rng rng(99);
  for (int i = 0; i < 17; ++i) rng.next();
  const RngState saved = rng.state();

  Rng restored(1);  // deliberately different seed — restore must win
  restored.restore(saved);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next(), restored.next());
}

TEST(Rng, StateRoundTripPreservesBoxMullerCache) {
  Rng rng(123);
  // Draw an odd number of normals so a second variate sits in the cache.
  (void)rng.normal();
  const RngState saved = rng.state();
  EXPECT_TRUE(saved.has_cached_normal);

  Rng restored(7);
  restored.restore(saved);
  // The very next normal() must hand out the cached variate, then both
  // streams continue in lockstep through fresh Box-Muller pairs.
  for (int i = 0; i < 50; ++i) {
    const double a = rng.normal();
    const double b = restored.normal();
    EXPECT_EQ(a, b);  // bitwise, not approximately
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next(), restored.next());
}

TEST(Rng, StateRoundTripPreservesForkSeed) {
  Rng rng(77);
  rng.next();
  Rng restored(5);
  restored.restore(rng.state());
  Rng a = rng.fork(3);
  Rng b = restored.fork(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StateRoundTripThroughMixedDistributions) {
  Rng rng(2024);
  (void)rng.normal();
  (void)rng.uniform();
  (void)rng.normal();  // cache refilled mid-sequence
  Rng restored(0);
  restored.restore(rng.state());
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.normal(), restored.normal());
    EXPECT_EQ(rng.uniform(), restored.uniform());
    EXPECT_EQ(rng.uniform_int(0, 1000), restored.uniform_int(0, 1000));
  }
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, UniformIntUnbiasedOverSmallRange) {
  Rng rng(GetParam() ^ 0xABCDEF);
  std::vector<int> counts(5, 0);
  const int n = 25000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 4))];
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(n), 0.2, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 42, 1000003, 0xDEADBEEF));

}  // namespace
}  // namespace pfdrl::util
