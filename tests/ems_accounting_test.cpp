#include "ems/accounting.hpp"

#include <gtest/gtest.h>

namespace pfdrl::ems {
namespace {

using data::DeviceMode;

data::DeviceTrace phase_trace() {
  // 10 off, 20 standby, 10 on, 20 standby (60 minutes total).
  data::DeviceTrace t;
  t.spec.type = data::DeviceType::kTv;
  t.spec.standby_watts = 6.0;
  t.spec.on_watts = 120.0;
  t.watts.resize(60);
  t.modes.resize(60);
  for (std::size_t m = 0; m < 60; ++m) {
    if (m < 10) {
      t.modes[m] = DeviceMode::kOff;
      t.watts[m] = 0.0;
    } else if (m < 30) {
      t.modes[m] = DeviceMode::kStandby;
      t.watts[m] = 6.0;
    } else if (m < 40) {
      t.modes[m] = DeviceMode::kOn;
      t.watts[m] = 120.0;
    } else {
      t.modes[m] = DeviceMode::kStandby;
      t.watts[m] = 6.0;
    }
  }
  return t;
}

EmsEnvironment make_env(const data::DeviceTrace& trace) {
  return EmsEnvironment(trace, std::vector<double>(trace.minutes(), 6.0), 0,
                        5);
}

TEST(Accounting, ActionCountValidation) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  EXPECT_THROW(score_actions(env, std::vector<int>(10, 0)),
               std::invalid_argument);
}

TEST(Accounting, OracleReclaimsEverything) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  std::vector<int> actions(60);
  for (std::size_t i = 0; i < 60; ++i) {
    actions[i] = mode_to_action(optimal_action(trace.modes[i]));
  }
  const auto r = score_actions(env, actions);
  EXPECT_NEAR(r.standby_kwh, 40 * 6.0 / 60.0 / 1000.0, 1e-12);
  EXPECT_NEAR(r.saved_kwh, r.standby_kwh, 1e-12);
  EXPECT_EQ(r.comfort_violations, 0u);
  EXPECT_DOUBLE_EQ(r.violation_kwh, 0.0);
  EXPECT_DOUBLE_EQ(r.saved_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(r.net_saved_fraction(), 1.0);
  // Oracle reward: 10 off-minutes +10, 40 standby-off +30, 10 on +10.
  EXPECT_DOUBLE_EQ(r.total_reward, 10 * 10 + 40 * 30 + 10 * 10);
}

TEST(Accounting, AlwaysStandbySavesNothing) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 1);
  const auto r = score_actions(env, actions);
  EXPECT_DOUBLE_EQ(r.saved_kwh, 0.0);
  EXPECT_GT(r.standby_kwh, 0.0);
  EXPECT_EQ(r.comfort_violations, 1u);  // one on-stretch interrupted
}

TEST(Accounting, AlwaysOffBillsOneEventPerOnStretch) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 0);
  const auto r = score_actions(env, actions);
  EXPECT_DOUBLE_EQ(r.saved_fraction(), 1.0);  // gross saves everything
  EXPECT_EQ(r.comfort_violations, 1u);        // single contiguous on period
  EXPECT_NEAR(r.violation_kwh, 120.0 / 60.0 / 1000.0, 1e-12);  // 1 minute
  EXPECT_LT(r.net_saved_fraction(), 1.0);
}

TEST(Accounting, TwoSeparateViolationStretchesCountTwice) {
  auto trace = phase_trace();
  // Insert a second on-stretch at minutes 45..49.
  for (std::size_t m = 45; m < 50; ++m) {
    trace.modes[m] = DeviceMode::kOn;
    trace.watts[m] = 120.0;
  }
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 0);
  const auto r = score_actions(env, actions);
  EXPECT_EQ(r.comfort_violations, 2u);
}

TEST(Accounting, ViolationStretchEndsWhenActionCorrects) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  std::vector<int> actions(60, 0);
  actions[32] = 2;  // correct mid-stretch...
  // ...then wrong again from 33: that is a NEW violated stretch.
  const auto r = score_actions(env, actions);
  EXPECT_EQ(r.comfort_violations, 2u);
}

TEST(Accounting, SavedByHourBuckets) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 0);
  const auto r = score_actions(env, actions);
  // All 60 minutes are within hour 0.
  EXPECT_NEAR(r.saved_kwh_by_hour[0], r.saved_kwh, 1e-12);
  for (std::size_t h = 1; h < 24; ++h) {
    EXPECT_DOUBLE_EQ(r.saved_kwh_by_hour[h], 0.0);
  }
}

TEST(Accounting, MergeSums) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  std::vector<int> oracle(60);
  for (std::size_t i = 0; i < 60; ++i) {
    oracle[i] = mode_to_action(optimal_action(trace.modes[i]));
  }
  auto a = score_actions(env, oracle);
  const auto b = score_actions(env, std::vector<int>(60, 0));
  const double saved_sum = a.saved_kwh + b.saved_kwh;
  const auto violations = a.comfort_violations + b.comfort_violations;
  a.merge(b);
  EXPECT_NEAR(a.saved_kwh, saved_sum, 1e-12);
  EXPECT_EQ(a.comfort_violations, violations);
  EXPECT_EQ(a.steps, 120u);
}

TEST(Accounting, NetSavedFractionFloorsAtZero) {
  EpisodeResult r;
  r.standby_kwh = 1.0;
  r.saved_kwh = 0.1;
  r.violation_kwh = 0.5;
  EXPECT_DOUBLE_EQ(r.net_saved_kwh(), -0.4);
  EXPECT_DOUBLE_EQ(r.net_saved_fraction(), 0.0);
}

TEST(Accounting, FractionsZeroWithoutStandby) {
  EpisodeResult r;
  EXPECT_DOUBLE_EQ(r.saved_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(r.net_saved_fraction(), 0.0);
}

TEST(Accounting, SavedDollarsFixedTariff) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 0);
  const data::FixedTariff tariff(10.0);  // 10 cents/kWh
  const double dollars = saved_dollars(env, actions, tariff, 0);
  const double saved_kwh = 40 * 6.0 / 60.0 / 1000.0;
  EXPECT_NEAR(dollars, saved_kwh * 10.0 / 100.0, 1e-12);
}

TEST(Accounting, SavedDollarsVariableUsesTimeOfUse) {
  const auto trace = phase_trace();
  const auto env = make_env(trace);
  const std::vector<int> actions(60, 0);
  const data::VariableTariff tariff;
  // Overnight (minute 0 of year = midnight Jan) is cheap; 4 PM August
  // is expensive: the same actions should be worth more in August.
  const double cheap = saved_dollars(env, actions, tariff, 0);
  const std::size_t august_4pm =
      7 * data::kMinutesPerMonth + 16 * 60;
  const double pricey = saved_dollars(env, actions, tariff, august_4pm);
  EXPECT_GT(pricey, cheap);
}

}  // namespace
}  // namespace pfdrl::ems
