#include "forecast/forecaster.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/household.hpp"
#include "forecast/lr.hpp"
#include "forecast/metrics.hpp"

namespace pfdrl::forecast {
namespace {

data::DeviceTrace sample_trace(std::size_t days = 3, std::uint64_t seed = 42) {
  data::NeighborhoodConfig nc;
  nc.num_households = 1;
  nc.min_devices = 5;
  nc.max_devices = 5;
  nc.seed = seed;
  const auto home = data::make_neighborhood(nc)[0];
  data::TraceConfig tc;
  tc.days = days;
  tc.seed = seed;
  const auto trace = data::generate_household_trace(home, tc);
  // Pick a user device (not protected) for more interesting dynamics.
  for (const auto& d : trace.devices) {
    if (!d.spec.protected_device) return d;
  }
  return trace.devices[0];
}

data::WindowConfig small_window() {
  data::WindowConfig w;
  w.window = 8;
  w.horizon = 5;
  return w;
}

class AllMethods : public ::testing::TestWithParam<Method> {};

TEST_P(AllMethods, TrainsAndPredictsReasonably) {
  const auto trace = sample_trace();
  auto model = make_forecaster(GetParam(), small_window(), 7);
  TrainConfig tc;
  const bool recurrent =
      GetParam() == Method::kLstm || GetParam() == Method::kGru;
  tc.epochs = recurrent ? 4 : 0;  // cap BPTT cost
  util::Rng rng(1);
  model->train(trace, 0, 2 * data::kMinutesPerDay, tc, rng);
  const auto result =
      evaluate(*model, trace, 2 * data::kMinutesPerDay, trace.minutes());
  EXPECT_GT(result.samples, 1000u) << model->name();
  EXPECT_GT(result.mean_accuracy, 0.45) << model->name();
}

TEST_P(AllMethods, PredictSeriesAlignedLength) {
  const auto trace = sample_trace();
  auto model = make_forecaster(GetParam(), small_window(), 7);
  const std::size_t begin = 2 * data::kMinutesPerDay;
  const std::size_t end = begin + 200;
  const auto preds = model->predict_series(trace, begin, end);
  EXPECT_EQ(preds.size(), 200u);
  for (double p : preds) EXPECT_GE(p, 0.0);
}

TEST_P(AllMethods, CloneIsIndependent) {
  const auto trace = sample_trace();
  auto model = make_forecaster(GetParam(), small_window(), 7);
  TrainConfig tc;
  tc.epochs = 1;
  util::Rng rng(2);
  model->train(trace, 0, data::kMinutesPerDay, tc, rng);
  auto clone = model->clone();
  ASSERT_EQ(clone->parameters().size(), model->parameters().size());
  // Training the clone must not affect the original.
  const std::vector<double> before(model->parameters().begin(),
                                   model->parameters().end());
  clone->train(trace, 0, data::kMinutesPerDay, tc, rng);
  const auto after = model->parameters();
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(after[i], before[i]);
  }
}

TEST_P(AllMethods, ParametersRoundTripChangesBehavior) {
  const auto trace = sample_trace();
  auto a = make_forecaster(GetParam(), small_window(), 7);
  auto b = make_forecaster(GetParam(), small_window(), 7);
  TrainConfig tc;
  tc.epochs = 1;
  util::Rng rng(3);
  a->train(trace, 0, data::kMinutesPerDay, tc, rng);
  // Copy a's parameters into b: predictions must now match a's.
  const auto params = a->parameters();
  b->set_parameters(params);
  const auto pa = a->predict_series(trace, 2000, 2100);
  const auto pb = b->predict_series(trace, 2000, 2100);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_DOUBLE_EQ(pa[i], pb[i]);
}

TEST_P(AllMethods, SetParametersSizeMismatchThrows) {
  auto model = make_forecaster(GetParam(), small_window(), 7);
  EXPECT_THROW(model->set_parameters(std::vector<double>(3)),
               std::invalid_argument);
}

TEST_P(AllMethods, SameSeedSameInitialParameters) {
  auto a = make_forecaster(GetParam(), small_window(), 99);
  auto b = make_forecaster(GetParam(), small_window(), 99);
  const auto pa = a->parameters();
  const auto pb = b->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
}

INSTANTIATE_TEST_SUITE_P(Methods, AllMethods,
                         ::testing::Values(Method::kLr, Method::kSvr,
                                           Method::kBp, Method::kLstm,
                                           Method::kGru));

TEST(MethodNames, PaperLabels) {
  EXPECT_STREQ(method_name(Method::kLr), "LR");
  EXPECT_STREQ(method_name(Method::kSvr), "SVM");
  EXPECT_STREQ(method_name(Method::kBp), "BP");
  EXPECT_STREQ(method_name(Method::kLstm), "LSTM");
  EXPECT_STREQ(method_name(Method::kGru), "GRU");
}

TEST(ResolveTrainConfig, FillsZeroedFields) {
  TrainConfig base;  // all zero -> auto
  const auto lstm = resolve_train_config(Method::kLstm, base);
  EXPECT_GT(lstm.epochs, 0u);
  EXPECT_GT(lstm.learning_rate, 0.0);
  EXPECT_GT(lstm.stride, 0u);
}

TEST(ResolveTrainConfig, ExplicitValuesWin) {
  TrainConfig base;
  base.epochs = 3;
  base.learning_rate = 0.5;
  base.stride = 7;
  const auto got = resolve_train_config(Method::kBp, base);
  EXPECT_EQ(got.epochs, 3u);
  EXPECT_DOUBLE_EQ(got.learning_rate, 0.5);
  EXPECT_EQ(got.stride, 7u);
}

TEST(Cholesky, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a = {4, 2, 2, 3};
  std::vector<double> b = {10, 8};
  ASSERT_TRUE(cholesky_solve(a, 2, b));
  EXPECT_NEAR(b[0], 1.75, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  std::vector<double> a = {1, 2, 2, 1};  // indefinite
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(cholesky_solve(a, 2, b));
}

TEST(LrForecaster, LearnsLinearSignalExactly) {
  // Trace where watts follow a noiseless linear AR pattern: LR should
  // achieve near-perfect accuracy.
  data::DeviceTrace trace;
  trace.spec.type = data::DeviceType::kTv;
  trace.spec.standby_watts = 5.0;
  trace.spec.on_watts = 100.0;
  const std::size_t n = 3000;
  trace.watts.resize(n);
  trace.modes.assign(n, data::DeviceMode::kOn);
  for (std::size_t m = 0; m < n; ++m) {
    trace.watts[m] = 60.0 + 20.0 * std::sin(m * 0.01);
  }
  data::WindowConfig w;
  w.window = 8;
  w.horizon = 1;
  w.log_scale = false;
  LrForecaster lr(w);
  TrainConfig tc;
  tc.stride = 1;
  util::Rng rng(4);
  lr.train(trace, 0, 2000, tc, rng);
  const auto result = evaluate(lr, trace, 2000, 3000);
  EXPECT_GT(result.mean_accuracy, 0.99);
}

TEST(Metrics, AccuracySamplesMatchEvaluate) {
  const auto trace = sample_trace();
  auto model = make_forecaster(Method::kLr, small_window(), 7);
  TrainConfig tc;
  util::Rng rng(5);
  model->train(trace, 0, 2 * data::kMinutesPerDay, tc, rng);
  const std::size_t begin = 2 * data::kMinutesPerDay;
  const auto samples = accuracy_samples(*model, trace, begin, trace.minutes());
  const auto result = evaluate(*model, trace, begin, trace.minutes());
  ASSERT_EQ(samples.size(), result.samples);
  double mean = 0.0;
  for (double s : samples) mean += s;
  mean /= static_cast<double>(samples.size());
  EXPECT_NEAR(mean, result.mean_accuracy, 1e-9);
}

TEST(Metrics, AccuracyByHourCoversDay) {
  const auto trace = sample_trace();
  auto model = make_forecaster(Method::kLr, small_window(), 7);
  TrainConfig tc;
  util::Rng rng(6);
  model->train(trace, 0, 2 * data::kMinutesPerDay, tc, rng);
  const auto by_hour =
      accuracy_by_hour(*model, trace, 2 * data::kMinutesPerDay, trace.minutes());
  for (std::size_t h = 0; h < 24; ++h) {
    EXPECT_GE(by_hour[h], 0.0);
    EXPECT_LE(by_hour[h], 1.0);
  }
}

TEST(Factory, AllMethodsConstructible) {
  for (auto m : {Method::kLr, Method::kSvr, Method::kBp, Method::kLstm,
                 Method::kGru}) {
    auto model = make_forecaster(m, small_window(), 1);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->method(), m);
    EXPECT_GT(model->parameters().size(), 0u);
  }
}

}  // namespace
}  // namespace pfdrl::forecast
