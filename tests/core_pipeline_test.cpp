#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl::core {
namespace {

sim::Scenario tiny() {
  auto cfg = sim::tiny_scenario(42);
  return sim::Scenario::generate(cfg);
}

PipelineConfig tiny_pipeline(EmsMethod method) {
  auto cfg = sim::fast_pipeline(method, 42);
  cfg.forecast_method = forecast::Method::kLr;  // cheapest
  cfg.dqn.hidden = {12, 12};
  return cfg;
}

TEST(Pipeline, RejectsEmptyTraces) {
  std::vector<data::HouseholdTrace> empty;
  EXPECT_THROW(EmsPipeline(empty, tiny_pipeline(EmsMethod::kPfdrl)),
               std::invalid_argument);
}

TEST(Pipeline, ProtectedDevicesHaveNoAgent) {
  const auto scenario = tiny();
  EmsPipeline pipeline(scenario.traces, tiny_pipeline(EmsMethod::kLocal));
  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
      if (scenario.traces[h].devices[d].spec.protected_device) {
        EXPECT_THROW(pipeline.agent(h, d), std::out_of_range);
      } else {
        EXPECT_NO_THROW(pipeline.agent(h, d));
      }
    }
  }
}

TEST(Pipeline, SharesEmsPlansOnlyForFrlAndPfdrl) {
  EXPECT_FALSE(shares_ems_plans(EmsMethod::kLocal));
  EXPECT_FALSE(shares_ems_plans(EmsMethod::kCloud));
  EXPECT_FALSE(shares_ems_plans(EmsMethod::kFl));
  EXPECT_TRUE(shares_ems_plans(EmsMethod::kFrl));
  EXPECT_TRUE(shares_ems_plans(EmsMethod::kPfdrl));
}

class PipelineAllMethods : public ::testing::TestWithParam<EmsMethod> {};

TEST_P(PipelineAllMethods, EndToEndSmoke) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  EmsPipeline pipeline(scenario.traces, tiny_pipeline(GetParam()));
  pipeline.train_forecasters(0, day);
  const double acc = pipeline.forecast_accuracy(day, 2 * day);
  EXPECT_GT(acc, 0.2);
  EXPECT_LE(acc, 1.0);
  pipeline.train_ems(day, 2 * day);
  const auto results = pipeline.evaluate(day, 2 * day);
  ASSERT_EQ(results.size(), scenario.num_homes());
  for (const auto& r : results) {
    EXPECT_GT(r.steps, 0u);
    EXPECT_GE(r.standby_kwh, 0.0);
    EXPECT_GE(r.saved_kwh, 0.0);
    EXPECT_LE(r.saved_kwh, r.standby_kwh + 1e-9);
  }
}

TEST_P(PipelineAllMethods, CommStatsMatchMethod) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  EmsPipeline pipeline(scenario.traces, tiny_pipeline(GetParam()));
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  const auto fc = pipeline.forecast_comm_stats();
  const auto drl = pipeline.drl_comm_stats();
  switch (GetParam()) {
    case EmsMethod::kLocal:
      EXPECT_EQ(fc.messages_sent, 0u);
      EXPECT_EQ(drl.messages_sent, 0u);
      break;
    case EmsMethod::kCloud:
      // Cloud ships raw data, not parameters; no bus traffic either way.
      EXPECT_EQ(fc.messages_sent, 0u);
      EXPECT_EQ(drl.messages_sent, 0u);
      break;
    case EmsMethod::kFl:
      EXPECT_GT(fc.messages_sent, 0u);
      EXPECT_EQ(drl.messages_sent, 0u);
      break;
    case EmsMethod::kFrl:
      EXPECT_GT(fc.messages_sent, 0u);
      EXPECT_GT(drl.messages_sent, 0u);
      break;
    case EmsMethod::kPfdrl:
      EXPECT_GT(fc.messages_sent, 0u);
      EXPECT_GT(drl.messages_sent, 0u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, PipelineAllMethods,
                         ::testing::Values(EmsMethod::kLocal,
                                           EmsMethod::kCloud, EmsMethod::kFl,
                                           EmsMethod::kFrl,
                                           EmsMethod::kPfdrl));

TEST(Pipeline, PfdrlBroadcastsLessDrlDataThanFrl) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;

  auto frl_cfg = tiny_pipeline(EmsMethod::kFrl);
  auto pfdrl_cfg = tiny_pipeline(EmsMethod::kPfdrl);
  pfdrl_cfg.alpha = 1;

  EmsPipeline frl(scenario.traces, frl_cfg);
  EmsPipeline pfdrl(scenario.traces, pfdrl_cfg);
  frl.train_forecasters(0, day);
  pfdrl.train_forecasters(0, day);
  frl.train_ems(day, 2 * day);
  pfdrl.train_ems(day, 2 * day);

  EXPECT_LT(pfdrl.drl_comm_stats().bytes_on_wire,
            frl.drl_comm_stats().bytes_on_wire);
}

TEST(Pipeline, EvaluateSavingsDollarsShape) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  EmsPipeline pipeline(scenario.traces, tiny_pipeline(EmsMethod::kPfdrl));
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);
  const data::FixedTariff tariff;
  const auto dollars =
      pipeline.evaluate_savings_dollars(day, 2 * day, tariff, 0);
  ASSERT_EQ(dollars.size(), scenario.num_homes());
  for (double d : dollars) EXPECT_GE(d, 0.0);
}

TEST(Pipeline, SecureAggregationMatchesPlainForecasts) {
  // End-to-end: the PFDRL pipeline with masked DFL broadcasts produces
  // the same forecast accuracy as the plain one (masks cancel in the
  // aggregate).
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  auto plain_cfg = tiny_pipeline(EmsMethod::kPfdrl);
  auto secure_cfg = plain_cfg;
  secure_cfg.secure_aggregation = true;
  EmsPipeline plain(scenario.traces, plain_cfg);
  EmsPipeline secure(scenario.traces, secure_cfg);
  plain.train_forecasters(0, day);
  secure.train_forecasters(0, day);
  EXPECT_NEAR(plain.forecast_accuracy(day, 2 * day),
              secure.forecast_accuracy(day, 2 * day), 1e-6);
}

TEST(Pipeline, LearnCadenceAndAccountingFollowMeterInterval) {
  // Regression for the learn-cadence/round-accounting bug. The EMS loop
  // advances one meter interval per decision step; with a 15-minute meter
  // a 240-minute γ round is 16 steps, not 240. The old per-minute loop
  // pushed 240 transitions per device per round, and a naive
  // `(begin + t) % learn_every == 0` gate over strided minute offsets
  // aliases against the stride: with learn_every = 40 it only fires when
  // t is a multiple of lcm(40, 15) = 120 — 2 learns per round instead of
  // the 6 a 40-minute cadence promises. The interval-aware gate
  // `(begin + t) % learn_every < stride` fires exactly 240/40 = 6 times.
  const auto scenario = tiny();
  auto cfg = tiny_pipeline(EmsMethod::kLocal);
  cfg.meter_interval_minutes = 15;
  cfg.learn_every_minutes = 40;
  cfg.gamma_hours = 4.0;  // 240-minute rounds
  obs::MetricsRegistry reg;  // private sink: keep the assertions exact
  cfg.metrics = &reg;

  std::size_t actionable = 0;
  for (const auto& home : scenario.traces) {
    for (const auto& dev : home.devices) {
      if (!dev.spec.protected_device) ++actionable;
    }
  }
  ASSERT_GT(actionable, 0u);

  const std::size_t day = data::kMinutesPerDay;
  EmsPipeline pipeline(scenario.traces, cfg);
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, day + 240);  // exactly one γ round

  EXPECT_EQ(reg.counter("ems.rounds").value(), 1u);
  EXPECT_EQ(reg.counter("ems.env_steps").value(), actionable * 16);
  EXPECT_EQ(reg.counter("ems.replay_pushes").value(), actionable * 16);
  EXPECT_EQ(reg.counter("ems.learn_calls").value(), actionable * 6);
  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
      if (scenario.traces[h].devices[d].spec.protected_device) continue;
      EXPECT_EQ(pipeline.agent(h, d).replay().total_pushed(), 16u);
    }
  }

  // A second round doubles every per-round count — no drift, no aliasing
  // against the new begin offset (1680 % 40 = 0 still, but 1680 % 15 = 0
  // keeps the stride phase identical).
  pipeline.train_ems(day + 240, day + 480);
  EXPECT_EQ(reg.counter("ems.rounds").value(), 2u);
  EXPECT_EQ(reg.counter("ems.env_steps").value(), actionable * 32);
  EXPECT_EQ(reg.counter("ems.learn_calls").value(), actionable * 12);
  EXPECT_EQ(reg.series("ems.epsilon_series").size(), 2u);
  EXPECT_EQ(reg.histogram("ems.round_seconds").count(), 2u);
}

// The fused-training contract end-to-end (docs/fused_training.md):
// fuse_homes > 1 runs EMS rounds in cross-home lockstep (stacked DQN
// learn slabs) and fuses DFL forecast minibatches, but every agent
// parameter and every evaluation number must stay bitwise identical to
// the legacy per-home pipeline — with and without sharding on top.
TEST(Pipeline, FusedHomesBitwiseMatchesLegacy) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  const auto run = [&](std::size_t fuse_homes, std::size_t shards,
                       forecast::Method fm) {
    auto cfg = tiny_pipeline(EmsMethod::kPfdrl);
    cfg.forecast_method = fm;
    cfg.fuse_homes = fuse_homes;
    cfg.shards = shards;
    EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, day);
    pipeline.train_ems(day, 2 * day);
    std::vector<double> fingerprint;
    for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
      for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
        const auto* agent = pipeline.agent_ptr(h, d);
        if (agent == nullptr) continue;
        const auto p = agent->network().parameters();
        fingerprint.insert(fingerprint.end(), p.begin(), p.end());
      }
    }
    for (const auto& r : pipeline.evaluate(day, 2 * day)) {
      fingerprint.push_back(r.total_reward);
    }
    return fingerprint;
  };
  // kLr forecasts: the DFL groups fall back per job (non-NN method), the
  // EMS rounds fuse — covers the fallback seam.
  const auto legacy_lr = run(0, 0, forecast::Method::kLr);
  EXPECT_EQ(run(2, 0, forecast::Method::kLr), legacy_lr);
  EXPECT_EQ(run(2, 2, forecast::Method::kLr), legacy_lr);
  // kBp forecasts: both the forecast and the EMS fused paths engage.
  const auto legacy_bp = run(0, 0, forecast::Method::kBp);
  EXPECT_EQ(run(3, 0, forecast::Method::kBp), legacy_bp);
}

TEST(Pipeline, DeterministicAcrossRuns) {
  const auto scenario = tiny();
  const std::size_t day = data::kMinutesPerDay;
  const auto run = [&] {
    EmsPipeline pipeline(scenario.traces, tiny_pipeline(EmsMethod::kPfdrl));
    pipeline.train_forecasters(0, day);
    pipeline.train_ems(day, 2 * day);
    const auto results = pipeline.evaluate(day, 2 * day);
    double total = 0.0;
    for (const auto& r : results) total += r.total_reward;
    return total;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace pfdrl::core
