#include "util/records.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace pfdrl::util {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string scratch_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Crc32, KnownVectors) {
  // The canonical IEEE check value for "123456789".
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, SensitiveToSingleBit) {
  auto a = bytes_of("snapshot payload");
  auto b = a;
  b[5] ^= 0x01;
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Records, RoundTripPreservesPayloadsAndOrder) {
  RecordWriter writer;
  const std::vector<std::vector<std::uint8_t>> payloads = {
      bytes_of("alpha"), {}, bytes_of("a much longer record payload"),
      {0x00, 0xFF, 0x7F, 0x80}};
  for (const auto& p : payloads) writer.append(p);
  EXPECT_EQ(writer.record_count(), payloads.size());

  RecordReader reader(writer.bytes());
  for (const auto& expect : payloads) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(std::vector<std::uint8_t>(got->begin(), got->end()), expect);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), payloads.size());
}

TEST(Records, EmptyStreamHasHeaderOnly) {
  RecordWriter writer;
  RecordReader reader(writer.bytes());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Records, BadMagicThrows) {
  RecordWriter writer;
  writer.append(bytes_of("x"));
  auto bytes = writer.bytes();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(RecordReader reader{bytes}, std::runtime_error);
}

TEST(Records, BadVersionThrows) {
  RecordWriter writer;
  auto bytes = writer.bytes();
  bytes[4] += 1;
  EXPECT_THROW(RecordReader reader{bytes}, std::runtime_error);
}

// Systematic truncation: every proper prefix of a multi-record stream
// must either parse a clean prefix of the records or throw — never read
// past the buffer (ASan-checked via the sanitizer stress build) and
// never return a corrupted payload.
TEST(Records, EveryTruncationDetected) {
  RecordWriter writer;
  writer.append(bytes_of("first record"));
  writer.append(bytes_of("second, longer record payload"));
  const auto& full = writer.bytes();

  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> trunc(full.begin(),
                                    full.begin() + static_cast<long>(cut));
    std::size_t complete = 0;
    try {
      RecordReader reader(trunc);
      while (reader.next().has_value()) ++complete;
      // A clean stop is only legal at an exact record boundary.
      EXPECT_TRUE(complete <= 2);
    } catch (const std::runtime_error&) {
      // Detected truncation: fine at any cut.
    }
  }
}

// Every single-bit flip anywhere in the stream must surface as a parse
// error or a CRC mismatch — except flips confined to a record length
// prefix that still describes a shorter valid frame, which the CRC then
// catches, so *some* exception is always raised or payloads stay intact.
TEST(Records, BitFlipsNeverYieldSilentlyCorruptPayloads) {
  RecordWriter writer;
  writer.append(bytes_of("payload-zero"));
  writer.append(bytes_of("payload-one"));
  const auto& full = writer.bytes();
  const std::vector<std::vector<std::uint8_t>> originals = {
      bytes_of("payload-zero"), bytes_of("payload-one")};

  for (std::size_t byte = 0; byte < full.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = full;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        RecordReader reader(flipped);
        std::size_t i = 0;
        while (const auto rec = reader.next()) {
          ASSERT_LT(i, originals.size());
          // Any record that *does* parse must be byte-identical to the
          // original — the CRC leaves no room for silent corruption.
          EXPECT_EQ(std::vector<std::uint8_t>(rec->begin(), rec->end()),
                    originals[i]);
          ++i;
        }
      } catch (const std::runtime_error&) {
        // Detected corruption — the expected outcome for most flips.
      }
    }
  }
}

TEST(Records, HugeLengthPrefixThrowsInsteadOfAllocating) {
  RecordWriter writer;
  writer.append(bytes_of("tiny"));
  auto bytes = writer.bytes();
  // Overwrite the u64 length prefix (starts right after the 8-byte
  // header) with an absurd value.
  for (std::size_t i = 8; i < 16; ++i) bytes[i] = 0xFF;
  RecordReader reader(bytes);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST(Records, FileRoundTrip) {
  const std::string path = scratch_path("pfdrl_records_roundtrip.bin");
  RecordWriter writer;
  writer.append(bytes_of("on-disk record"));
  writer.write_file(path);

  const auto bytes = read_file(path);
  RecordReader reader(bytes);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(std::string(rec->begin(), rec->end()), "on-disk record");
  std::remove(path.c_str());
}

TEST(Records, AtomicWriteReplacesExistingFile) {
  const std::string path = scratch_path("pfdrl_records_replace.bin");
  atomic_write_file(path, bytes_of("old contents"));
  atomic_write_file(path, bytes_of("new"));
  const auto bytes = read_file(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "new");
  // The staging temp must not linger after a successful rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Records, AtomicWriteToBadDirectoryThrowsAndLeavesNoTemp) {
  const std::string path = "/nonexistent-dir-pfdrl/out.bin";
  EXPECT_THROW(atomic_write_file(path, bytes_of("x")), std::runtime_error);
}

TEST(Records, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(scratch_path("pfdrl_records_missing.bin")),
               std::runtime_error);
}

}  // namespace
}  // namespace pfdrl::util
