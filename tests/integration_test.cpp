// Cross-module integration tests: the full PFDRL stack on small
// scenarios, checkpointing through the serializer, and the qualitative
// claims the benchmarks rely on.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "ems/env.hpp"
#include "fl/dfl.hpp"
#include "nn/serialize.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl {
namespace {

TEST(Integration, PfdrlEndToEndSavesMostStandbyEnergy) {
  auto sc_cfg = sim::tiny_scenario(42);
  sc_cfg.trace.days = 4;
  sc_cfg.neighborhood.num_households = 3;
  const auto scenario = sim::Scenario::generate(sc_cfg);

  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
  cfg.forecast_method = forecast::Method::kLr;
  core::EmsPipeline pipeline(scenario.traces, cfg);

  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 3 * day);

  const auto results = pipeline.evaluate(3 * day, 4 * day);
  double saved = 0.0;
  double standby = 0.0;
  double violations = 0.0;
  for (const auto& r : results) {
    saved += std::max(0.0, r.net_saved_kwh());
    standby += r.standby_kwh;
    violations += static_cast<double>(r.comfort_violations);
  }
  ASSERT_GT(standby, 0.0);
  // The headline behaviour: the learned policy reclaims most of the
  // actionable standby energy with few interruptions.
  EXPECT_GT(saved / standby, 0.6);
  EXPECT_LT(violations / static_cast<double>(results.size()), 40.0);
}

TEST(Integration, DflForecastBeatsUntrainedEverywhere) {
  auto sc_cfg = sim::tiny_scenario(7);
  sc_cfg.trace.days = 3;
  sc_cfg.neighborhood.num_households = 3;
  const auto scenario = sim::Scenario::generate(sc_cfg);

  fl::DflConfig dc;
  dc.method = forecast::Method::kBp;
  dc.window.window = 8;
  dc.window.horizon = 5;
  dc.train.epochs = 6;
  fl::DflTrainer trained(scenario.traces, dc);
  trained.run(0, 2 * data::kMinutesPerDay);

  fl::DflTrainer untrained(scenario.traces, dc);

  const std::size_t eval_begin = 2 * data::kMinutesPerDay;
  const auto acc_trained =
      trained.per_agent_accuracy(eval_begin, scenario.minutes());
  const auto acc_untrained =
      untrained.per_agent_accuracy(eval_begin, scenario.minutes());
  for (std::size_t h = 0; h < acc_trained.size(); ++h) {
    EXPECT_GT(acc_trained[h], acc_untrained[h]) << "home " << h;
  }
}

TEST(Integration, DqnCheckpointRestoresGreedyPolicy) {
  auto sc_cfg = sim::tiny_scenario(11);
  sc_cfg.trace.days = 2;
  const auto scenario = sim::Scenario::generate(sc_cfg);

  auto cfg = sim::fast_pipeline(core::EmsMethod::kLocal, 11);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.dqn.hidden = {12, 12};
  core::EmsPipeline pipeline(scenario.traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  // Find an actionable device and checkpoint its agent through the
  // serializer.
  const rl::DqnAgent* agent = nullptr;
  for (std::size_t d = 0; d < scenario.traces[0].devices.size(); ++d) {
    if (!scenario.traces[0].devices[d].spec.protected_device) {
      agent = &pipeline.agent(0, d);
      break;
    }
  }
  ASSERT_NE(agent, nullptr);

  nn::Checkpoint ckpt;
  ckpt.signature = "dqn:test";
  const auto params = agent->network().parameters();
  ckpt.parameters.assign(params.begin(), params.end());
  const auto bytes = nn::serialize_checkpoint(ckpt);
  const auto restored_ckpt = nn::deserialize_checkpoint(bytes);

  rl::DqnConfig qc = cfg.dqn;
  qc.state_dim = ems::EmsEnvironment::kStateDim;
  qc.num_actions = ems::kNumActions;
  rl::DqnAgent restored(qc);
  restored.set_network_parameters(restored_ckpt.parameters);

  // Greedy actions must match on arbitrary states.
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> state(ems::EmsEnvironment::kStateDim);
    for (double& s : state) s = rng.uniform();
    ASSERT_EQ(agent->act_greedy(state), restored.act_greedy(state));
  }
}

TEST(Integration, FederatedForecastersShareKnowledgeAcrossHomes) {
  // A data-poor home benefits from a data-rich peer with the same device
  // type: after DFL rounds their models coincide, so the poor home's
  // accuracy equals the aggregate's.
  auto sc_cfg = sim::tiny_scenario(13);
  sc_cfg.trace.days = 2;
  sc_cfg.neighborhood.num_households = 4;
  const auto scenario = sim::Scenario::generate(sc_cfg);

  fl::DflConfig dc;
  dc.method = forecast::Method::kLr;
  dc.window.window = 8;
  dc.window.horizon = 5;
  fl::DflTrainer trainer(scenario.traces, dc);
  trainer.run(0, data::kMinutesPerDay);

  // Every pair of homologous models is bitwise equal after aggregation.
  for (std::size_t h1 = 0; h1 < scenario.traces.size(); ++h1) {
    for (std::size_t d1 = 0; d1 < scenario.traces[h1].devices.size(); ++d1) {
      for (std::size_t h2 = h1 + 1; h2 < scenario.traces.size(); ++h2) {
        for (std::size_t d2 = 0; d2 < scenario.traces[h2].devices.size();
             ++d2) {
          if (scenario.traces[h1].devices[d1].spec.type !=
              scenario.traces[h2].devices[d2].spec.type) {
            continue;
          }
          const auto p1 = trainer.forecaster(h1, d1).parameters();
          const auto p2 = trainer.forecaster(h2, d2).parameters();
          for (std::size_t i = 0; i < p1.size(); ++i) {
            ASSERT_NEAR(p1[i], p2[i], 1e-12);
          }
        }
      }
    }
  }
}

TEST(Integration, MonetarySavingsTrackEnergySavings) {
  auto sc_cfg = sim::tiny_scenario(17);
  sc_cfg.trace.days = 3;
  const auto scenario = sim::Scenario::generate(sc_cfg);
  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 17);
  cfg.forecast_method = forecast::Method::kLr;
  core::EmsPipeline pipeline(scenario.traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  const data::FixedTariff tariff(11.67);
  const auto dollars =
      pipeline.evaluate_savings_dollars(2 * day, 3 * day, tariff, 0);
  const auto results = pipeline.evaluate(2 * day, 3 * day);
  for (std::size_t h = 0; h < dollars.size(); ++h) {
    // Fixed tariff: dollars = gross saved kWh * rate / 100.
    EXPECT_NEAR(dollars[h], results[h].saved_kwh * 11.67 / 100.0, 1e-9);
  }
}

TEST(Integration, TrainedPolicyBeatsRandomPolicy) {
  auto sc_cfg = sim::tiny_scenario(19);
  sc_cfg.trace.days = 3;
  const auto scenario = sim::Scenario::generate(sc_cfg);
  auto cfg = sim::fast_pipeline(core::EmsMethod::kLocal, 19);
  cfg.forecast_method = forecast::Method::kLr;
  core::EmsPipeline pipeline(scenario.traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);
  const auto results = pipeline.evaluate(2 * day, 3 * day);

  // Random policy baseline on the same spans.
  util::Rng rng(3);
  double random_reward = 0.0;
  double trained_reward = 0.0;
  for (std::size_t h = 0; h < scenario.traces.size(); ++h) {
    trained_reward += results[h].total_reward;
    for (std::size_t d = 0; d < scenario.traces[h].devices.size(); ++d) {
      if (scenario.traces[h].devices[d].spec.protected_device) continue;
      ems::EmsEnvironment env(
          scenario.traces[h].devices[d],
          std::vector<double>(day,
                              scenario.traces[h].devices[d].spec.standby_watts),
          2 * day);
      std::vector<int> actions(env.length());
      for (auto& a : actions) a = static_cast<int>(rng.uniform_int(0, 2));
      random_reward += ems::score_actions(env, actions).total_reward;
    }
  }
  EXPECT_GT(trained_reward, random_reward);
}

}  // namespace
}  // namespace pfdrl
