// Bitwise equivalence of the fused cross-home training path against the
// per-home reference, plus the steady-state zero-alloc pin for the fused
// assembly (docs/fused_training.md). These tests are the determinism
// contract: fused and per-home training must be interchangeable down to
// the last bit, so every EXPECT below compares doubles with EXPECT_EQ.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "nn/fused.hpp"
#include "nn/gru.hpp"
#include "nn/kernels.hpp"
#include "nn/lstm.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/workspace.hpp"
#include "util/rng.hpp"

namespace {

using pfdrl::nn::Activation;
using pfdrl::nn::Adam;
using pfdrl::nn::FusedGru;
using pfdrl::nn::FusedLstm;
using pfdrl::nn::FusedMlp;
using pfdrl::nn::FusedSlice;
using pfdrl::nn::GruRegressor;
using pfdrl::nn::InitScheme;
using pfdrl::nn::LossKind;
using pfdrl::nn::LstmRegressor;
using pfdrl::nn::Matrix;
using pfdrl::nn::Mlp;
using pfdrl::util::Rng;

void fill_random(Matrix& m, Rng& rng) {
  for (double& v : m.data()) v = rng.uniform(-1.0, 1.0);
}

/// Home-major slab + slice table from per-home batches.
struct Slab {
  std::vector<FusedSlice> slices;
  std::size_t total_rows = 0;
};

Slab make_slices(const std::vector<std::size_t>& batch_sizes) {
  Slab s;
  for (std::size_t bs : batch_sizes) {
    s.slices.push_back({s.total_rows, bs});
    s.total_rows += bs;
  }
  return s;
}

void copy_rows(const Matrix& src, Matrix& dst, std::size_t dst_begin) {
  for (std::size_t r = 0; r < src.rows(); ++r) {
    for (std::size_t c = 0; c < src.cols(); ++c) {
      dst(dst_begin + r, c) = src(r, c);
    }
  }
}

void expect_bitwise_equal(std::span<const double> a, std::span<const double> b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " diverges at flat index " << i;
  }
}

constexpr std::size_t kF = 3;     // features per step
constexpr std::size_t kH = 10;    // hidden width (exercises j-tile tails)
constexpr std::size_t kT = 5;     // sequence length
constexpr std::size_t kRounds = 4;
// Mixed batch sizes: multiples of the row block, remainders, and a
// batch-1 member (the per-home matvec1 dispatch case for the MLP).
const std::vector<std::size_t> kBatches = {5, 8, 1, 4, 7};

TEST(NnFused, LstmBitwiseMatchesPerHome) {
  Rng rng(1234);
  const std::size_t members = kBatches.size();
  std::vector<LstmRegressor> base;
  base.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    Rng init = rng.fork(100 + i);
    base.emplace_back(kF, kH, 1, init);
  }
  std::vector<LstmRegressor> solo = base;  // per-home reference copies

  const Slab slab = make_slices(kBatches);
  FusedLstm fused;
  std::vector<Adam> fused_opts(members, Adam(3e-3));
  std::vector<Adam> solo_opts(members, Adam(3e-3));

  for (std::size_t round = 0; round < kRounds; ++round) {
    // Per-home batches and the fused slab built from the same data.
    std::vector<std::vector<Matrix>> xs(members);
    std::vector<Matrix> ys(members);
    std::vector<Matrix> slab_xs(kT);
    Matrix slab_y(slab.total_rows, 1);
    for (Matrix& m : slab_xs) m = Matrix(slab.total_rows, kF);
    for (std::size_t i = 0; i < members; ++i) {
      xs[i].resize(kT);
      for (std::size_t t = 0; t < kT; ++t) {
        xs[i][t] = Matrix(kBatches[i], kF);
        fill_random(xs[i][t], rng);
        copy_rows(xs[i][t], slab_xs[t], slab.slices[i].row_begin);
      }
      ys[i] = Matrix(kBatches[i], 1);
      fill_random(ys[i], rng);
      copy_rows(ys[i], slab_y, slab.slices[i].row_begin);
    }

    std::vector<double> solo_losses(members);
    for (std::size_t i = 0; i < members; ++i) {
      solo_losses[i] =
          solo[i].train_batch(xs[i], ys[i], LossKind::kMae, solo_opts[i]);
    }

    std::vector<LstmRegressor*> nets;
    std::vector<pfdrl::nn::Optimizer*> opts;
    std::vector<const Matrix*> xs_ptrs;
    for (std::size_t i = 0; i < members; ++i) {
      nets.push_back(&base[i]);
      opts.push_back(&fused_opts[i]);
    }
    for (const Matrix& m : slab_xs) xs_ptrs.push_back(&m);
    std::vector<double> fused_losses(members);
    fused.train_batch(nets, slab.slices, xs_ptrs, slab_y, LossKind::kMae,
                      opts, fused_losses);

    for (std::size_t i = 0; i < members; ++i) {
      ASSERT_EQ(fused_losses[i], solo_losses[i]) << "round " << round;
      expect_bitwise_equal(base[i].parameters(), solo[i].parameters(),
                           "lstm params");
    }
  }
}

TEST(NnFused, GruBitwiseMatchesPerHome) {
  Rng rng(987);
  const std::size_t members = kBatches.size();
  std::vector<GruRegressor> base;
  base.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    Rng init = rng.fork(200 + i);
    base.emplace_back(kF, kH, 1, init);
  }
  std::vector<GruRegressor> solo = base;

  const Slab slab = make_slices(kBatches);
  FusedGru fused;
  std::vector<Adam> fused_opts(members, Adam(3e-3));
  std::vector<Adam> solo_opts(members, Adam(3e-3));

  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<std::vector<Matrix>> xs(members);
    std::vector<Matrix> ys(members);
    std::vector<Matrix> slab_xs(kT);
    Matrix slab_y(slab.total_rows, 1);
    for (Matrix& m : slab_xs) m = Matrix(slab.total_rows, kF);
    for (std::size_t i = 0; i < members; ++i) {
      xs[i].resize(kT);
      for (std::size_t t = 0; t < kT; ++t) {
        xs[i][t] = Matrix(kBatches[i], kF);
        fill_random(xs[i][t], rng);
        copy_rows(xs[i][t], slab_xs[t], slab.slices[i].row_begin);
      }
      ys[i] = Matrix(kBatches[i], 1);
      fill_random(ys[i], rng);
      copy_rows(ys[i], slab_y, slab.slices[i].row_begin);
    }

    std::vector<double> solo_losses(members);
    for (std::size_t i = 0; i < members; ++i) {
      solo_losses[i] =
          solo[i].train_batch(xs[i], ys[i], LossKind::kMae, solo_opts[i]);
    }

    std::vector<GruRegressor*> nets;
    std::vector<pfdrl::nn::Optimizer*> opts;
    std::vector<const Matrix*> xs_ptrs;
    for (std::size_t i = 0; i < members; ++i) {
      nets.push_back(&base[i]);
      opts.push_back(&fused_opts[i]);
    }
    for (const Matrix& m : slab_xs) xs_ptrs.push_back(&m);
    std::vector<double> fused_losses(members);
    fused.train_batch(nets, slab.slices, xs_ptrs, slab_y, LossKind::kMae,
                      opts, fused_losses);

    for (std::size_t i = 0; i < members; ++i) {
      ASSERT_EQ(fused_losses[i], solo_losses[i]) << "round " << round;
      expect_bitwise_equal(base[i].parameters(), solo[i].parameters(),
                           "gru params");
    }
  }
}

TEST(NnFused, MlpBitwiseMatchesPerHome) {
  Rng rng(555);
  const std::size_t members = kBatches.size();
  const std::vector<std::size_t> dims = {4, 12, 9, 2};
  std::vector<Mlp> base;
  base.reserve(members);
  for (std::size_t i = 0; i < members; ++i) {
    Rng init = rng.fork(300 + i);
    base.emplace_back(dims, Activation::kRelu, Activation::kIdentity,
                      InitScheme::kHeNormal, init);
  }
  std::vector<Mlp> solo = base;

  const Slab slab = make_slices(kBatches);
  FusedMlp fused;
  std::vector<Adam> fused_opts(members, Adam(1e-3));
  std::vector<Adam> solo_opts(members, Adam(1e-3));

  for (std::size_t round = 0; round < kRounds; ++round) {
    std::vector<Matrix> xs(members), ys(members);
    Matrix slab_x(slab.total_rows, dims.front());
    Matrix slab_y(slab.total_rows, dims.back());
    for (std::size_t i = 0; i < members; ++i) {
      xs[i] = Matrix(kBatches[i], dims.front());
      ys[i] = Matrix(kBatches[i], dims.back());
      fill_random(xs[i], rng);
      fill_random(ys[i], rng);
      copy_rows(xs[i], slab_x, slab.slices[i].row_begin);
      copy_rows(ys[i], slab_y, slab.slices[i].row_begin);
    }

    std::vector<double> solo_losses(members);
    for (std::size_t i = 0; i < members; ++i) {
      solo_losses[i] =
          solo[i].train_batch(xs[i], ys[i], LossKind::kHuber, solo_opts[i]);
    }

    std::vector<Mlp*> nets;
    std::vector<pfdrl::nn::Optimizer*> opts;
    for (std::size_t i = 0; i < members; ++i) {
      nets.push_back(&base[i]);
      opts.push_back(&fused_opts[i]);
    }
    std::vector<double> fused_losses(members);
    fused.train_batch(nets, slab.slices, slab_x, slab_y, LossKind::kHuber,
                      opts, fused_losses);

    for (std::size_t i = 0; i < members; ++i) {
      ASSERT_EQ(fused_losses[i], solo_losses[i]) << "round " << round;
      expect_bitwise_equal(base[i].parameters(), solo[i].parameters(),
                           "mlp params");
    }
  }
}

TEST(NnFused, SliceTableMustTileTheSlab) {
  Rng rng(77);
  Rng i0 = rng.fork(0);
  Rng i1 = rng.fork(1);
  std::vector<Mlp> nets_store;
  nets_store.emplace_back(std::vector<std::size_t>{2, 4, 1}, Activation::kRelu,
                          Activation::kIdentity, InitScheme::kHeNormal, i0);
  nets_store.emplace_back(std::vector<std::size_t>{2, 4, 1}, Activation::kRelu,
                          Activation::kIdentity, InitScheme::kHeNormal, i1);
  std::vector<Mlp*> nets = {&nets_store[0], &nets_store[1]};
  Matrix x(6, 2);
  fill_random(x, rng);
  FusedMlp fused;
  // Gap between slices.
  std::vector<FusedSlice> gap = {{0, 2}, {3, 3}};
  EXPECT_THROW(fused.forward(nets, gap, x), std::invalid_argument);
  // Short coverage is a legal epoch-arena prefix batch (rows [0, 4) of
  // the 6-row source), not an error.
  std::vector<FusedSlice> short_cover = {{0, 2}, {2, 2}};
  EXPECT_NO_THROW(fused.forward(nets, short_cover, x));
  // But the batch may never reach past the source rows, with or without
  // an arena offset.
  std::vector<FusedSlice> over = {{0, 4}, {4, 3}};
  EXPECT_THROW(fused.forward(nets, over, x), std::invalid_argument);
  EXPECT_THROW(fused.forward(nets, short_cover, x, /*src_row0=*/3),
               std::invalid_argument);
}

TEST(NnFused, SteadyStateFusedBatchesAllocateNothing) {
  Rng rng(42);
  const std::size_t members = 6;
  const std::size_t bs = 7;
  std::vector<LstmRegressor> nets_store;
  nets_store.reserve(members);
  std::vector<Adam> opts_store(members, Adam(3e-3));
  for (std::size_t i = 0; i < members; ++i) {
    Rng init = rng.fork(i);
    nets_store.emplace_back(kF, kH, 1, init);
  }
  std::vector<FusedSlice> slices;
  for (std::size_t i = 0; i < members; ++i) slices.push_back({i * bs, bs});
  const std::size_t rows = members * bs;

  std::vector<Matrix> slab_xs(kT);
  for (Matrix& m : slab_xs) {
    m = Matrix(rows, kF);
    fill_random(m, rng);
  }
  Matrix slab_y(rows, 1);
  fill_random(slab_y, rng);

  std::vector<LstmRegressor*> nets;
  std::vector<pfdrl::nn::Optimizer*> opts;
  std::vector<const Matrix*> xs_ptrs;
  for (std::size_t i = 0; i < members; ++i) {
    nets.push_back(&nets_store[i]);
    opts.push_back(&opts_store[i]);
  }
  for (const Matrix& m : slab_xs) xs_ptrs.push_back(&m);
  std::vector<double> losses(members);

  FusedLstm fused;
  // Warm-up: slots, gradient arena, and Adam moments all grow here.
  fused.train_batch(nets, slices, xs_ptrs, slab_y, LossKind::kMae, opts,
                    losses);
  fused.train_batch(nets, slices, xs_ptrs, slab_y, LossKind::kMae, opts,
                    losses);

  const std::uint64_t before = pfdrl::nn::Workspace::total_allocations();
  for (int i = 0; i < 3; ++i) {
    fused.train_batch(nets, slices, xs_ptrs, slab_y, LossKind::kMae, opts,
                      losses);
  }
  EXPECT_EQ(pfdrl::nn::Workspace::total_allocations(), before)
      << "steady-state fused batches must not grow workspace slots";
}

TEST(NnFused, TelemetryCountsBatchesRowsAndMembers) {
  const std::uint64_t batches0 = pfdrl::nn::total_fused_batches();
  const std::uint64_t rows0 = pfdrl::nn::total_fused_rows();
  pfdrl::nn::note_fused_batch(3, 96);
  pfdrl::nn::note_fused_batch(11, 4);
  EXPECT_EQ(pfdrl::nn::total_fused_batches(), batches0 + 2);
  EXPECT_EQ(pfdrl::nn::total_fused_rows(), rows0 + 100);
  EXPECT_GE(pfdrl::nn::max_fused_members(), 11u);
}

}  // namespace
