// Warm-restart persistence tests (sim/snapshot.hpp).
//
// The two headline properties:
//   * Crash-resume golden: snapshot a run mid-training, restore into a
//     freshly constructed pipeline, finish the run — the final state is
//     bitwise identical to the uninterrupted run (agents, forecasters,
//     fault-RNG streams, deterministic metrics). Exercised under link
//     drops so the fault-RNG restore is load-bearing.
//   * Warm restart under a crash window: with a SnapshotManager
//     installed, a residence exiting a crash window reloads its last
//     pre-crash snapshot — its in-process learning during the outage is
//     lost, exactly like a real process crash. Without the manager the
//     original uplink-loss model (state survives) is unchanged.
//
// Plus the hostile-input guarantees: truncations and bit flips anywhere
// in a serialized snapshot must end in a clean std::runtime_error, and
// restoring into an incompatible pipeline must throw, never silently
// mix two runs.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <vector>

#include "core/pipeline.hpp"
#include "data/trace.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl {
namespace {

constexpr std::size_t kDay = data::kMinutesPerDay;
constexpr std::size_t kRoundMinutes = 240;  // gamma 4h -> 6 rounds/day

std::vector<data::HouseholdTrace> make_traces(std::uint64_t seed) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = seed;
  sc.trace.days = 2;
  sc.trace.seed = seed;
  return sim::Scenario::generate(sc).traces;
}

/// Small-but-complete PFDRL config: LR forecasters, genuine alpha split,
/// 4h DRL rounds, link drops so both buses consume fault randomness.
core::PipelineConfig make_config(obs::MetricsRegistry& reg,
                                 std::uint64_t seed = 42) {
  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, seed);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.dqn.hidden = {12, 12};
  cfg.alpha = 2;
  cfg.gamma_hours = 4.0;
  cfg.fault.link.drop_probability = 0.15;
  cfg.metrics = &reg;
  return cfg;
}

void expect_agents_equal(const sim::RunSnapshot& a, const sim::RunSnapshot& b) {
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    const auto& x = a.agents[i];
    const auto& y = b.agents[i];
    ASSERT_EQ(x.home, y.home);
    ASSERT_EQ(x.dev, y.dev);
    EXPECT_EQ(nn::parameter_digest(x.state.online_params),
              nn::parameter_digest(y.state.online_params))
        << "online params, home " << x.home << " dev " << x.dev;
    EXPECT_EQ(nn::parameter_digest(x.state.target_params),
              nn::parameter_digest(y.state.target_params))
        << "target params, home " << x.home << " dev " << x.dev;
    EXPECT_EQ(x.state.optimizer.t, y.state.optimizer.t);
    EXPECT_EQ(x.state.optimizer.m, y.state.optimizer.m);
    EXPECT_EQ(x.state.optimizer.v, y.state.optimizer.v);
    EXPECT_EQ(x.state.replay.total_pushed, y.state.replay.total_pushed);
    EXPECT_EQ(x.state.replay.next, y.state.replay.next);
    ASSERT_EQ(x.state.replay.entries.size(), y.state.replay.entries.size());
    EXPECT_EQ(x.state.rng.s, y.state.rng.s);
    EXPECT_EQ(x.state.rng.has_cached_normal, y.state.rng.has_cached_normal);
    EXPECT_EQ(x.state.act_steps, y.state.act_steps);
    EXPECT_EQ(x.state.learn_steps, y.state.learn_steps);
  }
}

void expect_runs_equal(const sim::RunSnapshot& a, const sim::RunSnapshot& b) {
  EXPECT_EQ(a.ems_rounds_done, b.ems_rounds_done);
  EXPECT_EQ(a.forecast_rounds_done, b.forecast_rounds_done);
  expect_agents_equal(a, b);
  ASSERT_EQ(a.forecasters.size(), b.forecasters.size());
  for (std::size_t i = 0; i < a.forecasters.size(); ++i) {
    EXPECT_EQ(nn::parameter_digest(a.forecasters[i].parameters),
              nn::parameter_digest(b.forecasters[i].parameters))
        << "forecaster " << i;
    EXPECT_EQ(a.forecasters[i].train_state, b.forecasters[i].train_state)
        << "forecaster " << i;
  }
  ASSERT_EQ(a.forecast_bus.present, b.forecast_bus.present);
  if (a.forecast_bus.present) {
    EXPECT_EQ(a.forecast_bus.fault_rng.s, b.forecast_bus.fault_rng.s);
    EXPECT_EQ(a.forecast_bus.stats.messages_sent,
              b.forecast_bus.stats.messages_sent);
    EXPECT_EQ(a.forecast_bus.stats.messages_dropped,
              b.forecast_bus.stats.messages_dropped);
  }
  ASSERT_EQ(a.drl_bus.present, b.drl_bus.present);
  if (a.drl_bus.present) {
    EXPECT_EQ(a.drl_bus.fault_rng.s, b.drl_bus.fault_rng.s);
    EXPECT_EQ(a.drl_bus.stats.messages_sent, b.drl_bus.stats.messages_sent);
    EXPECT_EQ(a.drl_bus.stats.messages_dropped,
              b.drl_bus.stats.messages_dropped);
  }
  // Deterministic instruments only — wall-time series are excluded.
  for (const char* key :
       {"ems.rounds", "ems.env_steps", "ems.replay_pushes",
        "ems.learn_calls"}) {
    const auto ia = a.metrics.counters.find(key);
    const auto ib = b.metrics.counters.find(key);
    ASSERT_NE(ia, a.metrics.counters.end()) << key;
    ASSERT_NE(ib, b.metrics.counters.end()) << key;
    EXPECT_EQ(ia->second, ib->second) << key;
  }
  const auto sa = a.metrics.series.find("ems.epsilon_series");
  const auto sb = b.metrics.series.find("ems.epsilon_series");
  ASSERT_NE(sa, a.metrics.series.end());
  ASSERT_NE(sb, b.metrics.series.end());
  EXPECT_EQ(sa->second, sb->second);
}

// The headline property: interrupt, serialize to disk, reload into a
// *fresh* pipeline, finish — bitwise identical to never stopping.
TEST(SimSnapshot, CrashResumeGoldenBitwise) {
  const auto traces = make_traces(42);

  // Uninterrupted reference run: 6 DRL rounds.
  obs::MetricsRegistry reg_a;
  core::EmsPipeline a(traces, make_config(reg_a));
  a.train_forecasters(0, kDay);
  a.train_ems(kDay, 2 * kDay);
  const sim::RunSnapshot final_a = sim::capture_run(a);

  // Interrupted run: 3 rounds, snapshot to disk, drop the process.
  const std::string path =
      (std::filesystem::temp_directory_path() / "pfdrl_resume_test.pfrc")
          .string();
  {
    obs::MetricsRegistry reg_b;
    core::EmsPipeline b(traces, make_config(reg_b));
    b.train_forecasters(0, kDay);
    b.train_ems(kDay, kDay + 3 * kRoundMinutes);
    sim::save_snapshot(sim::capture_run(b, kDay + 3 * kRoundMinutes), path);
  }

  // Fresh pipeline, fresh registry: restore and finish the run.
  obs::MetricsRegistry reg_c;
  core::EmsPipeline c(traces, make_config(reg_c));
  const sim::RunSnapshot snap = sim::load_snapshot(path);
  EXPECT_EQ(snap.ems_rounds_done, 3u);
  EXPECT_EQ(snap.train_cursor_minutes, kDay + 3 * kRoundMinutes);
  sim::restore_run(c, snap);
  c.train_ems(kDay + 3 * kRoundMinutes, 2 * kDay);
  const sim::RunSnapshot final_c = sim::capture_run(c);

  EXPECT_EQ(final_a.ems_rounds_done, 6u);
  expect_runs_equal(final_a, final_c);

  // And the downstream numbers agree too, not just the raw state.
  EXPECT_EQ(a.forecast_accuracy(kDay, 2 * kDay),
            c.forecast_accuracy(kDay, 2 * kDay));
  const auto ra = a.evaluate(kDay, 2 * kDay);
  const auto rc = c.evaluate(kDay, 2 * kDay);
  ASSERT_EQ(ra.size(), rc.size());
  for (std::size_t h = 0; h < ra.size(); ++h) {
    EXPECT_EQ(ra[h].total_reward, rc[h].total_reward) << "home " << h;
    EXPECT_EQ(ra[h].standby_kwh, rc[h].standby_kwh) << "home " << h;
  }
  std::remove(path.c_str());
}

// Serialize -> deserialize round-trips every field bitwise.
TEST(SimSnapshot, SerializeDeserializeRoundTrip) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  p.train_ems(kDay, kDay + kRoundMinutes);

  const sim::RunSnapshot snap = sim::capture_run(p, kDay + kRoundMinutes);
  const auto bytes = sim::serialize_snapshot(snap);
  const sim::RunSnapshot back = sim::deserialize_snapshot(bytes);

  EXPECT_EQ(back.seed, snap.seed);
  EXPECT_EQ(back.method, snap.method);
  EXPECT_EQ(back.num_homes, snap.num_homes);
  EXPECT_EQ(back.train_cursor_minutes, snap.train_cursor_minutes);
  EXPECT_EQ(back.cloud_backend, snap.cloud_backend);
  expect_runs_equal(snap, back);
  // Exact (not digest) equality of one agent's full payload.
  ASSERT_FALSE(snap.agents.empty());
  EXPECT_EQ(back.agents[0].state.online_params,
            snap.agents[0].state.online_params);
  ASSERT_EQ(back.agents[0].state.replay.entries.size(),
            snap.agents[0].state.replay.entries.size());
  for (std::size_t i = 0; i < snap.agents[0].state.replay.entries.size();
       ++i) {
    EXPECT_EQ(back.agents[0].state.replay.entries[i].state,
              snap.agents[0].state.replay.entries[i].state);
    EXPECT_EQ(back.agents[0].state.replay.entries[i].action,
              snap.agents[0].state.replay.entries[i].action);
  }
  EXPECT_EQ(back.metrics.counters, snap.metrics.counters);
  EXPECT_EQ(back.metrics.gauges, snap.metrics.gauges);
  EXPECT_EQ(back.metrics.series, snap.metrics.series);
}

// Codec-on crash-resume: with the wire codec enabled on both buses,
// restoring mid-run must resume the per-sender delta chains, not just
// the learning state. The proof is the wire-byte ledger: if restore
// dropped codec state the first post-resume round would re-keyframe and
// bytes_on_wire would diverge from the uninterrupted run.
TEST(SimSnapshot, CodecOnCrashResumeBitwiseIncludingWireBytes) {
  const auto traces = make_traces(42);

  obs::MetricsRegistry reg_a;
  auto cfg_a = make_config(reg_a);
  cfg_a.wire_codec = true;
  core::EmsPipeline a(traces, cfg_a);
  a.train_forecasters(0, kDay);
  a.train_ems(kDay, 2 * kDay);
  const sim::RunSnapshot final_a = sim::capture_run(a);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pfdrl_codec_resume.pfrc")
          .string();
  {
    obs::MetricsRegistry reg_b;
    auto cfg_b = make_config(reg_b);
    cfg_b.wire_codec = true;
    core::EmsPipeline b(traces, cfg_b);
    b.train_forecasters(0, kDay);
    b.train_ems(kDay, kDay + 3 * kRoundMinutes);
    const sim::RunSnapshot snap = sim::capture_run(b, kDay + 3 * kRoundMinutes);
    // The snapshot actually carries codec stream state on both buses —
    // otherwise this test would pass vacuously via forced keyframes.
    EXPECT_FALSE(snap.forecast_bus.codec.empty());
    EXPECT_FALSE(snap.drl_bus.codec.empty());
    sim::save_snapshot(snap, path);
  }

  obs::MetricsRegistry reg_c;
  auto cfg_c = make_config(reg_c);
  cfg_c.wire_codec = true;
  core::EmsPipeline c(traces, cfg_c);
  sim::restore_run(c, sim::load_snapshot(path));
  c.train_ems(kDay + 3 * kRoundMinutes, 2 * kDay);
  const sim::RunSnapshot final_c = sim::capture_run(c);

  expect_runs_equal(final_a, final_c);
  // Wire accounting agrees exactly: resumed delta chains produced the
  // same frame sizes as the uninterrupted run, and the codec actually
  // compressed (wire < logical) so the equality is not trivial.
  EXPECT_EQ(final_a.drl_bus.stats.bytes_on_wire,
            final_c.drl_bus.stats.bytes_on_wire);
  EXPECT_EQ(final_a.drl_bus.stats.logical_bytes,
            final_c.drl_bus.stats.logical_bytes);
  EXPECT_EQ(final_a.forecast_bus.stats.bytes_on_wire,
            final_c.forecast_bus.stats.bytes_on_wire);
  EXPECT_LT(final_a.drl_bus.stats.bytes_on_wire,
            final_a.drl_bus.stats.logical_bytes);
  std::remove(path.c_str());
}

// Codec stream state round-trips through serialize/deserialize bitwise:
// every (sender, kind, device_type) key and the full prev/err vectors.
TEST(SimSnapshot, CodecStateSerializesBitwise) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  auto cfg = make_config(reg, 7);
  cfg.wire_codec = true;
  core::EmsPipeline p(traces, cfg);
  p.train_forecasters(0, kDay);
  p.train_ems(kDay, kDay + 2 * kRoundMinutes);

  const sim::RunSnapshot snap = sim::capture_run(p, kDay + 2 * kRoundMinutes);
  ASSERT_FALSE(snap.drl_bus.codec.empty());
  const auto bytes = sim::serialize_snapshot(snap);
  const sim::RunSnapshot back = sim::deserialize_snapshot(bytes);

  for (const auto* pair :
       {&snap.forecast_bus, &snap.drl_bus}) {
    const auto& restored =
        (pair == &snap.forecast_bus) ? back.forecast_bus : back.drl_bus;
    ASSERT_EQ(restored.codec.size(), pair->codec.size());
    for (std::size_t i = 0; i < pair->codec.size(); ++i) {
      const auto& s = pair->codec[i];
      const auto& r = restored.codec[i];
      EXPECT_EQ(r.sender, s.sender);
      EXPECT_EQ(r.kind, s.kind);
      EXPECT_EQ(r.device_type, s.device_type);
      EXPECT_EQ(r.prev, s.prev);  // bitwise: == on identical doubles
      EXPECT_EQ(r.err, s.err);
    }
  }
}

// Restoring into the wrong pipeline must throw, never mix two runs.
TEST(SimSnapshot, RestoreRejectsIncompatiblePipeline) {
  const auto traces = make_traces(42);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 42));
  p.train_forecasters(0, kDay);
  sim::RunSnapshot snap = sim::capture_run(p);

  {  // different seed
    obs::MetricsRegistry r2;
    core::EmsPipeline other(traces, make_config(r2, 43));
    EXPECT_THROW(sim::restore_run(other, snap), std::runtime_error);
  }
  {  // different method
    obs::MetricsRegistry r2;
    auto cfg = make_config(r2, 42);
    cfg.method = core::EmsMethod::kFrl;
    core::EmsPipeline other(traces, cfg);
    EXPECT_THROW(sim::restore_run(other, snap), std::runtime_error);
  }
  {  // tampered home count
    sim::RunSnapshot bad = snap;
    bad.num_homes = 99;
    EXPECT_THROW(sim::restore_run(p, bad), std::runtime_error);
  }
}

// Hostile-input sweeps: every truncation and every sampled bit flip must
// end in a clean throw — no OOB reads (ASan job), no silent acceptance.
TEST(SimSnapshot, TruncationAlwaysThrows) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  const auto bytes = sim::serialize_snapshot(sim::capture_run(p));
  ASSERT_GT(bytes.size(), 400u);

  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 200 ? 1 : 97)) {
    const std::vector<std::uint8_t> trunc(bytes.begin(),
                                          bytes.begin() + cut);
    EXPECT_THROW((void)sim::deserialize_snapshot(trunc), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(SimSnapshot, BitFlipAlwaysThrows) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  const auto bytes = sim::serialize_snapshot(sim::capture_run(p));

  for (std::size_t pos = 0; pos < bytes.size(); pos += 101) {
    auto corrupt = bytes;
    corrupt[pos] ^= 0x40;
    EXPECT_THROW((void)sim::deserialize_snapshot(corrupt),
                 std::runtime_error)
        << "flip at " << pos;
  }
}

namespace {
std::uint64_t home_pushes(const core::EmsPipeline& p, std::size_t home) {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d < p.num_devices(home); ++d) {
    if (const auto* agent = p.agent_ptr(home, d)) {
      total += agent->replay().total_pushed();
    }
  }
  return total;
}
}  // namespace

// Warm restart under a crash window. Residence 1 crashes for DRL rounds
// [1,3). With a per-round SnapshotManager, when it comes back at round 3
// it reloads its last pre-crash snapshot (end of round 0) — so of the 6
// rounds it only keeps 4 rounds of replay pushes (round 0 + rounds 3-5).
// Without the manager the original uplink-loss model holds: in-process
// state survives the outage and all 6 rounds of pushes remain.
TEST(SimSnapshot, CrashedHomeWarmRestartsFromLastSnapshot) {
  const auto traces = make_traces(42);
  const auto with_crash = [&](obs::MetricsRegistry& reg) {
    auto cfg = make_config(reg);
    cfg.robustness.failures.crashes.push_back(
        {.agent = 1, .from_round = 1, .until_round = 3});
    return cfg;
  };

  obs::MetricsRegistry reg_base;
  core::EmsPipeline baseline(traces, with_crash(reg_base));
  baseline.train_forecasters(0, kDay);
  baseline.train_ems(kDay, 2 * kDay);

  obs::MetricsRegistry reg_warm;
  core::EmsPipeline warm(traces, with_crash(reg_warm));
  warm.train_forecasters(0, kDay);
  sim::SnapshotManager::Options so;
  so.every_rounds = 1;  // in-memory only: path stays empty
  so.train_begin_minute = kDay;
  so.train_end_minute = 2 * kDay;
  sim::SnapshotManager manager(warm, so);
  warm.train_ems(kDay, 2 * kDay);

  EXPECT_EQ(manager.saves(), 6u);
  EXPECT_EQ(manager.home_restarts(), 1u);
  ASSERT_NE(manager.last(), nullptr);

  // Home 1: warm restart rolled its replay back to the end-of-round-0
  // snapshot before rounds 3-5 ran -> 4 rounds of pushes vs 6.
  const std::uint64_t base1 = home_pushes(baseline, 1);
  const std::uint64_t warm1 = home_pushes(warm, 1);
  ASSERT_GT(base1, 0u);
  EXPECT_EQ(warm1 * 6, base1 * 4);

  // Homes that never crashed are untouched by the manager.
  EXPECT_EQ(home_pushes(warm, 0), home_pushes(baseline, 0));
  EXPECT_EQ(home_pushes(warm, 2), home_pushes(baseline, 2));
}

// SnapshotManager periodic file saves: the file on disk always holds the
// latest snapshot and reloads bitwise.
TEST(SimSnapshot, ManagerWritesLoadableFiles) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);

  const std::string path =
      (std::filesystem::temp_directory_path() / "pfdrl_mgr_test.pfrc")
          .string();
  sim::SnapshotManager::Options so;
  so.path = path;
  so.every_rounds = 2;  // saves after rounds 2, 4, 6
  so.train_begin_minute = kDay;
  so.train_end_minute = 2 * kDay;
  sim::SnapshotManager manager(p, so);
  p.train_ems(kDay, 2 * kDay);

  EXPECT_EQ(manager.saves(), 3u);
  ASSERT_NE(manager.last(), nullptr);
  const sim::RunSnapshot from_disk = sim::load_snapshot(path);
  EXPECT_EQ(from_disk.ems_rounds_done, manager.last()->ems_rounds_done);
  EXPECT_EQ(from_disk.ems_rounds_done, 6u);
  expect_runs_equal(*manager.last(), from_disk);
  std::remove(path.c_str());
}

// --- Per-shard snapshots ----------------------------------------------

// split -> merge reproduces the whole-run snapshot byte-for-byte, the
// property the sharded save path rests on.
TEST(SimShardSnapshot, SplitMergeRoundTripsByteIdentical) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  p.train_ems(kDay, kDay + kRoundMinutes);
  const sim::RunSnapshot snap = sim::capture_run(p, kDay + kRoundMinutes);

  const auto plan = sim::ShardPlan::make(snap.num_homes, 2);
  const auto parts = sim::split_shards(snap, plan);
  ASSERT_EQ(parts.size(), 2u);

  // Shard identity stamped; agents bucketed by the plan; global state
  // (buses, metrics, upload accounting) rides shard 0 only.
  for (std::size_t k = 0; k < parts.size(); ++k) {
    EXPECT_EQ(parts[k].shard_index, k);
    EXPECT_EQ(parts[k].shard_count, 2u);
    EXPECT_EQ(parts[k].seed, snap.seed);
    EXPECT_EQ(parts[k].num_homes, snap.num_homes);
    for (const auto& a : parts[k].agents) {
      EXPECT_EQ(plan.shard_of(a.home), k) << "home " << a.home;
    }
  }
  EXPECT_TRUE(parts[0].forecast_bus.present == snap.forecast_bus.present);
  EXPECT_FALSE(parts[1].forecast_bus.present);
  EXPECT_FALSE(parts[1].drl_bus.present);
  EXPECT_TRUE(parts[1].metrics.counters.empty());

  const sim::RunSnapshot merged = sim::merge_shards(parts);
  EXPECT_EQ(sim::serialize_snapshot(merged), sim::serialize_snapshot(snap));

  // Merge accepts the parts in any order.
  std::vector<sim::RunSnapshot> reversed = {parts[1], parts[0]};
  EXPECT_EQ(sim::serialize_snapshot(sim::merge_shards(reversed)),
            sim::serialize_snapshot(snap));
}

// Per-shard files on disk: save writes base.shard<k>, load merges them
// back to the original snapshot.
TEST(SimShardSnapshot, ShardedSaveLoadRoundTrip) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  const sim::RunSnapshot snap = sim::capture_run(p);

  const std::string base =
      (std::filesystem::temp_directory_path() / "pfdrl_shard_test.pfrc")
          .string();
  const auto plan = sim::ShardPlan::make(snap.num_homes, 3);
  sim::save_sharded_snapshot(snap, base, plan);
  for (std::size_t k = 0; k < plan.shards; ++k) {
    EXPECT_TRUE(
        std::filesystem::exists(sim::shard_snapshot_path(base, k)))
        << "shard " << k;
  }

  const sim::RunSnapshot back = sim::load_sharded_snapshot(base);
  EXPECT_EQ(sim::serialize_snapshot(back), sim::serialize_snapshot(snap));

  // A missing shard file must fail the whole load, never a partial merge.
  std::remove(sim::shard_snapshot_path(base, 1).c_str());
  EXPECT_THROW((void)sim::load_sharded_snapshot(base), std::runtime_error);
  for (std::size_t k = 0; k < plan.shards; ++k) {
    std::remove(sim::shard_snapshot_path(base, k).c_str());
  }
}

TEST(SimShardSnapshot, SplitAndMergeValidateInputs) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  const sim::RunSnapshot snap = sim::capture_run(p);

  // Plan for a different population.
  EXPECT_THROW((void)sim::split_shards(
                   snap, sim::ShardPlan::make(snap.num_homes + 1, 2)),
               std::invalid_argument);

  auto parts = sim::split_shards(
      snap, sim::ShardPlan::make(snap.num_homes, 2));
  // Splitting an already-partial snapshot is refused.
  EXPECT_THROW((void)sim::split_shards(
                   parts[0], sim::ShardPlan::make(snap.num_homes, 2)),
               std::invalid_argument);

  // Duplicate shard index.
  std::vector<sim::RunSnapshot> dup = {parts[0], parts[0]};
  EXPECT_THROW((void)sim::merge_shards(dup), std::invalid_argument);
  // Wrong part count for the declared shard_count.
  std::vector<sim::RunSnapshot> missing = {parts[0]};
  EXPECT_THROW((void)sim::merge_shards(missing), std::invalid_argument);
  // Inconsistent headers across parts.
  std::vector<sim::RunSnapshot> skewed = parts;
  skewed[1].seed ^= 1;
  EXPECT_THROW((void)sim::merge_shards(skewed), std::invalid_argument);
}

// A version-2 stream round-trips the shard identity; hostile shard
// identities are rejected at deserialize time.
TEST(SimShardSnapshot, SerializedShardIdentityRoundTripsAndValidates) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);
  sim::RunSnapshot snap = sim::capture_run(p);
  snap.shard_index = 2;
  snap.shard_count = 5;

  const auto back = sim::deserialize_snapshot(sim::serialize_snapshot(snap));
  EXPECT_EQ(back.shard_index, 2u);
  EXPECT_EQ(back.shard_count, 5u);

  snap.shard_index = 5;  // out of range for shard_count = 5
  EXPECT_THROW(
      (void)sim::deserialize_snapshot(sim::serialize_snapshot(snap)),
      std::runtime_error);
}

// SnapshotManager with Options::shards >= 2 persists per-shard files
// whose merge equals its in-memory whole-run snapshot, and the sharded
// crash-resume matches the monolithic one bitwise.
TEST(SimShardSnapshot, ManagerWritesMergeableShardFiles) {
  const auto traces = make_traces(7);
  obs::MetricsRegistry reg;
  core::EmsPipeline p(traces, make_config(reg, 7));
  p.train_forecasters(0, kDay);

  const std::string base =
      (std::filesystem::temp_directory_path() / "pfdrl_mgr_shard.pfrc")
          .string();
  sim::SnapshotManager::Options so;
  so.path = base;
  so.every_rounds = 2;
  so.train_begin_minute = kDay;
  so.train_end_minute = 2 * kDay;
  so.shards = 2;
  sim::SnapshotManager manager(p, so);
  p.train_ems(kDay, 2 * kDay);

  EXPECT_EQ(manager.saves(), 3u);
  ASSERT_NE(manager.last(), nullptr);
  EXPECT_FALSE(std::filesystem::exists(base));  // no monolithic file
  const sim::RunSnapshot from_disk = sim::load_sharded_snapshot(base);
  EXPECT_EQ(from_disk.ems_rounds_done, 6u);
  expect_runs_equal(*manager.last(), from_disk);
  EXPECT_EQ(sim::serialize_snapshot(from_disk),
            sim::serialize_snapshot(*manager.last()));
  for (std::size_t k = 0; k < 2; ++k) {
    std::remove(sim::shard_snapshot_path(base, k).c_str());
  }
}

// End-to-end: interrupt a run, persist per-shard, resume from the merged
// shards in a fresh pipeline — bitwise identical to never stopping.
// (The sharded twin of CrashResumeGoldenBitwise.)
TEST(SimShardSnapshot, ShardedCrashResumeGoldenBitwise) {
  const auto traces = make_traces(42);

  obs::MetricsRegistry reg_a;
  core::EmsPipeline a(traces, make_config(reg_a));
  a.train_forecasters(0, kDay);
  a.train_ems(kDay, 2 * kDay);
  const sim::RunSnapshot final_a = sim::capture_run(a);

  const std::string base =
      (std::filesystem::temp_directory_path() / "pfdrl_shard_resume.pfrc")
          .string();
  {
    obs::MetricsRegistry reg_b;
    core::EmsPipeline b(traces, make_config(reg_b));
    b.train_forecasters(0, kDay);
    b.train_ems(kDay, kDay + 3 * kRoundMinutes);
    const auto snap = sim::capture_run(b, kDay + 3 * kRoundMinutes);
    sim::save_sharded_snapshot(
        snap, base, sim::ShardPlan::make(snap.num_homes, 2));
  }

  obs::MetricsRegistry reg_c;
  core::EmsPipeline c(traces, make_config(reg_c));
  const sim::RunSnapshot snap = sim::load_sharded_snapshot(base);
  EXPECT_EQ(snap.ems_rounds_done, 3u);
  EXPECT_EQ(snap.shard_count, 1u);  // merged back to whole-run identity
  sim::restore_run(c, snap);
  c.train_ems(kDay + 3 * kRoundMinutes, 2 * kDay);

  expect_runs_equal(final_a, sim::capture_run(c));
  for (std::size_t k = 0; k < 2; ++k) {
    std::remove(sim::shard_snapshot_path(base, k).c_str());
  }
}

}  // namespace
}  // namespace pfdrl
