#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pfdrl::data {
namespace {

DeviceTrace ramp_trace(std::size_t minutes) {
  // watts[m] = m, deterministic, modes all standby (irrelevant here).
  DeviceTrace trace;
  trace.spec.type = DeviceType::kTv;
  trace.spec.standby_watts = 5.0;
  trace.spec.on_watts = 100.0;
  trace.watts.resize(minutes);
  trace.modes.assign(minutes, DeviceMode::kStandby);
  for (std::size_t m = 0; m < minutes; ++m) {
    trace.watts[m] = static_cast<double>(m);
  }
  return trace;
}

TEST(EncodeDecode, LinearInverse) {
  for (double w : {0.0, 1.0, 5.5, 150.0}) {
    const double enc = encode_watts(w, 150.0, false);
    EXPECT_NEAR(decode_watts(enc, 150.0, false), w, 1e-9);
  }
}

TEST(EncodeDecode, LogInverse) {
  for (double w : {0.0, 0.5, 3.0, 42.0, 1800.0}) {
    const double enc = encode_watts(w, 2700.0, true);
    EXPECT_NEAR(decode_watts(enc, 2700.0, true), w, 1e-6 * (1 + w));
  }
}

TEST(EncodeDecode, LogSeparatesStandbyFromOff) {
  // The motivating property: in log scale standby sits well above off.
  const double scale = 150.0;
  const double off = encode_watts(0.0, scale, true);
  const double standby = encode_watts(5.0, scale, true);
  const double on = encode_watts(100.0, scale, true);
  EXPECT_EQ(off, 0.0);
  EXPECT_GT(standby, 0.25);
  EXPECT_GT(on, standby + 0.3);
}

TEST(EncodeDecode, NegativeClamped) {
  EXPECT_EQ(encode_watts(-5.0, 100.0, true), 0.0);
  EXPECT_EQ(decode_watts(-0.5, 100.0, false), 0.0);
}

TEST(WindowMath, HistoryNeeded) {
  WindowConfig cfg;
  cfg.window = 16;
  cfg.horizon = 15;
  EXPECT_EQ(history_needed(cfg), 30u);
  EXPECT_EQ(first_feasible_target(cfg, 0), 30u);
  EXPECT_EQ(first_feasible_target(cfg, 100), 100u);
  cfg.horizon = 1;
  EXPECT_EQ(history_needed(cfg), 16u);
}

TEST(Supervised, FeatureAlignment) {
  const auto trace = ramp_trace(200);
  WindowConfig cfg;
  cfg.window = 4;
  cfg.horizon = 3;
  cfg.calendar_features = false;
  cfg.log_scale = false;
  const auto set = make_supervised(trace, cfg, 0, 50);
  ASSERT_GT(set.size(), 0u);
  // First target is window + horizon - 1 = 6.
  EXPECT_EQ(set.target_minute[0], 6u);
  // For target t, features are watts[t-horizon-window+1 .. t-horizon]
  // = {0,1,2,3} for t=6 (scaled).
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_NEAR(set.x(0, k) * set.scale, static_cast<double>(k), 1e-9);
  }
  EXPECT_NEAR(set.y(0, 0) * set.scale, 6.0, 1e-9);
}

TEST(Supervised, HorizonGapRespected) {
  const auto trace = ramp_trace(300);
  WindowConfig cfg;
  cfg.window = 3;
  cfg.horizon = 10;
  cfg.calendar_features = false;
  cfg.log_scale = false;
  const auto set = make_supervised(trace, cfg, 0, 100);
  // Last feature of each row must be horizon minutes before the target.
  for (std::size_t r = 0; r < set.size(); ++r) {
    const double last_feature = set.x(r, 2) * set.scale;
    EXPECT_NEAR(last_feature,
                static_cast<double>(set.target_minute[r] - 10), 1e-9);
  }
}

TEST(Supervised, CalendarFeaturesOnUnitCircle) {
  const auto trace = ramp_trace(kMinutesPerDay);
  WindowConfig cfg;
  cfg.window = 4;
  cfg.horizon = 1;
  cfg.calendar_features = true;
  const auto set = make_supervised(trace, cfg, 0, kMinutesPerDay);
  ASSERT_EQ(set.features(), 6u);
  for (std::size_t r = 0; r < set.size(); r += 37) {
    const double s = set.x(r, 4);
    const double c = set.x(r, 5);
    EXPECT_NEAR(s * s + c * c, 1.0, 1e-9);
  }
}

TEST(Supervised, StrideSubsamples) {
  const auto trace = ramp_trace(500);
  WindowConfig cfg;
  cfg.window = 4;
  cfg.horizon = 1;
  cfg.stride = 5;
  const auto dense = make_supervised(trace, cfg, 0, 400);
  cfg.stride = 1;
  const auto full = make_supervised(trace, cfg, 0, 400);
  EXPECT_NEAR(static_cast<double>(full.size()) / dense.size(), 5.0, 0.2);
  // Strided targets advance by stride.
  EXPECT_EQ(dense.target_minute[1] - dense.target_minute[0], 5u);
}

TEST(Supervised, EmptyWhenRangeTooShort) {
  const auto trace = ramp_trace(100);
  WindowConfig cfg;
  cfg.window = 30;
  cfg.horizon = 80;
  const auto set = make_supervised(trace, cfg, 0, 100);
  EXPECT_EQ(set.size(), 0u);
}

TEST(Sequences, AlignedWithSupervised) {
  const auto trace = ramp_trace(300);
  WindowConfig cfg;
  cfg.window = 5;
  cfg.horizon = 4;
  cfg.calendar_features = false;
  cfg.log_scale = false;
  const auto sup = make_supervised(trace, cfg, 10, 200);
  const auto seq = make_sequences(trace, cfg, 10, 200);
  ASSERT_EQ(sup.size(), seq.size());
  ASSERT_EQ(seq.xs.size(), 5u);
  EXPECT_EQ(seq.step_features(), 1u);
  for (std::size_t r = 0; r < sup.size(); r += 11) {
    EXPECT_EQ(sup.target_minute[r], seq.target_minute[r]);
    for (std::size_t t = 0; t < 5; ++t) {
      EXPECT_NEAR(seq.xs[t](r, 0), sup.x(r, t), 1e-12);
    }
    EXPECT_NEAR(seq.y(r, 0), sup.y(r, 0), 1e-12);
  }
}

TEST(Sequences, CalendarPerStep) {
  const auto trace = ramp_trace(kMinutesPerDay);
  WindowConfig cfg;
  cfg.window = 3;
  cfg.horizon = 1;
  cfg.calendar_features = true;
  const auto seq = make_sequences(trace, cfg, 0, 600);
  EXPECT_EQ(seq.step_features(), 3u);
  for (std::size_t r = 0; r < seq.size(); r += 53) {
    for (std::size_t t = 0; t < 3; ++t) {
      const double s = seq.xs[t](r, 1);
      const double c = seq.xs[t](r, 2);
      EXPECT_NEAR(s * s + c * c, 1.0, 1e-9);
    }
  }
}

TEST(Split, EightyTwenty) {
  EXPECT_EQ(train_test_split(1000).train_end, 800u);
  EXPECT_EQ(train_test_split(1000, 0.5).train_end, 500u);
  EXPECT_EQ(train_test_split(0).train_end, 0u);
  EXPECT_EQ(train_test_split(10, 2.0).train_end, 10u);  // clamped
}

TEST(Accuracy, ExactPredictionIsOne) {
  EXPECT_DOUBLE_EQ(prediction_accuracy(50.0, 50.0), 1.0);
}

TEST(Accuracy, RelativeError) {
  EXPECT_NEAR(prediction_accuracy(90.0, 100.0), 0.9, 1e-12);
  EXPECT_NEAR(prediction_accuracy(110.0, 100.0), 0.9, 1e-12);
}

TEST(Accuracy, ClampedAtZero) {
  EXPECT_EQ(prediction_accuracy(300.0, 100.0), 0.0);
}

TEST(Accuracy, OffDeviceSemantics) {
  // Real value below floor: correct if prediction is also near zero.
  EXPECT_EQ(prediction_accuracy(0.1, 0.0), 1.0);
  EXPECT_EQ(prediction_accuracy(40.0, 0.0), 0.0);
}

TEST(NormalizationScale, HasHeadroom) {
  DeviceSpec spec;
  spec.on_watts = 100.0;
  EXPECT_DOUBLE_EQ(normalization_scale(spec), 150.0);
  spec.on_watts = 0.1;
  EXPECT_GE(normalization_scale(spec), 1.0);
}

class EncodeDecodeSweep
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(EncodeDecodeSweep, InverseProperty) {
  const auto [scale, log_scale] = GetParam();
  for (double w = 0.0; w <= scale * 1.2; w += scale / 17.0) {
    const double enc = encode_watts(w, scale, log_scale);
    EXPECT_NEAR(decode_watts(enc, scale, log_scale), w, 1e-6 * (1 + w));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, EncodeDecodeSweep,
    ::testing::Combine(::testing::Values(10.0, 150.0, 2700.0, 6000.0),
                       ::testing::Bool()));

}  // namespace
}  // namespace pfdrl::data
