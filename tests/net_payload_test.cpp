// Zero-copy payload accounting: broadcasts fan out refcounted handles to
// one buffer, while the simulated wire still bills every delivery for
// the full logical byte count — including under a lossy LinkModel.
#include <gtest/gtest.h>

#include <vector>

#include "net/bus.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"

namespace pfdrl::net {
namespace {

TEST(Payload, ConstructionCountsOneAllocation) {
  const auto before = Payload::allocations();
  Payload p(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_EQ(Payload::allocations() - before, 1u);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
  EXPECT_EQ(p.use_count(), 1);
}

TEST(Payload, CopiesShareTheBuffer) {
  Payload p(std::vector<double>(8, 1.5));
  const auto before = Payload::allocations();
  Payload q = p;          // handle copy
  Payload r = q;          // and another
  EXPECT_EQ(Payload::allocations(), before);  // no new buffers
  EXPECT_EQ(p.use_count(), 3);
  EXPECT_EQ(q.span().data(), p.span().data());
  EXPECT_EQ(r.span().data(), p.span().data());
}

TEST(Payload, AssignReplacesTheBuffer) {
  Payload p;
  EXPECT_TRUE(p.empty());
  p.assign(4, 2.0);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[3], 2.0);
  const std::vector<double> src = {9.0, 8.0};
  p.assign(src.begin(), src.end());
  ASSERT_EQ(p.size(), 2u);
  EXPECT_DOUBLE_EQ(p[0], 9.0);
}

TEST(Payload, BroadcastAllocatesNothingPerReceiver) {
  // Full mesh with many receivers: enqueueing N-1 copies of the message
  // must not allocate any payload buffer — only the sender's original
  // construction counts.
  const std::size_t homes = 16;
  MessageBus bus(Topology(TopologyKind::kFullMesh, homes));
  Message msg;
  msg.sender = 0;
  msg.payload = std::vector<double>(1000, 1.0);
  const auto before = Payload::allocations();
  const std::size_t delivered = bus.broadcast(msg);
  EXPECT_EQ(delivered, homes - 1);
  EXPECT_EQ(Payload::allocations(), before);
  // Every queued copy shares the sender's buffer.
  EXPECT_EQ(msg.payload.use_count(), static_cast<long>(homes));
  for (std::size_t h = 1; h < homes; ++h) {
    auto got = bus.drain(static_cast<AgentId>(h));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload.span().data(), msg.payload.span().data());
  }
}

TEST(Payload, WireBillsEveryDeliveryDespiteSharing) {
  const std::size_t homes = 8;
  MessageBus bus(Topology(TopologyKind::kFullMesh, homes));
  Message msg;
  msg.sender = 0;
  msg.payload = std::vector<double>(500, 0.25);
  bus.broadcast(msg);
  const auto stats = bus.stats();
  // bytes_on_wire counts logical per-delivery bytes: each of the N-1
  // receivers is billed the full serialized message.
  EXPECT_EQ(stats.messages_delivered, homes - 1);
  EXPECT_EQ(stats.bytes_on_wire, (homes - 1) * msg.wire_bytes());
  LinkModel link;  // defaults match the bus default
  EXPECT_NEAR(stats.simulated_transfer_seconds,
              static_cast<double>(homes - 1) *
                  link.transfer_seconds(msg.wire_bytes()),
              1e-12);
}

TEST(Payload, LossyLinkDropAndBillingUnchangedBySharing) {
  // Same broadcast schedule on two identically-seeded lossy buses, one
  // fed a fresh payload per broadcast (the old deep-copy pattern) and
  // one re-sending a single shared payload. Drop pattern, latency and
  // byte accounting must be identical — the drop RNG consumes one draw
  // per delivery either way.
  LinkModel link;
  link.drop_probability = 0.35;
  const std::size_t homes = 5;
  const int rounds = 400;

  MessageBus fresh(Topology(TopologyKind::kFullMesh, homes), link);
  for (int i = 0; i < rounds; ++i) {
    Message msg;
    msg.sender = static_cast<AgentId>(i % homes);
    msg.payload = std::vector<double>(64, static_cast<double>(i));
    fresh.broadcast(msg);
  }

  MessageBus shared(Topology(TopologyKind::kFullMesh, homes), link);
  Message reused;
  reused.payload = std::vector<double>(64, 7.0);
  for (int i = 0; i < rounds; ++i) {
    reused.sender = static_cast<AgentId>(i % homes);
    shared.broadcast(reused);
  }

  const auto a = fresh.stats();
  const auto b = shared.stats();
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.bytes_on_wire, b.bytes_on_wire);
  EXPECT_DOUBLE_EQ(a.simulated_transfer_seconds, b.simulated_transfer_seconds);
  EXPECT_GT(a.messages_dropped, 0u);  // the rate actually bit
}

}  // namespace
}  // namespace pfdrl::net
