#include <gtest/gtest.h>

#include "fl/baselines.hpp"
#include "fl/dfl.hpp"
#include "sim/scenario.hpp"

namespace pfdrl::fl {
namespace {

std::vector<data::HouseholdTrace> small_traces(std::size_t homes = 3,
                                               std::size_t days = 2,
                                               std::uint64_t seed = 42) {
  sim::ScenarioConfig cfg;
  cfg.neighborhood.num_households = static_cast<std::uint32_t>(homes);
  cfg.neighborhood.min_devices = 3;
  cfg.neighborhood.max_devices = 4;
  cfg.neighborhood.seed = seed;
  cfg.trace.days = days;
  cfg.trace.seed = seed;
  return sim::Scenario::generate(cfg).traces;
}

DflConfig fast_dfl(AggregationMode mode) {
  DflConfig cfg;
  cfg.method = forecast::Method::kLr;  // cheap, deterministic
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.aggregation = mode;
  cfg.broadcast_period_hours = 12.0;
  return cfg;
}

TEST(DflTrainer, RejectsEmptyAndMismatched) {
  std::vector<data::HouseholdTrace> empty;
  EXPECT_THROW(DflTrainer(empty, fast_dfl(AggregationMode::kNone)),
               std::invalid_argument);
  auto traces = small_traces(2);
  traces[1].devices[0].watts.resize(100);
  traces[1].devices[0].modes.resize(100);
  EXPECT_THROW(DflTrainer(traces, fast_dfl(AggregationMode::kNone)),
               std::invalid_argument);
}

TEST(DflTrainer, RunExecutesExpectedRounds) {
  const auto traces = small_traces();
  DflTrainer trainer(traces, fast_dfl(AggregationMode::kDecentralized));
  const std::size_t rounds = trainer.run(0, data::kMinutesPerDay);
  EXPECT_EQ(rounds, 2u);  // 24h at beta = 12h
}

TEST(DflTrainer, TrainingImprovesOverUntrained) {
  const auto traces = small_traces(3, 2);
  DflTrainer trained(traces, fast_dfl(AggregationMode::kDecentralized));
  trained.run(0, data::kMinutesPerDay);
  DflTrainer untrained(traces, fast_dfl(AggregationMode::kDecentralized));
  const std::size_t eval_begin = data::kMinutesPerDay;
  EXPECT_GT(trained.mean_test_accuracy(eval_begin, traces[0].minutes()),
            untrained.mean_test_accuracy(eval_begin, traces[0].minutes()));
}

TEST(DflTrainer, DecentralizedMakesHomologousModelsEqual) {
  const auto traces = small_traces(3, 1);
  DflTrainer trainer(traces, fast_dfl(AggregationMode::kDecentralized));
  trainer.run(0, data::kMinutesPerDay);
  // After a round ending in aggregation, same-type forecasters across
  // homes must hold identical parameters.
  for (std::size_t h1 = 0; h1 < traces.size(); ++h1) {
    for (std::size_t d1 = 0; d1 < traces[h1].devices.size(); ++d1) {
      for (std::size_t h2 = h1 + 1; h2 < traces.size(); ++h2) {
        for (std::size_t d2 = 0; d2 < traces[h2].devices.size(); ++d2) {
          if (traces[h1].devices[d1].spec.type !=
              traces[h2].devices[d2].spec.type) {
            continue;
          }
          const auto p1 = trainer.forecaster(h1, d1).parameters();
          const auto p2 = trainer.forecaster(h2, d2).parameters();
          ASSERT_EQ(p1.size(), p2.size());
          for (std::size_t i = 0; i < p1.size(); ++i) {
            ASSERT_NEAR(p1[i], p2[i], 1e-12)
                << "home " << h1 << "/" << h2 << " dev type "
                << data::device_type_name(traces[h1].devices[d1].spec.type);
          }
        }
      }
    }
  }
}

TEST(DflTrainer, CentralizedMatchesDecentralizedResult) {
  // Same averaging math; only the communication pattern differs.
  const auto traces = small_traces(3, 1);
  DflTrainer mesh(traces, fast_dfl(AggregationMode::kDecentralized));
  DflTrainer star(traces, fast_dfl(AggregationMode::kCentralized));
  mesh.run(0, data::kMinutesPerDay);
  star.run(0, data::kMinutesPerDay);
  for (std::size_t h = 0; h < traces.size(); ++h) {
    for (std::size_t d = 0; d < traces[h].devices.size(); ++d) {
      const auto pm = mesh.forecaster(h, d).parameters();
      const auto ps = star.forecaster(h, d).parameters();
      for (std::size_t i = 0; i < pm.size(); ++i) {
        ASSERT_NEAR(pm[i], ps[i], 1e-12);
      }
    }
  }
}

TEST(DflTrainer, CentralizedCostsMoreWire) {
  const auto traces = small_traces(4, 1);
  DflTrainer mesh(traces, fast_dfl(AggregationMode::kDecentralized));
  DflTrainer star(traces, fast_dfl(AggregationMode::kCentralized));
  mesh.run(0, data::kMinutesPerDay);
  star.run(0, data::kMinutesPerDay);
  // The hub relay makes the star deliver more copies in total.
  EXPECT_GT(star.comm_stats().messages_delivered,
            mesh.comm_stats().messages_delivered / 2);
  EXPECT_GT(star.comm_stats().bytes_on_wire, 0u);
}

TEST(DflTrainer, LocalModeNoTraffic) {
  const auto traces = small_traces(3, 1);
  DflTrainer trainer(traces, fast_dfl(AggregationMode::kNone));
  trainer.run(0, data::kMinutesPerDay);
  EXPECT_EQ(trainer.comm_stats().messages_sent, 0u);
  EXPECT_EQ(trainer.comm_stats().bytes_on_wire, 0u);
}

TEST(DflTrainer, LocalModelsStayDifferent) {
  const auto traces = small_traces(3, 1);
  DflTrainer trainer(traces, fast_dfl(AggregationMode::kNone));
  trainer.run(0, data::kMinutesPerDay);
  // Find two homes sharing a device type; their local models should
  // differ (different data, no averaging).
  bool found_pair = false;
  for (std::size_t h1 = 0; h1 < traces.size() && !found_pair; ++h1) {
    for (std::size_t d1 = 0; d1 < traces[h1].devices.size(); ++d1) {
      for (std::size_t h2 = h1 + 1; h2 < traces.size(); ++h2) {
        for (std::size_t d2 = 0; d2 < traces[h2].devices.size(); ++d2) {
          if (traces[h1].devices[d1].spec.type !=
              traces[h2].devices[d2].spec.type) {
            continue;
          }
          found_pair = true;
          const auto p1 = trainer.forecaster(h1, d1).parameters();
          const auto p2 = trainer.forecaster(h2, d2).parameters();
          bool any_diff = false;
          for (std::size_t i = 0; i < p1.size(); ++i) {
            if (p1[i] != p2[i]) any_diff = true;
          }
          EXPECT_TRUE(any_diff);
        }
      }
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(DflTrainer, PerAgentAccuracyShape) {
  const auto traces = small_traces(3, 2);
  DflTrainer trainer(traces, fast_dfl(AggregationMode::kDecentralized));
  trainer.run(0, data::kMinutesPerDay);
  const auto per_agent =
      trainer.per_agent_accuracy(data::kMinutesPerDay, traces[0].minutes());
  ASSERT_EQ(per_agent.size(), traces.size());
  for (double acc : per_agent) {
    EXPECT_GE(acc, 0.0);
    EXPECT_LE(acc, 1.0);
  }
}

TEST(CloudTrainer, OneModelPerType) {
  const auto traces = small_traces(3, 1);
  CloudConfig cfg;
  cfg.method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  CloudTrainer trainer(traces, cfg);
  trainer.run(0, data::kMinutesPerDay);
  // Every device type present maps to a model; absent types throw.
  for (const auto& home : traces) {
    for (const auto& dev : home.devices) {
      EXPECT_NO_THROW(trainer.model_for_type(dev.spec.type));
    }
  }
}

TEST(CloudTrainer, UnknownTypeThrows) {
  auto traces = small_traces(1, 1);
  // Remove any game console to guarantee absence... simpler: ask for a
  // type no home has by checking first.
  CloudConfig cfg;
  cfg.method = forecast::Method::kLr;
  CloudTrainer trainer(traces, cfg);
  bool has_console = false;
  for (const auto& d : traces[0].devices) {
    if (d.spec.type == data::DeviceType::kGameConsole) has_console = true;
  }
  if (!has_console) {
    EXPECT_THROW(trainer.model_for_type(data::DeviceType::kGameConsole),
                 std::out_of_range);
  }
}

TEST(CloudTrainer, RawUploadAccounting) {
  const auto traces = small_traces(2, 1);
  CloudConfig cfg;
  cfg.method = forecast::Method::kLr;
  CloudTrainer trainer(traces, cfg);
  EXPECT_EQ(trainer.raw_bytes_uploaded(), 0u);
  trainer.run(0, data::kMinutesPerDay);
  std::uint64_t expected = 0;
  for (const auto& home : traces) {
    expected += home.devices.size() * data::kMinutesPerDay * 8;
  }
  EXPECT_EQ(trainer.raw_bytes_uploaded(), expected);
}

TEST(CloudTrainer, AccuracyInRange) {
  const auto traces = small_traces(3, 2);
  CloudConfig cfg;
  cfg.method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  CloudTrainer trainer(traces, cfg);
  trainer.run(0, data::kMinutesPerDay);
  const double acc =
      trainer.mean_test_accuracy(data::kMinutesPerDay, traces[0].minutes());
  EXPECT_GT(acc, 0.3);
  EXPECT_LE(acc, 1.0);
}

TEST(DflTrainer, DeterministicAcrossRunsDespiteThreadPool) {
  // Training fans out on the global thread pool; per-job RNGs are forked
  // from (seed, round, home, device), so two runs must produce bitwise
  // identical models regardless of scheduling.
  const auto traces = small_traces(3, 2);
  const auto run = [&] {
    DflTrainer trainer(traces, fast_dfl(AggregationMode::kDecentralized));
    trainer.run(0, data::kMinutesPerDay);
    std::vector<double> all;
    for (std::size_t h = 0; h < traces.size(); ++h) {
      for (std::size_t d = 0; d < traces[h].devices.size(); ++d) {
        const auto p = trainer.forecaster(h, d).parameters();
        all.insert(all.end(), p.begin(), p.end());
      }
    }
    return all;
  };
  EXPECT_EQ(run(), run());
}

// --- Cross-home fused training (docs/fused_training.md) ---------------

namespace {

/// Every forecaster parameter of every (home, device), flattened — the
/// bitwise fingerprint the fused-vs-legacy comparisons use.
std::vector<double> all_parameters(const DflTrainer& trainer,
                                   const std::vector<data::HouseholdTrace>& traces) {
  std::vector<double> all;
  for (std::size_t h = 0; h < traces.size(); ++h) {
    for (std::size_t d = 0; d < traces[h].devices.size(); ++d) {
      const auto p = trainer.forecaster(h, d).parameters();
      all.insert(all.end(), p.begin(), p.end());
    }
  }
  return all;
}

}  // namespace

// The fused-training contract at the DFL layer: fuse_homes > 1 gathers
// cross-home minibatches into shared slabs, but the trained parameters
// must stay bitwise identical to the legacy per-job path — at every
// shard count, for each NN method.
TEST(DflTrainer, FusedHomesBitwiseMatchesLegacy) {
  const auto traces = small_traces(5, 2);
  for (const auto method :
       {forecast::Method::kBp, forecast::Method::kLstm, forecast::Method::kGru}) {
    auto cfg = fast_dfl(AggregationMode::kDecentralized);
    cfg.method = method;
    cfg.train.epochs = 2;         // keep the recurrent methods quick
    cfg.max_round_samples = 120;  // (explicit values win over defaults)
    const auto run = [&](std::size_t fuse_homes, std::size_t shards) {
      auto c = cfg;
      c.fuse_homes = fuse_homes;
      c.shards = shards;
      DflTrainer trainer(traces, c);
      trainer.run(0, data::kMinutesPerDay);
      return all_parameters(trainer, traces);
    };
    const auto legacy = run(0, 0);
    EXPECT_EQ(run(3, 0), legacy) << forecast::method_name(method);
    EXPECT_EQ(run(16, 0), legacy) << forecast::method_name(method)
                                  << " (one group spanning all homes)";
    EXPECT_EQ(run(2, 2), legacy) << forecast::method_name(method)
                                 << " (groups within shard boundaries)";
  }
}

// Non-NN methods cannot fuse: the group trainer must refuse and the
// per-job fallback must reproduce the legacy result bitwise (the forked
// per-job RNGs are handed over unconsumed).
TEST(DflTrainer, FusedFallbackForNonNnMethodsMatchesLegacy) {
  const auto traces = small_traces(4, 1);
  auto cfg = fast_dfl(AggregationMode::kDecentralized);  // kLr
  DflTrainer legacy(traces, cfg);
  legacy.run(0, data::kMinutesPerDay);
  cfg.fuse_homes = 3;
  DflTrainer fused(traces, cfg);
  fused.run(0, data::kMinutesPerDay);
  EXPECT_EQ(all_parameters(fused, traces), all_parameters(legacy, traces));
}

TEST(DflTrainer, SmallBatchCapOnlyAppliesToFederatedModes) {
  // The Local baseline trains on everything (Table 2: no small-batch
  // column); with BP this shows as a measurable accuracy edge for Local
  // over what a capped run of the same data could learn per round.
  auto cfg = fast_dfl(AggregationMode::kNone);
  cfg.max_round_samples = 10;  // would cripple training if applied
  const auto traces = small_traces(2, 2);
  DflTrainer local(traces, cfg);
  local.run(0, data::kMinutesPerDay);
  const double acc =
      local.mean_test_accuracy(data::kMinutesPerDay, traces[0].minutes());
  // LR on full data comfortably beats the ~0.3 an effectively untrained
  // model scores.
  EXPECT_GT(acc, 0.35);
}

TEST(AggregationModeNames, Stable) {
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kDecentralized),
               "decentralized");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kCentralized),
               "centralized");
  EXPECT_STREQ(aggregation_mode_name(AggregationMode::kNone), "local");
}

}  // namespace
}  // namespace pfdrl::fl
