#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

std::vector<Matrix> random_sequence(std::size_t steps, std::size_t batch,
                                    std::size_t feat, util::Rng& rng) {
  std::vector<Matrix> xs(steps, Matrix(batch, feat));
  for (auto& x : xs) {
    for (double& v : x.data()) v = rng.normal(0.0, 0.5);
  }
  return xs;
}

TEST(Lstm, ConstructionValidation) {
  util::Rng rng(1);
  EXPECT_THROW(LstmRegressor(0, 4, 1, rng), std::invalid_argument);
  EXPECT_THROW(LstmRegressor(2, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(LstmRegressor(2, 4, 0, rng), std::invalid_argument);
}

TEST(Lstm, ParameterCount) {
  util::Rng rng(2);
  const std::size_t f = 3, h = 5, o = 2;
  LstmRegressor net(f, h, o, rng);
  EXPECT_EQ(net.parameter_count(),
            f * 4 * h + h * 4 * h + 4 * h + h * o + o);
}

TEST(Lstm, ForwardShape) {
  util::Rng rng(3);
  LstmRegressor net(2, 4, 1, rng);
  const auto xs = [&] {
    util::Rng r(4);
    return random_sequence(6, 3, 2, r);
  }();
  const Matrix& y = net.forward(xs);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(Lstm, EmptySequenceThrows) {
  util::Rng rng(5);
  LstmRegressor net(2, 4, 1, rng);
  EXPECT_THROW(net.forward({}), std::invalid_argument);
}

TEST(Lstm, PredictMatchesForward) {
  util::Rng rng(6);
  LstmRegressor net(3, 5, 1, rng);
  util::Rng data_rng(7);
  const auto xs = random_sequence(5, 4, 3, data_rng);
  const Matrix a = net.predict(xs);
  const Matrix& b = net.forward(xs);
  EXPECT_EQ(a, b);
}

TEST(Lstm, SameSeedSameOutput) {
  util::Rng r1(8);
  util::Rng r2(8);
  LstmRegressor a(2, 4, 1, r1);
  LstmRegressor b(2, 4, 1, r2);
  util::Rng data_rng(9);
  const auto xs = random_sequence(4, 2, 2, data_rng);
  EXPECT_EQ(a.predict(xs), b.predict(xs));
}

TEST(Lstm, SetParametersRoundTrip) {
  util::Rng rng(10);
  LstmRegressor net(2, 3, 1, rng);
  std::vector<double> values(net.parameter_count());
  for (std::size_t i = 0; i < values.size(); ++i) values[i] = 0.001 * static_cast<double>(i);
  net.set_parameters(values);
  const auto got = net.parameters();
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(got[i], values[i]);
  EXPECT_THROW(net.set_parameters(std::vector<double>(5)),
               std::invalid_argument);
}

TEST(Lstm, GradientCheckViaTraining) {
  // Finite-difference check of the full BPTT path: compare the parameter
  // update direction of a plain-SGD train_batch against the numeric
  // gradient of the loss.
  util::Rng rng(11);
  LstmRegressor net(2, 3, 1, rng);
  util::Rng data_rng(12);
  const auto xs = random_sequence(4, 2, 2, data_rng);
  Matrix y(2, 1);
  y(0, 0) = 0.3;
  y(1, 0) = -0.2;

  const auto loss_at = [&](std::span<const double> p) {
    LstmRegressor copy = net;
    copy.set_parameters(p);
    const Matrix pred = copy.predict(xs);
    return loss_value(LossKind::kMse, pred, y);
  };

  const std::vector<double> before(net.parameters().begin(),
                                   net.parameters().end());
  const double lr = 1e-3;
  Sgd opt(lr);
  LstmRegressor trained = net;
  trained.train_batch(xs, y, LossKind::kMse, opt, /*clip_norm=*/0.0);
  const auto after = trained.parameters();

  // Implied gradient from the SGD step: g = (before - after) / lr.
  const double eps = 1e-6;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < before.size(); i += 7) {
    auto plus = before;
    auto minus = before;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    const double implied = (before[i] - after[i]) / lr;
    ASSERT_NEAR(implied, numeric, 1e-4) << "param " << i;
    ++checked;
  }
  EXPECT_GT(checked, 10u);
}

TEST(Lstm, LearnsSequenceMean) {
  // Target = mean of the sequence's first feature: requires memory.
  util::Rng rng(13);
  LstmRegressor net(1, 8, 1, rng);
  Adam opt(0.01);
  util::Rng data_rng(14);

  double first_loss = -1.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    std::vector<Matrix> xs(5, Matrix(8, 1));
    Matrix y(8, 1);
    for (std::size_t b = 0; b < 8; ++b) {
      double sum = 0.0;
      for (std::size_t t = 0; t < 5; ++t) {
        const double v = data_rng.uniform(-1, 1);
        xs[t](b, 0) = v;
        sum += v;
      }
      y(b, 0) = sum / 5.0;
    }
    last_loss = net.train_batch(xs, y, LossKind::kMse, opt);
    if (epoch == 0) first_loss = last_loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
  EXPECT_LT(last_loss, 0.01);
}

TEST(Lstm, ClipNormBoundsUpdate) {
  util::Rng rng(15);
  LstmRegressor net(1, 4, 1, rng);
  util::Rng data_rng(16);
  const auto xs = random_sequence(3, 2, 1, data_rng);
  Matrix y(2, 1, 100.0);  // huge target -> huge gradient

  Sgd opt(1.0);
  LstmRegressor clipped = net;
  clipped.train_batch(xs, y, LossKind::kMse, opt, /*clip_norm=*/1.0);
  double update_sq = 0.0;
  for (std::size_t i = 0; i < net.parameter_count(); ++i) {
    const double d = clipped.parameters()[i] - net.parameters()[i];
    update_sq += d * d;
  }
  // With lr=1 and clip 1.0 the update norm is at most ~1.
  EXPECT_LE(std::sqrt(update_sq), 1.0 + 1e-9);
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  util::Rng rng(17);
  const std::size_t f = 2, h = 3;
  LstmRegressor net(f, h, 1, rng);
  const auto params = net.parameters();
  const std::size_t b_off = f * 4 * h + h * 4 * h;
  for (std::size_t j = 0; j < h; ++j) {
    EXPECT_EQ(params[b_off + h + j], 1.0);  // forget-gate slice
    EXPECT_EQ(params[b_off + j], 0.0);      // input-gate slice
  }
}

}  // namespace
}  // namespace pfdrl::nn
