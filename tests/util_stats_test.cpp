#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace pfdrl::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.stderror(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), mean(xs));
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 16.0);
  EXPECT_DOUBLE_EQ(s.sum(), 31.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Rng rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(5.0, 3.0));

  RunningStats whole;
  for (double x : xs) whole.add(x);

  // Split at several points; merged stats must match the single pass.
  for (std::size_t split : {0u, 1u, 500u, 999u, 1000u}) {
    RunningStats a;
    RunningStats b;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      (i < split ? a : b).add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
  }
}

TEST(Stats, MeanEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, VarianceOfConstant) {
  const std::vector<double> xs(10, 4.2);
  EXPECT_NEAR(variance(xs), 0.0, 1e-24);  // floating-point residue only
}

TEST(Stats, PercentileKnownValues) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.1), 1.0);
}

TEST(Stats, PercentileEmpty) {
  EXPECT_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, PercentileClampsQuantile) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 2.0), 2.0);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  const std::vector<double> points = {0.0, 1.0, 2.0, 2.5, 3.0, 4.0};
  const auto cdf = empirical_cdf(xs, points);
  ASSERT_EQ(cdf.size(), points.size());
  EXPECT_DOUBLE_EQ(cdf[0], 0.0);
  EXPECT_DOUBLE_EQ(cdf[1], 0.25);
  EXPECT_DOUBLE_EQ(cdf[2], 0.75);
  EXPECT_DOUBLE_EQ(cdf[3], 0.75);
  EXPECT_DOUBLE_EQ(cdf[4], 1.0);
  EXPECT_DOUBLE_EQ(cdf[5], 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(2.5 * i - 7.0);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-10);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
}

TEST(Stats, LinearFitDegenerate) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 3.0, 4.0};
  const auto fit = linear_fit(xs, ys);
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 3.0, 4.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, Clamp01) {
  EXPECT_EQ(clamp01(-0.5), 0.0);
  EXPECT_EQ(clamp01(1.5), 1.0);
  EXPECT_DOUBLE_EQ(clamp01(0.25), 0.25);
}

class PercentileOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileOrderProperty, QuantilesMonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.normal(0.0, 10.0));
  double prev = percentile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = percentile(xs, q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileOrderProperty,
                         ::testing::Values(1, 7, 99, 12345));

}  // namespace
}  // namespace pfdrl::util
