// Degraded-round semantics of fl::ParamExchange: crash windows, quorum
// gating with local fallback, duplicate-delivery idempotence, stale
// crash-backlog discard, straggler-vs-deadline lateness, star hub
// retries and partition-window split-brain averaging.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace pfdrl::fl {
namespace {

std::vector<std::vector<double>> make_params(std::size_t agents,
                                             std::size_t len) {
  std::vector<std::vector<double>> params(agents, std::vector<double>(len));
  for (std::size_t a = 0; a < agents; ++a) {
    for (std::size_t i = 0; i < len; ++i) {
      params[a][i] = static_cast<double>(a * 100 + i);
    }
  }
  return params;
}

std::vector<ExchangeItem> make_items(std::vector<std::vector<double>>& params) {
  std::vector<ExchangeItem> items;
  for (std::size_t a = 0; a < params.size(); ++a) {
    items.push_back({.agent = static_cast<net::AgentId>(a),
                     .device_type = 7,
                     .send = params[a],
                     .in_place = params[a]});
  }
  return items;
}

ParamExchange::Options with_policy(ExchangePolicy policy) {
  ParamExchange::Options options;
  options.policy = std::move(policy);
  return options;
}

TEST(QuorumRounds, CrashedAgentSkipsRoundOthersAverage) {
  auto params = make_params(3, 4);
  const auto original = params;
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 3));
  ExchangePolicy policy;
  policy.failures.crashes.push_back({.agent = 2, .from_round = 0,
                                     .until_round = 1});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  const auto stats = exchange.round(items, 0, {});
  EXPECT_EQ(stats.crashed_items, 1u);
  EXPECT_EQ(stats.items_averaged, 2u);
  EXPECT_EQ(stats.accepted, 2u);  // agents 0 and 1 accept each other only
  for (std::size_t i = 0; i < 4; ++i) {
    const double mean = (original[0][i] + original[1][i]) / 2.0;
    EXPECT_DOUBLE_EQ(params[0][i], mean);
    EXPECT_DOUBLE_EQ(params[1][i], mean);
    EXPECT_DOUBLE_EQ(params[2][i], original[2][i]);  // crashed: untouched
  }
}

TEST(QuorumRounds, MissedQuorumFallsBackToLocal) {
  auto params = make_params(3, 4);
  const auto original = params;
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 3));
  ExchangePolicy policy;
  policy.quorum_fraction = 1.0;  // need the whole nominal group
  policy.failures.crashes.push_back({.agent = 2, .from_round = 0,
                                     .until_round = 1});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  const auto stats = exchange.round(
      items, 0, [](std::size_t, std::span<const double>) { FAIL(); });
  // The crashed member still counts toward the nominal group of 3, so
  // 2/3 misses a 1.0 quorum and every live item keeps local parameters.
  EXPECT_EQ(stats.items_averaged, 0u);
  EXPECT_EQ(stats.quorum_missed, 2u);
  EXPECT_EQ(stats.quorum_met, 0u);
  EXPECT_EQ(stats.local_fallbacks, 2u);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(params[a][i], original[a][i]);
    }
  }
}

TEST(QuorumRounds, PartialQuorumStillAverages) {
  auto params = make_params(4, 4);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 4));
  ExchangePolicy policy;
  policy.quorum_fraction = 0.75;  // 3 of the nominal 4
  policy.failures.crashes.push_back({.agent = 3, .from_round = 0,
                                     .until_round = 1});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  const auto stats = exchange.round(items, 0, {});
  EXPECT_EQ(stats.items_averaged, 3u);
  EXPECT_EQ(stats.quorum_met, 3u);
  EXPECT_EQ(stats.quorum_missed, 0u);
  EXPECT_EQ(stats.local_fallbacks, 0u);
}

TEST(QuorumRounds, DuplicatedDeliveriesCollapseToOneVote) {
  // Clean run first: the expected average.
  auto clean = make_params(2, 4);
  {
    net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2));
    ParamExchange exchange(bus, {});
    auto items = make_items(clean);
    exchange.round(items, 0, {});
  }

  auto params = make_params(2, 4);
  net::FaultPlan plan;
  plan.duplicate_probability = 1.0;  // every delivery enqueued twice
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2), plan);
  ParamExchange exchange(bus, {});
  auto items = make_items(params);
  const auto stats = exchange.round(items, 0, {});

  EXPECT_EQ(stats.duplicates, 2u);  // one collapsed copy per receiver
  EXPECT_EQ(stats.accepted, 2u);    // each unique sender weighs once
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(params[a][i], clean[a][i]);  // idempotent
    }
  }
}

TEST(QuorumRounds, CrashBacklogDiscardedAsStaleAfterRestart) {
  auto params = make_params(2, 4);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2));
  ExchangePolicy policy;
  policy.failures.crashes.push_back({.agent = 1, .from_round = 0,
                                     .until_round = 1});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  // Round 0: agent 1 is down. Agent 0's broadcast piles up in the dark
  // inbox; agent 0 itself hears nothing and falls back to local.
  const auto r0 = exchange.round(items, 0, {});
  EXPECT_EQ(r0.crashed_items, 1u);
  EXPECT_EQ(r0.local_fallbacks, 1u);
  EXPECT_EQ(r0.items_averaged, 0u);
  EXPECT_EQ(bus.inbox_size(1), 1u);  // the backlog survives the round

  // Round 1: agent 1 restarts, drains the backlog, and discards the
  // round-0 leftover as stale; the fresh round-1 traffic averages fine.
  items = make_items(params);
  const auto r1 = exchange.round(items, 1, {});
  EXPECT_EQ(r1.crashed_items, 0u);
  EXPECT_EQ(r1.stale_msgs, 1u);
  EXPECT_EQ(r1.items_averaged, 2u);
  EXPECT_EQ(r1.accepted, 2u);
}

TEST(QuorumRounds, DeadlineDiscardsStragglerContributions) {
  auto params = make_params(2, 4);
  const auto original = params;
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2));
  ExchangePolicy policy;
  policy.round_deadline_s = 0.5;
  policy.failures.stragglers.push_back({.agent = 1, .compute_delay_s = 1.0});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  const auto stats = exchange.round(items, 0, {});
  // Agent 1 starts 1.0 s late, so its contribution blows the 0.5 s
  // deadline at agent 0 (local fallback); agent 0's on-time broadcast
  // still reaches agent 1, which averages normally.
  EXPECT_EQ(stats.late_msgs, 1u);
  EXPECT_EQ(stats.local_fallbacks, 1u);
  EXPECT_EQ(stats.items_averaged, 1u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(params[0][i], original[0][i]);  // kept local
    EXPECT_DOUBLE_EQ(params[1][i],
                     (original[0][i] + original[1][i]) / 2.0);
  }
}

TEST(QuorumRounds, StarHubRetriesRecoverDroppedLeafContributions) {
  // A very lossy leaf->hub path plus generous retries: across seeds the
  // hub must still assemble the full contribution set for itself (the
  // retransmissions survive dedupe as one vote per sender).
  std::uint64_t total_retries = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto params = make_params(3, 4);
    const auto original = params;
    net::FaultPlan plan;
    plan.link.drop_probability = 0.6;
    plan.seed = seed;
    net::MessageBus bus(net::Topology(net::TopologyKind::kStar, 3), plan);
    ExchangePolicy policy;
    policy.hub_retries = 64;
    ParamExchange exchange(bus, with_policy(policy));
    auto items = make_items(params);

    const auto stats = exchange.round(items, 0, {});
    total_retries += stats.retries;
    for (std::size_t i = 0; i < 4; ++i) {
      const double mean =
          (original[0][i] + original[1][i] + original[2][i]) / 3.0;
      EXPECT_DOUBLE_EQ(params[0][i], mean) << "seed=" << seed;
    }
  }
  // Lucky seeds need no retransmission; across 20 seeds at 60% loss the
  // retry path must have fired.
  EXPECT_GT(total_retries, 0u);
}

TEST(QuorumRounds, CrashedStarHubTakesTheRoundDown) {
  auto params = make_params(3, 4);
  const auto original = params;
  net::MessageBus bus(net::Topology(net::TopologyKind::kStar, 3));
  ExchangePolicy policy;
  policy.failures.crashes.push_back({.agent = 0, .from_round = 0,
                                     .until_round = 1});
  ParamExchange exchange(bus, with_policy(policy));
  auto items = make_items(params);

  const auto stats = exchange.round(items, 0, {});
  // No relays without the hub: every live leaf hears nobody.
  EXPECT_EQ(stats.relayed, 0u);
  EXPECT_EQ(stats.items_averaged, 0u);
  EXPECT_EQ(stats.local_fallbacks, 2u);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(params[a][i], original[a][i]);
    }
  }
}

TEST(QuorumRounds, PartitionWindowSplitsAveragingBrains) {
  auto params = make_params(4, 4);
  const auto original = params;
  net::FaultPlan plan;
  net::PartitionWindow w;
  w.from_round = 0;
  w.until_round = 1;
  w.group = {0, 1};
  plan.partitions.push_back(w);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 4), plan);
  ParamExchange exchange(bus, {});
  auto items = make_items(params);

  // During the window each side of the split averages only with itself.
  exchange.round(items, 0, {});
  for (std::size_t i = 0; i < 4; ++i) {
    const double left = (original[0][i] + original[1][i]) / 2.0;
    const double right = (original[2][i] + original[3][i]) / 2.0;
    EXPECT_DOUBLE_EQ(params[0][i], left);
    EXPECT_DOUBLE_EQ(params[1][i], left);
    EXPECT_DOUBLE_EQ(params[2][i], right);
    EXPECT_DOUBLE_EQ(params[3][i], right);
  }

  // After the window heals the whole neighbourhood converges again.
  items = make_items(params);
  exchange.round(items, 1, {});
  for (std::size_t i = 0; i < 4; ++i) {
    const double mean = (2.0 * (original[0][i] + original[1][i]) / 2.0 +
                         2.0 * (original[2][i] + original[3][i]) / 2.0) /
                        4.0;
    for (std::size_t a = 0; a < 4; ++a) {
      EXPECT_DOUBLE_EQ(params[a][i], mean);
    }
  }
}

TEST(QuorumRounds, DefaultPolicyMatchesLegacyRound) {
  // The zero-valued policy must reproduce the original engine exactly.
  auto legacy = make_params(3, 4);
  {
    net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 3));
    ParamExchange exchange(bus, {});
    auto items = make_items(legacy);
    exchange.round(items, 0, {});
  }
  auto params = make_params(3, 4);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 3));
  ParamExchange exchange(bus, with_policy(ExchangePolicy{}));
  auto items = make_items(params);
  const auto stats = exchange.round(items, 0, {});
  EXPECT_EQ(stats.items_averaged, 3u);
  EXPECT_EQ(stats.quorum_met, 0u);  // gate disabled: not counted
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(params[a][i], legacy[a][i]);
    }
  }
}

}  // namespace
}  // namespace pfdrl::fl
