#include "data/trace.hpp"

#include <gtest/gtest.h>

#include "data/household.hpp"

namespace pfdrl::data {
namespace {

HouseholdProfile sample_home(std::uint64_t seed = 42) {
  NeighborhoodConfig cfg;
  cfg.num_households = 1;
  cfg.min_devices = 6;
  cfg.max_devices = 7;
  cfg.seed = seed;
  return make_neighborhood(cfg)[0];
}

TEST(Trace, LengthMatchesConfig) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 3;
  const auto trace = generate_household_trace(home, cfg);
  EXPECT_EQ(trace.minutes(), 3 * kMinutesPerDay);
  for (const auto& d : trace.devices) {
    EXPECT_EQ(d.watts.size(), 3 * kMinutesPerDay);
    EXPECT_EQ(d.modes.size(), 3 * kMinutesPerDay);
  }
}

TEST(Trace, DeterministicPerSeed) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 2;
  cfg.seed = 9;
  const auto a = generate_household_trace(home, cfg);
  const auto b = generate_household_trace(home, cfg);
  ASSERT_EQ(a.devices.size(), b.devices.size());
  for (std::size_t d = 0; d < a.devices.size(); ++d) {
    EXPECT_EQ(a.devices[d].watts, b.devices[d].watts);
    EXPECT_EQ(a.devices[d].modes, b.devices[d].modes);
  }
}

TEST(Trace, SeedChangesTrace) {
  const auto home = sample_home();
  TraceConfig a_cfg;
  a_cfg.days = 2;
  a_cfg.seed = 1;
  TraceConfig b_cfg = a_cfg;
  b_cfg.seed = 2;
  const auto a = generate_household_trace(home, a_cfg);
  const auto b = generate_household_trace(home, b_cfg);
  EXPECT_NE(a.devices[0].watts, b.devices[0].watts);
}

TEST(Trace, WattsConsistentWithModes) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 2;
  const auto trace = generate_household_trace(home, cfg);
  for (const auto& d : trace.devices) {
    for (std::size_t m = 0; m < d.minutes(); ++m) {
      switch (d.modes[m]) {
        case DeviceMode::kOff:
          ASSERT_EQ(d.watts[m], 0.0);
          break;
        case DeviceMode::kStandby:
          ASSERT_GT(d.watts[m], 0.0);
          ASSERT_LT(d.watts[m], d.spec.on_watts * 0.5)
              << d.spec.label << " minute " << m;
          break;
        case DeviceMode::kOn:
          ASSERT_GT(d.watts[m], d.spec.standby_watts)
              << d.spec.label << " minute " << m;
          break;
      }
    }
  }
}

TEST(Trace, AllThreeModesOccurSomewhere) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 7;
  const auto trace = generate_household_trace(home, cfg);
  bool any_off = false, any_standby = false, any_on = false;
  for (const auto& d : trace.devices) {
    for (auto mode : d.modes) {
      any_off |= mode == DeviceMode::kOff;
      any_standby |= mode == DeviceMode::kStandby;
      any_on |= mode == DeviceMode::kOn;
    }
  }
  EXPECT_TRUE(any_standby);
  EXPECT_TRUE(any_on);
  EXPECT_TRUE(any_off);
}

TEST(Trace, DutyCyclersNeverOff) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 3;
  const auto trace = generate_household_trace(home, cfg);
  for (const auto& d : trace.devices) {
    if (!d.spec.protected_device) continue;
    for (auto mode : d.modes) {
      ASSERT_NE(mode, DeviceMode::kOff) << d.spec.label;
    }
  }
}

TEST(Trace, EnergyAccountingMatchesManualSum) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 1;
  const auto trace = generate_household_trace(home, cfg);
  const auto& d = trace.devices[0];
  double wh = 0.0;
  double standby_wh = 0.0;
  for (std::size_t m = 100; m < 500; ++m) {
    wh += d.watts[m] / 60.0;
    if (d.modes[m] == DeviceMode::kStandby) standby_wh += d.watts[m] / 60.0;
  }
  EXPECT_NEAR(d.energy_kwh(100, 500), wh / 1000.0, 1e-12);
  EXPECT_NEAR(d.standby_energy_kwh(100, 500), standby_wh / 1000.0, 1e-12);
}

TEST(Trace, EnergyRangeClampedToLength) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 1;
  const auto trace = generate_household_trace(home, cfg);
  const auto& d = trace.devices[0];
  EXPECT_DOUBLE_EQ(d.energy_kwh(0, 10 * kMinutesPerDay),
                   d.energy_kwh(0, d.minutes()));
}

TEST(Trace, HouseholdTotalsAreSums) {
  const auto home = sample_home();
  TraceConfig cfg;
  cfg.days = 1;
  const auto trace = generate_household_trace(home, cfg);
  double total = 0.0;
  double standby = 0.0;
  for (const auto& d : trace.devices) {
    total += d.energy_kwh(0, d.minutes());
    standby += d.standby_energy_kwh(0, d.minutes());
  }
  EXPECT_NEAR(trace.total_energy_kwh(), total, 1e-12);
  EXPECT_NEAR(trace.total_standby_energy_kwh(), standby, 1e-12);
  EXPECT_GT(standby, 0.0);
  EXPECT_LT(standby, total);
}

TEST(Trace, SeasonalFactorSummerPeak) {
  EXPECT_GT(seasonal_factor(7), seasonal_factor(0));   // Aug > Jan
  EXPECT_GT(seasonal_factor(7), seasonal_factor(3));   // Aug > Apr
  EXPECT_NEAR(seasonal_factor(12), seasonal_factor(0), 1e-12);  // wraps
}

TEST(Trace, SummerIncreasesHvacEnergy) {
  const auto home = sample_home();
  // Find a profile with HVAC; if absent, synthesize one from the catalog.
  HouseholdDevice hvac;
  bool found = false;
  for (const auto& d : home.devices) {
    if (d.spec.type == DeviceType::kHvac) {
      hvac = d;
      found = true;
    }
  }
  if (!found) {
    const auto& proto =
        device_catalog()[static_cast<std::size_t>(DeviceType::kHvac)];
    hvac.spec = proto.spec;
    hvac.behavior = proto.behavior;
    hvac.hourly_usage_weight = proto.hourly_usage_weight;
  }
  TraceConfig summer;
  summer.days = 5;
  summer.month = 7;
  TraceConfig winter = summer;
  winter.month = 0;
  const auto st = generate_device_trace(hvac, summer, util::Rng(1));
  const auto wt = generate_device_trace(hvac, winter, util::Rng(1));
  EXPECT_GT(st.energy_kwh(0, st.minutes()), wt.energy_kwh(0, wt.minutes()));
}

TEST(Trace, SessionRateRoughlyMatchesBehavior) {
  // Count on-sessions of a user device over many days; expect within a
  // factor-2 band of sessions_per_day (loose: the hazard is hour-shaped).
  const auto& proto = device_catalog()[static_cast<std::size_t>(DeviceType::kTv)];
  HouseholdDevice tv;
  tv.spec = proto.spec;
  tv.behavior = proto.behavior;
  tv.hourly_usage_weight = proto.hourly_usage_weight;
  TraceConfig cfg;
  cfg.days = 30;
  const auto trace = generate_device_trace(tv, cfg, util::Rng(5));
  std::size_t sessions = 0;
  for (std::size_t m = 1; m < trace.minutes(); ++m) {
    if (trace.modes[m] == DeviceMode::kOn &&
        trace.modes[m - 1] != DeviceMode::kOn) {
      ++sessions;
    }
  }
  const double per_day = static_cast<double>(sessions) / 30.0;
  EXPECT_GT(per_day, tv.behavior.sessions_per_day * 0.4);
  EXPECT_LT(per_day, tv.behavior.sessions_per_day * 2.0);
}

TEST(Trace, HourOfDayHelpers) {
  EXPECT_EQ(hour_of_day(0), 0u);
  EXPECT_EQ(hour_of_day(59), 0u);
  EXPECT_EQ(hour_of_day(60), 1u);
  EXPECT_EQ(hour_of_day(kMinutesPerDay + 61), 1u);
  EXPECT_EQ(day_index(kMinutesPerDay - 1), 0u);
  EXPECT_EQ(day_index(kMinutesPerDay), 1u);
}

}  // namespace
}  // namespace pfdrl::data
