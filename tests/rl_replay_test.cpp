#include "rl/replay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pfdrl::rl {
namespace {

Transition make_transition(int tag) {
  Transition t;
  t.state = {static_cast<double>(tag)};
  t.action = tag % 3;
  t.reward = tag;
  t.next_state = {static_cast<double>(tag + 1)};
  return t;
}

TEST(Replay, ZeroCapacityThrows) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(Replay, SizeGrowsToCapacity) {
  ReplayBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  buf.push(make_transition(0));
  EXPECT_EQ(buf.size(), 1u);
  buf.push(make_transition(1));
  buf.push(make_transition(2));
  EXPECT_EQ(buf.size(), 3u);
  buf.push(make_transition(3));
  EXPECT_EQ(buf.size(), 3u);  // capped
  EXPECT_EQ(buf.capacity(), 3u);
}

TEST(Replay, OverwritesOldest) {
  ReplayBuffer buf(2);
  buf.push(make_transition(0));
  buf.push(make_transition(1));
  buf.push(make_transition(2));  // evicts 0
  util::Rng rng(1);
  std::set<double> rewards;
  for (int i = 0; i < 100; ++i) {
    rewards.insert(buf.sample(1, rng)[0]->reward);
  }
  EXPECT_EQ(rewards.count(0.0), 0u);
  EXPECT_EQ(rewards.count(1.0), 1u);
  EXPECT_EQ(rewards.count(2.0), 1u);
}

TEST(Replay, SampleFromEmptyThrows) {
  ReplayBuffer buf(4);
  util::Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), std::logic_error);
}

TEST(Replay, SampleSizeAndMembership) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 5; ++i) buf.push(make_transition(i));
  util::Rng rng(2);
  const auto batch = buf.sample(16, rng);  // with replacement, > size ok
  EXPECT_EQ(batch.size(), 16u);
  for (const auto* t : batch) {
    EXPECT_GE(t->reward, 0.0);
    EXPECT_LE(t->reward, 4.0);
  }
}

TEST(Replay, SampleCoversAllEntries) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(i));
  util::Rng rng(3);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) seen.insert(buf.sample(1, rng)[0]->reward);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Replay, ClearResets) {
  ReplayBuffer buf(4);
  buf.push(make_transition(0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  // clear() starts a fresh lifetime: a stale total_pushed() would
  // double-count pushes when per-round accounting diffs the counter.
  EXPECT_EQ(buf.total_pushed(), 0u);
  buf.push(make_transition(1));
  EXPECT_EQ(buf.total_pushed(), 1u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Replay, TotalPushedCounts) {
  ReplayBuffer buf(2);
  for (int i = 0; i < 10; ++i) buf.push(make_transition(i));
  EXPECT_EQ(buf.total_pushed(), 10u);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Replay, StoresFullTransition) {
  ReplayBuffer buf(1);
  Transition t;
  t.state = {1.0, 2.0};
  t.action = 2;
  t.reward = -30.0;
  t.next_state = {3.0, 4.0};
  t.terminal = true;
  buf.push(t);
  util::Rng rng(4);
  const auto* got = buf.sample(1, rng)[0];
  EXPECT_EQ(got->state, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(got->action, 2);
  EXPECT_EQ(got->reward, -30.0);
  EXPECT_EQ(got->next_state, (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE(got->terminal);
}

class ReplayCapacities : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReplayCapacities, NeverExceedsCapacity) {
  ReplayBuffer buf(GetParam());
  for (int i = 0; i < 100; ++i) {
    buf.push(make_transition(i));
    ASSERT_LE(buf.size(), GetParam());
  }
  EXPECT_EQ(buf.size(), std::min<std::size_t>(100, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Caps, ReplayCapacities,
                         ::testing::Values(1, 2, 7, 100, 2000));

// sample_into() must consume the identical RNG sequence as sample(), so
// swapping call sites between them cannot change a run's trajectory.
TEST(Replay, SampleIntoMatchesSample) {
  ReplayBuffer buf(16);
  for (int i = 0; i < 10; ++i) buf.push(make_transition(i));
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  const auto expected = buf.sample(6, rng_a);
  std::vector<const Transition*> got;
  buf.sample_into(6, rng_b, got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected[i]);
  // Reuse: a second draw refills without stale entries.
  const auto expected2 = buf.sample(3, rng_a);
  buf.sample_into(3, rng_b, got);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected2[i]);
}

// --- Warm-restart snapshot/restore -----------------------------------

// Restoring a snapshot must reproduce the ring exactly: storage order,
// write cursor, size and cumulative push counter — so the next push
// evicts the same slot it would have in the uninterrupted run.
TEST(ReplaySnapshot, RoundTripPreservesRingOrderAndCounters) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 6; ++i) buf.push(make_transition(i));  // wrapped twice
  const ReplayBufferState state = buf.capture_state();
  EXPECT_EQ(state.entries.size(), 4u);
  EXPECT_EQ(state.next, 2u);  // 6 % 4
  EXPECT_EQ(state.total_pushed, 6u);
  // Storage order: slots 0,1 were overwritten by tags 4,5; slots 2,3
  // still hold tags 2,3.
  EXPECT_EQ(state.entries[0].reward, 4.0);
  EXPECT_EQ(state.entries[1].reward, 5.0);
  EXPECT_EQ(state.entries[2].reward, 2.0);
  EXPECT_EQ(state.entries[3].reward, 3.0);

  ReplayBuffer restored(4);
  restored.push(make_transition(99));  // pre-existing junk must vanish
  restored.restore_state(state);
  EXPECT_EQ(restored.size(), 4u);
  EXPECT_EQ(restored.total_pushed(), 6u);
  // The next two pushes must evict tags 2 and 3 (cursor at slot 2).
  restored.push(make_transition(6));
  restored.push(make_transition(7));
  util::Rng rng(5);
  std::set<double> rewards;
  for (int i = 0; i < 300; ++i) rewards.insert(restored.sample(1, rng)[0]->reward);
  EXPECT_EQ(rewards, (std::set<double>{4.0, 5.0, 6.0, 7.0}));
}

TEST(ReplaySnapshot, PartiallyFilledRoundTrip) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 3; ++i) buf.push(make_transition(i));
  const auto state = buf.capture_state();
  EXPECT_EQ(state.entries.size(), 3u);
  EXPECT_EQ(state.next, 3u);
  ReplayBuffer restored(8);
  restored.restore_state(state);
  EXPECT_EQ(restored.size(), 3u);
  EXPECT_EQ(restored.total_pushed(), 3u);
  restored.push(make_transition(3));
  EXPECT_EQ(restored.size(), 4u);  // cursor continued, no overwrite yet
}

// After restore, sampling must consume the identical RNG sequence and
// land on the identical transitions as the original buffer — both via
// sample() and the allocation-free sample_into().
TEST(ReplaySnapshot, SamplingAfterRestoreMatchesOriginal) {
  ReplayBuffer original(16);
  for (int i = 0; i < 11; ++i) original.push(make_transition(i));
  ReplayBuffer restored(16);
  restored.restore_state(original.capture_state());

  util::Rng rng_a(123);
  util::Rng rng_b(123);
  const auto batch_a = original.sample(8, rng_a);
  std::vector<const Transition*> batch_b;
  restored.sample_into(8, rng_b, batch_b);
  ASSERT_EQ(batch_a.size(), batch_b.size());
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    EXPECT_EQ(batch_a[i]->reward, batch_b[i]->reward);
    EXPECT_EQ(batch_a[i]->state, batch_b[i]->state);
  }
  // And the RNG streams stay in lockstep afterwards.
  EXPECT_EQ(rng_a.next(), rng_b.next());
}

TEST(ReplaySnapshot, OversizedSnapshotThrows) {
  ReplayBuffer big(8);
  for (int i = 0; i < 8; ++i) big.push(make_transition(i));
  const auto state = big.capture_state();
  ReplayBuffer small(4);
  EXPECT_THROW(small.restore_state(state), std::invalid_argument);
}

TEST(ReplaySnapshot, InconsistentCursorThrows) {
  ReplayBuffer buf(4);
  ReplayBufferState state;
  state.entries = {make_transition(0), make_transition(1)};
  state.next = 0;  // filling buffer must have next == entries.size()
  EXPECT_THROW(buf.restore_state(state), std::invalid_argument);
  state.next = 2;
  buf.restore_state(state);  // consistent now
  EXPECT_EQ(buf.size(), 2u);
}

}  // namespace
}  // namespace pfdrl::rl
