#include "rl/replay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pfdrl::rl {
namespace {

Transition make_transition(int tag) {
  Transition t;
  t.state = {static_cast<double>(tag)};
  t.action = tag % 3;
  t.reward = tag;
  t.next_state = {static_cast<double>(tag + 1)};
  return t;
}

TEST(Replay, ZeroCapacityThrows) {
  EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(Replay, SizeGrowsToCapacity) {
  ReplayBuffer buf(3);
  EXPECT_TRUE(buf.empty());
  buf.push(make_transition(0));
  EXPECT_EQ(buf.size(), 1u);
  buf.push(make_transition(1));
  buf.push(make_transition(2));
  EXPECT_EQ(buf.size(), 3u);
  buf.push(make_transition(3));
  EXPECT_EQ(buf.size(), 3u);  // capped
  EXPECT_EQ(buf.capacity(), 3u);
}

TEST(Replay, OverwritesOldest) {
  ReplayBuffer buf(2);
  buf.push(make_transition(0));
  buf.push(make_transition(1));
  buf.push(make_transition(2));  // evicts 0
  util::Rng rng(1);
  std::set<double> rewards;
  for (int i = 0; i < 100; ++i) {
    rewards.insert(buf.sample(1, rng)[0]->reward);
  }
  EXPECT_EQ(rewards.count(0.0), 0u);
  EXPECT_EQ(rewards.count(1.0), 1u);
  EXPECT_EQ(rewards.count(2.0), 1u);
}

TEST(Replay, SampleFromEmptyThrows) {
  ReplayBuffer buf(4);
  util::Rng rng(1);
  EXPECT_THROW(buf.sample(1, rng), std::logic_error);
}

TEST(Replay, SampleSizeAndMembership) {
  ReplayBuffer buf(8);
  for (int i = 0; i < 5; ++i) buf.push(make_transition(i));
  util::Rng rng(2);
  const auto batch = buf.sample(16, rng);  // with replacement, > size ok
  EXPECT_EQ(batch.size(), 16u);
  for (const auto* t : batch) {
    EXPECT_GE(t->reward, 0.0);
    EXPECT_LE(t->reward, 4.0);
  }
}

TEST(Replay, SampleCoversAllEntries) {
  ReplayBuffer buf(4);
  for (int i = 0; i < 4; ++i) buf.push(make_transition(i));
  util::Rng rng(3);
  std::set<double> seen;
  for (int i = 0; i < 200; ++i) seen.insert(buf.sample(1, rng)[0]->reward);
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Replay, ClearResets) {
  ReplayBuffer buf(4);
  buf.push(make_transition(0));
  buf.clear();
  EXPECT_TRUE(buf.empty());
  // clear() starts a fresh lifetime: a stale total_pushed() would
  // double-count pushes when per-round accounting diffs the counter.
  EXPECT_EQ(buf.total_pushed(), 0u);
  buf.push(make_transition(1));
  EXPECT_EQ(buf.total_pushed(), 1u);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Replay, TotalPushedCounts) {
  ReplayBuffer buf(2);
  for (int i = 0; i < 10; ++i) buf.push(make_transition(i));
  EXPECT_EQ(buf.total_pushed(), 10u);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(Replay, StoresFullTransition) {
  ReplayBuffer buf(1);
  Transition t;
  t.state = {1.0, 2.0};
  t.action = 2;
  t.reward = -30.0;
  t.next_state = {3.0, 4.0};
  t.terminal = true;
  buf.push(t);
  util::Rng rng(4);
  const auto* got = buf.sample(1, rng)[0];
  EXPECT_EQ(got->state, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(got->action, 2);
  EXPECT_EQ(got->reward, -30.0);
  EXPECT_EQ(got->next_state, (std::vector<double>{3.0, 4.0}));
  EXPECT_TRUE(got->terminal);
}

class ReplayCapacities : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReplayCapacities, NeverExceedsCapacity) {
  ReplayBuffer buf(GetParam());
  for (int i = 0; i < 100; ++i) {
    buf.push(make_transition(i));
    ASSERT_LE(buf.size(), GetParam());
  }
  EXPECT_EQ(buf.size(), std::min<std::size_t>(100, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Caps, ReplayCapacities,
                         ::testing::Values(1, 2, 7, 100, 2000));

// sample_into() must consume the identical RNG sequence as sample(), so
// swapping call sites between them cannot change a run's trajectory.
TEST(Replay, SampleIntoMatchesSample) {
  ReplayBuffer buf(16);
  for (int i = 0; i < 10; ++i) buf.push(make_transition(i));
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  const auto expected = buf.sample(6, rng_a);
  std::vector<const Transition*> got;
  buf.sample_into(6, rng_b, got);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected[i]);
  // Reuse: a second draw refills without stale entries.
  const auto expected2 = buf.sample(3, rng_a);
  buf.sample_into(3, rng_b, got);
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], expected2[i]);
}

}  // namespace
}  // namespace pfdrl::rl
