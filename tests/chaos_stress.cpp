// Chaos soak (CTest label: stress). Hammers the exchange engine and both
// federation paths with every fault at once — drops, delay+jitter,
// duplication, reordering, rolling partitions, rolling crashes,
// stragglers, deadlines and quorum gates — over many rounds and seeds.
// The assertions are liveness and invariants, not trajectories: every
// round terminates, every live item either averages or falls back,
// bus accounting stays consistent, and two identically seeded soaks
// agree bitwise. Run the quick suite with `ctest -LE stress` to skip.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/pipeline.hpp"
#include "data/trace.hpp"
#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "sim/snapshot.hpp"

namespace pfdrl::fl {
namespace {

net::FaultPlan everything_plan(std::uint64_t seed) {
  net::FaultPlan plan;
  plan.link.drop_probability = 0.25;
  plan.delay_s = 0.001;
  plan.jitter_s = 0.003;
  plan.duplicate_probability = 0.1;
  plan.reorder = true;
  plan.seed = seed;
  // Rolling split-brain windows: every 10 rounds, agents {0,1,2} lose
  // the rest of the mesh for 3 rounds.
  for (std::uint64_t r = 5; r < 100; r += 10) {
    plan.partitions.push_back({.from_round = r,
                               .until_round = r + 3,
                               .group = {0, 1, 2}});
  }
  return plan;
}

ExchangePolicy everything_policy() {
  ExchangePolicy policy;
  policy.round_deadline_s = 0.006;
  policy.quorum_fraction = 0.4;
  policy.hub_retries = 3;
  policy.retry_backoff_s = 0.002;
  // Rolling crashes: agent (r / 7) % n down for rounds [7k, 7k+2).
  for (std::uint64_t k = 0; k < 14; ++k) {
    policy.failures.crashes.push_back(
        {.agent = static_cast<net::AgentId>(k % 8),
         .from_round = 7 * k,
         .until_round = 7 * k + 2});
  }
  policy.failures.stragglers.push_back({.agent = 5, .compute_delay_s = 0.004});
  policy.failures.stragglers.push_back({.agent = 6, .compute_delay_s = 0.02});
  return policy;
}

struct SoakTotals {
  std::uint64_t averaged = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t crashed = 0;
  std::uint64_t late = 0;
  std::uint64_t stale = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t retries = 0;
  std::vector<double> final_params;

  bool operator==(const SoakTotals&) const = default;
};

SoakTotals soak(net::TopologyKind kind, std::uint64_t seed,
                std::size_t rounds) {
  const std::size_t n = 8;
  const std::size_t len = 24;
  std::vector<std::vector<double>> params(n, std::vector<double>(len));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t i = 0; i < len; ++i) {
      params[a][i] = static_cast<double>(a * 1000 + i);
    }
  }

  net::MessageBus bus(net::Topology(kind, n), everything_plan(seed));
  ParamExchange::Options options;
  options.policy = everything_policy();
  ParamExchange exchange(bus, options);

  SoakTotals totals;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::vector<ExchangeItem> items;
    for (std::size_t a = 0; a < n; ++a) {
      items.push_back({.agent = static_cast<net::AgentId>(a),
                       // Two device-type groups of four homes each.
                       .device_type = static_cast<std::uint32_t>(a % 2),
                       .send = params[a],
                       .in_place = params[a]});
    }
    const auto stats = exchange.round(items, r, {});

    // Conservation: every live item either averaged or fell back.
    EXPECT_EQ(stats.items_averaged + stats.local_fallbacks +
                  stats.crashed_items,
              n)
        << "round " << r;
    totals.averaged += stats.items_averaged;
    totals.fallbacks += stats.local_fallbacks;
    totals.crashed += stats.crashed_items;
    totals.late += stats.late_msgs;
    totals.stale += stats.stale_msgs;
    totals.duplicates += stats.duplicates;
    totals.retries += stats.retries;
  }

  // Bus ledger stays consistent under all faults at once.
  const auto bs = bus.stats();
  EXPECT_GT(bs.messages_dropped, 0u);
  EXPECT_GE(bs.messages_dropped, bs.messages_partition_dropped);
  EXPECT_GT(bs.messages_duplicated, 0u);
  EXPECT_GT(bs.messages_delayed, 0u);
  EXPECT_GT(bs.simulated_fault_delay_seconds, 0.0);

  for (const auto& p : params) {
    totals.final_params.insert(totals.final_params.end(), p.begin(), p.end());
  }
  return totals;
}

TEST(ChaosStress, FullMeshSoakCompletesWithDegradation) {
  const auto totals = soak(net::TopologyKind::kFullMesh, 1234, 100);
  EXPECT_GT(totals.averaged, 0u);    // quorum was reachable sometimes
  EXPECT_GT(totals.fallbacks, 0u);   // ... and missed sometimes
  EXPECT_GT(totals.crashed, 0u);
  EXPECT_GT(totals.late, 0u);
  EXPECT_GT(totals.stale, 0u);       // crash backlogs were discarded
  EXPECT_GT(totals.duplicates, 0u);  // dedupe engaged
}

TEST(ChaosStress, StarSoakCompletesWithRetries) {
  const auto totals = soak(net::TopologyKind::kStar, 99, 100);
  EXPECT_GT(totals.averaged, 0u);
  EXPECT_GT(totals.fallbacks, 0u);
  EXPECT_GT(totals.retries, 0u);  // the lossy leaf->hub path retried
}

TEST(ChaosStress, SoakIsBitwiseDeterministicPerSeed) {
  for (auto kind : {net::TopologyKind::kFullMesh, net::TopologyKind::kStar}) {
    const auto first = soak(kind, 777, 60);
    const auto second = soak(kind, 777, 60);
    EXPECT_TRUE(first == second);
    const auto other = soak(kind, 778, 60);
    EXPECT_FALSE(first.final_params == other.final_params);
  }
}

// Snapshot-under-chaos soak: a full PFDRL pipeline under every fault at
// once (drops, delay+jitter, duplication, reordering, a partition
// window, crash windows — one spanning the snapshot boundary — a
// straggler, a deadline and a quorum gate) is snapshotted mid-run,
// pushed through the full serialize -> deserialize codec, restored into
// a fresh pipeline and run to completion. The resumed run's learned
// state (parameter digests) and evaluation results must match the
// uninterrupted run exactly: the fault-RNG streams restore bitwise and
// uncaptured inbox backlogs are invisible (the exchange discards stale
// backlog either way, docs/robustness.md).
TEST(ChaosStress, SnapshotResumeUnderChaosMatchesUninterrupted) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 4;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = 42;
  sc.trace.days = 2;
  sc.trace.seed = 42;
  const auto traces = sim::Scenario::generate(sc).traces;

  const auto make_config = [](obs::MetricsRegistry& reg) {
    auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
    cfg.forecast_method = forecast::Method::kLr;
    cfg.window.window = 8;
    cfg.window.horizon = 5;
    cfg.dqn.hidden = {12, 12};
    cfg.alpha = 2;
    cfg.beta_hours = 6.0;
    cfg.gamma_hours = 3.0;  // 8 DRL rounds over the training day
    cfg.fault.link.drop_probability = 0.2;
    cfg.fault.delay_s = 0.002;
    cfg.fault.jitter_s = 0.004;
    cfg.fault.duplicate_probability = 0.05;
    cfg.fault.reorder = true;
    cfg.fault.partitions.push_back(
        {.from_round = 1, .until_round = 3, .group = {0, 1}});
    cfg.robustness.round_deadline_s = 0.006;
    cfg.robustness.quorum_fraction = 0.5;
    cfg.robustness.failures.crashes.push_back(
        {.agent = 2, .from_round = 0, .until_round = 2});
    // Spans the round-4 snapshot boundary: home 1 is down both when the
    // snapshot is taken and when the resumed run starts.
    cfg.robustness.failures.crashes.push_back(
        {.agent = 1, .from_round = 3, .until_round = 5});
    cfg.robustness.failures.stragglers.push_back(
        {.agent = 3, .compute_delay_s = 0.02});
    cfg.metrics = &reg;
    return cfg;
  };

  const std::size_t day = data::kMinutesPerDay;
  const std::size_t cut = day + 4 * 180;  // after 4 of the 8 rounds

  // Uninterrupted reference.
  obs::MetricsRegistry reg_a;
  core::EmsPipeline a(traces, make_config(reg_a));
  a.train_forecasters(0, day);
  a.train_ems(day, 2 * day);

  // Interrupted run, snapshotted through the wire format at the cut.
  std::vector<std::uint8_t> wire;
  {
    obs::MetricsRegistry reg_b;
    core::EmsPipeline b(traces, make_config(reg_b));
    b.train_forecasters(0, day);
    b.train_ems(day, cut);
    wire = sim::serialize_snapshot(sim::capture_run(b, cut));
  }

  obs::MetricsRegistry reg_c;
  core::EmsPipeline c(traces, make_config(reg_c));
  sim::restore_run(c, sim::deserialize_snapshot(wire));
  c.train_ems(cut, 2 * day);

  const sim::RunSnapshot final_a = sim::capture_run(a);
  const sim::RunSnapshot final_c = sim::capture_run(c);
  ASSERT_EQ(final_a.agents.size(), final_c.agents.size());
  for (std::size_t i = 0; i < final_a.agents.size(); ++i) {
    const auto& x = final_a.agents[i].state;
    const auto& y = final_c.agents[i].state;
    EXPECT_EQ(nn::parameter_digest(x.online_params),
              nn::parameter_digest(y.online_params))
        << "agent " << i;
    EXPECT_EQ(nn::parameter_digest(x.target_params),
              nn::parameter_digest(y.target_params))
        << "agent " << i;
    EXPECT_EQ(x.rng.s, y.rng.s) << "agent " << i;
    EXPECT_EQ(x.act_steps, y.act_steps) << "agent " << i;
  }
  ASSERT_EQ(final_a.forecasters.size(), final_c.forecasters.size());
  for (std::size_t i = 0; i < final_a.forecasters.size(); ++i) {
    EXPECT_EQ(nn::parameter_digest(final_a.forecasters[i].parameters),
              nn::parameter_digest(final_c.forecasters[i].parameters))
        << "forecaster " << i;
  }

  EXPECT_EQ(a.forecast_accuracy(day, 2 * day),
            c.forecast_accuracy(day, 2 * day));
  const auto ra = a.evaluate(day, 2 * day);
  const auto rc = c.evaluate(day, 2 * day);
  ASSERT_EQ(ra.size(), rc.size());
  for (std::size_t h = 0; h < ra.size(); ++h) {
    EXPECT_EQ(ra[h].total_reward, rc[h].total_reward) << "home " << h;
    EXPECT_EQ(ra[h].comfort_violations, rc[h].comfort_violations)
        << "home " << h;
  }
}

// Crash-mid-pipeline resume: the same interrupt-and-restore drill with
// the dependency-driven round pipeline engaged (sharded run, default
// --sync-mode pipeline). The fault plan keeps delivery deterministic —
// scheduled crash windows only, one spanning the snapshot boundary — so
// the run stays pipeline-eligible, and the resumed run must match the
// uninterrupted one bitwise: the snapshot is taken at a segment
// boundary, where the pipeline has fully quiesced, so no in-flight
// round state can leak past the cut.
TEST(ChaosStress, PipelineCrashResumeMatchesUninterrupted) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 4;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = 42;
  sc.trace.days = 2;
  sc.trace.seed = 42;
  const auto traces = sim::Scenario::generate(sc).traces;

  const auto make_config = [](obs::MetricsRegistry& reg) {
    auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
    cfg.forecast_method = forecast::Method::kLr;
    cfg.window.window = 8;
    cfg.window.horizon = 5;
    cfg.dqn.hidden = {12, 12};
    cfg.alpha = 2;
    cfg.beta_hours = 6.0;
    cfg.gamma_hours = 3.0;  // 8 DRL rounds over the training day
    cfg.shards = 2;
    cfg.sync_mode = core::SyncMode::kPipeline;
    cfg.robustness.failures.crashes.push_back(
        {.agent = 2, .from_round = 0, .until_round = 2});
    // Spans the round-4 snapshot boundary: home 1 is down both when the
    // snapshot is taken and when the resumed run starts.
    cfg.robustness.failures.crashes.push_back(
        {.agent = 1, .from_round = 3, .until_round = 5});
    cfg.metrics = &reg;
    return cfg;
  };

  const std::size_t day = data::kMinutesPerDay;
  const std::size_t cut = day + 4 * 180;  // after 4 of the 8 rounds

  // Uninterrupted reference.
  obs::MetricsRegistry reg_a;
  core::EmsPipeline a(traces, make_config(reg_a));
  a.train_forecasters(0, day);
  a.train_ems(day, 2 * day);
  EXPECT_GT(reg_a.counter("ems.pipeline.rounds").value(), 0u)
      << "pipelined engine did not engage";

  // Interrupted run, snapshotted through the wire format at the cut.
  std::vector<std::uint8_t> wire;
  {
    obs::MetricsRegistry reg_b;
    core::EmsPipeline b(traces, make_config(reg_b));
    b.train_forecasters(0, day);
    b.train_ems(day, cut);
    EXPECT_GT(reg_b.counter("ems.pipeline.rounds").value(), 0u);
    wire = sim::serialize_snapshot(sim::capture_run(b, cut));
  }

  obs::MetricsRegistry reg_c;
  core::EmsPipeline c(traces, make_config(reg_c));
  sim::restore_run(c, sim::deserialize_snapshot(wire));
  c.train_ems(cut, 2 * day);
  EXPECT_GT(reg_c.counter("ems.pipeline.rounds").value(), 0u)
      << "resumed run fell back to the barrier engine";

  const sim::RunSnapshot final_a = sim::capture_run(a);
  const sim::RunSnapshot final_c = sim::capture_run(c);
  ASSERT_EQ(final_a.agents.size(), final_c.agents.size());
  for (std::size_t i = 0; i < final_a.agents.size(); ++i) {
    const auto& x = final_a.agents[i].state;
    const auto& y = final_c.agents[i].state;
    EXPECT_EQ(nn::parameter_digest(x.online_params),
              nn::parameter_digest(y.online_params))
        << "agent " << i;
    EXPECT_EQ(nn::parameter_digest(x.target_params),
              nn::parameter_digest(y.target_params))
        << "agent " << i;
    EXPECT_EQ(x.rng.s, y.rng.s) << "agent " << i;
    EXPECT_EQ(x.act_steps, y.act_steps) << "agent " << i;
  }
  ASSERT_EQ(final_a.forecasters.size(), final_c.forecasters.size());
  for (std::size_t i = 0; i < final_a.forecasters.size(); ++i) {
    EXPECT_EQ(nn::parameter_digest(final_a.forecasters[i].parameters),
              nn::parameter_digest(final_c.forecasters[i].parameters))
        << "forecaster " << i;
  }

  const auto ra = a.evaluate(day, 2 * day);
  const auto rc = c.evaluate(day, 2 * day);
  ASSERT_EQ(ra.size(), rc.size());
  for (std::size_t h = 0; h < ra.size(); ++h) {
    EXPECT_EQ(ra[h].total_reward, rc[h].total_reward) << "home " << h;
    EXPECT_EQ(ra[h].comfort_violations, rc[h].comfort_violations)
        << "home " << h;
  }
}

}  // namespace
}  // namespace pfdrl::fl
