// Lossy-link behaviour: the bus drops deliveries at the configured rate
// and the federated trainers degrade gracefully (they average whatever
// arrives) — while secure aggregation correctly refuses lossy links.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "fl/dfl.hpp"
#include "net/bus.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl {
namespace {

TEST(LossyBus, DropRateApproximatelyRespected) {
  net::LinkModel link;
  link.drop_probability = 0.3;
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2), link);
  net::Message msg;
  msg.sender = 0;
  msg.payload.assign(4, 1.0);
  const int n = 5000;
  for (int i = 0; i < n; ++i) bus.broadcast(msg);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_delivered + stats.messages_dropped,
            static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(stats.messages_dropped) / n, 0.3, 0.03);
}

TEST(LossyBus, ReliableLinkDropsNothing) {
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 3));
  net::Message msg;
  msg.sender = 0;
  for (int i = 0; i < 100; ++i) bus.broadcast(msg);
  EXPECT_EQ(bus.stats().messages_dropped, 0u);
  EXPECT_EQ(bus.stats().messages_delivered, 200u);
}

TEST(LossyBus, DroppedMessagesNotBilled) {
  net::LinkModel link;
  link.drop_probability = 1.0;  // black hole
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, 2), link);
  net::Message msg;
  msg.sender = 0;
  msg.payload.assign(100, 1.0);
  bus.broadcast(msg);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_delivered, 0u);
  EXPECT_EQ(stats.bytes_on_wire, 0u);
  EXPECT_EQ(bus.inbox_size(1), 0u);
}

std::vector<data::HouseholdTrace> small_traces() {
  sim::ScenarioConfig cfg;
  cfg.neighborhood.num_households = 3;
  cfg.neighborhood.min_devices = 3;
  cfg.neighborhood.max_devices = 3;
  cfg.trace.days = 2;
  return sim::Scenario::generate(cfg).traces;
}

TEST(LossyDfl, DegradesGracefully) {
  const auto traces = small_traces();
  fl::DflConfig cfg;
  cfg.method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.fault.link.drop_probability = 0.4;
  fl::DflTrainer trainer(traces, cfg);
  trainer.run(0, data::kMinutesPerDay);  // must not throw or deadlock
  const double acc =
      trainer.mean_test_accuracy(data::kMinutesPerDay, traces[0].minutes());
  EXPECT_GT(acc, 0.2);  // still learns from partial aggregates
  EXPECT_GT(trainer.comm_stats().messages_dropped, 0u);
}

TEST(LossyDrl, PipelinePlumbsLinkModelIntoDrlFederation) {
  // Regression: PipelineConfig::link used to stop at the forecast bus —
  // the DRL plan exchange always rode a perfect link, so drops never
  // showed up in drl_comm_stats(). Now both buses share the model.
  // Dense homes (8 of the 10 device types each) guarantee homologous
  // peers, so contributions flow whenever the link lets them through.
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 8;
  sc.neighborhood.max_devices = 8;
  sc.trace.days = 2;
  const auto traces = sim::Scenario::generate(sc).traces;
  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.dqn.hidden = {12, 12};
  cfg.gamma_hours = 2.0;  // several DRL rounds within one training day
  cfg.fault.link.drop_probability = 0.4;
  obs::MetricsRegistry reg;
  cfg.metrics = &reg;

  core::EmsPipeline pipeline(traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  const auto drl = pipeline.drl_comm_stats();
  EXPECT_GT(drl.messages_sent, 0u);
  EXPECT_GT(drl.messages_dropped, 0u);
  EXPECT_EQ(drl.messages_delivered + drl.messages_dropped,
            drl.messages_sent * 2u);  // full mesh of 3: two receivers each

  // The drops surface in the metrics export too.
  pipeline.sync_runtime_metrics();
  EXPECT_EQ(reg.counter("bus.drl.messages_dropped").value(),
            drl.messages_dropped);
  EXPECT_GT(reg.counter("drl.rounds").value(), 0u);
  EXPECT_GT(reg.counter("drl.contributions_accepted").value(), 0u);
}

TEST(LossyDfl, SecureAggregationRefusesLossyLink) {
  const auto traces = small_traces();
  fl::DflConfig cfg;
  cfg.method = forecast::Method::kLr;
  cfg.secure_aggregation = true;
  cfg.fault.link.drop_probability = 0.1;
  EXPECT_THROW(fl::DflTrainer(traces, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pfdrl
