#include "util/table.hpp"

#include <gtest/gtest.h>

namespace pfdrl::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "6"});
  t.add_row({"beta", "12"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 12"), std::string::npos);
}

TEST(TextTable, TitleIncluded) {
  TextTable t({"a"});
  const std::string out = t.render("My Title");
  EXPECT_EQ(out.rfind("My Title\n", 0), 0u);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"x", "longer"});
  t.add_row({"aaaaaa", "1"});
  const std::string out = t.render();
  // Every line has the same length (alignment property).
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    const auto len = (end == std::string::npos ? out.size() : end) - start;
    if (prev != std::string::npos) EXPECT_EQ(len, prev);
    prev = len;
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b"});
  t.add_row({"1"});
  EXPECT_NE(t.render().find("| 1"), std::string::npos);
}

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Format, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.921, 1), "92.1%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(0.005, 2), "0.50%");
}

}  // namespace
}  // namespace pfdrl::util
