// net::FaultPlan unit tests: spec parsers, per-bus seed derivation and
// stream decorrelation, duplicate billing, injected-delay arrival math,
// partition windows and reordering determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/bus.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"

namespace pfdrl::net {
namespace {

TEST(FaultPlanParse, FullSpecRoundTrips) {
  const auto plan = parse_fault_plan(
      "drop=0.2,delay=0.01,jitter=0.005,dup=0.02,reorder=1,bw=1e6,"
      "latency=0.003,seed=99");
  EXPECT_DOUBLE_EQ(plan.link.drop_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.delay_s, 0.01);
  EXPECT_DOUBLE_EQ(plan.jitter_s, 0.005);
  EXPECT_DOUBLE_EQ(plan.duplicate_probability, 0.02);
  EXPECT_TRUE(plan.reorder);
  EXPECT_DOUBLE_EQ(plan.link.bytes_per_second, 1e6);
  EXPECT_DOUBLE_EQ(plan.link.base_latency_s, 0.003);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_FALSE(plan.reliable());
}

TEST(FaultPlanParse, EmptySpecIsReliableDefault) {
  const auto plan = parse_fault_plan("");
  EXPECT_TRUE(plan.reliable());
  EXPECT_DOUBLE_EQ(plan.link.drop_probability, 0.0);
  EXPECT_EQ(plan.seed, 0u);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("drop"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("nope=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("drop=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("drop=1.0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("dup=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("delay=0.1x"), std::invalid_argument);
}

TEST(FaultPlanParse, WindowSpecs) {
  const auto w = parse_partition("3:7:0,2,5");
  EXPECT_EQ(w.from_round, 3u);
  EXPECT_EQ(w.until_round, 7u);
  EXPECT_EQ(w.group, (std::vector<AgentId>{0, 2, 5}));
  EXPECT_THROW(parse_partition("3:7"), std::invalid_argument);
  EXPECT_THROW(parse_partition("3:7:"), std::invalid_argument);

  const auto c = parse_crash("4:2:9");
  EXPECT_EQ(c.agent, 4u);
  EXPECT_EQ(c.from_round, 2u);
  EXPECT_EQ(c.until_round, 9u);
  EXPECT_THROW(parse_crash("4:2"), std::invalid_argument);

  const auto s = parse_straggler("3:0.25");
  EXPECT_EQ(s.agent, 3u);
  EXPECT_DOUBLE_EQ(s.compute_delay_s, 0.25);
  EXPECT_THROW(parse_straggler("3"), std::invalid_argument);
}

TEST(FaultSeed, DerivationIsDeterministicAndDecorrelated) {
  const auto a = derive_fault_seed(42, 1);
  EXPECT_EQ(a, derive_fault_seed(42, 1));
  EXPECT_NE(a, 0u);  // 0 is the "unset" sentinel
  EXPECT_NE(a, derive_fault_seed(42, 2));
  EXPECT_NE(a, derive_fault_seed(43, 1));
  EXPECT_NE(derive_fault_seed(0, 1), derive_fault_seed(0, 2));
}

// Broadcast `n` indexed messages over a 2-agent mesh and return the set
// of indices that survived the drop lottery at agent 1.
std::vector<int> delivered_mask(FaultPlan plan, int n) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2), std::move(plan));
  for (int i = 0; i < n; ++i) {
    Message msg;
    msg.sender = 0;
    msg.round = static_cast<std::uint64_t>(i);
    bus.broadcast(msg);
  }
  std::vector<int> out;
  for (const auto& m : bus.drain(1)) out.push_back(static_cast<int>(m.round));
  return out;
}

TEST(FaultSeed, DistinctBusStreamsProduceDistinctDropMasks) {
  FaultPlan plan;
  plan.link.drop_probability = 0.5;
  FaultPlan dfl = plan, drl = plan;
  dfl.seed = derive_fault_seed(7, 1);
  drl.seed = derive_fault_seed(7, 2);
  // Same seed => identical mask; sibling bus => different mask. 64 draws
  // at p=0.5 collide with probability 2^-64.
  EXPECT_EQ(delivered_mask(dfl, 64), delivered_mask(dfl, 64));
  EXPECT_NE(delivered_mask(dfl, 64), delivered_mask(drl, 64));
}

TEST(FaultBus, DuplicateDeliveriesBilledAndEnqueued) {
  FaultPlan plan;
  plan.duplicate_probability = 1.0;
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2), plan);
  Message msg;
  msg.sender = 0;
  msg.payload.assign(16, 1.0);
  const std::size_t bytes = msg.wire_bytes();
  bus.broadcast(msg);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.messages_duplicated, 1u);
  EXPECT_EQ(stats.bytes_on_wire, 2 * bytes);  // the retransmission is billed
  EXPECT_EQ(bus.inbox_size(1), 2u);
  // The copy is a retransmission: one extra transfer later, same payload.
  const auto msgs = bus.drain(1);
  ASSERT_EQ(msgs.size(), 2u);
  const double transfer = bus.fault_plan().link.transfer_seconds(bytes);
  EXPECT_DOUBLE_EQ(msgs[0].arrival_s, transfer);
  EXPECT_DOUBLE_EQ(msgs[1].arrival_s, 2 * transfer);
}

TEST(FaultBus, InjectedDelayAccumulatesIntoArrival) {
  FaultPlan plan;
  plan.delay_s = 0.5;
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2), plan);
  Message msg;
  msg.sender = 0;
  msg.arrival_s = 0.25;  // sender-side compute delay (straggler model)
  msg.payload.assign(4, 1.0);
  const double transfer = plan.link.transfer_seconds(msg.wire_bytes());
  bus.broadcast(msg);
  const auto msgs = bus.drain(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_DOUBLE_EQ(msgs[0].arrival_s, 0.25 + transfer + 0.5);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_delayed, 1u);
  EXPECT_DOUBLE_EQ(stats.simulated_fault_delay_seconds, 0.5);
}

TEST(FaultBus, JitterStaysWithinBound) {
  FaultPlan plan;
  plan.jitter_s = 0.1;
  plan.seed = 5;
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2), plan);
  Message msg;
  msg.sender = 0;
  const double transfer = plan.link.transfer_seconds(msg.wire_bytes());
  for (int i = 0; i < 50; ++i) bus.broadcast(msg);
  for (const auto& m : bus.drain(1)) {
    EXPECT_GE(m.arrival_s, transfer);
    EXPECT_LT(m.arrival_s, transfer + 0.1);
  }
  EXPECT_EQ(bus.stats().messages_delayed, 50u);
}

TEST(FaultBus, PartitionWindowCutsCrossGroupTraffic) {
  FaultPlan plan;
  PartitionWindow w;
  w.from_round = 2;
  w.until_round = 4;
  w.group = {0};
  plan.partitions.push_back(w);
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2), plan);
  Message msg;
  msg.sender = 0;
  for (std::uint64_t round : {0, 2, 3, 4}) {
    msg.round = round;
    bus.broadcast(msg);
  }
  const auto delivered = bus.drain(1);
  ASSERT_EQ(delivered.size(), 2u);  // rounds 0 and 4 pass; 2 and 3 are cut
  EXPECT_EQ(delivered[0].round, 0u);
  EXPECT_EQ(delivered[1].round, 4u);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_dropped, 2u);
  EXPECT_EQ(stats.messages_partition_dropped, 2u);
}

TEST(FaultBus, PartitionLeavesIntraGroupTraffic) {
  FaultPlan plan;
  PartitionWindow w;
  w.from_round = 0;
  w.until_round = 10;
  w.group = {0, 1};
  plan.partitions.push_back(w);
  MessageBus bus(Topology(TopologyKind::kFullMesh, 3), plan);
  Message msg;
  msg.sender = 0;
  bus.broadcast(msg);
  EXPECT_EQ(bus.inbox_size(1), 1u);  // same side of the split
  EXPECT_EQ(bus.inbox_size(2), 0u);  // severed
  EXPECT_EQ(bus.stats().messages_partition_dropped, 1u);
}

TEST(FaultBus, ReorderPermutesDeterministically) {
  FaultPlan plan;
  plan.reorder = true;
  plan.seed = 11;
  const auto run = [&plan] {
    MessageBus bus(Topology(TopologyKind::kFullMesh, 2), plan);
    Message msg;
    msg.sender = 0;
    for (std::uint64_t i = 0; i < 20; ++i) {
      msg.round = i;
      bus.broadcast(msg);
    }
    std::vector<std::uint64_t> order;
    for (const auto& m : bus.drain(1)) order.push_back(m.round);
    return order;
  };
  auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);  // same seed, same permutation
  ASSERT_EQ(first.size(), 20u);
  std::sort(first.begin(), first.end());
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(first[i], i);  // no loss
}

}  // namespace
}  // namespace pfdrl::net
