#include <gtest/gtest.h>

#include <cmath>

#include "nn/activation.hpp"
#include "nn/loss.hpp"

namespace pfdrl::nn {
namespace {

TEST(Activation, ReluValues) {
  EXPECT_EQ(activate(Activation::kRelu, -1.0), 0.0);
  EXPECT_EQ(activate(Activation::kRelu, 2.5), 2.5);
  EXPECT_EQ(activate(Activation::kRelu, 0.0), 0.0);
}

TEST(Activation, SigmoidValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kSigmoid, 0.0), 0.5);
  EXPECT_NEAR(activate(Activation::kSigmoid, 100.0), 1.0, 1e-12);
  EXPECT_NEAR(activate(Activation::kSigmoid, -100.0), 0.0, 1e-12);
}

TEST(Activation, TanhValues) {
  EXPECT_DOUBLE_EQ(activate(Activation::kTanh, 0.0), 0.0);
  EXPECT_NEAR(activate(Activation::kTanh, 3.0), std::tanh(3.0), 1e-15);
}

TEST(Activation, IdentityPassThrough) {
  EXPECT_EQ(activate(Activation::kIdentity, -7.25), -7.25);
  EXPECT_EQ(activate_grad_from_output(Activation::kIdentity, 123.0), 1.0);
}

class ActivationGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradCheck, MatchesFiniteDifference) {
  const Activation act = GetParam();
  const double eps = 1e-6;
  for (double x : {-2.0, -0.5, 0.3, 1.7}) {
    const double y = activate(act, x);
    const double numeric =
        (activate(act, x + eps) - activate(act, x - eps)) / (2 * eps);
    const double analytic = activate_grad_from_output(act, y);
    EXPECT_NEAR(analytic, numeric, 1e-5) << activation_name(act) << " at " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(All, ActivationGradCheck,
                         ::testing::Values(Activation::kIdentity,
                                           Activation::kSigmoid,
                                           Activation::kTanh));

TEST(Activation, ReluGradFromOutput) {
  // Relu's derivative from output: positive output -> 1, zero output -> 0.
  EXPECT_EQ(activate_grad_from_output(Activation::kRelu, 3.0), 1.0);
  EXPECT_EQ(activate_grad_from_output(Activation::kRelu, 0.0), 0.0);
}

TEST(Activation, InplaceMatchesScalar) {
  Matrix m{{-1.0, 0.5, 2.0}};
  Matrix copy = m;
  activate_inplace(Activation::kSigmoid, m);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.data()[i],
                     activate(Activation::kSigmoid, copy.data()[i]));
  }
}

TEST(Huber, QuadraticInsideDelta) {
  EXPECT_DOUBLE_EQ(huber(0.5, 1.0), 0.125);
  EXPECT_DOUBLE_EQ(huber(-0.5, 1.0), 0.125);
}

TEST(Huber, LinearOutsideDelta) {
  EXPECT_DOUBLE_EQ(huber(3.0, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(huber(-3.0, 1.0), 2.5);
}

TEST(Huber, ContinuousAtDelta) {
  const double delta = 1.0;
  EXPECT_NEAR(huber(delta - 1e-9, delta), huber(delta + 1e-9, delta), 1e-8);
}

TEST(Huber, GradClampsAtDelta) {
  EXPECT_DOUBLE_EQ(huber_grad(0.4, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(huber_grad(5.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(huber_grad(-5.0, 1.0), -1.0);
}

TEST(Loss, MseKnownValue) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kMse, pred, target), 2.5);
}

TEST(Loss, MaeKnownValue) {
  const Matrix pred{{1.0, 2.0}};
  const Matrix target{{0.0, 4.0}};
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kMae, pred, target), 1.5);
}

TEST(Loss, HuberKnownValue) {
  const Matrix pred{{0.5, 3.0}};
  const Matrix target{{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(loss_value(LossKind::kHuber, pred, target),
                   (0.125 + 2.5) / 2.0);
}

TEST(Loss, ZeroWhenEqual) {
  const Matrix m{{1.0, -2.0, 3.0}};
  for (auto kind : {LossKind::kMse, LossKind::kMae, LossKind::kHuber}) {
    EXPECT_EQ(loss_value(kind, m, m), 0.0);
  }
}

class LossGradCheck : public ::testing::TestWithParam<LossKind> {};

TEST_P(LossGradCheck, MatchesFiniteDifference) {
  const LossKind kind = GetParam();
  Matrix pred{{0.3, -1.7, 2.2}};
  const Matrix target{{0.0, 0.5, 2.0}};
  Matrix grad;
  loss_grad(kind, pred, target, grad);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    Matrix plus = pred;
    Matrix minus = pred;
    plus.data()[i] += eps;
    minus.data()[i] -= eps;
    const double numeric = (loss_value(kind, plus, target) -
                            loss_value(kind, minus, target)) /
                           (2 * eps);
    EXPECT_NEAR(grad.data()[i], numeric, 1e-5) << loss_name(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(All, LossGradCheck,
                         ::testing::Values(LossKind::kMse, LossKind::kMae,
                                           LossKind::kHuber));

TEST(Loss, NamesStable) {
  EXPECT_STREQ(loss_name(LossKind::kMse), "mse");
  EXPECT_STREQ(loss_name(LossKind::kMae), "mae");
  EXPECT_STREQ(loss_name(LossKind::kHuber), "huber");
}

}  // namespace
}  // namespace pfdrl::nn
