#include "forecast/selection.hpp"

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace pfdrl::forecast {
namespace {

data::DeviceTrace sample_trace() {
  data::NeighborhoodConfig nc;
  nc.num_households = 1;
  nc.min_devices = 4;
  nc.max_devices = 4;
  const auto home = data::make_neighborhood(nc)[0];
  data::TraceConfig tc;
  tc.days = 2;
  const auto trace = data::generate_household_trace(home, tc);
  for (const auto& d : trace.devices) {
    if (!d.spec.protected_device) return d;
  }
  return trace.devices[0];
}

SelectionConfig cheap_selection() {
  SelectionConfig cfg;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.candidates = {Method::kLr, Method::kSvr, Method::kBp};  // no BPTT
  return cfg;
}

TEST(Selection, RanksAllCandidates) {
  const auto trace = sample_trace();
  const auto scores =
      rank_methods(trace, 0, trace.minutes(), cheap_selection());
  ASSERT_EQ(scores.size(), 3u);
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].accuracy, scores[i].accuracy);  // sorted
  }
  for (const auto& s : scores) {
    EXPECT_GE(s.accuracy, 0.0);
    EXPECT_LE(s.accuracy, 1.0);
  }
}

TEST(Selection, WinnerIsTopRanked) {
  const auto trace = sample_trace();
  const auto cfg = cheap_selection();
  const auto scores = rank_methods(trace, 0, trace.minutes(), cfg);
  EXPECT_EQ(select_method(trace, 0, trace.minutes(), cfg),
            scores.front().method);
}

TEST(Selection, EmptyCandidatesThrow) {
  const auto trace = sample_trace();
  SelectionConfig cfg = cheap_selection();
  cfg.candidates.clear();
  EXPECT_THROW(rank_methods(trace, 0, trace.minutes(), cfg),
               std::invalid_argument);
}

TEST(Selection, DeterministicPerSeed) {
  const auto trace = sample_trace();
  const auto cfg = cheap_selection();
  const auto a = rank_methods(trace, 0, trace.minutes(), cfg);
  const auto b = rank_methods(trace, 0, trace.minutes(), cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].method, b[i].method);
    EXPECT_DOUBLE_EQ(a[i].accuracy, b[i].accuracy);
  }
}

TEST(Selection, NeighborhoodChoiceIsACandidate) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 2;
  sc.neighborhood.min_devices = 3;
  sc.neighborhood.max_devices = 3;
  sc.trace.days = 2;
  const auto scenario = sim::Scenario::generate(sc);
  const auto cfg = cheap_selection();
  const Method chosen = select_method_for_neighborhood(
      scenario.traces, 0, scenario.minutes(), cfg);
  bool is_candidate = false;
  for (auto m : cfg.candidates) {
    if (m == chosen) is_candidate = true;
  }
  EXPECT_TRUE(is_candidate);
}

TEST(Selection, NeighborhoodRejectsEmpty) {
  std::vector<data::HouseholdTrace> empty;
  EXPECT_THROW(
      select_method_for_neighborhood(empty, 0, 100, cheap_selection()),
      std::invalid_argument);
}

}  // namespace
}  // namespace pfdrl::forecast
