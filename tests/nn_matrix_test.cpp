#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (double& x : m.data()) x = rng.normal();
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      out(i, j) = s;
    }
  }
  return out;
}

TEST(Matrix, ConstructZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (double x : m.data()) EXPECT_EQ(x, 0.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, FillAndZero) {
  Matrix m(2, 2);
  m.fill(7.0);
  EXPECT_EQ(m(1, 1), 7.0);
  m.zero();
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, AddSubScale) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{10.0, 20.0}};
  a += b;
  EXPECT_EQ(a(0, 1), 22.0);
  a -= b;
  EXPECT_EQ(a(0, 1), 2.0);
  a *= 3.0;
  EXPECT_EQ(a(0, 0), 3.0);
}

TEST(Matrix, Axpy) {
  Matrix a{{1.0, 1.0}};
  const Matrix b{{2.0, 4.0}};
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
}

TEST(Matrix, Apply) {
  Matrix m{{-1.0, 2.0}};
  m.apply([](double x) { return x * x; });
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 4.0);
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
}

TEST(Matrix, SquaredNorm) {
  Matrix m{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m.squared_norm(), 25.0);
}

TEST(Matrix, Equality) {
  Matrix a{{1.0}};
  Matrix b{{1.0}};
  Matrix c{{2.0}};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Matmul, KnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

class MatmulShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulShapes, MatchesNaive) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(k), rng);
  const Matrix b = random_matrix(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(n), rng);
  const Matrix expected = naive_matmul(a, b);
  const Matrix got = matmul(a, b);
  ASSERT_EQ(got.rows(), expected.rows());
  ASSERT_EQ(got.cols(), expected.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST_P(MatmulShapes, ThreadedMatchesSerial) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(m + k + n));
  const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                 static_cast<std::size_t>(k), rng);
  const Matrix b = random_matrix(static_cast<std::size_t>(k),
                                 static_cast<std::size_t>(n), rng);
  const Matrix serial = matmul(a, b, false);
  const Matrix threaded = matmul(a, b, true);
  // Bitwise identical: each output element has a fixed accumulation order.
  EXPECT_EQ(serial, threaded);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{5, 1, 5}, std::tuple{16, 16, 16},
                      std::tuple{33, 17, 9}, std::tuple{64, 64, 64}));

TEST(Matmul, AtB) {
  util::Rng rng(5);
  const Matrix a = random_matrix(7, 4, rng);
  const Matrix b = random_matrix(7, 3, rng);
  Matrix got;
  matmul_at_b(a, b, got);
  const Matrix expected = naive_matmul(a.transposed(), b);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST(Matmul, ABt) {
  util::Rng rng(6);
  const Matrix a = random_matrix(5, 6, rng);
  const Matrix b = random_matrix(4, 6, rng);
  Matrix got;
  matmul_a_bt(a, b, got);
  const Matrix expected = naive_matmul(a, b.transposed());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got.data()[i], expected.data()[i], 1e-10);
  }
}

TEST(Matmul, AddRowVector) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix bias{{10.0, 20.0}};
  add_row_vector(m, bias);
  EXPECT_EQ(m(0, 0), 11.0);
  EXPECT_EQ(m(1, 1), 24.0);
}

TEST(Matmul, SumRows) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix out;
  sum_rows(m, out);
  ASSERT_EQ(out.rows(), 1u);
  EXPECT_DOUBLE_EQ(out(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 12.0);
}

TEST(Matmul, OutputResizedWhenNeeded) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b{{2.0}, {3.0}};
  Matrix out(7, 9);  // wrong shape on purpose
  matmul(a, b, out);
  ASSERT_EQ(out.rows(), 2u);
  ASSERT_EQ(out.cols(), 1u);
  EXPECT_DOUBLE_EQ(out(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 3.0);
}

TEST(Matmul, OutAliasingAIsGuarded) {
  util::Rng rng(7);
  Matrix a = random_matrix(4, 4, rng);
  const Matrix b = random_matrix(4, 4, rng);
  const Matrix expected = matmul(a, b);
  matmul(a, b, a);  // out aliases a: must detour through a temporary
  EXPECT_EQ(a, expected);
}

TEST(Matmul, OutAliasingBIsGuarded) {
  util::Rng rng(8);
  const Matrix a = random_matrix(3, 3, rng);
  Matrix b = random_matrix(3, 3, rng);
  const Matrix expected = matmul(a, b);
  matmul(a, b, b);  // out aliases b
  EXPECT_EQ(b, expected);
}

// Blocked a*b^T kernel vs the naive reference on shapes that exercise
// the 4-wide register block and its remainder (rows % 4 in {0,1,2,3}).
TEST(Matmul, ABtShapesMatchNaive) {
  util::Rng rng(9);
  for (const auto [m, k, n] :
       {std::tuple{1, 1, 1}, std::tuple{2, 5, 3}, std::tuple{5, 6, 4},
        std::tuple{7, 3, 6}, std::tuple{4, 8, 9}, std::tuple{13, 5, 11}}) {
    const Matrix a = random_matrix(static_cast<std::size_t>(m),
                                   static_cast<std::size_t>(k), rng);
    const Matrix b = random_matrix(static_cast<std::size_t>(n),
                                   static_cast<std::size_t>(k), rng);
    Matrix got;
    matmul_a_bt(a, b, got);
    const Matrix expected = naive_matmul(a, b.transposed());
    ASSERT_EQ(got.rows(), expected.rows());
    ASSERT_EQ(got.cols(), expected.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got.data()[i], expected.data()[i], 1e-10)
          << "shape " << m << "x" << k << " * (" << n << "x" << k << ")^T";
    }
  }
}

TEST(Matrix, ReshapeReusesCapacity) {
  Matrix m(4, 8);
  const std::size_t grown_first = m.reshape(8, 8);  // must grow
  EXPECT_GT(grown_first, 0u);
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.cols(), 8u);
  const std::size_t cap = m.capacity();
  EXPECT_EQ(m.reshape(2, 3), 0u);  // shrink: buffer reused
  EXPECT_EQ(m.reshape(8, 8), 0u);  // back up within capacity: reused
  EXPECT_EQ(m.capacity(), cap);
}

}  // namespace
}  // namespace pfdrl::nn
