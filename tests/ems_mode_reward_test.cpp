#include <gtest/gtest.h>

#include "ems/mode.hpp"
#include "ems/reward.hpp"

namespace pfdrl::ems {
namespace {

using data::DeviceMode;

ModeBands tv_bands() {
  ModeBands b;
  b.standby_watts = 6.0;
  b.on_watts = 120.0;
  return b;
}

TEST(ModeClassify, OffBelowFloor) {
  EXPECT_EQ(classify_mode(0.0, tv_bands()), DeviceMode::kOff);
  EXPECT_EQ(classify_mode(0.4, tv_bands()), DeviceMode::kOff);
}

TEST(ModeClassify, StandbyWithinBand) {
  const auto b = tv_bands();
  EXPECT_EQ(classify_mode(6.0, b), DeviceMode::kStandby);
  EXPECT_EQ(classify_mode(5.5, b), DeviceMode::kStandby);   // 0.92x
  EXPECT_EQ(classify_mode(6.5, b), DeviceMode::kStandby);   // 1.08x
}

TEST(ModeClassify, OnWithinBand) {
  const auto b = tv_bands();
  EXPECT_EQ(classify_mode(120.0, b), DeviceMode::kOn);
  EXPECT_EQ(classify_mode(109.0, b), DeviceMode::kOn);
  EXPECT_EQ(classify_mode(131.0, b), DeviceMode::kOn);
}

TEST(ModeClassify, FallbackNearestCenter) {
  const auto b = tv_bands();
  // 20 W is outside both bands but far closer to standby in log space.
  EXPECT_EQ(classify_mode(20.0, b), DeviceMode::kStandby);
  // 80 W leans on.
  EXPECT_EQ(classify_mode(80.0, b), DeviceMode::kOn);
  // 0.7 W: nearest is off-ish/standby; must not be on.
  EXPECT_NE(classify_mode(0.7, b), DeviceMode::kOn);
}

TEST(ModeClassify, HvacScale) {
  ModeBands b;
  b.standby_watts = 10.0;
  b.on_watts = 1800.0;
  EXPECT_EQ(classify_mode(10.5, b), DeviceMode::kStandby);
  EXPECT_EQ(classify_mode(1850.0, b), DeviceMode::kOn);
  EXPECT_EQ(classify_mode(40.0, b), DeviceMode::kStandby);  // log-nearest
}

TEST(ModeClassify, BandsForSpec) {
  data::DeviceSpec spec;
  spec.standby_watts = 3.3;
  spec.on_watts = 77.0;
  const auto b = bands_for(spec);
  EXPECT_DOUBLE_EQ(b.standby_watts, 3.3);
  EXPECT_DOUBLE_EQ(b.on_watts, 77.0);
  EXPECT_DOUBLE_EQ(b.band, 0.10);
}

TEST(ModeClassify, ModeWatts) {
  const auto b = tv_bands();
  EXPECT_EQ(mode_watts(DeviceMode::kOff, b), 0.0);
  EXPECT_EQ(mode_watts(DeviceMode::kStandby, b), 6.0);
  EXPECT_EQ(mode_watts(DeviceMode::kOn, b), 120.0);
}

struct BandBoundaryCase {
  double watts_factor;  // multiple of the standby level
  DeviceMode expected;
};

class StandbyBandSweep : public ::testing::TestWithParam<BandBoundaryCase> {};

TEST_P(StandbyBandSweep, PaperBandSemantics) {
  const auto b = tv_bands();
  const double watts = GetParam().watts_factor * b.standby_watts;
  EXPECT_EQ(classify_mode(watts, b), GetParam().expected)
      << "factor " << GetParam().watts_factor;
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, StandbyBandSweep,
    ::testing::Values(BandBoundaryCase{0.901, DeviceMode::kStandby},
                      BandBoundaryCase{1.0, DeviceMode::kStandby},
                      BandBoundaryCase{1.099, DeviceMode::kStandby},
                      // Just outside the band the log-nearest fallback
                      // still lands on standby for a 20x on/standby gap.
                      BandBoundaryCase{1.2, DeviceMode::kStandby},
                      BandBoundaryCase{0.85, DeviceMode::kStandby}));

// ---- Reward table (paper Table 1, asserted verbatim) ----

TEST(Reward, Table1Exact) {
  using M = DeviceMode;
  EXPECT_DOUBLE_EQ(reward(M::kOn, M::kOn), 10.0);
  EXPECT_DOUBLE_EQ(reward(M::kOn, M::kStandby), -10.0);
  EXPECT_DOUBLE_EQ(reward(M::kOn, M::kOff), -30.0);
  EXPECT_DOUBLE_EQ(reward(M::kStandby, M::kOn), -10.0);
  EXPECT_DOUBLE_EQ(reward(M::kStandby, M::kStandby), 10.0);
  EXPECT_DOUBLE_EQ(reward(M::kStandby, M::kOff), 30.0);  // the exception
  EXPECT_DOUBLE_EQ(reward(M::kOff, M::kOn), -30.0);
  EXPECT_DOUBLE_EQ(reward(M::kOff, M::kStandby), -10.0);
  EXPECT_DOUBLE_EQ(reward(M::kOff, M::kOff), 10.0);
}

TEST(Reward, OptimalActions) {
  EXPECT_EQ(optimal_action(DeviceMode::kOn), DeviceMode::kOn);
  EXPECT_EQ(optimal_action(DeviceMode::kStandby), DeviceMode::kOff);
  EXPECT_EQ(optimal_action(DeviceMode::kOff), DeviceMode::kOff);
}

TEST(Reward, OptimalActionMaximizesTable) {
  for (auto truth :
       {DeviceMode::kOff, DeviceMode::kStandby, DeviceMode::kOn}) {
    const auto best = optimal_action(truth);
    for (auto act : {DeviceMode::kOff, DeviceMode::kStandby, DeviceMode::kOn}) {
      EXPECT_LE(reward(truth, act), reward(truth, best));
    }
  }
}

TEST(Reward, ActionModeMapping) {
  EXPECT_EQ(action_to_mode(0), DeviceMode::kOff);
  EXPECT_EQ(action_to_mode(1), DeviceMode::kStandby);
  EXPECT_EQ(action_to_mode(2), DeviceMode::kOn);
  EXPECT_EQ(mode_to_action(DeviceMode::kOn), 2);
  EXPECT_EQ(kNumActions, 3);
}

}  // namespace
}  // namespace pfdrl::ems
