// Data-race stress for the concurrency-sensitive pieces: the obs metrics
// registry and the work-stealing thread pool. Built with
// -fsanitize=thread (see tests/CMakeLists.txt); ThreadSanitizer exits
// non-zero on any detected race, so a clean exit 0 is the pass signal.
// The value checks at the end double as a lost-update detector when the
// binary is run without TSan.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace pfdrl;
  obs::MetricsRegistry reg;
  util::ThreadPool pool(4);

  constexpr int kThreads = 8;
  constexpr int kIters = 3000;

  // Phase 1: raw threads racing on shared instruments while the registry
  // map keeps growing underneath them.
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&reg, t] {
        for (int i = 0; i < kIters; ++i) {
          reg.counter("stress.events").add();
          reg.gauge("stress.hwm").update_max(static_cast<double>(i));
          reg.histogram("stress.hist", obs::Histogram::count_buckets())
              .observe(static_cast<double>(i % 128));
          if (i % 64 == 0) {
            reg.counter("born." + std::to_string((t * kIters + i) % 97))
                .add();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  // Phase 2: pool sweeps recording spans + counters from worker threads,
  // with a Series append on the caller between sweeps.
  obs::Counter& pool_iters = reg.counter("stress.pool_iters");
  obs::Histogram& span_hist = reg.histogram("stress.span_seconds");
  constexpr int kRounds = 20;
  constexpr std::size_t kSweep = 512;
  for (int round = 0; round < kRounds; ++round) {
    pool.parallel_for(0, kSweep, [&](std::size_t i) {
      obs::SpanTimer span(span_hist);
      pool_iters.add();
      reg.series("stress.series" + std::to_string(i % 4));  // create race
    });
    reg.series("stress.rounds").append(static_cast<double>(round));
  }

  // Phase 3: exception propagation across the sweep barrier.
  bool caught = false;
  try {
    pool.parallel_for(0, 256, [](std::size_t i) {
      if (i % 17 == 0) throw std::runtime_error("tsan stress");
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  if (!caught) {
    std::fprintf(stderr, "FAIL: parallel_for swallowed the exception\n");
    return 1;
  }

  // Phase 4: export concurrently with a live writer.
  std::thread writer([&reg] {
    for (int i = 0; i < 2000; ++i) reg.counter("stress.events").add();
  });
  for (int i = 0; i < 20; ++i) {
    if (reg.to_json().empty()) {
      std::fprintf(stderr, "FAIL: empty export\n");
      return 1;
    }
  }
  writer.join();

  const auto events = reg.counter("stress.events").value();
  const auto expected =
      static_cast<std::uint64_t>(kThreads) * kIters + 2000u;
  if (events != expected) {
    std::fprintf(stderr, "FAIL: lost updates (%llu != %llu)\n",
                 static_cast<unsigned long long>(events),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  if (pool_iters.value() != static_cast<std::uint64_t>(kRounds) * kSweep) {
    std::fprintf(stderr, "FAIL: pool iteration count wrong\n");
    return 1;
  }
  std::printf("tsan stress ok\n");
  return 0;
}
