#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nn/dense.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

TEST(Dense, ParamCount) {
  EXPECT_EQ(dense_param_count(3, 4), 16u);
  EXPECT_EQ(dense_param_count(1, 1), 2u);
}

TEST(Dense, ForwardKnownValues) {
  // 2 -> 1 layer: y = 1*x0 + 2*x1 + 0.5, identity activation.
  std::vector<double> params = {1.0, 2.0, 0.5};
  Matrix x{{3.0, 4.0}};
  Matrix y;
  dense_forward(params, 2, 1, x, Activation::kIdentity, y);
  ASSERT_EQ(y.rows(), 1u);
  EXPECT_DOUBLE_EQ(y(0, 0), 11.5);
}

TEST(Dense, ForwardReluClamps) {
  std::vector<double> params = {-1.0, 0.0};  // y = -x0
  Matrix x{{5.0}};
  Matrix y;
  dense_forward(params, 1, 1, x, Activation::kRelu, y);
  EXPECT_DOUBLE_EQ(y(0, 0), 0.0);
}

TEST(Dense, GradientCheck) {
  util::Rng rng(3);
  const std::size_t in = 4;
  const std::size_t out = 3;
  std::vector<double> params(dense_param_count(in, out));
  dense_init(params, in, out, InitScheme::kXavierUniform, rng);

  Matrix x(2, in);
  for (double& v : x.data()) v = rng.normal();

  // Loss = sum(y); dL/dy = 1.
  const auto loss = [&](std::span<const double> p) {
    Matrix y;
    dense_forward(p, in, out, x, Activation::kTanh, y);
    double s = 0.0;
    for (double v : y.data()) s += v;
    return s;
  };

  Matrix y;
  dense_forward(params, in, out, x, Activation::kTanh, y);
  Matrix grad_y(2, out, 1.0);
  std::vector<double> grads(params.size(), 0.0);
  Matrix grad_x;
  dense_backward(params, in, out, x, y, Activation::kTanh, grad_y, grads,
                 &grad_x);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto plus = params;
    auto minus = params;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss(plus) - loss(minus)) / (2 * eps);
    ASSERT_NEAR(grads[i], numeric, 1e-5) << "param " << i;
  }

  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); ++i) {
    Matrix xp = x;
    Matrix xm = x;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    Matrix yp, ym;
    dense_forward(params, in, out, xp, Activation::kTanh, yp);
    dense_forward(params, in, out, xm, Activation::kTanh, ym);
    double sp = 0.0, sm = 0.0;
    for (double v : yp.data()) sp += v;
    for (double v : ym.data()) sm += v;
    ASSERT_NEAR(grad_x.data()[i], (sp - sm) / (2 * eps), 1e-5) << "x " << i;
  }
}

TEST(DenseLayer, ForwardBackwardRoundTrip) {
  util::Rng rng(4);
  DenseLayer layer(3, 2, Activation::kRelu, InitScheme::kHeNormal, rng);
  Matrix x{{0.5, -0.2, 1.0}, {1.0, 1.0, 1.0}};
  const Matrix& y = layer.forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 2u);
  layer.zero_grad();
  Matrix grad_y(2, 2, 1.0);
  const Matrix grad_x = layer.backward(std::move(grad_y));
  EXPECT_EQ(grad_x.rows(), 2u);
  EXPECT_EQ(grad_x.cols(), 3u);
}

TEST(Mlp, ConstructionValidation) {
  util::Rng rng(1);
  EXPECT_THROW(Mlp({5}, Activation::kRelu, Activation::kIdentity,
                   InitScheme::kHeNormal, rng),
               std::invalid_argument);
  EXPECT_THROW(Mlp({5, 0, 2}, Activation::kRelu, Activation::kIdentity,
                   InitScheme::kHeNormal, rng),
               std::invalid_argument);
}

TEST(Mlp, LayerOffsetsPartitionParameters) {
  util::Rng rng(2);
  Mlp net({4, 8, 6, 2}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.layer_offset(0), 0u);
  std::size_t total = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    EXPECT_EQ(net.layer_offset(i), total);
    total += net.layer_param_count(i);
  }
  EXPECT_EQ(total, net.parameter_count());
  EXPECT_EQ(net.layer_param_count(0), dense_param_count(4, 8));
  EXPECT_EQ(net.layer_param_count(2), dense_param_count(6, 2));
}

TEST(Mlp, SameSeedSameParameters) {
  util::Rng r1(7);
  util::Rng r2(7);
  Mlp a({3, 5, 1}, Activation::kRelu, Activation::kIdentity,
        InitScheme::kXavierUniform, r1);
  Mlp b({3, 5, 1}, Activation::kRelu, Activation::kIdentity,
        InitScheme::kXavierUniform, r2);
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(Mlp, SetParametersRoundTrip) {
  util::Rng rng(8);
  Mlp net({2, 3, 1}, Activation::kTanh, Activation::kIdentity,
          InitScheme::kXavierUniform, rng);
  std::vector<double> values(net.parameter_count());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) * 0.01;
  }
  net.set_parameters(values);
  const auto got = net.parameters();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(got[i], values[i]);
  }
  EXPECT_THROW(net.set_parameters(std::vector<double>(3)),
               std::invalid_argument);
}

TEST(Mlp, PredictMatchesForward) {
  util::Rng rng(9);
  Mlp net({3, 6, 4, 2}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Matrix x(5, 3);
  for (double& v : x.data()) v = rng.normal();
  const Matrix a = net.predict(x);
  const Matrix& b = net.forward(x);
  EXPECT_EQ(a, b);
}

TEST(Mlp, GradientCheckSmallNet) {
  util::Rng rng(10);
  Mlp net({2, 4, 3, 1}, Activation::kTanh, Activation::kIdentity,
          InitScheme::kXavierUniform, rng);
  Matrix x(3, 2);
  for (double& v : x.data()) v = rng.normal();
  const Matrix target(3, 1, 0.5);

  const auto loss_at = [&](std::span<const double> p) {
    Mlp copy = net;
    copy.set_parameters(p);
    const Matrix pred = copy.predict(x);
    return loss_value(LossKind::kMse, pred, target);
  };

  const Matrix& pred = net.forward(x);
  Matrix grad;
  loss_grad(LossKind::kMse, pred, target, grad);
  net.zero_grad();
  net.backward(grad);

  const auto params = net.parameters();
  const auto grads = net.gradients();
  std::vector<double> base(params.begin(), params.end());
  const double eps = 1e-6;
  for (std::size_t i = 0; i < base.size(); i += 3) {  // subsample for speed
    auto plus = base;
    auto minus = base;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    ASSERT_NEAR(grads[i], numeric, 1e-5) << "param " << i;
  }
}

TEST(Mlp, TrainBatchLearnsToyRegression) {
  // y = 2*x0 - x1 is learnable by a small relu net.
  util::Rng rng(11);
  Mlp net({2, 16, 1}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Adam opt(0.01);
  Matrix x(64, 2);
  Matrix y(64, 1);
  util::Rng data_rng(12);
  for (std::size_t i = 0; i < 64; ++i) {
    x(i, 0) = data_rng.uniform(-1, 1);
    x(i, 1) = data_rng.uniform(-1, 1);
    y(i, 0) = 2 * x(i, 0) - x(i, 1);
  }
  const double first = net.train_batch(x, y, LossKind::kMse, opt);
  double last = first;
  for (int e = 0; e < 300; ++e) last = net.train_batch(x, y, LossKind::kMse, opt);
  EXPECT_LT(last, first * 0.05);
  EXPECT_LT(last, 0.01);
}

TEST(Mlp, SameArchitecture) {
  util::Rng rng(13);
  Mlp a({2, 4, 1}, Activation::kRelu, Activation::kIdentity,
        InitScheme::kHeNormal, rng);
  Mlp b({2, 4, 1}, Activation::kRelu, Activation::kIdentity,
        InitScheme::kHeNormal, rng);
  Mlp c({2, 5, 1}, Activation::kRelu, Activation::kIdentity,
        InitScheme::kHeNormal, rng);
  Mlp d({2, 4, 1}, Activation::kTanh, Activation::kIdentity,
        InitScheme::kHeNormal, rng);
  EXPECT_TRUE(a.same_architecture(b));
  EXPECT_FALSE(a.same_architecture(c));
  EXPECT_FALSE(a.same_architecture(d));
}

TEST(Mlp, LayerParametersAreViewsIntoFlatBuffer) {
  util::Rng rng(14);
  Mlp net({2, 3, 1}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  auto slice = net.layer_parameters(1);
  slice[0] = 1234.5;
  EXPECT_EQ(net.parameters()[net.layer_offset(1)], 1234.5);
}

// The batch-1 matvec kernel must agree bitwise with the batched row
// kernel: both accumulate every output in ascending-k order, and the
// goldens pin that order. Exercises out dims around the 4-wide unroll
// boundary (remainders 0..3) and states containing exact zeros (the
// batched kernel skips them; the branch-free kernel adds +0.0).
TEST(Dense, Batch1MatchesBatchedBitwise) {
  util::Rng rng(31);
  for (const std::size_t out : {1u, 3u, 4u, 5u, 7u, 8u}) {
    const std::size_t in = 6;
    std::vector<double> params(dense_param_count(in, out));
    for (double& p : params) p = rng.normal();
    Matrix batch(5, in);
    for (double& v : batch.data()) v = rng.normal();
    batch(1, 2) = 0.0;  // exercise the zero-skip equivalence
    batch(3, 0) = 0.0;
    for (const auto act : {Activation::kIdentity, Activation::kRelu}) {
      Matrix y_batched;
      dense_forward(params, in, out, batch, act, y_batched);
      for (std::size_t r = 0; r < batch.rows(); ++r) {
        Matrix x(1, in);
        std::copy(batch.row(r).begin(), batch.row(r).end(),
                  x.row(0).begin());
        Matrix y1;
        dense_forward(params, in, out, x, act, y1);
        for (std::size_t j = 0; j < out; ++j) {
          ASSERT_EQ(y1(0, j), y_batched(r, j))
              << "row " << r << " col " << j << " out=" << out;
        }
      }
    }
  }
}

// predict() (workspace inference path) and forward() (training path)
// share the same dense kernels, so their outputs must be bitwise equal.
TEST(Mlp, PredictMatchesForwardBitwise) {
  util::Rng rng(32);
  Mlp net({5, 9, 7, 3}, Activation::kRelu, Activation::kIdentity,
          InitScheme::kHeNormal, rng);
  Matrix x(4, 5);
  for (double& v : x.data()) v = rng.normal();
  const Matrix& fwd = net.forward(x);
  const Matrix pred = net.predict(x);
  ASSERT_EQ(pred.rows(), fwd.rows());
  ASSERT_EQ(pred.cols(), fwd.cols());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    ASSERT_EQ(pred.data()[i], fwd.data()[i]);
  }
}

}  // namespace
}  // namespace pfdrl::nn
