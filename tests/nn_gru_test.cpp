#include "nn/gru.hpp"

#include <gtest/gtest.h>

#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

std::vector<Matrix> random_sequence(std::size_t steps, std::size_t batch,
                                    std::size_t feat, util::Rng& rng) {
  std::vector<Matrix> xs(steps, Matrix(batch, feat));
  for (auto& x : xs) {
    for (double& v : x.data()) v = rng.normal(0.0, 0.5);
  }
  return xs;
}

TEST(Gru, ConstructionValidation) {
  util::Rng rng(1);
  EXPECT_THROW(GruRegressor(0, 4, 1, rng), std::invalid_argument);
  EXPECT_THROW(GruRegressor(2, 0, 1, rng), std::invalid_argument);
  EXPECT_THROW(GruRegressor(2, 4, 0, rng), std::invalid_argument);
}

TEST(Gru, ParameterCount) {
  util::Rng rng(2);
  const std::size_t f = 3, h = 5, o = 2;
  GruRegressor net(f, h, o, rng);
  EXPECT_EQ(net.parameter_count(), f * 3 * h + h * 3 * h + 3 * h + h * o + o);
}

TEST(Gru, ForwardShape) {
  util::Rng rng(3);
  GruRegressor net(2, 4, 1, rng);
  util::Rng data_rng(4);
  const auto xs = random_sequence(6, 3, 2, data_rng);
  const Matrix& y = net.forward(xs);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(Gru, PredictMatchesForward) {
  util::Rng rng(5);
  GruRegressor net(3, 5, 1, rng);
  util::Rng data_rng(6);
  const auto xs = random_sequence(5, 4, 3, data_rng);
  EXPECT_EQ(net.predict(xs), net.forward(xs));
}

TEST(Gru, EmptySequenceThrows) {
  util::Rng rng(7);
  GruRegressor net(2, 4, 1, rng);
  EXPECT_THROW(net.forward({}), std::invalid_argument);
}

TEST(Gru, SetParametersRoundTrip) {
  util::Rng rng(8);
  GruRegressor net(2, 3, 1, rng);
  std::vector<double> values(net.parameter_count());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.001 * static_cast<double>(i);
  }
  net.set_parameters(values);
  const auto got = net.parameters();
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(got[i], values[i]);
  EXPECT_THROW(net.set_parameters(std::vector<double>(3)),
               std::invalid_argument);
}

TEST(Gru, GradientCheckViaSgdStep) {
  util::Rng rng(9);
  GruRegressor net(2, 3, 1, rng);
  util::Rng data_rng(10);
  const auto xs = random_sequence(4, 2, 2, data_rng);
  Matrix y(2, 1);
  y(0, 0) = 0.4;
  y(1, 0) = -0.1;

  const auto loss_at = [&](std::span<const double> p) {
    GruRegressor copy = net;
    copy.set_parameters(p);
    const Matrix pred = copy.predict(xs);
    return loss_value(LossKind::kMse, pred, y);
  };

  const std::vector<double> before(net.parameters().begin(),
                                   net.parameters().end());
  const double lr = 1e-3;
  Sgd opt(lr);
  GruRegressor trained = net;
  trained.train_batch(xs, y, LossKind::kMse, opt, /*clip_norm=*/0.0);
  const auto after = trained.parameters();

  const double eps = 1e-6;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < before.size(); i += 5) {
    auto plus = before;
    auto minus = before;
    plus[i] += eps;
    minus[i] -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2 * eps);
    const double implied = (before[i] - after[i]) / lr;
    ASSERT_NEAR(implied, numeric, 1e-4) << "param " << i;
    ++checked;
  }
  EXPECT_GE(checked, 10u);
}

TEST(Gru, LearnsSequenceMean) {
  util::Rng rng(11);
  GruRegressor net(1, 8, 1, rng);
  Adam opt(0.01);
  util::Rng data_rng(12);
  double first_loss = -1.0;
  double last_loss = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    std::vector<Matrix> xs(5, Matrix(8, 1));
    Matrix y(8, 1);
    for (std::size_t b = 0; b < 8; ++b) {
      double sum = 0.0;
      for (std::size_t t = 0; t < 5; ++t) {
        const double v = data_rng.uniform(-1, 1);
        xs[t](b, 0) = v;
        sum += v;
      }
      y(b, 0) = sum / 5.0;
    }
    last_loss = net.train_batch(xs, y, LossKind::kMse, opt);
    if (epoch == 0) first_loss = last_loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.2);
  EXPECT_LT(last_loss, 0.02);
}

TEST(Gru, SameSeedSameOutput) {
  util::Rng r1(13);
  util::Rng r2(13);
  GruRegressor a(2, 4, 1, r1);
  GruRegressor b(2, 4, 1, r2);
  util::Rng data_rng(14);
  const auto xs = random_sequence(4, 2, 2, data_rng);
  EXPECT_EQ(a.predict(xs), b.predict(xs));
}

}  // namespace
}  // namespace pfdrl::nn
