#include "ems/env.hpp"

#include <gtest/gtest.h>

#include <array>

#include "data/dataset.hpp"

namespace pfdrl::ems {
namespace {

using data::DeviceMode;

/// Crafted trace: off for 60, standby for 120, on for 60, standby rest.
data::DeviceTrace crafted_trace(std::size_t minutes = 480) {
  data::DeviceTrace t;
  t.spec.type = data::DeviceType::kTv;
  t.spec.standby_watts = 6.0;
  t.spec.on_watts = 120.0;
  t.watts.resize(minutes);
  t.modes.resize(minutes);
  for (std::size_t m = 0; m < minutes; ++m) {
    if (m < 60) {
      t.modes[m] = DeviceMode::kOff;
      t.watts[m] = 0.0;
    } else if (m < 180) {
      t.modes[m] = DeviceMode::kStandby;
      t.watts[m] = 6.0;
    } else if (m < 240) {
      t.modes[m] = DeviceMode::kOn;
      t.watts[m] = 120.0;
    } else {
      t.modes[m] = DeviceMode::kStandby;
      t.watts[m] = 6.0;
    }
  }
  return t;
}

std::vector<double> flat_forecast(std::size_t n, double watts) {
  return std::vector<double>(n, watts);
}

TEST(Env, SpanValidation) {
  const auto trace = crafted_trace(100);
  EXPECT_THROW(EmsEnvironment(trace, flat_forecast(200, 6.0), 0),
               std::invalid_argument);
  EXPECT_NO_THROW(EmsEnvironment(trace, flat_forecast(100, 6.0), 0));
  EXPECT_THROW(EmsEnvironment(trace, flat_forecast(50, 6.0), 60),
               std::invalid_argument);
}

TEST(Env, LengthAndAccessors) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(100, 6.0), 50, 5);
  EXPECT_EQ(env.length(), 100u);
  EXPECT_EQ(env.begin_minute(), 50u);
  EXPECT_EQ(env.meter_interval(), 5u);
  EXPECT_DOUBLE_EQ(env.real_watts(10), trace.watts[60]);
  EXPECT_DOUBLE_EQ(env.forecast_watts(3), 6.0);
}

TEST(Env, LastReportMinuteMath) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(100, 6.0), 0, 15);
  EXPECT_EQ(env.last_report_minute(0), 0u);
  EXPECT_EQ(env.last_report_minute(1), 0u);
  EXPECT_EQ(env.last_report_minute(15), 0u);
  EXPECT_EQ(env.last_report_minute(16), 15u);
  EXPECT_EQ(env.last_report_minute(31), 30u);
}

TEST(Env, ContinuousMeteringInterval1) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(480, 6.0), 0, 1);
  // With a 1-minute interval, the last report when acting at t is t-1.
  EXPECT_EQ(env.last_report_minute(100), 99u);
}

TEST(Env, StateDimAndRange) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(480, 6.0), 0, 5);
  const auto s = env.state_at(100);
  ASSERT_EQ(s.size(), EmsEnvironment::kStateDim);
  // Encoded watts in [0, ~1], calendar in [-1, 1].
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(s[i], 0.0);
    EXPECT_LE(s[i], 1.2);
  }
  EXPECT_GE(s[3], -1.0);
  EXPECT_LE(s[3], 1.0);
}

TEST(Env, StateIsCausal) {
  // The state at step t must not depend on watts[t] (only on reported
  // history and the forecast): modify watts at t and observe no change.
  auto trace = crafted_trace();
  const std::size_t t = 200;
  EmsEnvironment env_a(trace, flat_forecast(480, 6.0), 0, 5);
  const auto before = env_a.state_at(t);
  trace.watts[t] = 9999.0;
  EmsEnvironment env_b(trace, flat_forecast(480, 6.0), 0, 5);
  const auto after = env_b.state_at(t);
  EXPECT_EQ(before, after);
}

TEST(Env, StateUsesLatestReport) {
  // Changing the most recent report minute's watts must change the state.
  auto trace = crafted_trace();
  const std::size_t t = 203;  // last report at 200 with interval 5
  EmsEnvironment env_a(trace, flat_forecast(480, 6.0), 0, 5);
  const auto before = env_a.state_at(t);
  trace.watts[200] = 80.0;
  EmsEnvironment env_b(trace, flat_forecast(480, 6.0), 0, 5);
  const auto after = env_b.state_at(t);
  EXPECT_NE(before[1], after[1]);
}

TEST(Env, ObservedAndTrueModes) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(480, 6.0), 0, 5);
  EXPECT_EQ(env.observed_mode(30), DeviceMode::kOff);
  EXPECT_EQ(env.observed_mode(100), DeviceMode::kStandby);
  EXPECT_EQ(env.observed_mode(200), DeviceMode::kOn);
  EXPECT_EQ(env.true_mode(30), DeviceMode::kOff);
  EXPECT_EQ(env.true_mode(200), DeviceMode::kOn);
}

TEST(Env, PredictedModeFromForecast) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(480, 120.0), 0, 5);
  EXPECT_EQ(env.predicted_mode(0), DeviceMode::kOn);
}

TEST(Env, RewardMatchesTable) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(480, 6.0), 0, 5);
  // Step 100 is standby: off pays +30, standby +10, on -10.
  EXPECT_DOUBLE_EQ(env.reward_at(100, 0), 30.0);
  EXPECT_DOUBLE_EQ(env.reward_at(100, 1), 10.0);
  EXPECT_DOUBLE_EQ(env.reward_at(100, 2), -10.0);
  // Step 200 is on: off pays -30.
  EXPECT_DOUBLE_EQ(env.reward_at(200, 0), -30.0);
  EXPECT_DOUBLE_EQ(env.reward_at(200, 2), 10.0);
}

TEST(Env, OffsetBeginAlignsIndices) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(100, 6.0), 150, 5);
  // idx 40 -> trace minute 190 (on period).
  EXPECT_EQ(env.true_mode(40), DeviceMode::kOn);
}

TEST(Env, StateIntoMatchesStateAt) {
  const auto trace = crafted_trace();
  EmsEnvironment env(trace, flat_forecast(200, 6.0), 40, 5);
  std::array<double, EmsEnvironment::kStateDim> buf{};
  for (std::size_t idx : {0u, 1u, 17u, 60u, 199u}) {
    const auto expected = env.state_at(idx);
    env.state_into(idx, buf);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(buf[i], expected[i]) << "idx " << idx << " dim " << i;
    }
  }
}

TEST(Env, SharedForecastCtorMatchesValueCtor) {
  const auto trace = crafted_trace();
  auto series =
      std::make_shared<const std::vector<double>>(flat_forecast(100, 6.0));
  EmsEnvironment by_value(trace, flat_forecast(100, 6.0), 50, 5);
  EmsEnvironment shared(trace, series, 50, 5);
  EXPECT_EQ(shared.length(), by_value.length());
  for (std::size_t idx : {0u, 30u, 99u}) {
    EXPECT_EQ(shared.state_at(idx), by_value.state_at(idx));
    EXPECT_EQ(shared.forecast_watts(idx), by_value.forecast_watts(idx));
  }
  EXPECT_THROW(
      EmsEnvironment(trace, std::shared_ptr<const std::vector<double>>{}, 0),
      std::invalid_argument);
}

}  // namespace
}  // namespace pfdrl::ems
