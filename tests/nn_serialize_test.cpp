#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

Checkpoint sample_checkpoint(std::size_t n, std::uint64_t seed) {
  Checkpoint ckpt;
  ckpt.signature = "mlp:test:" + std::to_string(n);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) ckpt.parameters.push_back(rng.normal());
  return ckpt;
}

TEST(Serialize, RoundTrip) {
  const Checkpoint ckpt = sample_checkpoint(100, 1);
  const auto bytes = serialize_checkpoint(ckpt);
  const Checkpoint back = deserialize_checkpoint(bytes);
  EXPECT_EQ(back.signature, ckpt.signature);
  EXPECT_EQ(back.parameters, ckpt.parameters);
}

TEST(Serialize, EmptyParameters) {
  Checkpoint ckpt;
  ckpt.signature = "empty";
  const Checkpoint back = deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(back.signature, "empty");
  EXPECT_TRUE(back.parameters.empty());
}

TEST(Serialize, BadMagicThrows) {
  auto bytes = serialize_checkpoint(sample_checkpoint(4, 2));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Serialize, TruncatedThrows) {
  const auto bytes = serialize_checkpoint(sample_checkpoint(16, 3));
  const std::span<const std::uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_THROW(deserialize_checkpoint(half), std::runtime_error);
}

TEST(Serialize, CorruptPayloadFailsDigest) {
  auto bytes = serialize_checkpoint(sample_checkpoint(16, 4));
  bytes[bytes.size() / 2] ^= 0x01;  // flip a payload bit
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

// Systematic truncation sweep: a checkpoint cut at *every* possible byte
// offset must throw, never read out of bounds (the sanitizer builds make
// an overread fatal) and never yield a partially-filled checkpoint.
TEST(Serialize, EveryTruncationThrows) {
  const auto bytes = serialize_checkpoint(sample_checkpoint(16, 7));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> trunc(bytes.data(), cut);
    EXPECT_THROW(deserialize_checkpoint(trunc), std::runtime_error)
        << "no throw at truncation offset " << cut;
  }
}

// Single-bit-flip sweep over the whole buffer: deserialization must
// either throw or reproduce the original checkpoint exactly. Flips in
// the signature bytes are the one region the parameter digest does not
// cover — those may parse, but only into a different signature, which
// the caller's shape guard then rejects.
TEST(Serialize, BitFlipsNeverYieldCorruptParameters) {
  const Checkpoint original = sample_checkpoint(8, 8);
  const auto bytes = serialize_checkpoint(original);
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      try {
        const Checkpoint back = deserialize_checkpoint(flipped);
        // Parsed: the digest guarantees the parameters survived intact.
        EXPECT_EQ(back.parameters, original.parameters)
            << "silent parameter corruption at byte " << byte;
      } catch (const std::runtime_error&) {
        // Detected corruption — the expected outcome for most flips.
      }
    }
  }
}

// A length prefix far beyond the buffer (the embedded-length trust bug)
// must throw up front instead of reserving petabytes or walking off the
// end of the input.
TEST(Serialize, HugeSignatureLengthThrows) {
  auto bytes = serialize_checkpoint(sample_checkpoint(4, 9));
  for (std::size_t i = 8; i < 16; ++i) bytes[i] = 0xFF;  // u64 sig length
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Serialize, HugeParameterCountThrows) {
  Checkpoint ckpt;  // empty signature puts the count right after it
  ckpt.signature = "";
  ckpt.parameters = {1.0, 2.0};
  auto bytes = serialize_checkpoint(ckpt);
  for (std::size_t i = 16; i < 24; ++i) bytes[i] = 0xFF;  // u64 param count
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Serialize, SaveIsAtomicReplacement) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pfdrl_ckpt_atomic.bin")
          .string();
  save_checkpoint(sample_checkpoint(8, 10), path);
  const Checkpoint updated = sample_checkpoint(8, 11);
  save_checkpoint(updated, path);  // replaces via temp + rename
  EXPECT_EQ(load_checkpoint(path).parameters, updated.parameters);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(Serialize, DigestSensitivity) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = a;
  b[1] = 2.0000001;
  EXPECT_NE(parameter_digest(a), parameter_digest(b));
  EXPECT_EQ(parameter_digest(a), parameter_digest(a));
}

TEST(Serialize, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pfdrl_ckpt_test.bin").string();
  const Checkpoint ckpt = sample_checkpoint(64, 5);
  save_checkpoint(ckpt, path);
  const Checkpoint back = load_checkpoint(path);
  EXPECT_EQ(back.parameters, ckpt.parameters);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/x.bin"), std::runtime_error);
}

class SerializeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerializeSizes, RoundTripAnySize) {
  const Checkpoint ckpt = sample_checkpoint(GetParam(), 6 + GetParam());
  const Checkpoint back = deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(back.parameters, ckpt.parameters);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializeSizes,
                         ::testing::Values(0, 1, 2, 17, 256, 10001));

}  // namespace
}  // namespace pfdrl::nn
