#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/rng.hpp"

namespace pfdrl::nn {
namespace {

Checkpoint sample_checkpoint(std::size_t n, std::uint64_t seed) {
  Checkpoint ckpt;
  ckpt.signature = "mlp:test:" + std::to_string(n);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) ckpt.parameters.push_back(rng.normal());
  return ckpt;
}

TEST(Serialize, RoundTrip) {
  const Checkpoint ckpt = sample_checkpoint(100, 1);
  const auto bytes = serialize_checkpoint(ckpt);
  const Checkpoint back = deserialize_checkpoint(bytes);
  EXPECT_EQ(back.signature, ckpt.signature);
  EXPECT_EQ(back.parameters, ckpt.parameters);
}

TEST(Serialize, EmptyParameters) {
  Checkpoint ckpt;
  ckpt.signature = "empty";
  const Checkpoint back = deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(back.signature, "empty");
  EXPECT_TRUE(back.parameters.empty());
}

TEST(Serialize, BadMagicThrows) {
  auto bytes = serialize_checkpoint(sample_checkpoint(4, 2));
  bytes[0] ^= 0xFF;
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Serialize, TruncatedThrows) {
  const auto bytes = serialize_checkpoint(sample_checkpoint(16, 3));
  const std::span<const std::uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_THROW(deserialize_checkpoint(half), std::runtime_error);
}

TEST(Serialize, CorruptPayloadFailsDigest) {
  auto bytes = serialize_checkpoint(sample_checkpoint(16, 4));
  bytes[bytes.size() / 2] ^= 0x01;  // flip a payload bit
  EXPECT_THROW(deserialize_checkpoint(bytes), std::runtime_error);
}

TEST(Serialize, DigestSensitivity) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = a;
  b[1] = 2.0000001;
  EXPECT_NE(parameter_digest(a), parameter_digest(b));
  EXPECT_EQ(parameter_digest(a), parameter_digest(a));
}

TEST(Serialize, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pfdrl_ckpt_test.bin").string();
  const Checkpoint ckpt = sample_checkpoint(64, 5);
  save_checkpoint(ckpt, path);
  const Checkpoint back = load_checkpoint(path);
  EXPECT_EQ(back.parameters, ckpt.parameters);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_checkpoint("/nonexistent/x.bin"), std::runtime_error);
}

class SerializeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SerializeSizes, RoundTripAnySize) {
  const Checkpoint ckpt = sample_checkpoint(GetParam(), 6 + GetParam());
  const Checkpoint back = deserialize_checkpoint(serialize_checkpoint(ckpt));
  EXPECT_EQ(back.parameters, ckpt.parameters);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SerializeSizes,
                         ::testing::Values(0, 1, 2, 17, 256, 10001));

}  // namespace
}  // namespace pfdrl::nn
