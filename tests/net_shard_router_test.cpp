// Shard assignment arithmetic, the cross-shard batching router, and the
// engine-level equivalence contracts the sharded refactor rests on:
// attaching a router must not change what a clean-plan bus delivers or
// bills, and the parallel exchange path must be bitwise identical to the
// serial one.
#include "net/shard_router.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "util/shard.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl {
namespace {

// --- util::shard ------------------------------------------------------

TEST(ShardMath, ContiguousBalancedAndInverse) {
  for (std::size_t n : {1u, 2u, 7u, 10u, 100u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u, 100u, 150u}) {
      // shard_of must be the exact inverse of the shard_begin partition.
      for (std::size_t s = 0; s < std::min(shards, n); ++s) {
        const std::size_t lo = util::shard_begin(s, n, shards);
        const std::size_t hi = util::shard_begin(s + 1, n, shards);
        EXPECT_LE(hi - lo, (n + shards - 1) / shards);
        for (std::size_t i = lo; i < hi; ++i) {
          EXPECT_EQ(util::shard_of(i, n, shards), s)
              << "n=" << n << " shards=" << shards << " i=" << i;
        }
      }
      // Monotone, total cover.
      EXPECT_EQ(util::shard_begin(0, n, shards), 0u);
      EXPECT_EQ(util::shard_begin(shards, n, shards), n);
    }
  }
}

TEST(ShardMath, UnshardedIsShardZero) {
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(util::shard_of(i, 5, 0), 0u);
    EXPECT_EQ(util::shard_of(i, 5, 1), 0u);
  }
}

TEST(ShardMath, TimingImbalance) {
  util::ShardTiming empty;
  EXPECT_DOUBLE_EQ(empty.max_over_mean(), 1.0);
  util::ShardTiming t;
  t.shard_seconds = {1.0, 1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(t.max_over_mean(), 2.0);  // max 4 / mean 2
}

TEST(ShardMath, ShardedForVisitsEverythingOnce) {
  util::ThreadPool pool(2);
  std::vector<int> visits(100, 0);
  const util::ShardTiming timing = util::sharded_for(
      pool, visits.size(), 4,
      [&](std::size_t i) { return util::shard_of(i, visits.size(), 4); },
      [&](std::size_t i) { visits[i] += 1; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0), 100);
  EXPECT_EQ(timing.shard_seconds.size(), 4u);
}

// --- ShardRouter ------------------------------------------------------

TEST(ShardRouter, CtorValidatesAndClamps) {
  EXPECT_THROW(net::ShardRouter(0, 2), std::invalid_argument);
  net::ShardRouter clamped(3, 99);
  EXPECT_EQ(clamped.num_shards(), 3u);  // never more shards than agents
  net::ShardRouter floor(8, 0);
  EXPECT_EQ(floor.num_shards(), 1u);
}

TEST(ShardRouter, CrossShardMatchesAssignment) {
  net::ShardRouter router(10, 2);  // shards {0..4}, {5..9}
  EXPECT_FALSE(router.cross_shard(0, 4));
  EXPECT_TRUE(router.cross_shard(0, 5));
  EXPECT_TRUE(router.cross_shard(9, 1));
  EXPECT_EQ(router.shard_of(4), 0u);
  EXPECT_EQ(router.shard_of(5), 1u);
}

net::Message make_msg(net::AgentId sender, double tag) {
  net::Message m;
  m.sender = sender;
  m.payload = std::vector<double>{tag};
  return m;
}

TEST(ShardRouter, FlushOrderIsPinnedRowMajor) {
  net::ShardRouter router(9, 3);  // shards {0,1,2} {3,4,5} {6,7,8}
  // Enqueue in scrambled pair order; two messages on the (2,0) pair to
  // check in-pair FIFO.
  router.enqueue(0, make_msg(7, 1.0));   // pair (2,0)
  router.enqueue(6, make_msg(0, 2.0));   // pair (0,2)
  router.enqueue(1, make_msg(8, 3.0));   // pair (2,0) again
  router.enqueue(3, make_msg(2, 4.0));   // pair (0,1)
  EXPECT_EQ(router.pending(), 4u);

  std::vector<double> tags;
  std::vector<net::AgentId> targets;
  const std::size_t n = router.flush([&](net::AgentId to, net::Message&& m) {
    targets.push_back(to);
    tags.push_back(m.payload[0]);
  });
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(router.pending(), 0u);
  // Ascending (src shard, dst shard): (0,1), (0,2), then (2,0) in FIFO.
  EXPECT_EQ(tags, (std::vector<double>{4.0, 2.0, 1.0, 3.0}));
  EXPECT_EQ(targets, (std::vector<net::AgentId>{3, 6, 0, 1}));

  const auto stats = router.stats();
  EXPECT_EQ(stats.messages_batched, 4u);
  EXPECT_EQ(stats.batches_flushed, 3u);  // three non-empty pairs
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.max_batch_depth, 2u);
  EXPECT_GT(stats.batched_bytes, 0u);
}

TEST(ShardRouter, EnqueueOutOfRangeThrows) {
  net::ShardRouter router(4, 2);
  EXPECT_THROW(router.enqueue(4, make_msg(0, 0.0)), std::out_of_range);
  EXPECT_THROW(router.enqueue(0, make_msg(9, 0.0)), std::out_of_range);
}

// --- Bus equivalence with and without a router ------------------------

TEST(ShardedBus, CleanPlanDeliveryAndBillingUnchanged) {
  constexpr std::size_t kAgents = 6;
  net::MessageBus flat(net::Topology(net::TopologyKind::kFullMesh, kAgents),
                       {});
  net::MessageBus sharded(
      net::Topology(net::TopologyKind::kFullMesh, kAgents), {});
  net::ShardRouter router(kAgents, 2);
  sharded.set_shard_router(&router);

  for (net::AgentId a = 0; a < kAgents; ++a) {
    EXPECT_EQ(flat.broadcast(make_msg(a, static_cast<double>(a))),
              sharded.broadcast(make_msg(a, static_cast<double>(a))));
  }
  EXPECT_GT(router.pending(), 0u);
  sharded.flush_shard_batches();

  // Every inbox drains the same multiset of senders; wire billing is
  // per delivery, so the stats lines agree exactly.
  for (net::AgentId a = 0; a < kAgents; ++a) {
    auto lhs = flat.drain(a);
    auto rhs = sharded.drain(a);
    ASSERT_EQ(lhs.size(), rhs.size()) << "agent " << a;
    std::vector<net::AgentId> ls, rs;
    for (const auto& m : lhs) ls.push_back(m.sender);
    for (const auto& m : rhs) rs.push_back(m.sender);
    std::sort(ls.begin(), ls.end());
    std::sort(rs.begin(), rs.end());
    EXPECT_EQ(ls, rs) << "agent " << a;
  }
  const auto fs = flat.stats();
  const auto ss = sharded.stats();
  EXPECT_EQ(fs.messages_sent, ss.messages_sent);
  EXPECT_EQ(fs.messages_delivered, ss.messages_delivered);
  EXPECT_EQ(fs.bytes_on_wire, ss.bytes_on_wire);
  EXPECT_EQ(fs.simulated_transfer_seconds, ss.simulated_transfer_seconds);
}

// --- Parallel exchange is bitwise identical to serial -----------------

TEST(ShardedExchange, ParallelMatchesSerialBitwise) {
  constexpr std::size_t kAgents = 8;
  constexpr std::size_t kParams = 12;

  const auto run = [&](bool parallel) {
    net::MessageBus bus(
        net::Topology(net::TopologyKind::kFullMesh, kAgents), {});
    net::ShardRouter router(kAgents, 4);
    if (parallel) bus.set_shard_router(&router);

    std::vector<double> params(kAgents * kParams);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] = static_cast<double>((i * 2654435761u) % 1000) / 997.0;
    }
    std::vector<fl::ExchangeItem> items(kAgents);
    for (std::size_t a = 0; a < kAgents; ++a) {
      const std::span<double> slice(params.data() + a * kParams, kParams);
      items[a] = {.agent = static_cast<net::AgentId>(a),
                  .device_type = static_cast<std::uint32_t>(a % 2),
                  .send = slice,
                  .in_place = slice};
    }
    fl::ParamExchange::Options opts;
    opts.parallel = parallel;
    fl::ParamExchange exchange(bus, opts);
    for (std::uint64_t r = 0; r < 3; ++r) {
      exchange.round(items, r, [](std::size_t, std::span<const double>) {});
    }
    return params;
  };

  const std::vector<double> serial = run(false);
  const std::vector<double> parallel = run(true);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "param " << i;  // bitwise
  }
}

// --- sim::ShardPlan cost-weighted assignment --------------------------

TEST(WeightedShardPlan, EqualWeightsReproduceUniformBoundaries) {
  for (std::size_t n : {7u, 10u, 100u, 1000u}) {
    for (std::size_t shards : {2u, 3u, 8u}) {
      const std::vector<std::size_t> weights(n, 5);
      const auto uniform = sim::ShardPlan::make(n, shards);
      const auto weighted = sim::ShardPlan::make_weighted(weights, shards);
      ASSERT_TRUE(weighted.weighted());
      ASSERT_EQ(weighted.shards, uniform.shards);  // same clamping
      for (std::size_t s = 0; s < weighted.shards; ++s) {
        EXPECT_EQ(weighted.shard_range(s), uniform.shard_range(s))
            << n << " homes, " << shards << " shards, shard " << s;
      }
    }
  }
}

TEST(WeightedShardPlan, ShardOfInvertsRangesAndStaysMonotone) {
  // Device count ramps across the city — the pattern that skews the
  // uniform equal-count plan hardest.
  const std::size_t n = 10000;
  std::vector<std::size_t> weights(n);
  for (std::size_t a = 0; a < n; ++a) weights[a] = 1 + (3 * a) / n;
  const auto plan = sim::ShardPlan::make_weighted(weights, 8);
  ASSERT_EQ(plan.shards, 8u);
  std::size_t covered = 0;
  std::size_t prev_shard = 0;
  for (std::size_t s = 0; s < plan.shards; ++s) {
    const auto [first, last] = plan.shard_range(s);
    EXPECT_EQ(first, covered);  // contiguous, no gaps
    EXPECT_LT(first, last);     // non-empty
    for (std::size_t home = first; home < last; ++home) {
      ASSERT_EQ(plan.shard_of(home), s);
      ASSERT_GE(s, prev_shard);  // monotone in the home id
      prev_shard = s;
    }
    covered = last;
  }
  EXPECT_EQ(covered, n);
}

TEST(WeightedShardPlan, RampWeightsCutCostImbalance) {
  const std::size_t n = 10000;
  std::vector<std::size_t> weights(n);
  for (std::size_t a = 0; a < n; ++a) weights[a] = 1 + (3 * a) / n;
  const auto uniform = sim::ShardPlan::make(n, 8);
  const auto weighted = sim::ShardPlan::make_weighted(weights, 8);
  // Equal-count shards put all the heavy homes in the last shard...
  EXPECT_GT(uniform.weight_imbalance(weights), 1.5);
  // ...while weight-balanced boundaries even the cost out.
  EXPECT_LT(weighted.weight_imbalance(weights), 1.05);
  EXPECT_LT(weighted.weight_imbalance(weights),
            uniform.weight_imbalance(weights));
}

TEST(WeightedShardPlan, DegenerateInputsFallBackToUniform) {
  // One shard, or all-zero weights: no boundaries, uniform arithmetic.
  EXPECT_FALSE(
      sim::ShardPlan::make_weighted(std::vector<std::size_t>(10, 3), 1)
          .weighted());
  EXPECT_FALSE(
      sim::ShardPlan::make_weighted(std::vector<std::size_t>(10, 0), 4)
          .weighted());
  // Fewer homes than shards clamps like make() does.
  const auto plan =
      sim::ShardPlan::make_weighted(std::vector<std::size_t>(3, 1), 8);
  EXPECT_EQ(plan.shards, 3u);
}

TEST(ShardRouter, WeightedBoundariesAgreeWithPlan) {
  const std::size_t n = 1000;
  std::vector<std::size_t> weights(n);
  for (std::size_t a = 0; a < n; ++a) weights[a] = 1 + (3 * a) / n;
  const auto plan = sim::ShardPlan::make_weighted(weights, 6);
  net::ShardRouter router(n, plan.boundaries);
  EXPECT_EQ(router.num_shards(), plan.shards);
  for (std::size_t a = 0; a < n; ++a) {
    ASSERT_EQ(router.shard_of(static_cast<net::AgentId>(a)),
              plan.shard_of(a));
  }
}

TEST(ShardRouter, MalformedBoundariesThrow) {
  using Bounds = std::vector<std::size_t>;
  EXPECT_THROW(net::ShardRouter(10, Bounds{0}), std::invalid_argument);
  EXPECT_THROW(net::ShardRouter(10, Bounds{1, 10}), std::invalid_argument);
  EXPECT_THROW(net::ShardRouter(10, Bounds{0, 9}), std::invalid_argument);
  EXPECT_THROW(net::ShardRouter(10, Bounds{0, 5, 5, 10}),
               std::invalid_argument);
  EXPECT_THROW(net::ShardRouter(10, Bounds{0, 7, 3, 10}),
               std::invalid_argument);
  EXPECT_NO_THROW(net::ShardRouter(10, Bounds{0, 3, 7, 10}));
}

}  // namespace
}  // namespace pfdrl
