#include "data/tariff.hpp"

#include <gtest/gtest.h>

namespace pfdrl::data {
namespace {

TEST(FixedTariff, ConstantEverywhere) {
  FixedTariff t;
  EXPECT_DOUBLE_EQ(t.cents_per_kwh(0), 11.67);
  EXPECT_DOUBLE_EQ(t.cents_per_kwh(kMinutesPerMonth * 7 + 12345), 11.67);
  EXPECT_EQ(t.name(), "fixed");
}

TEST(FixedTariff, CustomRate) {
  FixedTariff t(9.5);
  EXPECT_DOUBLE_EQ(t.cents_per_kwh(42), 9.5);
}

TEST(VariableTariff, WithinPaperBand) {
  VariableTariff t;
  for (std::size_t m = 0; m < 12 * kMinutesPerMonth; m += 997) {
    const double c = t.cents_per_kwh(m);
    EXPECT_GE(c, VariableTariff::kMinCents);
    EXPECT_LE(c, VariableTariff::kMaxCents);
  }
}

TEST(VariableTariff, DiurnalShape) {
  VariableTariff t;
  // 3 AM cheaper than 4 PM within the same month.
  const std::size_t base = 2 * kMinutesPerMonth;  // March
  EXPECT_LT(t.cents_per_kwh(base + 3 * 60), t.cents_per_kwh(base + 16 * 60));
}

TEST(VariableTariff, SeasonalShape) {
  VariableTariff t;
  // Same hour: August pricier than April (Texas scarcity season).
  const std::size_t hour = 15 * 60;
  EXPECT_GT(t.cents_per_kwh(7 * kMinutesPerMonth + hour),
            t.cents_per_kwh(3 * kMinutesPerMonth + hour));
}

TEST(VariableTariff, CrossoverWithFixedExists) {
  // The paper's Fig. 10 relies on the two plans trading places by month.
  FixedTariff fixed;
  VariableTariff var;
  bool var_cheaper_somewhere = false;
  bool fixed_cheaper_somewhere = false;
  for (std::uint32_t month = 0; month < 12; ++month) {
    double var_sum = 0.0;
    int n = 0;
    for (std::size_t m = 0; m < kMinutesPerMonth; m += 60) {
      var_sum += var.cents_per_kwh(month * kMinutesPerMonth + m);
      ++n;
    }
    const double var_avg = var_sum / n;
    if (var_avg < fixed.cents_per_kwh(0)) var_cheaper_somewhere = true;
    if (var_avg > fixed.cents_per_kwh(0)) fixed_cheaper_somewhere = true;
  }
  EXPECT_TRUE(var_cheaper_somewhere);
  EXPECT_TRUE(fixed_cheaper_somewhere);
}

TEST(TariffTime, MonthOfMinute) {
  EXPECT_EQ(month_of_minute(0), 0u);
  EXPECT_EQ(month_of_minute(kMinutesPerMonth - 1), 0u);
  EXPECT_EQ(month_of_minute(kMinutesPerMonth), 1u);
  EXPECT_EQ(month_of_minute(12 * kMinutesPerMonth), 0u);  // wraps
}

}  // namespace
}  // namespace pfdrl::data
