#include "net/bus.hpp"

#include <gtest/gtest.h>

#include <array>
#include <thread>

namespace pfdrl::net {
namespace {

Message make_msg(AgentId sender, std::uint32_t type = 0,
                 std::size_t payload = 4) {
  Message m;
  m.sender = sender;
  m.device_type = type;
  m.payload.assign(payload, static_cast<double>(sender));
  return m;
}

TEST(Bus, BroadcastReachesAllOthers) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 4));
  EXPECT_EQ(bus.broadcast(make_msg(1)), 3u);
  EXPECT_EQ(bus.inbox_size(0), 1u);
  EXPECT_EQ(bus.inbox_size(1), 0u);  // not delivered to self
  EXPECT_EQ(bus.inbox_size(2), 1u);
  EXPECT_EQ(bus.inbox_size(3), 1u);
}

TEST(Bus, TryReceiveEmpty) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  EXPECT_EQ(bus.try_receive(0), std::nullopt);
}

TEST(Bus, FifoOrder) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  for (std::uint32_t i = 0; i < 5; ++i) {
    Message m = make_msg(1, i);
    bus.broadcast(m);
  }
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto m = bus.try_receive(0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->device_type, i);
  }
}

TEST(Bus, DrainEmptiesInbox) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 3));
  bus.broadcast(make_msg(0));
  bus.broadcast(make_msg(2));
  const auto msgs = bus.drain(1);
  EXPECT_EQ(msgs.size(), 2u);
  EXPECT_EQ(bus.inbox_size(1), 0u);
}

TEST(Bus, SendPointToPoint) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 3));
  bus.send(2, make_msg(0));
  EXPECT_EQ(bus.inbox_size(2), 1u);
  EXPECT_EQ(bus.inbox_size(1), 0u);
}

TEST(Bus, BadAgentIdThrows) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  EXPECT_THROW(bus.send(5, make_msg(0)), std::out_of_range);
  EXPECT_THROW(bus.inbox_size(9), std::out_of_range);
}

TEST(Bus, StatsAccounting) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 3));
  const Message m = make_msg(0, 0, 10);
  bus.broadcast(m);
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 2u);
  EXPECT_EQ(stats.bytes_on_wire, 2 * m.wire_bytes());
  EXPECT_GT(stats.simulated_transfer_seconds, 0.0);
}

TEST(Bus, ResetStats) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  bus.broadcast(make_msg(0));
  bus.reset_stats();
  const auto stats = bus.stats();
  EXPECT_EQ(stats.messages_sent, 0u);
  EXPECT_EQ(stats.bytes_on_wire, 0u);
}

TEST(Bus, ReceiveForTimesOut) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(bus.receive_for(0, 0.05), std::nullopt);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration<double>(elapsed).count(), 0.04);
}

TEST(Bus, ReceiveForWakesOnDelivery) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 2));
  std::thread producer([&bus] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    bus.send(0, make_msg(1, 42));
  });
  const auto m = bus.receive_for(0, 2.0);
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->device_type, 42u);
}

TEST(Bus, LinkModelTransferTime) {
  LinkModel link;
  link.bytes_per_second = 1000.0;
  link.base_latency_s = 0.5;
  EXPECT_DOUBLE_EQ(link.transfer_seconds(2000), 0.5 + 2.0);
}

TEST(Bus, ConcurrentProducersAllDelivered) {
  MessageBus bus(Topology(TopologyKind::kFullMesh, 4));
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (AgentId sender = 1; sender < 4; ++sender) {
    producers.emplace_back([&bus, sender] {
      for (int i = 0; i < kPerProducer; ++i) {
        bus.send(0, make_msg(sender, static_cast<std::uint32_t>(i)));
      }
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(bus.inbox_size(0), 3u * kPerProducer);
  const auto msgs = bus.drain(0);
  EXPECT_EQ(msgs.size(), 3u * kPerProducer);
  // Per-sender FIFO: each sender's messages arrive in order.
  std::array<std::uint32_t, 4> next{0, 0, 0, 0};
  for (const auto& m : msgs) {
    EXPECT_EQ(m.device_type, next[m.sender]);
    ++next[m.sender];
  }
}

TEST(Bus, StarTopologyDelivery) {
  MessageBus bus(Topology(TopologyKind::kStar, 4));
  bus.broadcast(make_msg(2));  // leaf -> hub only
  EXPECT_EQ(bus.inbox_size(0), 1u);
  EXPECT_EQ(bus.inbox_size(1), 0u);
  bus.broadcast(make_msg(0));  // hub -> all leaves
  EXPECT_EQ(bus.inbox_size(1), 1u);
  EXPECT_EQ(bus.inbox_size(2), 1u);
  EXPECT_EQ(bus.inbox_size(3), 1u);
}

}  // namespace
}  // namespace pfdrl::net
