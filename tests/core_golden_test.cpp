// Fixed-seed golden determinism test for the PFDRL pipeline.
//
// Runs a small but complete PFDRL pipeline (3 homes, 4 devices each,
// LR forecasters, 2-hidden-layer DQNs, alpha = 2 so the federated round
// exercises the prefix split) and asserts the forecast accuracy and the
// per-home EpisodeResult totals are *bitwise* identical to values
// recorded from the pre-ParamExchange implementation. Every stage is
// deterministic by construction (per-job forked RNGs, fixed aggregation
// order, fixed-order chunked reductions), so any drift here means a
// refactor changed numerical behaviour, not just structure.
//
// If this test fails after an *intentional* semantic change, re-record
// the constants by running the test and copying the "golden actual"
// block it prints on failure.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "data/trace.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl {
namespace {

struct GoldenHome {
  double total_reward;
  double standby_kwh;
  double saved_kwh;
  std::size_t comfort_violations;
  double violation_kwh;
  std::size_t steps;
};

TEST(GoldenPfdrl, SmallRunIsBitwiseStable) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = 42;
  sc.trace.days = 2;
  sc.trace.seed = 42;
  const auto traces = sim::Scenario::generate(sc).traces;

  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.dqn.hidden = {12, 12};
  cfg.alpha = 2;  // genuine base/personalization split (3 dense layers)
  cfg.gamma_hours = 6.0;
  obs::MetricsRegistry reg;
  cfg.metrics = &reg;

  core::EmsPipeline pipeline(traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  const double accuracy = pipeline.forecast_accuracy(day, 2 * day);
  const auto results = pipeline.evaluate(day, 2 * day);
  ASSERT_EQ(results.size(), 3u);

  // Recorded from the seed implementation (PR 1 tree) with the exact
  // configuration above; %.17g round-trips doubles exactly.
  const double kGoldenAccuracy = 0.64804216308708673;
  const GoldenHome kGolden[3] = {
      {34620, 0.13383352753431202, 0.13383352753431202, 4,
       0.012029867034949609, 2880},
      {53280, 0.26892035280230486, 0.072634918212407307, 1,
       0.0014929682995983061, 4320},
      {34860, 0.10526374927161707, 0.094155883730830184, 2,
       0.042400546539063777, 4320},
  };

  if (accuracy != kGoldenAccuracy) {
    std::printf("golden actual:\n  accuracy %.17g\n", accuracy);
    for (const auto& r : results) {
      std::printf("  {%.17g, %.17g, %.17g, %zu, %.17g, %zu},\n",
                  r.total_reward, r.standby_kwh, r.saved_kwh,
                  r.comfort_violations, r.violation_kwh, r.steps);
    }
  }

  EXPECT_EQ(accuracy, kGoldenAccuracy);
  for (std::size_t h = 0; h < results.size(); ++h) {
    EXPECT_EQ(results[h].total_reward, kGolden[h].total_reward) << "home " << h;
    EXPECT_EQ(results[h].standby_kwh, kGolden[h].standby_kwh) << "home " << h;
    EXPECT_EQ(results[h].saved_kwh, kGolden[h].saved_kwh) << "home " << h;
    EXPECT_EQ(results[h].comfort_violations, kGolden[h].comfort_violations)
        << "home " << h;
    EXPECT_EQ(results[h].violation_kwh, kGolden[h].violation_kwh)
        << "home " << h;
    EXPECT_EQ(results[h].steps, kGolden[h].steps) << "home " << h;
  }
}

}  // namespace
}  // namespace pfdrl
