// Fixed-seed golden determinism test for the PFDRL pipeline.
//
// Runs a small but complete PFDRL pipeline (3 homes, 4 devices each,
// LR forecasters, 2-hidden-layer DQNs, alpha = 2 so the federated round
// exercises the prefix split) and asserts the forecast accuracy and the
// per-home EpisodeResult totals are *bitwise* identical to values
// recorded from the pre-ParamExchange implementation. Every stage is
// deterministic by construction (per-job forked RNGs, fixed aggregation
// order, fixed-order chunked reductions), so any drift here means a
// refactor changed numerical behaviour, not just structure.
//
// If this test fails after an *intentional* semantic change, re-record
// the constants by running the test and copying the "golden actual"
// block it prints on failure.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/pipeline.hpp"
#include "data/trace.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"

namespace pfdrl {
namespace {

struct GoldenHome {
  double total_reward;
  double standby_kwh;
  double saved_kwh;
  std::size_t comfort_violations;
  double violation_kwh;
  std::size_t steps;
};

// Recorded from the seed implementation (PR 1 tree) with the exact
// configuration in run_small(); %.17g round-trips doubles exactly.
constexpr double kGoldenAccuracy = 0.64804216308708673;
const GoldenHome kGolden[3] = {
    {34620, 0.13383352753431202, 0.13383352753431202, 4,
     0.012029867034949609, 2880},
    {53280, 0.26892035280230486, 0.072634918212407307, 1,
     0.0014929682995983061, 4320},
    {34860, 0.10526374927161707, 0.094155883730830184, 2,
     0.042400546539063777, 4320},
};

struct SmallOutcome {
  double accuracy = 0.0;
  std::vector<ems::EpisodeResult> results;
};

SmallOutcome run_small(std::size_t shards, bool wire_codec = false,
                       core::SyncMode sync = core::SyncMode::kPipeline,
                       std::uint64_t* pipeline_rounds = nullptr) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 3;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = 42;
  sc.trace.days = 2;
  sc.trace.seed = 42;
  const auto traces = sim::Scenario::generate(sc).traces;

  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, 42);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.dqn.hidden = {12, 12};
  cfg.alpha = 2;  // genuine base/personalization split (3 dense layers)
  cfg.gamma_hours = 6.0;
  cfg.shards = shards;
  cfg.wire_codec = wire_codec;
  cfg.sync_mode = sync;
  obs::MetricsRegistry reg;
  cfg.metrics = &reg;

  core::EmsPipeline pipeline(traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);
  if (pipeline_rounds != nullptr) {
    *pipeline_rounds = reg.counter("ems.pipeline.rounds").value();
  }

  SmallOutcome out;
  out.accuracy = pipeline.forecast_accuracy(day, 2 * day);
  out.results = pipeline.evaluate(day, 2 * day);
  return out;
}

void expect_golden(const SmallOutcome& out) {
  ASSERT_EQ(out.results.size(), 3u);
  if (out.accuracy != kGoldenAccuracy) {
    std::printf("golden actual:\n  accuracy %.17g\n", out.accuracy);
    for (const auto& r : out.results) {
      std::printf("  {%.17g, %.17g, %.17g, %zu, %.17g, %zu},\n",
                  r.total_reward, r.standby_kwh, r.saved_kwh,
                  r.comfort_violations, r.violation_kwh, r.steps);
    }
  }
  EXPECT_EQ(out.accuracy, kGoldenAccuracy);
  for (std::size_t h = 0; h < out.results.size(); ++h) {
    const auto& r = out.results[h];
    EXPECT_EQ(r.total_reward, kGolden[h].total_reward) << "home " << h;
    EXPECT_EQ(r.standby_kwh, kGolden[h].standby_kwh) << "home " << h;
    EXPECT_EQ(r.saved_kwh, kGolden[h].saved_kwh) << "home " << h;
    EXPECT_EQ(r.comfort_violations, kGolden[h].comfort_violations)
        << "home " << h;
    EXPECT_EQ(r.violation_kwh, kGolden[h].violation_kwh) << "home " << h;
    EXPECT_EQ(r.steps, kGolden[h].steps) << "home " << h;
  }
}

TEST(GoldenPfdrl, SmallRunIsBitwiseStable) { expect_golden(run_small(0)); }

// The sharded bulk-synchronous engine (shard-bucketed fan-out, batched
// cross-shard routing, parallel exchange phases) must reproduce the
// legacy flat engine bitwise on a clean fault plan — the same pinned
// constants, not merely run-to-run agreement. See docs/scaling.md for
// why this holds (order-independent clean delivery + sorted drains +
// per-job forked RNGs).
TEST(GoldenPfdrl, ShardedRunMatchesFlatGoldenBitwise) {
  expect_golden(run_small(2));
}

// The lossless wire codec must be invisible to every pinned constant:
// received parameters are bitwise what the sender broadcast, and coded
// frame sizes only feed the wire-byte ledger (which no golden quantity
// reads under the no-deadline policy). Flat and sharded engines, codec
// on — same goldens, unmodified.
TEST(GoldenPfdrl, WireCodecOnMatchesGoldenBitwise) {
  expect_golden(run_small(0, /*wire_codec=*/true));
  expect_golden(run_small(2, /*wire_codec=*/true));
}

// The dependency-driven round pipeline (--sync-mode pipeline, the
// default) must be bitwise indistinguishable from the barrier engine:
// every shard consumes exactly the same per-round neighbor payload set
// in the same pinned sort order, only *when* it runs changes. Both sync
// modes, flat and sharded, codec off and on, all against the same pinned
// constants — and the pipelined run must prove it actually pipelined
// (flat runs are ineligible and silently fall back to BSP, which is also
// asserted).
TEST(GoldenPfdrl, PipelineMatchesBspBitwise) {
  expect_golden(run_small(2, false, core::SyncMode::kBsp));
  expect_golden(run_small(2, true, core::SyncMode::kBsp));

  std::uint64_t rounds = 0;
  expect_golden(run_small(2, false, core::SyncMode::kPipeline, &rounds));
  EXPECT_GT(rounds, 0u) << "pipelined engine never engaged";
  rounds = 0;
  expect_golden(run_small(2, true, core::SyncMode::kPipeline, &rounds));
  EXPECT_GT(rounds, 0u) << "pipelined engine never engaged (codec on)";

  // Unsharded: nothing to overlap, the pipeline must decline.
  rounds = 1;
  expect_golden(run_small(0, false, core::SyncMode::kPipeline, &rounds));
  EXPECT_EQ(rounds, 0u) << "flat run must fall back to the BSP engine";
}

// Chaos determinism: a fully loaded fault plan (drops, delay+jitter,
// duplication, reordering, a partition window, a crashed residence, a
// straggler, a deadline and a quorum gate) must still be bitwise
// reproducible per seed — all fault randomness rides per-bus seeded
// streams and the exchange engine stays single-threaded per round.
// Run-twice comparison rather than pinned constants so the test pins the
// determinism property, not one arbitrary chaotic trajectory.
struct ChaosOutcome {
  double accuracy = 0.0;
  std::vector<ems::EpisodeResult> results;
  std::uint64_t quorum_met = 0;
  std::uint64_t quorum_missed = 0;
  std::uint64_t stale_rounds = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_crashes = 0;
  std::uint64_t late_msgs = 0;
};

ChaosOutcome run_chaos(std::uint64_t seed, std::size_t shards = 0) {
  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 4;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 4;
  sc.neighborhood.seed = seed;
  sc.trace.days = 2;
  sc.trace.seed = seed;
  const auto traces = sim::Scenario::generate(sc).traces;

  auto cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl, seed);
  cfg.forecast_method = forecast::Method::kLr;
  cfg.window.window = 8;
  cfg.window.horizon = 5;
  cfg.dqn.hidden = {12, 12};
  cfg.alpha = 2;
  cfg.beta_hours = 6.0;
  cfg.gamma_hours = 3.0;  // many DRL rounds so every fault window fires
  cfg.fault.link.drop_probability = 0.2;
  cfg.fault.delay_s = 0.002;
  cfg.fault.jitter_s = 0.004;
  cfg.fault.duplicate_probability = 0.05;
  cfg.fault.reorder = true;
  cfg.fault.partitions.push_back({.from_round = 1,
                                  .until_round = 3,
                                  .group = {0, 1}});
  cfg.robustness.round_deadline_s = 0.006;
  cfg.robustness.quorum_fraction = 0.5;
  cfg.robustness.failures.crashes.push_back(
      {.agent = 2, .from_round = 0, .until_round = 2});
  cfg.robustness.failures.stragglers.push_back(
      {.agent = 3, .compute_delay_s = 0.02});
  cfg.shards = shards;
  obs::MetricsRegistry reg;
  cfg.metrics = &reg;

  core::EmsPipeline pipeline(traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, day);
  pipeline.train_ems(day, 2 * day);

  ChaosOutcome out;
  out.accuracy = pipeline.forecast_accuracy(day, 2 * day);
  out.results = pipeline.evaluate(day, 2 * day);
  out.quorum_met = reg.counter("exchange.quorum_met").value();
  out.quorum_missed = reg.counter("exchange.quorum_missed").value();
  out.stale_rounds = reg.counter("exchange.stale_rounds").value();
  out.fault_drops = reg.counter("fault.drops").value();
  out.fault_crashes = reg.counter("fault.crashes").value();
  out.late_msgs = reg.counter("exchange.late_msgs").value();
  return out;
}

TEST(GoldenChaos, SeededChaosRunIsBitwiseReproducible) {
  const auto first = run_chaos(42);
  const auto second = run_chaos(42);

  // The chaos actually engaged: faults fired and the degradation
  // machinery made real decisions (otherwise this test pins nothing).
  EXPECT_GT(first.fault_drops, 0u);
  EXPECT_GT(first.fault_crashes, 0u);
  EXPECT_GT(first.quorum_met + first.quorum_missed, 0u);
  EXPECT_GT(first.late_msgs + first.stale_rounds, 0u);

  EXPECT_EQ(first.accuracy, second.accuracy);
  EXPECT_EQ(first.quorum_met, second.quorum_met);
  EXPECT_EQ(first.quorum_missed, second.quorum_missed);
  EXPECT_EQ(first.stale_rounds, second.stale_rounds);
  EXPECT_EQ(first.fault_drops, second.fault_drops);
  EXPECT_EQ(first.late_msgs, second.late_msgs);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t h = 0; h < first.results.size(); ++h) {
    EXPECT_EQ(first.results[h].total_reward, second.results[h].total_reward);
    EXPECT_EQ(first.results[h].standby_kwh, second.results[h].standby_kwh);
    EXPECT_EQ(first.results[h].saved_kwh, second.results[h].saved_kwh);
    EXPECT_EQ(first.results[h].comfort_violations,
              second.results[h].comfort_violations);
    EXPECT_EQ(first.results[h].steps, second.results[h].steps);
  }
}

// Sharded chaos is compared sharded-vs-sharded, never against the flat
// run: fault randomness is consumed in delivery order, and batching
// cross-shard messages changes that order, so the realized fault mask
// legitimately differs between the two engines. What must hold is that
// the sharded engine is itself bitwise reproducible per seed.
TEST(GoldenChaos, ShardedChaosTwinRunsAgree) {
  const auto first = run_chaos(42, /*shards=*/2);
  const auto second = run_chaos(42, /*shards=*/2);

  EXPECT_GT(first.fault_drops, 0u);
  EXPECT_GT(first.fault_crashes, 0u);
  EXPECT_GT(first.quorum_met + first.quorum_missed, 0u);

  EXPECT_EQ(first.accuracy, second.accuracy);
  EXPECT_EQ(first.quorum_met, second.quorum_met);
  EXPECT_EQ(first.quorum_missed, second.quorum_missed);
  EXPECT_EQ(first.stale_rounds, second.stale_rounds);
  EXPECT_EQ(first.fault_drops, second.fault_drops);
  EXPECT_EQ(first.late_msgs, second.late_msgs);
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t h = 0; h < first.results.size(); ++h) {
    EXPECT_EQ(first.results[h].total_reward, second.results[h].total_reward);
    EXPECT_EQ(first.results[h].standby_kwh, second.results[h].standby_kwh);
    EXPECT_EQ(first.results[h].saved_kwh, second.results[h].saved_kwh);
    EXPECT_EQ(first.results[h].comfort_violations,
              second.results[h].comfort_violations);
    EXPECT_EQ(first.results[h].steps, second.results[h].steps);
  }
}

}  // namespace
}  // namespace pfdrl
