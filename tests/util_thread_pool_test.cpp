#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pfdrl::util {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitManyTasks) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(7, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelForChunkedPartitions) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunked(0, 100,
                            [&](std::size_t lo, std::size_t hi) {
                              std::lock_guard lock(m);
                              chunks.emplace_back(lo, hi);
                            },
                            7);
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 7u);
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // contiguous
  }
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  const std::size_t n = 5000;
  std::vector<double> xs(n);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::atomic<long> parallel_sum{0};
  pool.parallel_for(0, n, [&](std::size_t i) {
    parallel_sum.fetch_add(static_cast<long>(xs[i]),
                           std::memory_order_relaxed);
  });
  const long expected =
      static_cast<long>(std::accumulate(xs.begin(), xs.end(), 0.0));
  EXPECT_EQ(parallel_sum.load(), expected);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 10, [](std::size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  // The failed sweep must not wedge the pool or leak the sweep barrier.
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 64);
  auto fut = pool.submit([] { return 5; });
  EXPECT_EQ(fut.get(), 5);
}

TEST(ThreadPool, FirstExceptionWinsEvenWhenManyThrow) {
  ThreadPool pool(4);
  // Every chunk throws; exactly one exception must surface (no terminate
  // from a second in-flight exception) and it must be one of ours.
  try {
    pool.parallel_for(0, 1000,
                      [](std::size_t i) {
                        throw std::out_of_range("i=" + std::to_string(i));
                      });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("i="), std::string::npos);
  }
}

TEST(ThreadPool, StatsCountExecutedTasks) {
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {}).get();
  pool.parallel_for(0, 256, [](std::size_t) {});
  // Workers bump tasks_executed just *after* finishing a task, so a
  // future's get() can outrun the counter by one — poll briefly.
  ThreadPoolStats s{};
  for (int spin = 0; spin < 2000; ++spin) {
    s = pool.stats();
    if (s.tasks_executed >= 8) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(s.tasks_executed, 8u);   // the 8 completed submits
  EXPECT_GE(s.max_queue_depth, 1u);  // every push raises depth past 0
}

TEST(TaskSlot, InvokesInlineCallable) {
  int hits = 0;
  TaskSlot slot([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(slot));
  EXPECT_TRUE(slot.is_inline());
  slot();
  EXPECT_EQ(hits, 1);
}

TEST(TaskSlot, LargeCaptureSpillsToHeapAndStillRuns) {
  // Capture well past kInlineBytes so the slot must take the heap path.
  std::array<double, 32> big{};
  big[0] = 1.5;
  big[31] = 2.5;
  double sum = 0.0;
  TaskSlot slot([big, &sum] { sum = big[0] + big[31]; });
  static_assert(sizeof(big) > TaskSlot::kInlineBytes);
  EXPECT_FALSE(slot.is_inline());
  slot();
  EXPECT_DOUBLE_EQ(sum, 4.0);
}

TEST(TaskSlot, AcceptsMoveOnlyCallable) {
  auto flag = std::make_unique<int>(7);
  int seen = 0;
  TaskSlot slot([flag = std::move(flag), &seen] { seen = *flag; });
  TaskSlot moved(std::move(slot));
  EXPECT_FALSE(static_cast<bool>(slot));  // NOLINT(bugprone-use-after-move)
  moved();
  EXPECT_EQ(seen, 7);
}

TEST(TaskSlot, MoveAssignReleasesPreviousCallable) {
  auto counted = std::make_shared<int>(0);
  TaskSlot a([counted] { (void)counted; });
  EXPECT_EQ(counted.use_count(), 2);
  a = TaskSlot([] {});
  EXPECT_EQ(counted.use_count(), 1);  // old callable destroyed on assign
}

TEST(ThreadPool, SubmitDetachedRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::mutex m;
  std::condition_variable cv;
  for (int i = 0; i < 32; ++i) {
    pool.submit_detached([&] {
      if (count.fetch_add(1, std::memory_order_acq_rel) + 1 == 32) {
        std::lock_guard lock(m);
        cv.notify_all();
      }
    });
  }
  std::unique_lock lock(m);
  cv.wait(lock, [&] { return count.load(std::memory_order_acquire) == 32; });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, StatsCountInlineVsHeapTasks) {
  ThreadPool pool(2);
  // Small capture: must ride the inline buffer.
  pool.submit_detached([] {});
  // Oversized capture: must spill to the heap slot.
  std::array<double, 32> big{};
  pool.submit_detached([big] { (void)big; });
  ThreadPoolStats s{};
  for (int spin = 0; spin < 2000; ++spin) {
    s = pool.stats();
    if (s.tasks_inline >= 1 && s.tasks_heap >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(s.tasks_inline, 1u);
  EXPECT_GE(s.tasks_heap, 1u);
}

TEST(ThreadPool, SubmitTakesInlinePathForSmallLambdas) {
  ThreadPool pool(1);
  const ThreadPoolStats before = pool.stats();
  pool.submit([] { return 1; }).get();
  const ThreadPoolStats after = pool.stats();
  // packaged_task<int()> of a captureless lambda fits the slot buffer:
  // the submit hot path performs no shared_ptr heap allocation.
  EXPECT_EQ(after.tasks_heap, before.tasks_heap);
  EXPECT_GT(after.tasks_inline, before.tasks_inline);
}

TEST(ThreadPool, GlobalPoolIsStable) {
  ThreadPool* a = &ThreadPool::global();
  ThreadPool* b = &ThreadPool::global();
  EXPECT_EQ(a, b);
}

TEST(ThreadPool, StressManySmallBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 64);
  }
}

class GrainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrainSweep, CoverageIndependentOfGrain) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(
      0, n,
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      GetParam());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Grains, GrainSweep,
                         ::testing::Values(1, 3, 16, 100, 1000, 5000));

}  // namespace
}  // namespace pfdrl::util
