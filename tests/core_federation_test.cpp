#include "core/federation.hpp"

#include <gtest/gtest.h>

#include "core/layer_split.hpp"
#include "obs/metrics.hpp"

namespace pfdrl::core {
namespace {

rl::DqnConfig tiny_dqn(std::uint64_t weight_seed,
                       std::uint64_t exploration_seed) {
  rl::DqnConfig cfg;
  cfg.state_dim = 4;
  cfg.num_actions = 3;
  cfg.hidden = {8, 8, 8};
  cfg.replay_capacity = 64;
  cfg.batch_size = 8;
  cfg.seed = weight_seed;
  cfg.exploration_seed = exploration_seed;
  return cfg;
}

/// Train an agent a little so its weights move away from the shared init.
void jiggle(rl::DqnAgent& agent, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int i = 0; i < 64; ++i) {
    rl::Transition t;
    t.state = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
    t.action = static_cast<int>(rng.uniform_int(0, 2));
    t.reward = rng.uniform(-1, 1);
    t.next_state = t.state;
    t.terminal = true;
    agent.remember(std::move(t));
  }
  for (int i = 0; i < 10; ++i) agent.learn();
}

TEST(Federation, PrefixAveragedSuffixLocal) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  jiggle(a, 1);
  jiggle(b, 2);

  const std::size_t share = 2;  // of 4 dense layers
  const std::size_t prefix = base_prefix_params(a.network(), share);

  // Expected base average, personal suffixes before the round.
  std::vector<double> expected(prefix);
  for (std::size_t i = 0; i < prefix; ++i) {
    expected[i] =
        (a.network().parameters()[i] + b.network().parameters()[i]) / 2.0;
  }
  const std::vector<double> a_suffix(a.network().parameters().begin() + prefix,
                                     a.network().parameters().end());
  const std::vector<double> b_suffix(b.network().parameters().begin() + prefix,
                                     b.network().parameters().end());

  DrlFederation fed(2, share, net::TopologyKind::kFullMesh);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
  fed.round(devices, 0);

  for (std::size_t i = 0; i < prefix; ++i) {
    ASSERT_NEAR(a.network().parameters()[i], expected[i], 1e-12);
    ASSERT_NEAR(b.network().parameters()[i], expected[i], 1e-12);
  }
  for (std::size_t i = 0; i < a_suffix.size(); ++i) {
    ASSERT_EQ(a.network().parameters()[prefix + i], a_suffix[i]);
    ASSERT_EQ(b.network().parameters()[prefix + i], b_suffix[i]);
  }
}

TEST(Federation, FullShareMakesAgentsIdentical) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  jiggle(a, 3);
  jiggle(b, 4);
  const std::size_t layers = a.network().num_layers();
  DrlFederation fed(2, layers, net::TopologyKind::kStar);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
  fed.round(devices, 0);
  const auto pa = a.network().parameters();
  const auto pb = b.network().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
}

TEST(Federation, DifferentTypesDoNotMix) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  jiggle(a, 5);
  jiggle(b, 6);
  const std::vector<double> a_before(a.network().parameters().begin(),
                                     a.network().parameters().end());
  DrlFederation fed(2, 2, net::TopologyKind::kFullMesh);
  std::vector<FederatedDevice> devices = {{0, 1, &a}, {1, 2, &b}};
  fed.round(devices, 0);
  const auto pa = a.network().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], a_before[i]);
}

TEST(Federation, SingleHomeNoOp) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  jiggle(a, 7);
  const std::vector<double> before(a.network().parameters().begin(),
                                   a.network().parameters().end());
  DrlFederation fed(1, 2, net::TopologyKind::kFullMesh);
  std::vector<FederatedDevice> devices = {{0, 1, &a}};
  fed.round(devices, 0);
  const auto after = a.network().parameters();
  for (std::size_t i = 0; i < after.size(); ++i) {
    ASSERT_EQ(after[i], before[i]);
  }
}

TEST(Federation, SmallerAlphaCostsLessWire) {
  const auto run_with_share = [](std::size_t share) {
    rl::DqnAgent a(tiny_dqn(1, 100));
    rl::DqnAgent b(tiny_dqn(1, 200));
    DrlFederation fed(2, share, net::TopologyKind::kFullMesh);
    std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
    fed.round(devices, 0);
    return fed.comm_stats().bytes_on_wire;
  };
  const auto small = run_with_share(1);
  const auto medium = run_with_share(2);
  const auto full = run_with_share(4);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, full);
}

TEST(Federation, ThreePeersAverageTogether) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  rl::DqnAgent c(tiny_dqn(1, 300));
  jiggle(a, 8);
  jiggle(b, 9);
  jiggle(c, 10);
  const std::size_t prefix = base_prefix_params(a.network(), 1);
  std::vector<double> expected(prefix);
  for (std::size_t i = 0; i < prefix; ++i) {
    expected[i] = (a.network().parameters()[i] + b.network().parameters()[i] +
                   c.network().parameters()[i]) /
                  3.0;
  }
  DrlFederation fed(3, 1, net::TopologyKind::kFullMesh);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}, {2, 7, &c}};
  fed.round(devices, 0);
  for (std::size_t i = 0; i < prefix; ++i) {
    ASSERT_NEAR(a.network().parameters()[i], expected[i], 1e-12);
    ASSERT_NEAR(c.network().parameters()[i], expected[i], 1e-12);
  }
}

TEST(Federation, LossyLinkDegradesGracefully) {
  // A black-hole link means no peer contributions arrive: averaging must
  // silently no-op (every group is just the local slice) rather than
  // corrupting parameters or throwing.
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  jiggle(a, 11);
  jiggle(b, 12);
  const std::vector<double> a_before(a.network().parameters().begin(),
                                     a.network().parameters().end());
  net::LinkModel link;
  link.drop_probability = 1.0;
  DrlFederation fed(2, 2, net::TopologyKind::kFullMesh, link);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
  fed.round(devices, 0);
  const auto pa = a.network().parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], a_before[i]);
  EXPECT_EQ(fed.comm_stats().messages_delivered, 0u);
  EXPECT_GT(fed.comm_stats().messages_dropped, 0u);
}

TEST(Federation, RoundRecordsMetrics) {
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 200));
  jiggle(a, 13);
  jiggle(b, 14);
  obs::MetricsRegistry reg;
  DrlFederation fed(2, 2, net::TopologyKind::kFullMesh, net::LinkModel{},
                    &reg);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
  fed.round(devices, 0);
  EXPECT_EQ(reg.counter("drl.rounds").value(), 1u);
  EXPECT_EQ(reg.counter("drl.contributions_accepted").value(), 2u);
  EXPECT_EQ(reg.counter("drl.contributions_rejected").value(), 0u);
  const std::size_t prefix = base_prefix_params(a.network(), 2);
  EXPECT_EQ(reg.counter("drl.params_averaged").value(), 2u * prefix);
  // Both averaging groups had size 2 (own slice + one peer).
  EXPECT_EQ(reg.histogram("drl.agg_group_size").count(), 2u);
  EXPECT_EQ(reg.counter("bus.drl.messages_sent").value(), 2u);
}

TEST(Federation, RoundIsIdempotentOnEqualAgents) {
  // Agents already equal: averaging must not change anything.
  rl::DqnAgent a(tiny_dqn(1, 100));
  rl::DqnAgent b(tiny_dqn(1, 100));
  const std::vector<double> before(a.network().parameters().begin(),
                                   a.network().parameters().end());
  DrlFederation fed(2, 3, net::TopologyKind::kFullMesh);
  std::vector<FederatedDevice> devices = {{0, 7, &a}, {1, 7, &b}};
  fed.round(devices, 0);
  const auto after = a.network().parameters();
  for (std::size_t i = 0; i < after.size(); ++i) {
    ASSERT_NEAR(after[i], before[i], 1e-12);
  }
}

}  // namespace
}  // namespace pfdrl::core
