// Data-race stress for the sharded bulk-synchronous engine: concurrent
// broadcasts parking cross-shard messages in the net::ShardRouter's pair
// batches, a racing flusher handing them over to the bus inboxes, racing
// drainers, and util::sharded_for dispatches recording shard timings into
// a shared metrics registry. Built with -fsanitize=thread (see
// tests/CMakeLists.txt); a clean exit 0 is the pass signal. The count
// checks at the end double as a lost-update detector when the binary is
// run without TSan.
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.hpp"
#include "net/shard_router.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "util/shard.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace pfdrl;

  constexpr std::size_t kAgents = 24;
  constexpr std::size_t kShards = 4;
  constexpr int kRounds = 40;
  constexpr std::size_t kParams = 16;

  net::MessageBus bus(
      net::Topology(net::TopologyKind::kFullMesh, kAgents), {});
  net::ShardRouter router(kAgents, kShards);
  bus.set_shard_router(&router);

  obs::MetricsRegistry reg;
  util::ThreadPool pool(4);

  // Phase 1: one producer thread per shard broadcasting its shard's
  // agents, racing a flusher (cross-shard mailbox handoff) and drainers.
  // Every bus/router entry point here is part of the thread-safety
  // contract the sharded engine relies on.
  std::atomic<std::uint64_t> broadcasts{0};
  std::atomic<std::uint64_t> flushed{0};
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> producing{true};
  {
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < kShards; ++s) {
      threads.emplace_back([&, s] {
        const std::size_t first = util::shard_begin(s, kAgents, kShards);
        const std::size_t last = util::shard_begin(s + 1, kAgents, kShards);
        for (int r = 0; r < kRounds; ++r) {
          for (std::size_t a = first; a < last; ++a) {
            net::Message msg;
            msg.sender = static_cast<net::AgentId>(a);
            msg.round = static_cast<std::uint64_t>(r);
            msg.payload = std::vector<double>(kParams, static_cast<double>(a));
            bus.broadcast(msg);
            broadcasts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    threads.emplace_back([&] {  // flusher
      while (producing.load(std::memory_order_acquire) ||
             router.pending() > 0) {
        flushed.fetch_add(bus.flush_shard_batches(),
                          std::memory_order_relaxed);
        (void)router.stats();
      }
    });
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {  // drainers
        for (int i = 0; i < kRounds * 8; ++i) {
          const auto agent =
              static_cast<net::AgentId>((t * 7 + i) % kAgents);
          drained.fetch_add(bus.drain(agent).size(),
                            std::memory_order_relaxed);
          (void)bus.inbox_size(agent);
        }
      });
    }
    for (std::size_t i = 0; i < kShards; ++i) threads[i].join();
    producing.store(false, std::memory_order_release);
    for (std::size_t i = kShards; i < threads.size(); ++i) threads[i].join();
  }
  flushed.fetch_add(bus.flush_shard_batches(), std::memory_order_relaxed);
  for (std::size_t a = 0; a < kAgents; ++a) {
    drained.fetch_add(bus.drain(static_cast<net::AgentId>(a)).size(),
                      std::memory_order_relaxed);
  }

  // Phase 2: sharded dispatches racing metric folds on a shared registry.
  for (int round = 0; round < 10; ++round) {
    std::atomic<std::uint64_t> visited{0};
    const util::ShardTiming timing = util::sharded_for(
        pool, kAgents * 8, kShards,
        [&](std::size_t i) {
          return util::shard_of(i, kAgents * 8, kShards);
        },
        [&](std::size_t) {
          visited.fetch_add(1, std::memory_order_relaxed);
          reg.counter("stress.shard_visits").add();
        });
    obs::record_shard_timing(reg, "stress.shard", timing);
    obs::record_shard_router_stats(reg, "stress.bus", router.stats());
    if (visited.load() != kAgents * 8) {
      std::fprintf(stderr, "FATAL: sharded_for lost items\n");
      return 1;
    }
  }

  // Clean full-mesh plan: every broadcast reaches all N-1 peers, parked
  // or not, and everything parked must eventually flush and drain.
  const std::uint64_t expected =
      broadcasts.load() * (kAgents - 1);
  if (drained.load() != expected) {
    std::fprintf(stderr, "FATAL: delivered %llu of %llu messages\n",
                 static_cast<unsigned long long>(drained.load()),
                 static_cast<unsigned long long>(expected));
    return 1;
  }
  const auto stats = router.stats();
  if (stats.messages_batched != flushed.load()) {
    std::fprintf(stderr, "FATAL: router batched %llu but flushed %llu\n",
                 static_cast<unsigned long long>(stats.messages_batched),
                 static_cast<unsigned long long>(flushed.load()));
    return 1;
  }
  std::printf("tsan_shard_stress: %llu broadcasts, %llu cross-shard "
              "handoffs, %llu drained — OK\n",
              static_cast<unsigned long long>(broadcasts.load()),
              static_cast<unsigned long long>(flushed.load()),
              static_cast<unsigned long long>(drained.load()));
  return 0;
}
