// ParamExchange engine unit tests: grouped averaging, shape guard, star
// relay, secure-aggregation masking, in-place prefix averaging, and the
// zero-copy allocation guarantee (payload copies scale with items, not
// receivers).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "fl/exchange.hpp"
#include "fl/secure_agg.hpp"
#include "net/bus.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"

namespace pfdrl::fl {
namespace {

// One flat parameter vector per agent, all the same device type.
std::vector<std::vector<double>> make_params(std::size_t agents,
                                             std::size_t len) {
  std::vector<std::vector<double>> params(agents, std::vector<double>(len));
  for (std::size_t a = 0; a < agents; ++a) {
    for (std::size_t i = 0; i < len; ++i) {
      params[a][i] = static_cast<double>(a * 100 + i);
    }
  }
  return params;
}

std::vector<ExchangeItem> make_items(std::vector<std::vector<double>>& params,
                                     std::uint32_t type = 7) {
  std::vector<ExchangeItem> items;
  for (std::size_t a = 0; a < params.size(); ++a) {
    items.push_back({.agent = static_cast<net::AgentId>(a),
                     .device_type = type,
                     .send = params[a],
                     .in_place = {}});
  }
  return items;
}

TEST(ParamExchange, FullMeshAveragesPerGroup) {
  const std::size_t n = 3;
  auto params = make_params(n, 4);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange exchange(bus, {});
  auto items = make_items(params);

  std::vector<std::vector<double>> committed(n);
  const auto stats = exchange.round(
      items, 0, [&](std::size_t i, std::span<const double> averaged) {
        committed[i].assign(averaged.begin(), averaged.end());
      });

  EXPECT_EQ(stats.accepted, n * (n - 1));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.items_averaged, n);
  for (std::size_t a = 0; a < n; ++a) {
    ASSERT_EQ(committed[a].size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      // mean over agents of (a*100 + i) = 100 + i for n = 3.
      EXPECT_DOUBLE_EQ(committed[a][i], 100.0 + static_cast<double>(i));
    }
  }
}

TEST(ParamExchange, PayloadCopiesScaleWithItemsNotReceivers) {
  // The acceptance criterion for the zero-copy refactor: a full-mesh
  // broadcast performs O(1) payload allocations per item regardless of
  // how many receivers fan out.
  for (const std::size_t n : {std::size_t{4}, std::size_t{12}}) {
    auto params = make_params(n, 32);
    net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, n));
    obs::MetricsRegistry reg;
    ParamExchange::Options options;
    options.metrics = &reg;
    ParamExchange exchange(bus, options);
    auto items = make_items(params);
    const auto stats = exchange.round(items, 0, {});
    EXPECT_EQ(stats.payload_allocations, n) << "receivers=" << n - 1;
    EXPECT_EQ(reg.counter("exchange.payload_copies").value(), n);
    EXPECT_EQ(reg.counter("exchange.items").value(), n);
    EXPECT_EQ(reg.counter("exchange.rounds").value(), 1u);
  }
}

TEST(ParamExchange, ShapeGuardRejectsMismatchedContributions) {
  const std::size_t n = 3;
  auto params = make_params(n, 4);
  params[2].resize(6, 0.0);  // odd one out
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange exchange(bus, {});
  auto items = make_items(params);

  std::vector<bool> touched(n, false);
  const auto stats =
      exchange.round(items, 0, [&](std::size_t i, std::span<const double>) {
        touched[i] = true;
      });

  // Agents 0/1 accept each other and reject agent 2 (one rejection
  // each); agent 2 rejects both of theirs and averages nothing.
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 4u);
  EXPECT_EQ(stats.items_averaged, 2u);
  EXPECT_TRUE(touched[0]);
  EXPECT_TRUE(touched[1]);
  EXPECT_FALSE(touched[2]);  // below min_group: keeps local parameters
}

TEST(ParamExchange, DisjointTypesNeverMix) {
  const std::size_t n = 2;
  auto params = make_params(n, 3);
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange exchange(bus, {});
  std::vector<ExchangeItem> items;
  for (std::size_t a = 0; a < n; ++a) {
    items.push_back({.agent = static_cast<net::AgentId>(a),
                     .device_type = static_cast<std::uint32_t>(a),  // unique
                     .send = params[a],
                     .in_place = {}});
  }
  const auto stats = exchange.round(
      items, 0, [](std::size_t, std::span<const double>) { FAIL(); });
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.items_averaged, 0u);
}

TEST(ParamExchange, StarHubRelaysLeafContributions) {
  const std::size_t n = 3;
  auto params = make_params(n, 4);
  net::MessageBus bus(net::Topology(net::TopologyKind::kStar, n));
  ParamExchange exchange(bus, {});
  auto items = make_items(params);

  std::vector<std::vector<double>> committed(n);
  const auto stats = exchange.round(
      items, 0, [&](std::size_t i, std::span<const double> averaged) {
        committed[i].assign(averaged.begin(), averaged.end());
      });

  // Each of the two leaf messages is relayed to the one other leaf.
  EXPECT_EQ(stats.relayed, 2u);
  // Despite the star, every agent ends with the full contribution set
  // and the same average as the full mesh.
  EXPECT_EQ(stats.accepted, n * (n - 1));
  for (std::size_t a = 0; a < n; ++a) {
    ASSERT_EQ(committed[a].size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(committed[a][i], 100.0 + static_cast<double>(i));
    }
  }
}

TEST(ParamExchange, InPlacePrefixLeavesPersonalizationSuffix) {
  const std::size_t n = 2;
  const std::size_t len = 6;
  const std::size_t prefix = 4;
  auto params = make_params(n, len);
  const auto original = params;
  net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange exchange(bus, {});
  std::vector<ExchangeItem> items;
  for (std::size_t a = 0; a < n; ++a) {
    items.push_back({.agent = static_cast<net::AgentId>(a),
                     .device_type = 7,
                     .send = std::span<const double>(params[a]).subspan(0, prefix),
                     .in_place = params[a]});
  }
  std::size_t commits = 0;
  const auto stats = exchange.round(
      items, 0, [&](std::size_t, std::span<const double> averaged) {
        EXPECT_EQ(averaged.size(), prefix);
        ++commits;
      });
  EXPECT_EQ(commits, n);
  EXPECT_EQ(stats.params_averaged, n * prefix);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t i = 0; i < prefix; ++i) {
      const double mean = (original[0][i] + original[1][i]) / 2.0;
      EXPECT_DOUBLE_EQ(params[a][i], mean);
    }
    for (std::size_t i = prefix; i < len; ++i) {
      EXPECT_DOUBLE_EQ(params[a][i], original[a][i]);  // untouched
    }
  }
}

TEST(ParamExchange, SecureMasksCancelInTheMean) {
  const std::size_t n = 3;
  auto params = make_params(n, 8);
  net::MessageBus plain_bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange plain(plain_bus, {});
  auto items = make_items(params);
  std::vector<std::vector<double>> want(n);
  plain.round(items, 5, [&](std::size_t i, std::span<const double> averaged) {
    want[i].assign(averaged.begin(), averaged.end());
  });

  const SecureAggregator aggregator;
  net::MessageBus masked_bus(net::Topology(net::TopologyKind::kFullMesh, n));
  ParamExchange::Options options;
  options.secure = &aggregator;
  ParamExchange masked(masked_bus, options);
  std::vector<std::vector<double>> got(n);
  masked.round(items, 5, [&](std::size_t i, std::span<const double> averaged) {
    got[i].assign(averaged.begin(), averaged.end());
  });

  for (std::size_t a = 0; a < n; ++a) {
    ASSERT_EQ(got[a].size(), want[a].size());
    for (std::size_t i = 0; i < got[a].size(); ++i) {
      // Pairwise masks cancel in the sum; only float cancellation error
      // survives.
      EXPECT_NEAR(got[a][i], want[a][i], 1e-9);
    }
  }
}

}  // namespace
}  // namespace pfdrl::fl
