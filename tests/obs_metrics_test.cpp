#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "nn/workspace.hpp"

namespace pfdrl::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (strict enough for our exporter: no
// exponent-less edge cases matter since %.17g output is standard). Returns
// true iff `text` is exactly one valid JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == '}') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ']') return ++pos_, true;
      if (text_[pos_] != ',') return false;
      ++pos_;
    }
  }
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 'n': return literal("null");
      case 't': return literal("true");
      case 'f': return literal("false");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

TEST(Counter, AddSetReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndUpdateMax) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.update_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(HistogramTest, RejectsBadLayouts) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3.0, 1.0, 2.0}), std::invalid_argument);
}

TEST(HistogramTest, BucketsAreLowerBoundInclusive) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (boundary lands in its own bucket)
  h.observe(5.0);    // <= 10
  h.observe(100.0);  // <= 100
  h.observe(250.0);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 250.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 250.0);
}

TEST(HistogramTest, EmptyHistogramHasInfiniteExtremes) {
  Histogram h(Histogram::time_buckets());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));
  EXPECT_TRUE(std::isinf(h.max()));
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0, 2.0});
  h.observe(1.5);
  h.observe(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_TRUE(std::isinf(h.min()));
}

TEST(HistogramTest, StandardLayoutsAreSorted) {
  const auto time = Histogram::time_buckets();
  const auto count = Histogram::count_buckets();
  EXPECT_TRUE(std::is_sorted(time.begin(), time.end()));
  EXPECT_TRUE(std::is_sorted(count.begin(), count.end()));
  EXPECT_DOUBLE_EQ(time.front(), 1e-6);
  EXPECT_DOUBLE_EQ(count.front(), 1.0);
  EXPECT_DOUBLE_EQ(count.back(), 32768.0);
}

TEST(SeriesTest, AppendsInOrder) {
  Series s;
  s.append(1.0);
  s.append(-2.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.values(), (std::vector<double>{1.0, -2.0}));
  s.reset();
  EXPECT_EQ(s.size(), 0u);
}

TEST(Registry, FindOrCreateReturnsStableInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.events");
  a.add(3);
  Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_TRUE(reg.contains("x.events"));
  EXPECT_FALSE(reg.contains("x.other"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("name");
  EXPECT_THROW(reg.gauge("name"), std::logic_error);
  EXPECT_THROW(reg.histogram("name"), std::logic_error);
  EXPECT_THROW(reg.series("name"), std::logic_error);
  reg.histogram("h", {1.0});
  EXPECT_THROW(reg.counter("h"), std::logic_error);
}

TEST(Registry, HistogramLayoutFrozenAtCreation) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  // A different layout on re-request is ignored — same instrument back.
  Histogram& again = reg.histogram("h", {5.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(Registry, ResetZeroesButKeepsNames) {
  MetricsRegistry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(2.5);
  reg.histogram("h", {1.0}).observe(0.5);
  reg.series("s").append(1.0);
  reg.reset();
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 0.0);
  EXPECT_EQ(reg.histogram("h").count(), 0u);
  EXPECT_EQ(reg.series("s").size(), 0u);
}

TEST(Registry, ConcurrentUseFromManyThreads) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      for (int i = 0; i < kIters; ++i) {
        // Shared instruments: every thread races on the same names.
        reg.counter("shared.events").add();
        reg.histogram("shared.hist", Histogram::count_buckets())
            .observe(static_cast<double>(i % 100));
        reg.gauge("shared.hwm").update_max(static_cast<double>(i));
        // Per-thread instrument: exercises map growth under contention.
        reg.counter("thread." + std::to_string(t)).add();
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(reg.counter("shared.events").value(),
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_EQ(reg.histogram("shared.hist").count(),
            static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_DOUBLE_EQ(reg.gauge("shared.hwm").value(), kIters - 1.0);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("thread." + std::to_string(t)).value(),
              static_cast<std::uint64_t>(kIters));
  }
}

TEST(Registry, JsonExportIsWellFormedAndComplete) {
  MetricsRegistry reg;
  reg.counter("ems.rounds").add(3);
  reg.gauge("ems.epsilon").set(0.25);
  Histogram& h = reg.histogram("ems.round_seconds", {0.5, 1.0});
  h.observe(0.25);
  h.observe(2.0);  // overflow
  reg.series("ems.epsilon_series").append(0.9);
  reg.series("ems.epsilon_series").append(0.25);
  // An untouched histogram must serialize (infinite extremes -> null).
  reg.histogram("dfl.round_seconds", {1.0});

  const std::string json = reg.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"ems.rounds\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ems.epsilon\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"min\": null"), std::string::npos);  // empty hist
  EXPECT_NE(json.find("[0.90000000000000002, 0.25]"), std::string::npos);
}

TEST(Registry, JsonRoundTripsThroughFile) {
  MetricsRegistry reg;
  reg.counter("a").add(1);
  reg.gauge("b").set(-1.5);
  const std::string path =
      ::testing::TempDir() + "/pfdrl_obs_roundtrip.json";
  reg.write_json(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), reg.to_json());
  EXPECT_TRUE(JsonChecker(buf.str()).valid());
  std::remove(path.c_str());
}

TEST(Registry, CsvExportListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c").add(2);
  reg.gauge("g").set(0.5);
  reg.histogram("h", {1.0}).observe(0.1);
  reg.series("s").append(7.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,2\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h,le=1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("series,s,0,7\n"), std::string::npos);
}

TEST(SpanTimerTest, RecordsOnScopeExitAndStopDisarms) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("span", Histogram::time_buckets());
  Series& traj = reg.series("span_series");
  {
    SpanTimer timer(h, &traj);
    const double elapsed = timer.stop();
    EXPECT_GE(elapsed, 0.0);
    // Destructor must not record a second sample after stop().
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(traj.size(), 1u);
  { SpanTimer timer(h); }  // records via destructor
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(traj.size(), 1u);
}

TEST(RecordHelpers, BusAndPoolFoldsAreIdempotent) {
  MetricsRegistry reg;
  net::BusStats bus;
  bus.messages_sent = 10;
  bus.messages_delivered = 8;
  bus.messages_dropped = 2;
  bus.messages_partition_dropped = 1;
  bus.messages_duplicated = 3;
  bus.messages_delayed = 4;
  bus.bytes_on_wire = 4096;
  bus.simulated_transfer_seconds = 0.75;
  bus.simulated_fault_delay_seconds = 0.25;
  record_bus_stats(reg, "bus.test", bus);
  record_bus_stats(reg, "bus.test", bus);  // must not double-count
  EXPECT_EQ(reg.counter("bus.test.messages_sent").value(), 10u);
  EXPECT_EQ(reg.counter("bus.test.messages_dropped").value(), 2u);
  EXPECT_EQ(reg.counter("bus.test.messages_partition_dropped").value(), 1u);
  EXPECT_EQ(reg.counter("bus.test.messages_duplicated").value(), 3u);
  EXPECT_EQ(reg.counter("bus.test.messages_delayed").value(), 4u);
  EXPECT_EQ(reg.counter("bus.test.bytes_on_wire").value(), 4096u);
  EXPECT_DOUBLE_EQ(
      reg.gauge("bus.test.simulated_transfer_seconds").value(), 0.75);
  EXPECT_DOUBLE_EQ(
      reg.gauge("bus.test.simulated_fault_delay_seconds").value(), 0.25);

  util::ThreadPoolStats pool;
  pool.tasks_executed = 100;
  pool.tasks_stolen = 5;
  pool.max_queue_depth = 12;
  record_thread_pool_stats(reg, "pool", pool);
  record_thread_pool_stats(reg, "pool", pool);
  EXPECT_EQ(reg.counter("pool.tasks_executed").value(), 100u);
  EXPECT_EQ(reg.counter("pool.tasks_stolen").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("pool.max_queue_depth").value(), 12.0);
}

TEST(RuntimeStats, NnWorkspaceFoldIsIdempotent) {
  MetricsRegistry reg;
  {
    nn::Workspace ws;
    ws.take(8, 8);  // ensure the process-wide counters are non-trivial
    record_nn_workspace_stats(reg);
    record_nn_workspace_stats(reg);  // set, not add: no double counting
    EXPECT_EQ(reg.counter("nn.workspace_allocs").value(),
              nn::Workspace::total_allocations());
    EXPECT_DOUBLE_EQ(reg.gauge("nn.scratch_bytes").value(),
                     static_cast<double>(nn::Workspace::total_bytes()));
    EXPECT_GT(reg.counter("nn.workspace_allocs").value(), 0u);
    EXPECT_GT(reg.gauge("nn.scratch_bytes").value(), 0.0);
  }
  // The arena died: a re-fold reflects the released scratch bytes.
  record_nn_workspace_stats(reg);
  EXPECT_DOUBLE_EQ(reg.gauge("nn.scratch_bytes").value(),
                   static_cast<double>(nn::Workspace::total_bytes()));
}

}  // namespace
}  // namespace pfdrl::obs
