#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace pfdrl::util {
namespace {

TEST(Csv, EscapePlain) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(Csv, EscapeComma) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapeQuote) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapeNewline) {
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RoundTripSimple) {
  CsvTable t({"a", "b", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"x", "y", "z"});
  const auto parsed = CsvTable::parse(t.to_string());
  ASSERT_EQ(parsed.num_rows(), 2u);
  ASSERT_EQ(parsed.num_cols(), 3u);
  EXPECT_EQ(parsed.cell(0, 0), "1");
  EXPECT_EQ(parsed.cell(1, 2), "z");
  EXPECT_EQ(parsed.header(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, RoundTripQuotedContent) {
  CsvTable t({"name", "note"});
  t.add_row({"widget, large", "says \"ok\"\nsecond line"});
  const auto parsed = CsvTable::parse(t.to_string());
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, 0), "widget, large");
  EXPECT_EQ(parsed.cell(0, 1), "says \"ok\"\nsecond line");
}

TEST(Csv, ParseCrlf) {
  const auto t = CsvTable::parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(Csv, ParseWithoutTrailingNewline) {
  const auto t = CsvTable::parse("a,b\n1,2");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "1");
}

TEST(Csv, ParseEmpty) {
  const auto t = CsvTable::parse("");
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.num_cols(), 0u);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(CsvTable::parse("a,b\n\"oops,2\n"), std::runtime_error);
}

TEST(Csv, ColumnLookup) {
  CsvTable t({"time", "watts"});
  EXPECT_EQ(t.column("watts"), std::optional<std::size_t>(1));
  EXPECT_EQ(t.column("absent"), std::nullopt);
}

TEST(Csv, RowPaddedToHeaderWidth) {
  CsvTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.cell(0, 0), "only");
  EXPECT_EQ(t.cell(0, 2), "");
}

TEST(Csv, RowTruncatedToHeaderWidth) {
  CsvTable t({"a"});
  t.add_row({"1", "extra"});
  EXPECT_EQ(t.num_cols(), 1u);
  EXPECT_EQ(t.cell(0, 0), "1");
}

TEST(Csv, CellAsDouble) {
  CsvTable t({"v"});
  t.add_row({"3.25"});
  t.add_row({"nope"});
  t.add_row({"12x"});  // trailing junk is a parse failure
  EXPECT_EQ(t.cell_as_double(0, 0), std::optional<double>(3.25));
  EXPECT_EQ(t.cell_as_double(1, 0), std::nullopt);
  EXPECT_EQ(t.cell_as_double(2, 0), std::nullopt);
}

TEST(Csv, ColumnAsDoubles) {
  CsvTable t({"v"});
  t.add_row({"1.5"});
  t.add_row({"bad"});
  t.add_row({"-2"});
  const auto col = t.column_as_doubles(0);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_DOUBLE_EQ(col[0], 1.5);
  EXPECT_DOUBLE_EQ(col[1], 0.0);
  EXPECT_DOUBLE_EQ(col[2], -2.0);
}

TEST(Csv, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pfdrl_csv_test.csv").string();
  CsvTable t({"k", "v"});
  t.add_row({"alpha", "6"});
  t.save(path);
  const auto loaded = CsvTable::load(path);
  EXPECT_EQ(loaded.cell(0, 0), "alpha");
  EXPECT_EQ(loaded.cell_as_double(0, 1), std::optional<double>(6.0));
  std::remove(path.c_str());
}

TEST(Csv, LoadMissingFileThrows) {
  EXPECT_THROW(CsvTable::load("/nonexistent/dir/x.csv"), std::runtime_error);
}

}  // namespace
}  // namespace pfdrl::util
