// Data-race stress for the dependency-driven round pipeline: repeated
// core::RoundPipeline segments driving fl::StagedExchange double buffers
// on a 4-worker pool, so the per-(shard, round) readiness counters, the
// continuation handoff, and the frozen-inbox/live-compute buffer split
// all run under maximum scheduler pressure. Built with -fsanitize=thread
// (see tests/CMakeLists.txt); a clean exit 0 is the pass signal. Every
// pipelined repetition must reproduce the bulk-synchronous reference
// hash bitwise, so the checks double as a lost-update / double-apply
// detector when the binary is run without TSan.
#include <cstdint>
#include <cstdio>
#include <span>
#include <vector>

#include "core/sharded_runner.hpp"
#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "net/shard_router.hpp"
#include "net/topology.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pfdrl;

constexpr std::size_t kAgents = 32;
constexpr std::size_t kShards = 8;
constexpr std::size_t kParams = 16;
constexpr std::size_t kRounds = 10;
constexpr int kReps = 8;
constexpr std::uint64_t kSeed = 42;

std::uint64_t fnv1a(const std::vector<double>& params) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(params.data());
  for (std::size_t i = 0; i < params.size() * sizeof(double); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ULL;
  }
  return h;
}

/// One engine instance: bus + router + parameter arena, identical for
/// the bsp reference and every pipelined repetition.
struct Setup {
  net::MessageBus bus;
  net::ShardRouter router;
  std::vector<double> params;
  std::vector<fl::ExchangeItem> items;

  explicit Setup(const net::Topology& topology)
      : bus(topology, {}),
        router(kAgents, kShards),
        params(kAgents * kParams),
        items(kAgents) {
    bus.set_shard_router(&router);
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] =
          static_cast<double>(net::detail::mix64(kSeed ^ i) >> 40) * 1e-6;
    }
    for (std::size_t a = 0; a < kAgents; ++a) {
      const std::span<double> slice(params.data() + a * kParams, kParams);
      items[a] = {.agent = static_cast<net::AgentId>(a),
                  .device_type = 0,
                  .send = slice,
                  .in_place = slice};
    }
  }

  // Pure function of (seed, round, agent) — schedule-independent.
  void local_step(std::size_t a, std::uint64_t r) {
    for (std::size_t i = 0; i < kParams; ++i) {
      const std::uint64_t g = net::detail::mix64(
          kSeed ^ (r * 1315423911ULL) ^ (a * kParams + i));
      params[a * kParams + i] =
          params[a * kParams + i] * 0.999 + static_cast<double>(g >> 40) * 1e-9;
    }
  }
};

fl::ParamExchange::Options exchange_options() {
  fl::ParamExchange::Options opts;
  opts.kind = net::MessageKind::kForecastParams;
  opts.min_group = 2;
  return opts;
}

/// Bulk-synchronous reference: the oracle hash every pipelined rep must
/// reproduce bitwise.
std::uint64_t run_bsp(const net::Topology& topology) {
  Setup setup(topology);
  auto opts = exchange_options();
  opts.parallel = true;
  fl::ParamExchange exchange(setup.bus, opts);
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (std::size_t a = 0; a < kAgents; ++a) setup.local_step(a, r);
    exchange.round(setup.items, r, [](std::size_t, std::span<const double>) {});
  }
  return fnv1a(setup.params);
}

std::uint64_t run_pipeline(const net::Topology& topology) {
  Setup setup(topology);
  fl::StagedExchange staged(setup.bus, exchange_options(), setup.items);
  if (staged.num_shards() != kShards) {
    std::fprintf(stderr, "FATAL: staged shard count %zu != %zu\n",
                 staged.num_shards(), kShards);
    std::exit(1);
  }
  core::RoundPipeline pipe(core::shard_broadcast_graph(
      topology, [&](net::AgentId a) { return setup.router.shard_of(a); },
      kShards));
  core::RoundPipeline::Ops ops;
  ops.compute = [&](std::size_t s, std::uint64_t r) {
    for (std::size_t a = s * (kAgents / kShards);
         a < (s + 1) * (kAgents / kShards); ++a) {
      setup.local_step(a, r);
    }
  };
  ops.publish = [&](std::size_t s, std::uint64_t r) {
    staged.publish_shard(s, r);
  };
  ops.apply = [&](std::size_t s, std::uint64_t r) {
    staged.apply_shard(s, r, [](std::size_t, std::span<const double>) {});
  };
  pipe.run(util::ThreadPool::global(), 0, kRounds, ops);

  const auto& stats = pipe.stats();
  if (stats.rounds != kRounds || stats.shard_rounds != kRounds * kShards) {
    std::fprintf(stderr, "FATAL: pipeline retired %llu rounds / %llu cells\n",
                 static_cast<unsigned long long>(stats.rounds),
                 static_cast<unsigned long long>(stats.shard_rounds));
    std::exit(1);
  }
  return fnv1a(setup.params);
}

}  // namespace

int main() {
  // 4 workers regardless of the host: the handoff pressure the job is
  // for. Must precede the first ThreadPool::global() touch.
  util::ThreadPool::set_global_workers(4);

  // Hierarchical (sparse shard graph — real overlap, partial readiness
  // targets) and full mesh (all-to-all readiness, maximum contention on
  // every counter).
  const net::Topology topologies[] = {
      net::Topology(net::TopologyKind::kHierarchical, kAgents,
                    net::TopologyOptions{.cluster_size = kAgents / kShards,
                                         .fanout = 3,
                                         .gossip_seed = kSeed}),
      net::Topology(net::TopologyKind::kFullMesh, kAgents),
  };
  for (const net::Topology& topology : topologies) {
    const std::uint64_t oracle = run_bsp(topology);
    for (int rep = 0; rep < kReps; ++rep) {
      const std::uint64_t got = run_pipeline(topology);
      if (got != oracle) {
        std::fprintf(stderr,
                     "FATAL: rep %d hash %016llx != bsp oracle %016llx\n", rep,
                     static_cast<unsigned long long>(got),
                     static_cast<unsigned long long>(oracle));
        return 1;
      }
    }
  }
  std::printf("tsan_pipeline_stress: %d pipelined reps x 2 topologies "
              "matched the bsp oracle — OK\n",
              kReps);
  return 0;
}
