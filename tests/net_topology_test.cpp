#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pfdrl::net {
namespace {

TEST(Topology, ZeroAgentsThrows) {
  EXPECT_THROW(Topology(TopologyKind::kFullMesh, 0), std::invalid_argument);
}

TEST(Topology, FullMeshNeighbors) {
  Topology t(TopologyKind::kFullMesh, 4);
  const auto n = t.neighbors(1);
  EXPECT_EQ(std::set<AgentId>(n.begin(), n.end()),
            (std::set<AgentId>{0, 2, 3}));
  EXPECT_EQ(t.broadcast_links(1), 3u);
}

TEST(Topology, FullMeshSingleAgent) {
  Topology t(TopologyKind::kFullMesh, 1);
  EXPECT_TRUE(t.neighbors(0).empty());
  EXPECT_EQ(t.broadcast_links(0), 0u);
}

TEST(Topology, StarHubReachesAll) {
  Topology t(TopologyKind::kStar, 5);
  const auto n = t.neighbors(0);
  EXPECT_EQ(n.size(), 4u);
}

TEST(Topology, StarLeafTalksToHubOnly) {
  Topology t(TopologyKind::kStar, 5);
  const auto n = t.neighbors(3);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 0u);
}

TEST(Topology, RingTwoNeighbors) {
  Topology t(TopologyKind::kRing, 5);
  const auto n = t.neighbors(0);
  EXPECT_EQ(std::set<AgentId>(n.begin(), n.end()), (std::set<AgentId>{1, 4}));
}

TEST(Topology, RingOfTwoSingleNeighbor) {
  Topology t(TopologyKind::kRing, 2);
  const auto n = t.neighbors(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 1u);
}

TEST(Topology, NeighborsNeverIncludeSelf) {
  for (auto kind :
       {TopologyKind::kFullMesh, TopologyKind::kStar, TopologyKind::kRing,
        TopologyKind::kHierarchical, TopologyKind::kGossip}) {
    Topology t(kind, 6);
    for (AgentId a = 0; a < 6; ++a) {
      for (AgentId n : t.neighbors(a)) {
        EXPECT_NE(n, a) << topology_name(kind);
      }
    }
  }
}

TEST(Topology, Names) {
  EXPECT_STREQ(topology_name(TopologyKind::kFullMesh), "full_mesh");
  EXPECT_STREQ(topology_name(TopologyKind::kStar), "star");
  EXPECT_STREQ(topology_name(TopologyKind::kRing), "ring");
  EXPECT_STREQ(topology_name(TopologyKind::kHierarchical), "hierarchical");
  EXPECT_STREQ(topology_name(TopologyKind::kGossip), "gossip");
}

TEST(Topology, ParseKindRoundTripsEveryName) {
  for (auto kind :
       {TopologyKind::kFullMesh, TopologyKind::kStar, TopologyKind::kRing,
        TopologyKind::kHierarchical, TopologyKind::kGossip}) {
    const auto parsed = parse_topology_kind(topology_name(kind));
    ASSERT_TRUE(parsed.has_value()) << topology_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_topology_kind("mesh"), TopologyKind::kFullMesh);
  EXPECT_FALSE(parse_topology_kind("torus").has_value());
}

TEST(Topology, HierarchicalLeafTalksToItsHubOnly) {
  TopologyOptions opts;
  opts.cluster_size = 3;  // clusters {0,1,2}, {3,4,5}, {6,7}; hubs 0,3,6
  Topology t(TopologyKind::kHierarchical, 8, opts);
  for (AgentId leaf : {1u, 2u}) {
    const auto n = t.neighbors(leaf);
    ASSERT_EQ(n.size(), 1u) << leaf;
    EXPECT_EQ(n[0], 0u);
  }
  const auto n4 = t.neighbors(4);
  ASSERT_EQ(n4.size(), 1u);
  EXPECT_EQ(n4[0], 3u);
}

TEST(Topology, HierarchicalHubSeesClusterAndPeerHubs) {
  TopologyOptions opts;
  opts.cluster_size = 3;
  Topology t(TopologyKind::kHierarchical, 8, opts);
  const auto n = t.neighbors(3);  // hub of {3,4,5}
  EXPECT_EQ(std::set<AgentId>(n.begin(), n.end()),
            (std::set<AgentId>{4, 5, 0, 6}));
  const auto n6 = t.neighbors(6);  // hub of the short tail cluster {6,7}
  EXPECT_EQ(std::set<AgentId>(n6.begin(), n6.end()),
            (std::set<AgentId>{7, 0, 3}));
}

TEST(Topology, HierarchicalDegenerateClusterSizeIsStar) {
  TopologyOptions opts;
  opts.cluster_size = 99;  // clamped to n: one cluster, hub 0
  Topology t(TopologyKind::kHierarchical, 5, opts);
  EXPECT_EQ(t.neighbors(0).size(), 4u);
  const auto leaf = t.neighbors(2);
  ASSERT_EQ(leaf.size(), 1u);
  EXPECT_EQ(leaf[0], 0u);
}

TEST(Topology, GossipDegreeAndDeterminism) {
  TopologyOptions opts;
  opts.fanout = 3;
  opts.gossip_seed = 17;
  Topology a(TopologyKind::kGossip, 20, opts);
  Topology b(TopologyKind::kGossip, 20, opts);
  for (AgentId id = 0; id < 20; ++id) {
    const auto na = a.neighbors(id);
    EXPECT_EQ(na.size(), 3u);
    // Static per-seed graph: two instances agree exactly.
    EXPECT_EQ(na, b.neighbors(id));
    // No self-loops, no duplicates.
    const std::set<AgentId> uniq(na.begin(), na.end());
    EXPECT_EQ(uniq.size(), na.size());
    EXPECT_EQ(uniq.count(id), 0u);
  }
}

TEST(Topology, GossipDifferentSeedsDiffer) {
  TopologyOptions a_opts, b_opts;
  a_opts.fanout = b_opts.fanout = 4;
  a_opts.gossip_seed = 1;
  b_opts.gossip_seed = 2;
  Topology a(TopologyKind::kGossip, 40, a_opts);
  Topology b(TopologyKind::kGossip, 40, b_opts);
  bool any_difference = false;
  for (AgentId id = 0; id < 40 && !any_difference; ++id) {
    any_difference = a.neighbors(id) != b.neighbors(id);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Topology, GossipFanoutClampedToPeers) {
  TopologyOptions opts;
  opts.fanout = 50;
  Topology t(TopologyKind::kGossip, 4, opts);
  for (AgentId id = 0; id < 4; ++id) {
    EXPECT_EQ(t.neighbors(id).size(), 3u);  // clamped to n-1
  }
}

TEST(Topology, ForEachNeighborAgreesWithNeighborsEverywhere) {
  TopologyOptions opts;
  opts.cluster_size = 4;
  opts.fanout = 3;
  opts.gossip_seed = 5;
  for (auto kind :
       {TopologyKind::kFullMesh, TopologyKind::kStar, TopologyKind::kRing,
        TopologyKind::kHierarchical, TopologyKind::kGossip}) {
    for (std::size_t n : {1u, 2u, 3u, 9u, 17u}) {
      Topology t(kind, n, opts);
      for (AgentId a = 0; a < n; ++a) {
        std::vector<AgentId> via_callback;
        t.for_each_neighbor(
            a, [&](AgentId peer) { via_callback.push_back(peer); });
        EXPECT_EQ(via_callback, t.neighbors(a))
            << topology_name(kind) << " n=" << n << " a=" << a;
        EXPECT_EQ(t.broadcast_links(a), via_callback.size())
            << topology_name(kind) << " n=" << n << " a=" << a;
      }
    }
  }
}

TEST(Topology, ConnectedForDenseKinds) {
  for (auto kind :
       {TopologyKind::kFullMesh, TopologyKind::kStar, TopologyKind::kRing}) {
    for (std::size_t n : {1u, 2u, 5u, 12u}) {
      EXPECT_TRUE(Topology(kind, n).connected())
          << topology_name(kind) << " n=" << n;
    }
  }
}

TEST(Topology, ConnectedHierarchical) {
  TopologyOptions opts;
  opts.cluster_size = 3;
  EXPECT_TRUE(Topology(TopologyKind::kHierarchical, 10, opts).connected());
  EXPECT_TRUE(Topology(TopologyKind::kHierarchical, 1, opts).connected());
}

TEST(Topology, GossipZeroFanoutDisconnected) {
  TopologyOptions opts;
  opts.fanout = 0;
  EXPECT_FALSE(Topology(TopologyKind::kGossip, 3, opts).connected());
  // A single agent is trivially connected even with no links.
  EXPECT_TRUE(Topology(TopologyKind::kGossip, 1, opts).connected());
}

TEST(Topology, GossipGenerousFanoutConnected) {
  // Gossip edges are directed, so connected() means STRONG connectivity —
  // out-degree 4 only achieves it for a fraction of seeds at n=64, which
  // is exactly why connected() exists as a pre-run check (docs/scaling.md
  // tells operators to raise --fanout until it holds). Out-degree 8 is
  // comfortably past the threshold: every probed seed connects.
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    TopologyOptions opts;
    opts.fanout = 8;
    opts.gossip_seed = seed;
    EXPECT_TRUE(Topology(TopologyKind::kGossip, 64, opts).connected())
        << "seed=" << seed;
  }
}

class MeshSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshSizes, BroadcastLinksScale) {
  const std::size_t n = GetParam();
  Topology mesh(TopologyKind::kFullMesh, n);
  Topology star(TopologyKind::kStar, n);
  for (AgentId a = 0; a < n; ++a) {
    EXPECT_EQ(mesh.broadcast_links(a), n - 1);
    EXPECT_EQ(star.broadcast_links(a), a == 0 ? n - 1 : 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes, ::testing::Values(1, 2, 3, 8, 32));

TEST(Message, WireBytesScaleWithPayload) {
  Message m;
  const std::size_t empty = m.wire_bytes();
  m.payload.assign(100, 0.0);
  EXPECT_EQ(m.wire_bytes(), empty + 800);
}

TEST(Message, KindNames) {
  EXPECT_STREQ(message_kind_name(MessageKind::kForecastParams),
               "forecast_params");
  EXPECT_STREQ(message_kind_name(MessageKind::kDrlBaseParams),
               "drl_base_params");
  EXPECT_STREQ(message_kind_name(MessageKind::kDrlFullParams),
               "drl_full_params");
}

}  // namespace
}  // namespace pfdrl::net
