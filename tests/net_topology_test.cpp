#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pfdrl::net {
namespace {

TEST(Topology, ZeroAgentsThrows) {
  EXPECT_THROW(Topology(TopologyKind::kFullMesh, 0), std::invalid_argument);
}

TEST(Topology, FullMeshNeighbors) {
  Topology t(TopologyKind::kFullMesh, 4);
  const auto n = t.neighbors(1);
  EXPECT_EQ(std::set<AgentId>(n.begin(), n.end()),
            (std::set<AgentId>{0, 2, 3}));
  EXPECT_EQ(t.broadcast_links(1), 3u);
}

TEST(Topology, FullMeshSingleAgent) {
  Topology t(TopologyKind::kFullMesh, 1);
  EXPECT_TRUE(t.neighbors(0).empty());
  EXPECT_EQ(t.broadcast_links(0), 0u);
}

TEST(Topology, StarHubReachesAll) {
  Topology t(TopologyKind::kStar, 5);
  const auto n = t.neighbors(0);
  EXPECT_EQ(n.size(), 4u);
}

TEST(Topology, StarLeafTalksToHubOnly) {
  Topology t(TopologyKind::kStar, 5);
  const auto n = t.neighbors(3);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 0u);
}

TEST(Topology, RingTwoNeighbors) {
  Topology t(TopologyKind::kRing, 5);
  const auto n = t.neighbors(0);
  EXPECT_EQ(std::set<AgentId>(n.begin(), n.end()), (std::set<AgentId>{1, 4}));
}

TEST(Topology, RingOfTwoSingleNeighbor) {
  Topology t(TopologyKind::kRing, 2);
  const auto n = t.neighbors(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 1u);
}

TEST(Topology, NeighborsNeverIncludeSelf) {
  for (auto kind :
       {TopologyKind::kFullMesh, TopologyKind::kStar, TopologyKind::kRing}) {
    Topology t(kind, 6);
    for (AgentId a = 0; a < 6; ++a) {
      for (AgentId n : t.neighbors(a)) {
        EXPECT_NE(n, a) << topology_name(kind);
      }
    }
  }
}

TEST(Topology, Names) {
  EXPECT_STREQ(topology_name(TopologyKind::kFullMesh), "full_mesh");
  EXPECT_STREQ(topology_name(TopologyKind::kStar), "star");
  EXPECT_STREQ(topology_name(TopologyKind::kRing), "ring");
}

class MeshSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshSizes, BroadcastLinksScale) {
  const std::size_t n = GetParam();
  Topology mesh(TopologyKind::kFullMesh, n);
  Topology star(TopologyKind::kStar, n);
  for (AgentId a = 0; a < n; ++a) {
    EXPECT_EQ(mesh.broadcast_links(a), n - 1);
    EXPECT_EQ(star.broadcast_links(a), a == 0 ? n - 1 : 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshSizes, ::testing::Values(1, 2, 3, 8, 32));

TEST(Message, WireBytesScaleWithPayload) {
  Message m;
  const std::size_t empty = m.wire_bytes();
  m.payload.assign(100, 0.0);
  EXPECT_EQ(m.wire_bytes(), empty + 800);
}

TEST(Message, KindNames) {
  EXPECT_STREQ(message_kind_name(MessageKind::kForecastParams),
               "forecast_params");
  EXPECT_STREQ(message_kind_name(MessageKind::kDrlBaseParams),
               "drl_base_params");
  EXPECT_STREQ(message_kind_name(MessageKind::kDrlFullParams),
               "drl_full_params");
}

}  // namespace
}  // namespace pfdrl::net
