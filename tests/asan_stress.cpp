// Memory-error stress for the messaging and exchange layers: the bus,
// the zero-copy Payload, the ParamExchange engine and the thread pool
// under concurrent broadcast/drain. Built with
// -fsanitize=address,undefined (see tests/CMakeLists.txt); the
// sanitizers exit non-zero on any heap misuse or UB, so a clean exit 0
// is the pass signal. The value checks at the end double as a logic
// smoke test when the binary is run without sanitizers.
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "fl/exchange.hpp"
#include "fl/secure_agg.hpp"
#include "net/bus.hpp"
#include "net/codec.hpp"
#include "net/topology.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "util/records.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace pfdrl;

  // Phase 1: concurrent broadcast/drain on one bus. Senders re-broadcast
  // a shared payload (refcount churn across threads) while receivers
  // drain and read the spans — lifetime bugs in the shared buffer are
  // exactly what ASan would catch here.
  {
    constexpr std::size_t kHomes = 8;
    net::MessageBus bus(net::Topology(net::TopologyKind::kFullMesh, kHomes));
    constexpr int kRounds = 200;
    std::vector<std::thread> senders;
    for (std::size_t s = 0; s < 3; ++s) {
      senders.emplace_back([&bus, s] {
        net::Message msg;
        msg.sender = static_cast<net::AgentId>(s);
        msg.payload = std::vector<double>(256, static_cast<double>(s));
        for (int i = 0; i < kRounds; ++i) bus.broadcast(msg);
      });
    }
    std::vector<double> sums(kHomes, 0.0);  // one slot per receiver thread
    std::vector<std::thread> receivers;
    for (std::size_t r = 3; r < kHomes; ++r) {
      receivers.emplace_back([&bus, &sums, r] {
        double local = 0.0;
        for (int i = 0; i < kRounds; ++i) {
          for (auto& m : bus.drain(static_cast<net::AgentId>(r))) {
            const std::span<const double> p = m.payload;
            if (!p.empty()) local += p.front() + p.back();
          }
        }
        sums[r] = local;
      });
    }
    for (auto& t : senders) t.join();
    for (auto& t : receivers) t.join();
    // Drain the rest so inbox teardown also runs.
    for (std::size_t h = 0; h < kHomes; ++h) {
      bus.drain(static_cast<net::AgentId>(h));
    }
  }

  // Phase 2: exchange rounds hammered from pool workers, each worker
  // with its own bus + engine (the engine is a per-round object; this
  // stresses allocation/teardown and the secure-masking path).
  {
    util::ThreadPool pool(4);
    obs::MetricsRegistry reg;
    const fl::SecureAggregator aggregator;
    constexpr std::size_t kJobs = 64;
    pool.parallel_for(0, kJobs, [&](std::size_t j) {
      const std::size_t n = 2 + j % 4;
      std::vector<std::vector<double>> params(n, std::vector<double>(48));
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t i = 0; i < 48; ++i) {
          params[a][i] = static_cast<double>(a + i + j);
        }
      }
      const auto kind = j % 2 == 0 ? net::TopologyKind::kFullMesh
                                   : net::TopologyKind::kStar;
      net::MessageBus bus(net::Topology(kind, n));
      fl::ParamExchange::Options options;
      options.metrics = &reg;
      if (j % 3 == 0 && kind == net::TopologyKind::kFullMesh) {
        options.secure = &aggregator;
      }
      fl::ParamExchange exchange(bus, options);
      std::vector<fl::ExchangeItem> items;
      for (std::size_t a = 0; a < n; ++a) {
        items.push_back({.agent = static_cast<net::AgentId>(a),
                         .device_type = 1,
                         .send = std::span<const double>(params[a]).subspan(0, 32),
                         .in_place = params[a]});
      }
      const auto stats = exchange.round(items, j, {});
      if (stats.items_averaged != n) {
        std::fprintf(stderr, "FAIL: job %zu averaged %llu of %zu items\n", j,
                     static_cast<unsigned long long>(stats.items_averaged), n);
        std::abort();
      }
    });
    if (reg.counter("exchange.rounds").value() != kJobs) {
      std::fprintf(stderr, "FAIL: exchange round count wrong\n");
      return 1;
    }
  }

  // Phase 3: hostile-input sweep over the two binary parsers. Both read
  // untrusted length prefixes; every truncation point and every single
  // bit flip must end in a clean throw or an intact payload — ASan turns
  // any out-of-bounds read into a hard failure.
  {
    nn::Checkpoint ckpt;
    ckpt.signature = "mlp:6-32x2-3:relu";
    for (int i = 0; i < 64; ++i) ckpt.parameters.push_back(0.25 * i);
    const auto ckpt_bytes = nn::serialize_checkpoint(ckpt);

    util::RecordWriter writer;
    writer.append(ckpt_bytes);
    writer.append(std::vector<std::uint8_t>{1, 2, 3});
    const auto& rec_bytes = writer.bytes();

    const auto fuzz_checkpoint = [](std::span<const std::uint8_t> bytes) {
      try {
        (void)nn::deserialize_checkpoint(bytes);
      } catch (const std::runtime_error&) {
      }
    };
    const auto fuzz_records = [](std::span<const std::uint8_t> bytes) {
      try {
        util::RecordReader reader(bytes);
        while (reader.next().has_value()) {
        }
      } catch (const std::runtime_error&) {
      }
    };
    for (std::size_t cut = 0; cut <= ckpt_bytes.size(); ++cut) {
      fuzz_checkpoint({ckpt_bytes.data(), cut});
    }
    for (std::size_t cut = 0; cut <= rec_bytes.size(); ++cut) {
      fuzz_records({rec_bytes.data(), cut});
    }
    for (std::size_t byte = 0; byte < ckpt_bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto flipped = ckpt_bytes;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        fuzz_checkpoint(flipped);
      }
    }
    for (std::size_t byte = 0; byte < rec_bytes.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto flipped = rec_bytes;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        fuzz_records(flipped);
      }
    }
  }

  // Phase 4: wire-codec hostile-input sweep. The frame decoder reads
  // nibble-packed lengths from untrusted bytes; every truncation prefix,
  // trailing-garbage suffix and single bit flip must end in a clean
  // throw or a well-formed decode — never an out-of-bounds read. Also
  // roundtrip random walks through the stateful encoder so the delta
  // chain itself runs under the sanitizers.
  {
    std::vector<double> prev(96);
    std::vector<double> vals(96);
    for (std::size_t i = 0; i < prev.size(); ++i) {
      prev[i] = 0.5 * static_cast<double>(i);
      vals[i] = prev[i] + 1e-12;  // small delta -> packed frame
    }
    std::vector<std::uint8_t> frame;
    net::WireCodec::encode_frame(vals, prev, frame);

    const auto fuzz_frame = [&prev](std::span<const std::uint8_t> bytes) {
      std::vector<double> out;
      try {
        net::WireCodec::decode_frame(bytes, prev, prev.size(), out);
      } catch (const std::runtime_error&) {
      }
    };
    for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
      fuzz_frame({frame.data(), cut});
    }
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (int bit = 0; bit < 8; ++bit) {
        auto flipped = frame;
        flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
        fuzz_frame(flipped);
      }
    }
    auto garbage = frame;
    garbage.push_back(0xAB);
    fuzz_frame(garbage);

    // Stateful roundtrips: two codecs (lossless + quantized), many
    // senders and rounds, random-walk payloads; encode() self-verifies
    // each frame so a silent corruption aborts via std::logic_error.
    for (const bool quant : {false, true}) {
      net::WireCodec codec(net::CodecOptions{.quantize = quant});
      std::uint64_t state = 0x9e3779b97f4a7c15ull;
      std::vector<double> walk(64, 1.0);
      for (int round = 0; round < 32; ++round) {
        for (net::AgentId sender = 0; sender < 4; ++sender) {
          for (auto& v : walk) {
            state = state * 6364136223846793005ull + 1442695040888963407ull;
            v += 1e-9 * static_cast<double>(static_cast<std::int64_t>(
                            state >> 32) - (1ll << 31));
          }
          net::Message msg;
          msg.sender = sender;
          msg.kind = net::MessageKind::kForecastParams;
          msg.payload = walk;
          codec.encode(msg);
          if (msg.coded_bytes == 0) {
            std::fprintf(stderr, "FAIL: codec left frame unstamped\n");
            return 1;
          }
          if (round == 16) codec.reset_agent(sender);  // force keyframes
        }
      }
      const auto streams = codec.capture_streams();
      net::WireCodec resumed(net::CodecOptions{.quantize = quant});
      resumed.restore_streams(streams);
      if (resumed.capture_streams().size() != streams.size()) {
        std::fprintf(stderr, "FAIL: codec stream restore lost streams\n");
        return 1;
      }
    }
  }

  std::printf("asan stress ok\n");
  return 0;
}
