// Markdown link-and-anchor checker for the repo's documentation.
//
//   $ md_link_check README.md DESIGN.md docs/
//
// Walks every .md argument (directories recurse), extracts inline links
// [text](target) outside code fences and inline code spans, and fails
// with a per-link report when a relative target does not exist or a
// #anchor does not match any GitHub-slugged heading of the target file.
// External schemes (http, https, mailto) are skipped — this is an
// offline structural check, registered as the `docs_link_check` CTest
// job so broken cross-references fail the build, not the reader.
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Link {
  std::string target;
  std::size_t line = 0;
};

bool is_fence(const std::string& line) {
  std::size_t i = 0;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return line.compare(i, 3, "```") == 0 || line.compare(i, 3, "~~~") == 0;
}

/// Strip `inline code` spans so links inside them are not parsed.
std::string strip_code_spans(const std::string& line) {
  std::string out;
  bool in_code = false;
  for (char c : line) {
    if (c == '`') {
      in_code = !in_code;
      continue;
    }
    if (!in_code) out.push_back(c);
  }
  return out;
}

/// GitHub-style heading slug: lowercase, drop punctuation, spaces to
/// hyphens. Duplicate slugs get -1, -2, ... suffixes in document order.
std::string slugify(const std::string& heading) {
  std::string slug;
  for (unsigned char c : heading) {
    if (std::isalnum(c)) {
      slug.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == ' ' || c == '-' || c == '_') {
      slug.push_back(c == ' ' ? '-' : static_cast<char>(c));
    }
    // Other punctuation is dropped.
  }
  return slug;
}

/// All anchor slugs of one markdown file (headings outside code fences).
std::set<std::string> collect_anchors(const fs::path& file) {
  std::set<std::string> anchors;
  std::map<std::string, int> seen;
  std::ifstream in(file);
  std::string line;
  bool fenced = false;
  while (std::getline(in, line)) {
    if (is_fence(line)) {
      fenced = !fenced;
      continue;
    }
    if (fenced || line.empty() || line[0] != '#') continue;
    std::size_t level = 0;
    while (level < line.size() && line[level] == '#') ++level;
    if (level > 6 || level >= line.size() || line[level] != ' ') continue;
    std::string text = line.substr(level + 1);
    // Trim trailing whitespace and any closing ### decoration.
    while (!text.empty() &&
           (text.back() == ' ' || text.back() == '#' || text.back() == '\r')) {
      text.pop_back();
    }
    // Slug the raw heading text: GitHub keeps the contents of `inline
    // code` spans and drops only the backticks (slugify discards them
    // as punctuation). Stripping span *contents* here would mis-slug
    // every heading that names a file or identifier.
    std::string slug = slugify(text);
    const int n = seen[slug]++;
    if (n > 0) slug += "-" + std::to_string(n);
    anchors.insert(slug);
  }
  return anchors;
}

/// Inline [text](target) links of one file, outside fences and spans.
std::vector<Link> collect_links(const fs::path& file) {
  std::vector<Link> links;
  std::ifstream in(file);
  std::string raw;
  std::size_t line_no = 0;
  bool fenced = false;
  while (std::getline(in, raw)) {
    ++line_no;
    if (is_fence(raw)) {
      fenced = !fenced;
      continue;
    }
    if (fenced) continue;
    const std::string line = strip_code_spans(raw);
    for (std::size_t i = 0; i + 1 < line.size(); ++i) {
      if (line[i] != '[') continue;
      const std::size_t close = line.find(']', i + 1);
      if (close == std::string::npos || close + 1 >= line.size() ||
          line[close + 1] != '(') {
        continue;
      }
      const std::size_t end = line.find(')', close + 2);
      if (end == std::string::npos) continue;
      std::string target = line.substr(close + 2, end - close - 2);
      // Optional "title" after the URL.
      const std::size_t space = target.find(' ');
      if (space != std::string::npos) target.resize(space);
      if (!target.empty()) links.push_back({target, line_no});
      i = end;
    }
  }
  return links;
}

bool external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: md_link_check <file-or-dir>...\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && e.path().extension() == ".md") {
          files.push_back(e.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "md_link_check: no such file: %s\n", argv[i]);
      return 2;
    }
  }

  int broken = 0;
  std::size_t checked = 0;
  // Heading sets are parsed once per target file, not once per link.
  std::map<fs::path, std::set<std::string>> anchor_cache;
  for (const auto& file : files) {
    for (const auto& link : collect_links(file)) {
      if (external(link.target)) continue;
      ++checked;
      std::string path_part = link.target;
      std::string anchor;
      const std::size_t hash = path_part.find('#');
      if (hash != std::string::npos) {
        anchor = path_part.substr(hash + 1);
        path_part.resize(hash);
      }
      fs::path target_file = file;
      if (!path_part.empty()) {
        target_file = file.parent_path() / path_part;
        if (!fs::exists(target_file)) {
          std::fprintf(stderr, "%s:%zu: broken link: %s (missing %s)\n",
                       file.string().c_str(), link.line, link.target.c_str(),
                       target_file.string().c_str());
          ++broken;
          continue;
        }
      }
      if (!anchor.empty() && target_file.extension() == ".md") {
        const fs::path key = target_file.lexically_normal();
        auto it = anchor_cache.find(key);
        if (it == anchor_cache.end()) {
          it = anchor_cache.emplace(key, collect_anchors(target_file)).first;
        }
        const auto& anchors = it->second;
        if (anchors.find(anchor) == anchors.end()) {
          std::fprintf(stderr, "%s:%zu: broken anchor: %s (no heading #%s in %s)\n",
                       file.string().c_str(), link.line, link.target.c_str(),
                       anchor.c_str(), target_file.string().c_str());
          ++broken;
        }
      }
    }
  }
  std::printf("md_link_check: %zu files, %zu internal links, %d broken\n",
              files.size(), checked, broken);
  return broken == 0 ? 0 : 1;
}
