# Smoke test for the perf-baseline benchmarks (ctest job `bench_smoke`,
# label `stress`). Runs both baseline emitters with minimal iteration
# budgets into a scratch directory and checks that the JSON they produce
# parses and carries the expected keys — so a flag rename or a broken
# writer fails CI instead of silently producing an unusable baseline.
#
# Also exercises the pfdrl_cli snapshot/resume path end-to-end: one run
# writing periodic snapshots, then a second run resuming from the file —
# the two runs' evaluation lines must agree exactly.
#
# Expected -D inputs: MICRO_KERNELS, EMS_THROUGHPUT, DFL_THROUGHPUT,
# SCALE_SWEEP, PFDRL_CLI (executable paths), WORK_DIR (scratch directory).

if(NOT DEFINED MICRO_KERNELS OR NOT DEFINED EMS_THROUGHPUT
   OR NOT DEFINED DFL_THROUGHPUT OR NOT DEFINED SCALE_SWEEP
   OR NOT DEFINED WIRE_THROUGHPUT
   OR NOT DEFINED PFDRL_CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR
    "bench_smoke: MICRO_KERNELS, EMS_THROUGHPUT, DFL_THROUGHPUT, SCALE_SWEEP, WIRE_THROUGHPUT, PFDRL_CLI and WORK_DIR must be set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(kernels_json "${WORK_DIR}/BENCH_kernels.json")
set(pipeline_json "${WORK_DIR}/BENCH_pipeline.json")
set(dfl_json "${WORK_DIR}/BENCH_dfl.json")

# --- micro_kernels: google-benchmark JSON emitter, minimal time budget,
# restricted to the batch-1 act-path benchmarks to keep the smoke fast.
execute_process(
  COMMAND "${MICRO_KERNELS}"
    --benchmark_filter=BM_Matvec1|BM_DenseForwardBatch1|BM_MlpPredict|BM_DqnActGreedy
    --benchmark_min_time=0.01
    --benchmark_out=${kernels_json}
    --benchmark_out_format=json
  RESULT_VARIABLE kernels_rc
  OUTPUT_VARIABLE kernels_out
  ERROR_VARIABLE kernels_err)
if(NOT kernels_rc EQUAL 0)
  message(FATAL_ERROR "micro_kernels failed (${kernels_rc}):\n${kernels_out}\n${kernels_err}")
endif()

# --- ems_throughput: tiny scenario, hand-rolled JSON writer.
execute_process(
  COMMAND "${EMS_THROUGHPUT}" --homes 2 --minutes 60 --out "${pipeline_json}"
  RESULT_VARIABLE pipeline_rc
  OUTPUT_VARIABLE pipeline_out
  ERROR_VARIABLE pipeline_err)
if(NOT pipeline_rc EQUAL 0)
  message(FATAL_ERROR "ems_throughput failed (${pipeline_rc}):\n${pipeline_out}\n${pipeline_err}")
endif()

# --- dfl_throughput: one tiny federated round per recurrent method. The
# emitter's built-in twin run doubles as an end-to-end determinism check
# (bitwise-identical parameters across two identically seeded rounds),
# and the --pool-workers sweep re-runs the rounds at 1 and 4 pool
# workers and fails hard unless the final parameter hashes agree.
execute_process(
  COMMAND "${DFL_THROUGHPUT}" --days 1 --rounds 1 --round-minutes 120
    --pool-workers 1,4 --out "${dfl_json}"
  RESULT_VARIABLE dfl_rc
  OUTPUT_VARIABLE dfl_out
  ERROR_VARIABLE dfl_err)
if(NOT dfl_rc EQUAL 0)
  message(FATAL_ERROR "dfl_throughput failed (${dfl_rc}):\n${dfl_out}\n${dfl_err}")
endif()

# --- scale_sweep: small agent counts, explicitly sharded so the
# ShardRouter batching + parallel exchange path runs. The emitter's twin
# run is the engine's end-to-end determinism check (bitwise-identical
# final parameters per point regardless of the thread schedule), and the
# --pool-workers sweep runs every point in both sync modes at 1 and 4
# workers — param_hash must be identical across all four combinations
# per agent count (the bsp ≡ pipeline contract from docs/scaling.md).
set(scale_json "${WORK_DIR}/BENCH_scale.json")
execute_process(
  COMMAND "${SCALE_SWEEP}" --agents 20,50 --rounds 2 --shards 4
    --pool-workers 1,4 --out "${scale_json}"
  RESULT_VARIABLE scale_rc
  OUTPUT_VARIABLE scale_out
  ERROR_VARIABLE scale_err)
if(NOT scale_rc EQUAL 0)
  message(FATAL_ERROR "scale_sweep failed (${scale_rc}):\n${scale_out}\n${scale_err}")
endif()

# --- wire_throughput: the codec frame layer over real parameter shapes,
# small rep budget. The emitter's twin sweep is the codec determinism
# check; the LSTM converged-round ratio is asserted below against the
# >= 2x floor docs/wire.md documents for the committed baseline.
set(wire_json "${WORK_DIR}/BENCH_wire.json")
execute_process(
  COMMAND "${WIRE_THROUGHPUT}" --rounds 12 --reps 4 --out "${wire_json}"
  RESULT_VARIABLE wire_rc
  OUTPUT_VARIABLE wire_out
  ERROR_VARIABLE wire_err)
if(NOT wire_rc EQUAL 0)
  message(FATAL_ERROR "wire_throughput failed (${wire_rc}):\n${wire_out}\n${wire_err}")
endif()

# --- validate the emitted JSON. string(JSON) needs CMake >= 3.19; on
# older CMake fall back to substring checks of the required keys.
function(check_keys path)
  file(READ "${path}" doc)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    # A GET on a missing key (or unparsable document) raises a fatal
    # error with this non-ERROR_VARIABLE form — exactly what we want.
    foreach(key IN LISTS ARGN)
      string(JSON value GET "${doc}" ${key})
      message(STATUS "${path}: ${key} = ${value}")
    endforeach()
  else()
    foreach(key IN LISTS ARGN)
      string(FIND "${doc}" "\"${key}\"" pos)
      if(pos EQUAL -1)
        message(FATAL_ERROR "${path}: missing key \"${key}\"")
      endif()
    endforeach()
  endif()
endfunction()

check_keys("${kernels_json}" context benchmarks)
check_keys("${pipeline_json}" bench decisions workspace_decisions_per_sec
  legacy_decisions_per_sec speedup steady_state_workspace_allocs
  nn_workspace_allocs nn_scratch_bytes)
check_keys("${dfl_json}" bench lstm_windows lstm_windows_per_sec
  gru_windows gru_windows_per_sec deterministic fused_bitwise_match
  fused_points pool_hash_consistent pool_sweep)
check_keys("${scale_json}" bench topology params rounds deterministic
  hash_consistent points speedups)
check_keys("${wire_json}" bench rounds reps deterministic shapes)

# Twin codec sweeps must agree frame-for-frame, and the LSTM shape's
# converged-round compression must hold the documented >= 2x floor —
# a packing regression that still round-trips would otherwise pass.
file(READ "${wire_json}" doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON wire_det GET "${doc}" deterministic)
  if(NOT wire_det STREQUAL "ON" AND NOT wire_det STREQUAL "true")
    message(FATAL_ERROR "wire_throughput: twin sweeps diverged (deterministic = ${wire_det})")
  endif()
  string(JSON shape0 GET "${doc}" shapes 0)
  string(JSON shape0_name GET "${shape0}" shape)
  if(NOT shape0_name STREQUAL "lstm")
    message(FATAL_ERROR "wire_throughput: expected shapes[0] = lstm, got ${shape0_name}")
  endif()
  string(JSON lstm_ratio GET "${shape0}" converged_ratio)
  if(lstm_ratio LESS 2.0)
    message(FATAL_ERROR "wire_throughput: lstm converged_ratio ${lstm_ratio} below the 2x floor")
  endif()
  message(STATUS "${wire_json}: lstm converged_ratio = ${lstm_ratio}")
endif()

# Twin sharded engine runs must agree bitwise (the scaling determinism
# contract from docs/scaling.md, re-checked end-to-end).
file(READ "${scale_json}" doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON scale_det GET "${doc}" deterministic)
  if(NOT scale_det STREQUAL "ON" AND NOT scale_det STREQUAL "true")
    message(FATAL_ERROR "scale_sweep: twin runs diverged (deterministic = ${scale_det})")
  endif()
  # One param_hash per agent count across every (sync mode, pool worker
  # count) combination — bsp ≡ pipeline, single- ≡ multi-threaded.
  string(JSON scale_hash GET "${doc}" hash_consistent)
  if(NOT scale_hash STREQUAL "ON" AND NOT scale_hash STREQUAL "true")
    message(FATAL_ERROR "scale_sweep: param_hash varies across sync mode / pool workers (hash_consistent = ${scale_hash})")
  endif()
endif()

# Train rounds must be bitwise reproducible (the kernel determinism
# contract, re-checked end-to-end by the emitter's twin run), and the
# fused sweep's per-home vs fused parameter comparison must have agreed
# bitwise (the fused-training contract from docs/fused_training.md).
file(READ "${dfl_json}" doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON dfl_det GET "${doc}" deterministic)
  if(NOT dfl_det STREQUAL "ON" AND NOT dfl_det STREQUAL "true")
    message(FATAL_ERROR "dfl_throughput: twin rounds diverged (deterministic = ${dfl_det})")
  endif()
  string(JSON fused_det GET "${doc}" fused_bitwise_match)
  if(NOT fused_det STREQUAL "ON" AND NOT fused_det STREQUAL "true")
    message(FATAL_ERROR "dfl_throughput: fused vs per-home training diverged (fused_bitwise_match = ${fused_det})")
  endif()
  # Final parameter hashes must be identical at every pool worker count.
  string(JSON dfl_pool GET "${doc}" pool_hash_consistent)
  if(NOT dfl_pool STREQUAL "ON" AND NOT dfl_pool STREQUAL "true")
    message(FATAL_ERROR "dfl_throughput: param_hash varies across pool workers (pool_hash_consistent = ${dfl_pool})")
  endif()
endif()

# The act path must stay allocation-free in the steady state — the same
# invariant the unit test pins, re-checked here end-to-end.
file(READ "${pipeline_json}" doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON steady GET "${doc}" steady_state_workspace_allocs)
  if(NOT steady EQUAL 0)
    message(FATAL_ERROR "ems_throughput: steady-state arena allocations = ${steady}, expected 0")
  endif()
endif()

message(STATUS "bench_smoke: both baseline emitters produced valid JSON")

# --- pfdrl_cli snapshot/resume: write a snapshot every round, then
# resume from the file with matching flags. The snapshot cadence covers
# the whole training window, so the resumed run skips straight to
# evaluation — its result lines must match the first run's exactly
# (crash-resume is bitwise; the unit golden pins the state, this pins
# the shipped CLI wiring).
set(snapshot_file "${WORK_DIR}/smoke.pfrc")
set(cli_flags --method pfdrl --homes 2 --days 4 --gamma 6 --seed 7)
execute_process(
  COMMAND "${PFDRL_CLI}" ${cli_flags}
    --snapshot-every 1 --snapshot-out "${snapshot_file}"
  RESULT_VARIABLE save_rc
  OUTPUT_VARIABLE save_out
  ERROR_VARIABLE save_err)
if(NOT save_rc EQUAL 0)
  message(FATAL_ERROR "pfdrl_cli snapshot run failed (${save_rc}):\n${save_out}\n${save_err}")
endif()
if(NOT save_out MATCHES "snapshots: [0-9]+ saved")
  message(FATAL_ERROR "pfdrl_cli snapshot run saved nothing:\n${save_out}")
endif()
if(NOT EXISTS "${snapshot_file}")
  message(FATAL_ERROR "pfdrl_cli: ${snapshot_file} was not written")
endif()

execute_process(
  COMMAND "${PFDRL_CLI}" ${cli_flags} --resume "${snapshot_file}"
  RESULT_VARIABLE resume_rc
  OUTPUT_VARIABLE resume_out
  ERROR_VARIABLE resume_err)
if(NOT resume_rc EQUAL 0)
  message(FATAL_ERROR "pfdrl_cli resume run failed (${resume_rc}):\n${resume_out}\n${resume_err}")
endif()
if(NOT resume_out MATCHES "resumed from")
  message(FATAL_ERROR "pfdrl_cli resume run did not restore:\n${resume_out}")
endif()

foreach(line_re "forecast accuracy [^\n]*" "traffic: [^\n]*")
  string(REGEX MATCH "${line_re}" save_line "${save_out}")
  string(REGEX MATCH "${line_re}" resume_line "${resume_out}")
  if(NOT save_line STREQUAL resume_line)
    message(FATAL_ERROR
      "pfdrl_cli resume diverged:\n  saved:   ${save_line}\n  resumed: ${resume_line}")
  endif()
endforeach()
message(STATUS "bench_smoke: pfdrl_cli snapshot/resume round-trip agreed")

# --- sharded snapshot/resume: the same round-trip through the sharded
# engine (--shards 2 writes one snapshot file per shard; --resume takes
# the base path and merges the shard set). On a clean fault plan the
# sharded run's results must also match the unsharded run above bitwise.
set(sharded_base "${WORK_DIR}/smoke_sharded.pfrc")
execute_process(
  COMMAND "${PFDRL_CLI}" ${cli_flags} --shards 2
    --snapshot-every 1 --snapshot-out "${sharded_base}"
  RESULT_VARIABLE ssave_rc
  OUTPUT_VARIABLE ssave_out
  ERROR_VARIABLE ssave_err)
if(NOT ssave_rc EQUAL 0)
  message(FATAL_ERROR "pfdrl_cli sharded snapshot run failed (${ssave_rc}):\n${ssave_out}\n${ssave_err}")
endif()
if(NOT EXISTS "${sharded_base}.shard0" OR NOT EXISTS "${sharded_base}.shard1")
  message(FATAL_ERROR "pfdrl_cli --shards 2 did not write per-shard snapshot files")
endif()

execute_process(
  COMMAND "${PFDRL_CLI}" ${cli_flags} --shards 2 --resume "${sharded_base}"
  RESULT_VARIABLE sresume_rc
  OUTPUT_VARIABLE sresume_out
  ERROR_VARIABLE sresume_err)
if(NOT sresume_rc EQUAL 0)
  message(FATAL_ERROR "pfdrl_cli sharded resume run failed (${sresume_rc}):\n${sresume_out}\n${sresume_err}")
endif()
if(NOT sresume_out MATCHES "resumed from")
  message(FATAL_ERROR "pfdrl_cli sharded resume did not restore:\n${sresume_out}")
endif()

foreach(line_re "forecast accuracy [^\n]*" "traffic: [^\n]*")
  string(REGEX MATCH "${line_re}" save_line "${save_out}")
  string(REGEX MATCH "${line_re}" sharded_line "${ssave_out}")
  string(REGEX MATCH "${line_re}" sresume_line "${sresume_out}")
  if(NOT save_line STREQUAL sharded_line)
    message(FATAL_ERROR
      "sharded run diverged from unsharded:\n  unsharded: ${save_line}\n  sharded:   ${sharded_line}")
  endif()
  if(NOT sharded_line STREQUAL sresume_line)
    message(FATAL_ERROR
      "sharded resume diverged:\n  saved:   ${sharded_line}\n  resumed: ${sresume_line}")
  endif()
endforeach()
message(STATUS "bench_smoke: sharded snapshot/resume round-trip agreed")

# --- fused training through the shipped CLI: the same scenario with
# --fuse-homes 2 must produce byte-identical result lines to the
# per-home run above (the fused ≡ per-home contract of
# docs/fused_training.md, pinned end-to-end through the CLI wiring).
execute_process(
  COMMAND "${PFDRL_CLI}" ${cli_flags} --fuse-homes 2
  RESULT_VARIABLE fused_rc
  OUTPUT_VARIABLE fused_out
  ERROR_VARIABLE fused_err)
if(NOT fused_rc EQUAL 0)
  message(FATAL_ERROR "pfdrl_cli fused run failed (${fused_rc}):\n${fused_out}\n${fused_err}")
endif()
foreach(line_re "forecast accuracy [^\n]*" "traffic: [^\n]*")
  string(REGEX MATCH "${line_re}" save_line "${save_out}")
  string(REGEX MATCH "${line_re}" fused_line "${fused_out}")
  if(NOT save_line STREQUAL fused_line)
    message(FATAL_ERROR
      "fused run diverged from per-home:\n  per-home: ${save_line}\n  fused:    ${fused_line}")
  endif()
endforeach()
message(STATUS "bench_smoke: fused CLI run matched the per-home run")
