# Smoke test for the perf-baseline benchmarks (ctest job `bench_smoke`,
# label `stress`). Runs both baseline emitters with minimal iteration
# budgets into a scratch directory and checks that the JSON they produce
# parses and carries the expected keys — so a flag rename or a broken
# writer fails CI instead of silently producing an unusable baseline.
#
# Expected -D inputs: MICRO_KERNELS, EMS_THROUGHPUT (executable paths),
# WORK_DIR (scratch directory).

if(NOT DEFINED MICRO_KERNELS OR NOT DEFINED EMS_THROUGHPUT OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "bench_smoke: MICRO_KERNELS, EMS_THROUGHPUT and WORK_DIR must be set")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")
set(kernels_json "${WORK_DIR}/BENCH_kernels.json")
set(pipeline_json "${WORK_DIR}/BENCH_pipeline.json")

# --- micro_kernels: google-benchmark JSON emitter, minimal time budget,
# restricted to the batch-1 act-path benchmarks to keep the smoke fast.
execute_process(
  COMMAND "${MICRO_KERNELS}"
    --benchmark_filter=BM_Matvec1|BM_DenseForwardBatch1|BM_MlpPredict|BM_DqnActGreedy
    --benchmark_min_time=0.01
    --benchmark_out=${kernels_json}
    --benchmark_out_format=json
  RESULT_VARIABLE kernels_rc
  OUTPUT_VARIABLE kernels_out
  ERROR_VARIABLE kernels_err)
if(NOT kernels_rc EQUAL 0)
  message(FATAL_ERROR "micro_kernels failed (${kernels_rc}):\n${kernels_out}\n${kernels_err}")
endif()

# --- ems_throughput: tiny scenario, hand-rolled JSON writer.
execute_process(
  COMMAND "${EMS_THROUGHPUT}" --homes 2 --minutes 60 --out "${pipeline_json}"
  RESULT_VARIABLE pipeline_rc
  OUTPUT_VARIABLE pipeline_out
  ERROR_VARIABLE pipeline_err)
if(NOT pipeline_rc EQUAL 0)
  message(FATAL_ERROR "ems_throughput failed (${pipeline_rc}):\n${pipeline_out}\n${pipeline_err}")
endif()

# --- validate the emitted JSON. string(JSON) needs CMake >= 3.19; on
# older CMake fall back to substring checks of the required keys.
function(check_keys path)
  file(READ "${path}" doc)
  if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
    # A GET on a missing key (or unparsable document) raises a fatal
    # error with this non-ERROR_VARIABLE form — exactly what we want.
    foreach(key IN LISTS ARGN)
      string(JSON value GET "${doc}" ${key})
      message(STATUS "${path}: ${key} = ${value}")
    endforeach()
  else()
    foreach(key IN LISTS ARGN)
      string(FIND "${doc}" "\"${key}\"" pos)
      if(pos EQUAL -1)
        message(FATAL_ERROR "${path}: missing key \"${key}\"")
      endif()
    endforeach()
  endif()
endfunction()

check_keys("${kernels_json}" context benchmarks)
check_keys("${pipeline_json}" bench decisions workspace_decisions_per_sec
  legacy_decisions_per_sec speedup steady_state_workspace_allocs
  nn_workspace_allocs nn_scratch_bytes)

# The act path must stay allocation-free in the steady state — the same
# invariant the unit test pins, re-checked here end-to-end.
file(READ "${pipeline_json}" doc)
if(CMAKE_VERSION VERSION_GREATER_EQUAL 3.19)
  string(JSON steady GET "${doc}" steady_state_workspace_allocs)
  if(NOT steady EQUAL 0)
    message(FATAL_ERROR "ems_throughput: steady-state arena allocations = ${steady}, expected 0")
  endif()
endif()

message(STATUS "bench_smoke: both baseline emitters produced valid JSON")
