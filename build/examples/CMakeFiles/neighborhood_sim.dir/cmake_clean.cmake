file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_sim.dir/neighborhood_sim.cpp.o"
  "CMakeFiles/neighborhood_sim.dir/neighborhood_sim.cpp.o.d"
  "neighborhood_sim"
  "neighborhood_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
