# Empty dependencies file for neighborhood_sim.
# This may be replaced when dependencies are built.
