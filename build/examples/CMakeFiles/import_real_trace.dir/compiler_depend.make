# Empty compiler generated dependencies file for import_real_trace.
# This may be replaced when dependencies are built.
