file(REMOVE_RECURSE
  "CMakeFiles/import_real_trace.dir/import_real_trace.cpp.o"
  "CMakeFiles/import_real_trace.dir/import_real_trace.cpp.o.d"
  "import_real_trace"
  "import_real_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_real_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
