file(REMOVE_RECURSE
  "CMakeFiles/personalization_study.dir/personalization_study.cpp.o"
  "CMakeFiles/personalization_study.dir/personalization_study.cpp.o.d"
  "personalization_study"
  "personalization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/personalization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
