
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/personalization_study.cpp" "examples/CMakeFiles/personalization_study.dir/personalization_study.cpp.o" "gcc" "examples/CMakeFiles/personalization_study.dir/personalization_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pfdrl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pfdrl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/pfdrl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/ems/CMakeFiles/pfdrl_ems.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pfdrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/pfdrl_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pfdrl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pfdrl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
