# Empty compiler generated dependencies file for personalization_study.
# This may be replaced when dependencies are built.
