file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_cli.dir/pfdrl_cli.cpp.o"
  "CMakeFiles/pfdrl_cli.dir/pfdrl_cli.cpp.o.d"
  "pfdrl_cli"
  "pfdrl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
