# Empty compiler generated dependencies file for pfdrl_cli.
# This may be replaced when dependencies are built.
