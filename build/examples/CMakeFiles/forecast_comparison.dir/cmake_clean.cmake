file(REMOVE_RECURSE
  "CMakeFiles/forecast_comparison.dir/forecast_comparison.cpp.o"
  "CMakeFiles/forecast_comparison.dir/forecast_comparison.cpp.o.d"
  "forecast_comparison"
  "forecast_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
