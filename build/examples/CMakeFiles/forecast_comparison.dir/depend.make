# Empty dependencies file for forecast_comparison.
# This may be replaced when dependencies are built.
