file(REMOVE_RECURSE
  "CMakeFiles/billing_analysis.dir/billing_analysis.cpp.o"
  "CMakeFiles/billing_analysis.dir/billing_analysis.cpp.o.d"
  "billing_analysis"
  "billing_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
