# Empty dependencies file for billing_analysis.
# This may be replaced when dependencies are built.
