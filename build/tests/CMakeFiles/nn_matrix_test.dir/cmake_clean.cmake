file(REMOVE_RECURSE
  "CMakeFiles/nn_matrix_test.dir/nn_matrix_test.cpp.o"
  "CMakeFiles/nn_matrix_test.dir/nn_matrix_test.cpp.o.d"
  "nn_matrix_test"
  "nn_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
