# Empty compiler generated dependencies file for ems_accounting_test.
# This may be replaced when dependencies are built.
