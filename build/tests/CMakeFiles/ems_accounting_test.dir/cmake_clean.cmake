file(REMOVE_RECURSE
  "CMakeFiles/ems_accounting_test.dir/ems_accounting_test.cpp.o"
  "CMakeFiles/ems_accounting_test.dir/ems_accounting_test.cpp.o.d"
  "ems_accounting_test"
  "ems_accounting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_accounting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
