file(REMOVE_RECURSE
  "CMakeFiles/fl_secure_agg_test.dir/fl_secure_agg_test.cpp.o"
  "CMakeFiles/fl_secure_agg_test.dir/fl_secure_agg_test.cpp.o.d"
  "fl_secure_agg_test"
  "fl_secure_agg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_secure_agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
