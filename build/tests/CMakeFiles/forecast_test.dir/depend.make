# Empty dependencies file for forecast_test.
# This may be replaced when dependencies are built.
