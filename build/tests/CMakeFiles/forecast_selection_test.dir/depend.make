# Empty dependencies file for forecast_selection_test.
# This may be replaced when dependencies are built.
