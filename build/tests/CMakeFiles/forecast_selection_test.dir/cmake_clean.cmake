file(REMOVE_RECURSE
  "CMakeFiles/forecast_selection_test.dir/forecast_selection_test.cpp.o"
  "CMakeFiles/forecast_selection_test.dir/forecast_selection_test.cpp.o.d"
  "forecast_selection_test"
  "forecast_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forecast_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
