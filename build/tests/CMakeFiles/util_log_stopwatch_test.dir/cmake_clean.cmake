file(REMOVE_RECURSE
  "CMakeFiles/util_log_stopwatch_test.dir/util_log_stopwatch_test.cpp.o"
  "CMakeFiles/util_log_stopwatch_test.dir/util_log_stopwatch_test.cpp.o.d"
  "util_log_stopwatch_test"
  "util_log_stopwatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_log_stopwatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
