# Empty dependencies file for util_log_stopwatch_test.
# This may be replaced when dependencies are built.
