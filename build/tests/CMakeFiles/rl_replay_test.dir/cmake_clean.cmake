file(REMOVE_RECURSE
  "CMakeFiles/rl_replay_test.dir/rl_replay_test.cpp.o"
  "CMakeFiles/rl_replay_test.dir/rl_replay_test.cpp.o.d"
  "rl_replay_test"
  "rl_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
