# Empty compiler generated dependencies file for ems_policies_test.
# This may be replaced when dependencies are built.
