file(REMOVE_RECURSE
  "CMakeFiles/ems_policies_test.dir/ems_policies_test.cpp.o"
  "CMakeFiles/ems_policies_test.dir/ems_policies_test.cpp.o.d"
  "ems_policies_test"
  "ems_policies_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_policies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
