# Empty compiler generated dependencies file for nn_activation_loss_test.
# This may be replaced when dependencies are built.
