file(REMOVE_RECURSE
  "CMakeFiles/nn_activation_loss_test.dir/nn_activation_loss_test.cpp.o"
  "CMakeFiles/nn_activation_loss_test.dir/nn_activation_loss_test.cpp.o.d"
  "nn_activation_loss_test"
  "nn_activation_loss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_activation_loss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
