file(REMOVE_RECURSE
  "CMakeFiles/data_tariff_test.dir/data_tariff_test.cpp.o"
  "CMakeFiles/data_tariff_test.dir/data_tariff_test.cpp.o.d"
  "data_tariff_test"
  "data_tariff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_tariff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
