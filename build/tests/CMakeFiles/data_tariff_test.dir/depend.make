# Empty dependencies file for data_tariff_test.
# This may be replaced when dependencies are built.
