# Empty compiler generated dependencies file for ems_env_test.
# This may be replaced when dependencies are built.
