file(REMOVE_RECURSE
  "CMakeFiles/ems_env_test.dir/ems_env_test.cpp.o"
  "CMakeFiles/ems_env_test.dir/ems_env_test.cpp.o.d"
  "ems_env_test"
  "ems_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
