# Empty dependencies file for net_bus_test.
# This may be replaced when dependencies are built.
