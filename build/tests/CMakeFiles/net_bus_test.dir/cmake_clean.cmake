file(REMOVE_RECURSE
  "CMakeFiles/net_bus_test.dir/net_bus_test.cpp.o"
  "CMakeFiles/net_bus_test.dir/net_bus_test.cpp.o.d"
  "net_bus_test"
  "net_bus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_bus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
