# Empty dependencies file for rl_dqn_test.
# This may be replaced when dependencies are built.
