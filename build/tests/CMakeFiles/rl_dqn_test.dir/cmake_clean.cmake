file(REMOVE_RECURSE
  "CMakeFiles/rl_dqn_test.dir/rl_dqn_test.cpp.o"
  "CMakeFiles/rl_dqn_test.dir/rl_dqn_test.cpp.o.d"
  "rl_dqn_test"
  "rl_dqn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_dqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
