# Empty dependencies file for nn_serialize_test.
# This may be replaced when dependencies are built.
