file(REMOVE_RECURSE
  "CMakeFiles/fl_aggregate_test.dir/fl_aggregate_test.cpp.o"
  "CMakeFiles/fl_aggregate_test.dir/fl_aggregate_test.cpp.o.d"
  "fl_aggregate_test"
  "fl_aggregate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
