# Empty dependencies file for fl_aggregate_test.
# This may be replaced when dependencies are built.
