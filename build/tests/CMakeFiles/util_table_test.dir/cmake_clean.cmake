file(REMOVE_RECURSE
  "CMakeFiles/util_table_test.dir/util_table_test.cpp.o"
  "CMakeFiles/util_table_test.dir/util_table_test.cpp.o.d"
  "util_table_test"
  "util_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
