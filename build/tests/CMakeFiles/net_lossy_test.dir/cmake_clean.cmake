file(REMOVE_RECURSE
  "CMakeFiles/net_lossy_test.dir/net_lossy_test.cpp.o"
  "CMakeFiles/net_lossy_test.dir/net_lossy_test.cpp.o.d"
  "net_lossy_test"
  "net_lossy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_lossy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
