# Empty dependencies file for net_lossy_test.
# This may be replaced when dependencies are built.
