file(REMOVE_RECURSE
  "CMakeFiles/nn_optimizer_test.dir/nn_optimizer_test.cpp.o"
  "CMakeFiles/nn_optimizer_test.dir/nn_optimizer_test.cpp.o.d"
  "nn_optimizer_test"
  "nn_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
