file(REMOVE_RECURSE
  "CMakeFiles/util_csv_test.dir/util_csv_test.cpp.o"
  "CMakeFiles/util_csv_test.dir/util_csv_test.cpp.o.d"
  "util_csv_test"
  "util_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
