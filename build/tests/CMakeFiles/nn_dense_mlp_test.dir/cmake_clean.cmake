file(REMOVE_RECURSE
  "CMakeFiles/nn_dense_mlp_test.dir/nn_dense_mlp_test.cpp.o"
  "CMakeFiles/nn_dense_mlp_test.dir/nn_dense_mlp_test.cpp.o.d"
  "nn_dense_mlp_test"
  "nn_dense_mlp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_dense_mlp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
