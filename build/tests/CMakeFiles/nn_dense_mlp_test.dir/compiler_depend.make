# Empty compiler generated dependencies file for nn_dense_mlp_test.
# This may be replaced when dependencies are built.
