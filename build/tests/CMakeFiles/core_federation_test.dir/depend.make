# Empty dependencies file for core_federation_test.
# This may be replaced when dependencies are built.
