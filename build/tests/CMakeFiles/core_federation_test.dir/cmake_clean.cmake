file(REMOVE_RECURSE
  "CMakeFiles/core_federation_test.dir/core_federation_test.cpp.o"
  "CMakeFiles/core_federation_test.dir/core_federation_test.cpp.o.d"
  "core_federation_test"
  "core_federation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
