# Empty compiler generated dependencies file for fl_trainer_test.
# This may be replaced when dependencies are built.
