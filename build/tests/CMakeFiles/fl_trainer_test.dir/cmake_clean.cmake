file(REMOVE_RECURSE
  "CMakeFiles/fl_trainer_test.dir/fl_trainer_test.cpp.o"
  "CMakeFiles/fl_trainer_test.dir/fl_trainer_test.cpp.o.d"
  "fl_trainer_test"
  "fl_trainer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fl_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
