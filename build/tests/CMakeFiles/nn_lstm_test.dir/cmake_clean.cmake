file(REMOVE_RECURSE
  "CMakeFiles/nn_lstm_test.dir/nn_lstm_test.cpp.o"
  "CMakeFiles/nn_lstm_test.dir/nn_lstm_test.cpp.o.d"
  "nn_lstm_test"
  "nn_lstm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
