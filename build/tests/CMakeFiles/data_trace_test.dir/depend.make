# Empty dependencies file for data_trace_test.
# This may be replaced when dependencies are built.
