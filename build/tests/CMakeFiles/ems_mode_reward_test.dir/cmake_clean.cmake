file(REMOVE_RECURSE
  "CMakeFiles/ems_mode_reward_test.dir/ems_mode_reward_test.cpp.o"
  "CMakeFiles/ems_mode_reward_test.dir/ems_mode_reward_test.cpp.o.d"
  "ems_mode_reward_test"
  "ems_mode_reward_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_mode_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
