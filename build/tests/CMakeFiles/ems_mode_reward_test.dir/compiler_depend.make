# Empty compiler generated dependencies file for ems_mode_reward_test.
# This may be replaced when dependencies are built.
