file(REMOVE_RECURSE
  "CMakeFiles/data_device_test.dir/data_device_test.cpp.o"
  "CMakeFiles/data_device_test.dir/data_device_test.cpp.o.d"
  "data_device_test"
  "data_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
