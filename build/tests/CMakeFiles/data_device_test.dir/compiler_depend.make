# Empty compiler generated dependencies file for data_device_test.
# This may be replaced when dependencies are built.
