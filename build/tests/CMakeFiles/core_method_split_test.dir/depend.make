# Empty dependencies file for core_method_split_test.
# This may be replaced when dependencies are built.
