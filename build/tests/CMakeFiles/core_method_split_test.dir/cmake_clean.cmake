file(REMOVE_RECURSE
  "CMakeFiles/core_method_split_test.dir/core_method_split_test.cpp.o"
  "CMakeFiles/core_method_split_test.dir/core_method_split_test.cpp.o.d"
  "core_method_split_test"
  "core_method_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_method_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
