file(REMOVE_RECURSE
  "CMakeFiles/nn_gru_test.dir/nn_gru_test.cpp.o"
  "CMakeFiles/nn_gru_test.dir/nn_gru_test.cpp.o.d"
  "nn_gru_test"
  "nn_gru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_gru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
