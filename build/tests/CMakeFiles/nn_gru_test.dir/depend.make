# Empty dependencies file for nn_gru_test.
# This may be replaced when dependencies are built.
