file(REMOVE_RECURSE
  "CMakeFiles/headline_claims.dir/headline_claims.cpp.o"
  "CMakeFiles/headline_claims.dir/headline_claims.cpp.o.d"
  "headline_claims"
  "headline_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
