# Empty dependencies file for headline_claims.
# This may be replaced when dependencies are built.
