# Empty dependencies file for fig02_alpha_sweep.
# This may be replaced when dependencies are built.
