file(REMOVE_RECURSE
  "CMakeFiles/fig02_alpha_sweep.dir/fig02_alpha_sweep.cpp.o"
  "CMakeFiles/fig02_alpha_sweep.dir/fig02_alpha_sweep.cpp.o.d"
  "fig02_alpha_sweep"
  "fig02_alpha_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_alpha_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
