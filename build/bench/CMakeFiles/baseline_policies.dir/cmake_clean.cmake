file(REMOVE_RECURSE
  "CMakeFiles/baseline_policies.dir/baseline_policies.cpp.o"
  "CMakeFiles/baseline_policies.dir/baseline_policies.cpp.o.d"
  "baseline_policies"
  "baseline_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
