# Empty dependencies file for baseline_policies.
# This may be replaced when dependencies are built.
