file(REMOVE_RECURSE
  "CMakeFiles/fig11_saved_energy_by_hour.dir/fig11_saved_energy_by_hour.cpp.o"
  "CMakeFiles/fig11_saved_energy_by_hour.dir/fig11_saved_energy_by_hour.cpp.o.d"
  "fig11_saved_energy_by_hour"
  "fig11_saved_energy_by_hour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_saved_energy_by_hour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
