# Empty compiler generated dependencies file for fig11_saved_energy_by_hour.
# This may be replaced when dependencies are built.
