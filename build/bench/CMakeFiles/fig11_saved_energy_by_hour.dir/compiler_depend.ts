# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_saved_energy_by_hour.
