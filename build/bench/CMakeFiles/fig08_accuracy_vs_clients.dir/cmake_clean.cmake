file(REMOVE_RECURSE
  "CMakeFiles/fig08_accuracy_vs_clients.dir/fig08_accuracy_vs_clients.cpp.o"
  "CMakeFiles/fig08_accuracy_vs_clients.dir/fig08_accuracy_vs_clients.cpp.o.d"
  "fig08_accuracy_vs_clients"
  "fig08_accuracy_vs_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_accuracy_vs_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
