# Empty compiler generated dependencies file for fig08_accuracy_vs_clients.
# This may be replaced when dependencies are built.
