# Empty dependencies file for fig14_ems_overhead.
# This may be replaced when dependencies are built.
