file(REMOVE_RECURSE
  "CMakeFiles/fig14_ems_overhead.dir/fig14_ems_overhead.cpp.o"
  "CMakeFiles/fig14_ems_overhead.dir/fig14_ems_overhead.cpp.o.d"
  "fig14_ems_overhead"
  "fig14_ems_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_ems_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
