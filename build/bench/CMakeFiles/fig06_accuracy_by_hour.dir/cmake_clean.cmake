file(REMOVE_RECURSE
  "CMakeFiles/fig06_accuracy_by_hour.dir/fig06_accuracy_by_hour.cpp.o"
  "CMakeFiles/fig06_accuracy_by_hour.dir/fig06_accuracy_by_hour.cpp.o.d"
  "fig06_accuracy_by_hour"
  "fig06_accuracy_by_hour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_accuracy_by_hour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
