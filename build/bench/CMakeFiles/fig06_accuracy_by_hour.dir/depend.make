# Empty dependencies file for fig06_accuracy_by_hour.
# This may be replaced when dependencies are built.
