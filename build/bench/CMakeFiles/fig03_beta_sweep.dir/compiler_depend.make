# Empty compiler generated dependencies file for fig03_beta_sweep.
# This may be replaced when dependencies are built.
