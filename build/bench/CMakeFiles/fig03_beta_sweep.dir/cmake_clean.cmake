file(REMOVE_RECURSE
  "CMakeFiles/fig03_beta_sweep.dir/fig03_beta_sweep.cpp.o"
  "CMakeFiles/fig03_beta_sweep.dir/fig03_beta_sweep.cpp.o.d"
  "fig03_beta_sweep"
  "fig03_beta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_beta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
