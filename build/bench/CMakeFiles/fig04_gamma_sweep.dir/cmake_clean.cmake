file(REMOVE_RECURSE
  "CMakeFiles/fig04_gamma_sweep.dir/fig04_gamma_sweep.cpp.o"
  "CMakeFiles/fig04_gamma_sweep.dir/fig04_gamma_sweep.cpp.o.d"
  "fig04_gamma_sweep"
  "fig04_gamma_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_gamma_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
