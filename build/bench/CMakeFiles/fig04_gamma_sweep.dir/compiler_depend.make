# Empty compiler generated dependencies file for fig04_gamma_sweep.
# This may be replaced when dependencies are built.
