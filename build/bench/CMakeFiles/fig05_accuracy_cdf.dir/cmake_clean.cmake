file(REMOVE_RECURSE
  "CMakeFiles/fig05_accuracy_cdf.dir/fig05_accuracy_cdf.cpp.o"
  "CMakeFiles/fig05_accuracy_cdf.dir/fig05_accuracy_cdf.cpp.o.d"
  "fig05_accuracy_cdf"
  "fig05_accuracy_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_accuracy_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
