# Empty compiler generated dependencies file for fig05_accuracy_cdf.
# This may be replaced when dependencies are built.
