file(REMOVE_RECURSE
  "CMakeFiles/fig13_forecast_overhead.dir/fig13_forecast_overhead.cpp.o"
  "CMakeFiles/fig13_forecast_overhead.dir/fig13_forecast_overhead.cpp.o.d"
  "fig13_forecast_overhead"
  "fig13_forecast_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_forecast_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
