# Empty compiler generated dependencies file for fig13_forecast_overhead.
# This may be replaced when dependencies are built.
