file(REMOVE_RECURSE
  "CMakeFiles/fig10_monetary_by_month.dir/fig10_monetary_by_month.cpp.o"
  "CMakeFiles/fig10_monetary_by_month.dir/fig10_monetary_by_month.cpp.o.d"
  "fig10_monetary_by_month"
  "fig10_monetary_by_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_monetary_by_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
