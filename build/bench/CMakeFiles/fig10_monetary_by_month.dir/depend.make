# Empty dependencies file for fig10_monetary_by_month.
# This may be replaced when dependencies are built.
