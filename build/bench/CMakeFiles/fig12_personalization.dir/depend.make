# Empty dependencies file for fig12_personalization.
# This may be replaced when dependencies are built.
