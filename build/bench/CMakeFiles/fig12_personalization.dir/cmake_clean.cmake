file(REMOVE_RECURSE
  "CMakeFiles/fig12_personalization.dir/fig12_personalization.cpp.o"
  "CMakeFiles/fig12_personalization.dir/fig12_personalization.cpp.o.d"
  "fig12_personalization"
  "fig12_personalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
