file(REMOVE_RECURSE
  "CMakeFiles/fig07_accuracy_vs_days.dir/fig07_accuracy_vs_days.cpp.o"
  "CMakeFiles/fig07_accuracy_vs_days.dir/fig07_accuracy_vs_days.cpp.o.d"
  "fig07_accuracy_vs_days"
  "fig07_accuracy_vs_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_accuracy_vs_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
