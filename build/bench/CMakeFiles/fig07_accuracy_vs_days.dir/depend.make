# Empty dependencies file for fig07_accuracy_vs_days.
# This may be replaced when dependencies are built.
