file(REMOVE_RECURSE
  "CMakeFiles/fig09_saved_energy_vs_days.dir/fig09_saved_energy_vs_days.cpp.o"
  "CMakeFiles/fig09_saved_energy_vs_days.dir/fig09_saved_energy_vs_days.cpp.o.d"
  "fig09_saved_energy_vs_days"
  "fig09_saved_energy_vs_days.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_saved_energy_vs_days.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
