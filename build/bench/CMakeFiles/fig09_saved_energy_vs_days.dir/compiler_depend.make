# Empty compiler generated dependencies file for fig09_saved_energy_vs_days.
# This may be replaced when dependencies are built.
