# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig09_saved_energy_vs_days.
