
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ems/accounting.cpp" "src/ems/CMakeFiles/pfdrl_ems.dir/accounting.cpp.o" "gcc" "src/ems/CMakeFiles/pfdrl_ems.dir/accounting.cpp.o.d"
  "/root/repo/src/ems/env.cpp" "src/ems/CMakeFiles/pfdrl_ems.dir/env.cpp.o" "gcc" "src/ems/CMakeFiles/pfdrl_ems.dir/env.cpp.o.d"
  "/root/repo/src/ems/mode.cpp" "src/ems/CMakeFiles/pfdrl_ems.dir/mode.cpp.o" "gcc" "src/ems/CMakeFiles/pfdrl_ems.dir/mode.cpp.o.d"
  "/root/repo/src/ems/policies.cpp" "src/ems/CMakeFiles/pfdrl_ems.dir/policies.cpp.o" "gcc" "src/ems/CMakeFiles/pfdrl_ems.dir/policies.cpp.o.d"
  "/root/repo/src/ems/reward.cpp" "src/ems/CMakeFiles/pfdrl_ems.dir/reward.cpp.o" "gcc" "src/ems/CMakeFiles/pfdrl_ems.dir/reward.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/pfdrl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pfdrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
