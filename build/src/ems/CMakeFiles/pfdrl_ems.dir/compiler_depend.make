# Empty compiler generated dependencies file for pfdrl_ems.
# This may be replaced when dependencies are built.
