file(REMOVE_RECURSE
  "libpfdrl_ems.a"
)
