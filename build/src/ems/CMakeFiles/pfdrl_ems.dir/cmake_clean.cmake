file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_ems.dir/accounting.cpp.o"
  "CMakeFiles/pfdrl_ems.dir/accounting.cpp.o.d"
  "CMakeFiles/pfdrl_ems.dir/env.cpp.o"
  "CMakeFiles/pfdrl_ems.dir/env.cpp.o.d"
  "CMakeFiles/pfdrl_ems.dir/mode.cpp.o"
  "CMakeFiles/pfdrl_ems.dir/mode.cpp.o.d"
  "CMakeFiles/pfdrl_ems.dir/policies.cpp.o"
  "CMakeFiles/pfdrl_ems.dir/policies.cpp.o.d"
  "CMakeFiles/pfdrl_ems.dir/reward.cpp.o"
  "CMakeFiles/pfdrl_ems.dir/reward.cpp.o.d"
  "libpfdrl_ems.a"
  "libpfdrl_ems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_ems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
