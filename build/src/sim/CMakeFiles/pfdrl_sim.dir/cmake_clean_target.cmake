file(REMOVE_RECURSE
  "libpfdrl_sim.a"
)
