file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_sim.dir/experiment.cpp.o"
  "CMakeFiles/pfdrl_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/pfdrl_sim.dir/scenario.cpp.o"
  "CMakeFiles/pfdrl_sim.dir/scenario.cpp.o.d"
  "libpfdrl_sim.a"
  "libpfdrl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
