# Empty dependencies file for pfdrl_sim.
# This may be replaced when dependencies are built.
