file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_data.dir/dataset.cpp.o"
  "CMakeFiles/pfdrl_data.dir/dataset.cpp.o.d"
  "CMakeFiles/pfdrl_data.dir/device.cpp.o"
  "CMakeFiles/pfdrl_data.dir/device.cpp.o.d"
  "CMakeFiles/pfdrl_data.dir/household.cpp.o"
  "CMakeFiles/pfdrl_data.dir/household.cpp.o.d"
  "CMakeFiles/pfdrl_data.dir/tariff.cpp.o"
  "CMakeFiles/pfdrl_data.dir/tariff.cpp.o.d"
  "CMakeFiles/pfdrl_data.dir/trace.cpp.o"
  "CMakeFiles/pfdrl_data.dir/trace.cpp.o.d"
  "CMakeFiles/pfdrl_data.dir/trace_io.cpp.o"
  "CMakeFiles/pfdrl_data.dir/trace_io.cpp.o.d"
  "libpfdrl_data.a"
  "libpfdrl_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
