# Empty dependencies file for pfdrl_data.
# This may be replaced when dependencies are built.
