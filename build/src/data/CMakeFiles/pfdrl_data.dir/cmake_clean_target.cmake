file(REMOVE_RECURSE
  "libpfdrl_data.a"
)
