
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/pfdrl_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/device.cpp" "src/data/CMakeFiles/pfdrl_data.dir/device.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/device.cpp.o.d"
  "/root/repo/src/data/household.cpp" "src/data/CMakeFiles/pfdrl_data.dir/household.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/household.cpp.o.d"
  "/root/repo/src/data/tariff.cpp" "src/data/CMakeFiles/pfdrl_data.dir/tariff.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/tariff.cpp.o.d"
  "/root/repo/src/data/trace.cpp" "src/data/CMakeFiles/pfdrl_data.dir/trace.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/trace.cpp.o.d"
  "/root/repo/src/data/trace_io.cpp" "src/data/CMakeFiles/pfdrl_data.dir/trace_io.cpp.o" "gcc" "src/data/CMakeFiles/pfdrl_data.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
