file(REMOVE_RECURSE
  "libpfdrl_util.a"
)
