file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_util.dir/csv.cpp.o"
  "CMakeFiles/pfdrl_util.dir/csv.cpp.o.d"
  "CMakeFiles/pfdrl_util.dir/log.cpp.o"
  "CMakeFiles/pfdrl_util.dir/log.cpp.o.d"
  "CMakeFiles/pfdrl_util.dir/rng.cpp.o"
  "CMakeFiles/pfdrl_util.dir/rng.cpp.o.d"
  "CMakeFiles/pfdrl_util.dir/stats.cpp.o"
  "CMakeFiles/pfdrl_util.dir/stats.cpp.o.d"
  "CMakeFiles/pfdrl_util.dir/table.cpp.o"
  "CMakeFiles/pfdrl_util.dir/table.cpp.o.d"
  "CMakeFiles/pfdrl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/pfdrl_util.dir/thread_pool.cpp.o.d"
  "libpfdrl_util.a"
  "libpfdrl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
