# Empty compiler generated dependencies file for pfdrl_util.
# This may be replaced when dependencies are built.
