file(REMOVE_RECURSE
  "libpfdrl_fl.a"
)
