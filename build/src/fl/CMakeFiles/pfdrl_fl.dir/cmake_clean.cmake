file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_fl.dir/aggregate.cpp.o"
  "CMakeFiles/pfdrl_fl.dir/aggregate.cpp.o.d"
  "CMakeFiles/pfdrl_fl.dir/baselines.cpp.o"
  "CMakeFiles/pfdrl_fl.dir/baselines.cpp.o.d"
  "CMakeFiles/pfdrl_fl.dir/dfl.cpp.o"
  "CMakeFiles/pfdrl_fl.dir/dfl.cpp.o.d"
  "CMakeFiles/pfdrl_fl.dir/secure_agg.cpp.o"
  "CMakeFiles/pfdrl_fl.dir/secure_agg.cpp.o.d"
  "libpfdrl_fl.a"
  "libpfdrl_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
