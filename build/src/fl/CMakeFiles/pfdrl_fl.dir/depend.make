# Empty dependencies file for pfdrl_fl.
# This may be replaced when dependencies are built.
