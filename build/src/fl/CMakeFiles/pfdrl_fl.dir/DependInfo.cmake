
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fl/aggregate.cpp" "src/fl/CMakeFiles/pfdrl_fl.dir/aggregate.cpp.o" "gcc" "src/fl/CMakeFiles/pfdrl_fl.dir/aggregate.cpp.o.d"
  "/root/repo/src/fl/baselines.cpp" "src/fl/CMakeFiles/pfdrl_fl.dir/baselines.cpp.o" "gcc" "src/fl/CMakeFiles/pfdrl_fl.dir/baselines.cpp.o.d"
  "/root/repo/src/fl/dfl.cpp" "src/fl/CMakeFiles/pfdrl_fl.dir/dfl.cpp.o" "gcc" "src/fl/CMakeFiles/pfdrl_fl.dir/dfl.cpp.o.d"
  "/root/repo/src/fl/secure_agg.cpp" "src/fl/CMakeFiles/pfdrl_fl.dir/secure_agg.cpp.o" "gcc" "src/fl/CMakeFiles/pfdrl_fl.dir/secure_agg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forecast/CMakeFiles/pfdrl_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pfdrl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pfdrl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
