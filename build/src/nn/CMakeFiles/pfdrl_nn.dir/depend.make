# Empty dependencies file for pfdrl_nn.
# This may be replaced when dependencies are built.
