file(REMOVE_RECURSE
  "libpfdrl_nn.a"
)
