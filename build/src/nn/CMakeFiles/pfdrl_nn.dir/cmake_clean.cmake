file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_nn.dir/activation.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/activation.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/dense.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/dense.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/gru.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/gru.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/init.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/init.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/loss.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/loss.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/lstm.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/matrix.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/matrix.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/mlp.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/optimizer.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/pfdrl_nn.dir/serialize.cpp.o"
  "CMakeFiles/pfdrl_nn.dir/serialize.cpp.o.d"
  "libpfdrl_nn.a"
  "libpfdrl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
