
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forecast/bp.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/bp.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/bp.cpp.o.d"
  "/root/repo/src/forecast/forecaster.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/forecaster.cpp.o.d"
  "/root/repo/src/forecast/gru_forecaster.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/gru_forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/gru_forecaster.cpp.o.d"
  "/root/repo/src/forecast/lr.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/lr.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/lr.cpp.o.d"
  "/root/repo/src/forecast/lstm_forecaster.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/lstm_forecaster.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/lstm_forecaster.cpp.o.d"
  "/root/repo/src/forecast/metrics.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/metrics.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/metrics.cpp.o.d"
  "/root/repo/src/forecast/selection.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/selection.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/selection.cpp.o.d"
  "/root/repo/src/forecast/svr.cpp" "src/forecast/CMakeFiles/pfdrl_forecast.dir/svr.cpp.o" "gcc" "src/forecast/CMakeFiles/pfdrl_forecast.dir/svr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pfdrl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
