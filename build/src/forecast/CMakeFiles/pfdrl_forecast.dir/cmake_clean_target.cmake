file(REMOVE_RECURSE
  "libpfdrl_forecast.a"
)
