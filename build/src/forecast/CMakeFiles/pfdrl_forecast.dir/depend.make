# Empty dependencies file for pfdrl_forecast.
# This may be replaced when dependencies are built.
