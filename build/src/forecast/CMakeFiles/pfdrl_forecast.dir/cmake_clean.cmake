file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_forecast.dir/bp.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/bp.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/forecaster.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/forecaster.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/gru_forecaster.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/gru_forecaster.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/lr.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/lr.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/lstm_forecaster.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/lstm_forecaster.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/metrics.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/metrics.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/selection.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/selection.cpp.o.d"
  "CMakeFiles/pfdrl_forecast.dir/svr.cpp.o"
  "CMakeFiles/pfdrl_forecast.dir/svr.cpp.o.d"
  "libpfdrl_forecast.a"
  "libpfdrl_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
