file(REMOVE_RECURSE
  "libpfdrl_core.a"
)
