file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_core.dir/federation.cpp.o"
  "CMakeFiles/pfdrl_core.dir/federation.cpp.o.d"
  "CMakeFiles/pfdrl_core.dir/layer_split.cpp.o"
  "CMakeFiles/pfdrl_core.dir/layer_split.cpp.o.d"
  "CMakeFiles/pfdrl_core.dir/method.cpp.o"
  "CMakeFiles/pfdrl_core.dir/method.cpp.o.d"
  "CMakeFiles/pfdrl_core.dir/pipeline.cpp.o"
  "CMakeFiles/pfdrl_core.dir/pipeline.cpp.o.d"
  "libpfdrl_core.a"
  "libpfdrl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
