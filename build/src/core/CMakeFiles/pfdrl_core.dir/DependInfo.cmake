
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/federation.cpp" "src/core/CMakeFiles/pfdrl_core.dir/federation.cpp.o" "gcc" "src/core/CMakeFiles/pfdrl_core.dir/federation.cpp.o.d"
  "/root/repo/src/core/layer_split.cpp" "src/core/CMakeFiles/pfdrl_core.dir/layer_split.cpp.o" "gcc" "src/core/CMakeFiles/pfdrl_core.dir/layer_split.cpp.o.d"
  "/root/repo/src/core/method.cpp" "src/core/CMakeFiles/pfdrl_core.dir/method.cpp.o" "gcc" "src/core/CMakeFiles/pfdrl_core.dir/method.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pfdrl_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pfdrl_core.dir/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/pfdrl_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/pfdrl_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/ems/CMakeFiles/pfdrl_ems.dir/DependInfo.cmake"
  "/root/repo/build/src/forecast/CMakeFiles/pfdrl_forecast.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pfdrl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pfdrl_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
