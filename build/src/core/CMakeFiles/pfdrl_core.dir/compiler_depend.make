# Empty compiler generated dependencies file for pfdrl_core.
# This may be replaced when dependencies are built.
