
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/bus.cpp" "src/net/CMakeFiles/pfdrl_net.dir/bus.cpp.o" "gcc" "src/net/CMakeFiles/pfdrl_net.dir/bus.cpp.o.d"
  "/root/repo/src/net/message.cpp" "src/net/CMakeFiles/pfdrl_net.dir/message.cpp.o" "gcc" "src/net/CMakeFiles/pfdrl_net.dir/message.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/pfdrl_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/pfdrl_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
