file(REMOVE_RECURSE
  "libpfdrl_net.a"
)
