# Empty dependencies file for pfdrl_net.
# This may be replaced when dependencies are built.
