file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_net.dir/bus.cpp.o"
  "CMakeFiles/pfdrl_net.dir/bus.cpp.o.d"
  "CMakeFiles/pfdrl_net.dir/message.cpp.o"
  "CMakeFiles/pfdrl_net.dir/message.cpp.o.d"
  "CMakeFiles/pfdrl_net.dir/topology.cpp.o"
  "CMakeFiles/pfdrl_net.dir/topology.cpp.o.d"
  "libpfdrl_net.a"
  "libpfdrl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
