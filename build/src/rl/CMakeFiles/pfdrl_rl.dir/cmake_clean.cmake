file(REMOVE_RECURSE
  "CMakeFiles/pfdrl_rl.dir/dqn.cpp.o"
  "CMakeFiles/pfdrl_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/pfdrl_rl.dir/replay.cpp.o"
  "CMakeFiles/pfdrl_rl.dir/replay.cpp.o.d"
  "libpfdrl_rl.a"
  "libpfdrl_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfdrl_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
