file(REMOVE_RECURSE
  "libpfdrl_rl.a"
)
