# Empty dependencies file for pfdrl_rl.
# This may be replaced when dependencies are built.
