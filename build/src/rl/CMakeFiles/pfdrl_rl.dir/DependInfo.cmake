
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/dqn.cpp" "src/rl/CMakeFiles/pfdrl_rl.dir/dqn.cpp.o" "gcc" "src/rl/CMakeFiles/pfdrl_rl.dir/dqn.cpp.o.d"
  "/root/repo/src/rl/replay.cpp" "src/rl/CMakeFiles/pfdrl_rl.dir/replay.cpp.o" "gcc" "src/rl/CMakeFiles/pfdrl_rl.dir/replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/pfdrl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfdrl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
