// Quickstart: generate a small synthetic neighbourhood, run the full
// PFDRL pipeline (DFL load forecasting + personalized federated DQN EMS)
// and print what it achieved.
//
//   $ ./examples/quickstart
//
// Everything is deterministic for a given seed.
#include <cstdio>

#include "core/pipeline.hpp"
#include "data/trace.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfdrl;

  // 1. A neighbourhood: 5 homes, 4 days of minute-level device traces.
  const sim::Scenario scenario =
      sim::Scenario::generate(sim::small_scenario(/*seed=*/42));
  std::printf("neighbourhood: %zu homes, %zu devices, %zu minutes of data\n",
              scenario.num_homes(), scenario.num_devices(),
              scenario.minutes());

  // 2. The PFDRL pipeline with paper hyperparameters scaled for a quick
  //    demo run (small DQN; the full 8x100 network lives in the benches).
  core::PipelineConfig cfg = sim::fast_pipeline(core::EmsMethod::kPfdrl);
  core::EmsPipeline pipeline(scenario.traces, cfg);

  // 3. Train load forecasters on the first 3 days (DFL, broadcast every
  //    beta=12h), then train the EMS on the last day.
  const std::size_t day = data::kMinutesPerDay;
  pipeline.train_forecasters(0, 3 * day);
  const double acc = pipeline.forecast_accuracy(3 * day, 4 * day);
  std::printf("DFL forecast accuracy (day 4): %.1f%%\n", acc * 100.0);

  pipeline.train_ems(3 * day, 4 * day);

  // 4. Evaluate the greedy EMS policy on day 4.
  const auto results = pipeline.evaluate(3 * day, 4 * day);
  util::TextTable table({"home", "standby kWh", "saved kWh", "gross %",
                         "net %", "comfort violations"});
  for (std::size_t h = 0; h < results.size(); ++h) {
    const auto& r = results[h];
    table.add_row({"home" + std::to_string(h),
                   util::fmt_double(r.standby_kwh, 3),
                   util::fmt_double(r.saved_kwh, 3),
                   util::fmt_percent(r.saved_fraction()),
                   util::fmt_percent(r.net_saved_fraction()),
                   std::to_string(r.comfort_violations)});
  }
  table.print("\nPFDRL energy management, evaluation day:");

  const auto comm = pipeline.drl_comm_stats();
  std::printf("\nDRL parameters broadcast: %llu messages, %.2f MiB on wire\n",
              static_cast<unsigned long long>(comm.messages_sent),
              static_cast<double>(comm.bytes_on_wire) / (1024.0 * 1024.0));
  return 0;
}
