// Neighborhood simulation: run all five EMS methods (paper Table 2) on
// the same synthetic neighbourhood and compare what each achieves and
// what each costs in privacy and traffic.
//
//   $ ./examples/neighborhood_sim
#include <cstdio>

#include "core/pipeline.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfdrl;

  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = 4;
  sc.neighborhood.min_devices = 4;
  sc.neighborhood.max_devices = 5;
  sc.trace.days = 4;
  const auto scenario = sim::Scenario::generate(sc);
  const std::size_t day = data::kMinutesPerDay;

  std::printf("neighbourhood: %zu homes, %zu devices, %zu days\n\n",
              scenario.num_homes(), scenario.num_devices(),
              scenario.minutes() / day);

  // Paper Table 2: the qualitative comparison matrix.
  util::TextTable matrix({"method", "forecasting", "EMS", "local area",
                          "privacy", "shares EMS", "personalized"});
  for (auto m : {core::EmsMethod::kLocal, core::EmsMethod::kCloud,
                 core::EmsMethod::kFl, core::EmsMethod::kFrl,
                 core::EmsMethod::kPfdrl}) {
    const auto t = core::method_traits(m);
    const auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
    matrix.add_row({core::ems_method_name(m), t.load_forecasting, t.ems,
                    yn(t.local_area), yn(t.data_privacy), yn(t.shares_ems),
                    yn(t.personalization)});
  }
  matrix.print("method matrix (paper Table 2):");
  std::printf("\n");

  // Quantitative comparison with the fast preset.
  util::TextTable results({"method", "forecast acc", "net saved frac",
                           "violations/client", "fc MiB", "DRL MiB"});
  for (auto m : {core::EmsMethod::kLocal, core::EmsMethod::kCloud,
                 core::EmsMethod::kFl, core::EmsMethod::kFrl,
                 core::EmsMethod::kPfdrl}) {
    auto cfg = sim::fast_pipeline(m);
    // The demo can afford proper forecaster training (per-method tuned
    // defaults) instead of the test suite's minimal settings.
    cfg.forecast_train = forecast::TrainConfig{};
    core::EmsPipeline pipeline(scenario.traces, cfg);
    pipeline.train_forecasters(0, 2 * day);
    pipeline.train_ems(2 * day, 3 * day);
    const auto eval = pipeline.evaluate(3 * day, 4 * day);
    double net = 0.0, standby = 0.0, violations = 0.0;
    for (const auto& r : eval) {
      net += std::max(0.0, r.net_saved_kwh());
      standby += r.standby_kwh;
      violations += static_cast<double>(r.comfort_violations);
    }
    const auto fc = pipeline.forecast_comm_stats();
    const auto drl = pipeline.drl_comm_stats();
    results.add_row(
        {core::ems_method_name(m),
         util::fmt_percent(pipeline.forecast_accuracy(3 * day, 4 * day)),
         util::fmt_double(standby > 0 ? net / standby : 0.0, 3),
         util::fmt_double(violations / static_cast<double>(eval.size()), 1),
         util::fmt_double(
             static_cast<double>(fc.bytes_on_wire) / (1024.0 * 1024.0), 1),
         util::fmt_double(
             static_cast<double>(drl.bytes_on_wire) / (1024.0 * 1024.0), 1)});
  }
  results.print("measured on the evaluation day:");
  return 0;
}
