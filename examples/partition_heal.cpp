// Partition-and-heal storyline: a 20-home PFDRL federation rides out a
// split-brain window.
//
// Twenty homologous DQN agents (one per residence, shared base prefix)
// federate over a full mesh while each home keeps "training" locally
// (modelled as per-home parameter noise). The run walks three phases:
//
//   rounds 0-2   healthy     — everyone averages with everyone;
//   rounds 3-6   partitioned — homes 0-9 are cut off from homes 10-19
//                              (and homes 4 and 13 crash outright), so
//                              each island averages only with itself and
//                              the two sides drift apart;
//   rounds 7-9   healed      — the mesh is whole again and one full
//                              round pulls the islands back together.
//
// Watch the `base spread` column: it collapses in the healthy phase,
// splits into a persistent gap during the partition, and collapses again
// after the heal — the paper's decentralized averaging recovering from a
// fault no cloud aggregator would survive either.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/federation.hpp"
#include "core/layer_split.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "rl/dqn.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace pfdrl;

constexpr std::size_t kHomes = 20;
constexpr std::size_t kShareLayers = 2;
constexpr std::uint64_t kPartitionFrom = 3;
constexpr std::uint64_t kPartitionUntil = 7;
constexpr std::uint64_t kRounds = 10;

const char* phase_name(std::uint64_t round) {
  if (round < kPartitionFrom) return "healthy";
  if (round < kPartitionUntil) return "partitioned";
  return "healed";
}

/// Largest pairwise L2 distance between the shared base prefixes of two
/// live homes — the "how far apart has the neighbourhood drifted" gauge.
double base_spread(const std::vector<std::unique_ptr<rl::DqnAgent>>& agents,
                   std::size_t prefix) {
  double worst = 0.0;
  for (std::size_t a = 0; a < agents.size(); ++a) {
    const auto pa = agents[a]->network().parameters();
    for (std::size_t b = a + 1; b < agents.size(); ++b) {
      const auto pb = agents[b]->network().parameters();
      double d2 = 0.0;
      for (std::size_t i = 0; i < prefix; ++i) {
        const double d = pa[i] - pb[i];
        d2 += d * d;
      }
      worst = std::max(worst, std::sqrt(d2));
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("20-home PFDRL federation: partition-and-heal storyline\n");
  std::printf("homes 0-9 vs 10-19 split for rounds %llu-%llu; homes 4 and "
              "13 crash during the window\n\n",
              static_cast<unsigned long long>(kPartitionFrom),
              static_cast<unsigned long long>(kPartitionUntil - 1));

  // All homes start from the same base model (averaging needs homologous
  // coordinates); local training is modelled as per-home noise below.
  std::vector<std::unique_ptr<rl::DqnAgent>> agents;
  for (std::size_t h = 0; h < kHomes; ++h) {
    rl::DqnConfig qc;
    qc.state_dim = 6;
    qc.num_actions = 3;
    qc.hidden = {16, 16};
    qc.seed = 7;  // shared weight init
    qc.exploration_seed = 100 + h;
    agents.push_back(std::make_unique<rl::DqnAgent>(qc));
  }
  const std::size_t prefix =
      core::base_prefix_params(agents[0]->network(), kShareLayers);

  net::FaultPlan fault;
  fault.seed = net::derive_fault_seed(/*experiment_seed=*/7, /*bus_id=*/1);
  net::PartitionWindow window;
  window.from_round = kPartitionFrom;
  window.until_round = kPartitionUntil;
  for (net::AgentId a = 0; a < kHomes / 2; ++a) window.group.push_back(a);
  fault.partitions.push_back(window);

  fl::ExchangePolicy policy;
  policy.quorum_fraction = 0.25;  // 5 of 20 — islands of 10 still average
  policy.failures.crashes.push_back(
      {.agent = 4, .from_round = kPartitionFrom, .until_round = kPartitionUntil});
  policy.failures.crashes.push_back(
      {.agent = 13, .from_round = kPartitionFrom, .until_round = kPartitionUntil});

  obs::MetricsRegistry reg;
  core::DrlFederation federation(kHomes, kShareLayers,
                                 net::TopologyKind::kFullMesh, fault, &reg,
                                 policy);

  util::TextTable table({"round", "phase", "base spread", "averaged",
                         "fallback", "crashed", "part. drops", "stale"});
  util::Rng noise(99);
  std::uint64_t part_drops_before = 0;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    // "Local training": every live home's parameters drift a little, in
    // its own direction.
    for (std::size_t h = 0; h < kHomes; ++h) {
      if (policy.failures.crashed(static_cast<net::AgentId>(h), round)) {
        continue;  // crashed homes are network-dark, not compute-dead,
                   // but freezing them keeps the spread column readable
      }
      auto params = agents[h]->network().parameters();
      for (auto& p : params) {
        p += noise.uniform(-0.02, 0.02) + 0.005 * static_cast<double>(h % 2);
      }
      agents[h]->notify_external_parameter_update();
    }

    std::vector<core::FederatedDevice> devices;
    for (std::size_t h = 0; h < kHomes; ++h) {
      devices.push_back({static_cast<net::AgentId>(h), /*device_type=*/7,
                         agents[h].get()});
    }
    federation.round(devices, round);

    const auto stats = federation.comm_stats();
    const std::uint64_t part_drops =
        stats.messages_partition_dropped - part_drops_before;
    part_drops_before = stats.messages_partition_dropped;
    table.add_row(
        {std::to_string(round), phase_name(round),
         util::fmt_double(base_spread(agents, prefix), 4),
         std::to_string(reg.counter("exchange.quorum_met").value()),
         std::to_string(reg.counter("exchange.quorum_missed").value()),
         std::to_string(reg.counter("exchange.crashed_items").value()),
         std::to_string(part_drops),
         std::to_string(reg.counter("exchange.stale_msgs").value())});
  }
  table.print("per-round federation health (counters are cumulative):");

  std::printf(
      "\nrun totals: %llu partition drops, %llu stale messages discarded, "
      "%llu item-rounds of staleness\n",
      static_cast<unsigned long long>(
          federation.comm_stats().messages_partition_dropped),
      static_cast<unsigned long long>(
          reg.counter("exchange.stale_msgs").value()),
      static_cast<unsigned long long>(
          reg.counter("exchange.stale_rounds").value()));
  return 0;
}
