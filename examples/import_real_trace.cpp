// Real-data onboarding: how to run the forecasting stack on your own
// device-level CSV (e.g. a Pecan Street Dataport export resampled to
// minutes). The expected schema is
//     minute,watts[,mode]
// with minutes consecutive from 0. This example fabricates such a file
// from the synthetic generator, then treats it as foreign data: loads it
// through trace_io, ranks all five forecasting methods on it, and trains
// the winner.
//
//   $ ./examples/import_real_trace [input.csv]
#include <cstdio>

#include "data/household.hpp"
#include "data/trace_io.hpp"
#include "forecast/metrics.hpp"
#include "forecast/selection.hpp"

int main(int argc, char** argv) {
  using namespace pfdrl;

  data::DeviceSpec spec;
  spec.type = data::DeviceType::kTv;
  spec.label = "imported_device";
  spec.standby_watts = 6.0;
  spec.on_watts = 120.0;

  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No input given: write a sample CSV so the example is self-contained.
    path = "sample_device_trace.csv";
    data::NeighborhoodConfig nc;
    nc.num_households = 1;
    nc.min_devices = 4;
    nc.max_devices = 4;
    const auto home = data::make_neighborhood(nc)[0];
    data::TraceConfig tc;
    tc.days = 3;
    const auto household = data::generate_household_trace(home, tc);
    for (const auto& d : household.devices) {
      if (!d.spec.protected_device) {
        data::save_trace_csv(d, path);
        spec = d.spec;
        break;
      }
    }
    std::printf("no input given; wrote a sample export to %s\n", path.c_str());
  }

  const auto trace = data::load_trace_csv(path, spec);
  std::printf("loaded %zu minutes (%.1f days) of data for %s\n",
              trace.minutes(),
              static_cast<double>(trace.minutes()) / data::kMinutesPerDay,
              spec.label.c_str());

  // Rank every method on a 75/25 train/validation split (paper §3.2.1:
  // "select the prediction method with the best performance").
  forecast::SelectionConfig sel;
  sel.window.window = 16;
  sel.candidates = {forecast::Method::kLr, forecast::Method::kSvr,
                    forecast::Method::kBp, forecast::Method::kLstm,
                    forecast::Method::kGru};
  const auto ranking = forecast::rank_methods(trace, 0, trace.minutes(), sel);
  std::printf("\nmethod ranking on your data:\n");
  for (const auto& score : ranking) {
    std::printf("  %-5s %.1f%%\n", forecast::method_name(score.method),
                score.accuracy * 100.0);
  }

  // Train the winner on the full history and report final accuracy on
  // the last 20%.
  const auto split = data::train_test_split(trace.minutes());
  auto best = forecast::make_forecaster(ranking.front().method, sel.window, 7);
  forecast::TrainConfig train;
  util::Rng rng(1);
  best->train(trace, 0, split.train_end, train, rng);
  const auto result =
      forecast::evaluate(*best, trace, split.train_end, trace.minutes());
  std::printf("\nwinner %s: %.1f%% accuracy on the held-out 20%% (%zu "
              "predictions)\n",
              best->name().c_str(), result.mean_accuracy * 100.0,
              result.samples);
  return 0;
}
