// Forecast comparison: train the four load-forecasting methods on one
// device's trace and inspect their predictions side by side; exports the
// series as CSV for plotting.
//
//   $ ./examples/forecast_comparison [out.csv]
#include <cstdio>

#include "data/household.hpp"
#include "data/trace.hpp"
#include "forecast/forecaster.hpp"
#include "forecast/metrics.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfdrl;

  // One household, one interesting (user-driven) device.
  data::NeighborhoodConfig nc;
  nc.num_households = 1;
  nc.min_devices = 6;
  nc.max_devices = 6;
  const auto home = data::make_neighborhood(nc)[0];
  data::TraceConfig tc;
  tc.days = 4;
  const auto household = data::generate_household_trace(home, tc);
  const data::DeviceTrace* trace = &household.devices[0];
  for (const auto& d : household.devices) {
    if (!d.spec.protected_device) {
      trace = &d;
      break;
    }
  }
  std::printf("device: %s (standby %.1f W, on %.1f W), %zu days of data\n\n",
              trace->spec.label.c_str(), trace->spec.standby_watts,
              trace->spec.on_watts, tc.days);

  const std::size_t day = data::kMinutesPerDay;
  const std::size_t train_end = 3 * day;

  data::WindowConfig window;
  window.window = 16;

  util::TextTable table({"method", "accuracy", "samples"});
  std::vector<std::unique_ptr<forecast::Forecaster>> models;
  for (auto m : {forecast::Method::kLr, forecast::Method::kSvr,
                 forecast::Method::kBp, forecast::Method::kLstm}) {
    auto model = forecast::make_forecaster(m, window, 7);
    forecast::TrainConfig train;  // per-method tuned defaults
    util::Rng rng(1);
    model->train(*trace, 0, train_end, train, rng);
    const auto result =
        forecast::evaluate(*model, *trace, train_end, trace->minutes());
    table.add_row({model->name(), util::fmt_percent(result.mean_accuracy),
                   std::to_string(result.samples)});
    models.push_back(std::move(model));
  }
  table.print("test accuracy (paper metric Ac = 1 - |V-RV|/RV):");

  // Export the first 3 test hours for plotting.
  const std::size_t span = 180;
  util::CsvTable csv({"minute", "real", "LR", "SVM", "BP", "LSTM"});
  std::vector<std::vector<double>> series;
  for (const auto& model : models) {
    series.push_back(model->predict_series(*trace, train_end, train_end + span));
  }
  for (std::size_t i = 0; i < span; ++i) {
    std::vector<std::string> row = {
        std::to_string(train_end + i),
        util::fmt_double(trace->watts[train_end + i], 2)};
    for (const auto& s : series) {
      row.push_back(i < s.size() ? util::fmt_double(s[i], 2) : "");
    }
    csv.add_row(std::move(row));
  }
  const std::string path = argc > 1 ? argv[1] : "forecast_comparison.csv";
  csv.save(path);
  std::printf("\nwrote %zu minutes of predictions to %s\n", span,
              path.c_str());
  return 0;
}
