// Personalization study: the alpha layer-split API on a small
// neighbourhood — how much of each home's DQN is shared, what stays
// local, and how homologous agents relate after federation.
//
//   $ ./examples/personalization_study
#include <cstdio>

#include "core/federation.hpp"
#include "core/layer_split.hpp"
#include "nn/serialize.hpp"
#include "rl/dqn.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfdrl;

  // Two residences owning the same device type; the paper's 8x100 DQN.
  rl::DqnConfig cfg;
  cfg.state_dim = 5;
  cfg.seed = 7;  // shared init (the paper's "same default model")
  cfg.exploration_seed = 1;
  rl::DqnAgent home_a(cfg);
  cfg.exploration_seed = 2;
  rl::DqnAgent home_b(cfg);

  const nn::Mlp& net = home_a.network();
  std::printf("DQN: %zu dense layers, %zu parameters\n\n", net.num_layers(),
              net.parameter_count());

  util::TextTable split({"alpha", "shared params", "local params",
                         "shared %"});
  for (std::size_t alpha = 1; alpha <= core::hidden_layer_count(net);
       ++alpha) {
    const std::size_t shared = core::base_prefix_params(net, alpha);
    split.add_row({std::to_string(alpha), std::to_string(shared),
                   std::to_string(net.parameter_count() - shared),
                   util::fmt_percent(static_cast<double>(shared) /
                                     static_cast<double>(net.parameter_count()))});
  }
  split.print("layer split (alpha base layers shared, rest personal):");

  // Let the agents diverge (their own experience), then federate alpha=6.
  util::Rng rng(3);
  for (rl::DqnAgent* agent : {&home_a, &home_b}) {
    for (int i = 0; i < 256; ++i) {
      rl::Transition t;
      t.state = {rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform(),
                 rng.uniform()};
      t.action = static_cast<int>(rng.uniform_int(0, 2));
      t.reward = rng.uniform(-1, 1);
      t.next_state = t.state;
      t.terminal = true;
      agent->remember(std::move(t));
    }
    for (int i = 0; i < 50; ++i) agent->learn();
  }

  const auto digest = [](const rl::DqnAgent& agent, std::size_t lo,
                         std::size_t hi) {
    const auto p = agent.network().parameters();
    return nn::parameter_digest(std::span(p.data() + lo, hi - lo));
  };

  const std::size_t prefix = core::base_prefix_params(net, 6);
  std::printf("\nbefore federation: base slices %s, personal slices %s\n",
              digest(home_a, 0, prefix) == digest(home_b, 0, prefix)
                  ? "equal"
                  : "different",
              digest(home_a, prefix, net.parameter_count()) ==
                      digest(home_b, prefix, net.parameter_count())
                  ? "equal"
                  : "different");

  core::DrlFederation federation(2, /*share_layers=*/6,
                                 net::TopologyKind::kFullMesh);
  std::vector<core::FederatedDevice> devices = {{0, 0, &home_a},
                                                {1, 0, &home_b}};
  federation.round(devices, 0);

  std::printf("after federation:  base slices %s, personal slices %s\n",
              digest(home_a, 0, prefix) == digest(home_b, 0, prefix)
                  ? "equal"
                  : "different",
              digest(home_a, prefix, net.parameter_count()) ==
                      digest(home_b, prefix, net.parameter_count())
                  ? "equal"
                  : "different");

  const auto stats = federation.comm_stats();
  std::printf(
      "\nfederation traffic: %llu messages, %.2f MiB (vs %.2f MiB if all "
      "%zu layers were shared)\n",
      static_cast<unsigned long long>(stats.messages_sent),
      static_cast<double>(stats.bytes_on_wire) / (1024.0 * 1024.0),
      static_cast<double>(stats.bytes_on_wire) / (1024.0 * 1024.0) *
          static_cast<double>(net.parameter_count()) /
          static_cast<double>(prefix),
      net.num_layers());
  return 0;
}
