// Command-line driver: run any of the five EMS methods on a configurable
// synthetic neighbourhood and print the results — the "try the system on
// your parameters" entry point.
//
//   $ ./examples/pfdrl_cli --method pfdrl --homes 8 --days 6 \
//       --alpha 6 --beta 12 --gamma 12 --seed 7 [--paper-scale] [--secure]
//
// Flags (all optional):
//   --method  local | cloud | fl | frl | pfdrl      (default pfdrl)
//   --homes N           residences                   (default 5)
//   --days N            trace days; needs >= 4       (default 5)
//   --alpha N           shared DQN layers            (default 6)
//   --beta H            forecast broadcast period    (default 12)
//   --gamma H           DRL broadcast period         (default 12)
//   --seed N            scenario + pipeline seed     (default 42)
//   --paper-scale       full 8x100 DQN + LSTM forecasters
//   --secure            pairwise-masked (secure) DFL aggregation
//   --drop P            link drop probability in [0,1) (default 0)
//   --fault-plan SPEC   comma-separated fault spec, e.g.
//                       drop=0.2,delay=0.01,jitter=0.005,dup=0.02,reorder=1
//                       (keys: drop delay jitter dup reorder bw latency seed)
//   --deadline S        per-round exchange deadline, simulated seconds
//   --quorum F          quorum fraction of the nominal group in (0,1]
//   --crash A:FROM:TO   crash agent A for federation rounds [FROM,TO)
//                       (repeatable)
//   --straggler A:S     agent A starts every round S simulated seconds
//                       late (repeatable)
//   --partition F:T:a,b partition agents {a,b,...} from the rest for
//                       rounds [F,T) (repeatable)
//   --metrics-out PATH  write a JSON metrics dump of the whole run
//                       (.csv suffix switches to the CSV exporter)
//   --snapshot-every N  save a crash-safe run snapshot every N EMS rounds
//                       (see docs/persistence.md); with --crash windows,
//                       crashed homes warm-restart from the last snapshot
//   --snapshot-out PATH snapshot file (default pfdrl_snapshot.pfrc)
//   --resume PATH       restore a snapshot and continue training from its
//                       recorded cursor (must match method/homes/seed);
//                       accepts whole-run files or a per-shard base path
//   --shards N          bulk-synchronous shards for the federation engine
//                       (docs/scaling.md); 0/1 = legacy flat fan-out.
//                       Also shards the snapshot files (one per shard)
//   --sync-mode MODE    bsp | pipeline (default pipeline): round
//                       synchronization of the sharded EMS loop.
//                       pipeline overlaps shard compute with exchange and
//                       is bitwise identical to bsp; ineligible runs
//                       (unsharded, star, stochastic faults) use bsp
//   --pool-workers N    global thread-pool size override (equivalent to
//                       setting PFDRL_POOL_WORKERS before launch)
//   --fuse-homes N      cross-home fused training group size
//                       (docs/fused_training.md); up to N homes per group
//                       train as one stacked batch per gate, bitwise
//                       identical to per-home. 0/1 = legacy per-home path
//   --wire-codec        lossless delta/XOR compression of parameter
//                       payloads on both federation buses (docs/wire.md);
//                       received parameters stay bitwise identical
//   --wire-quant        lossy int8 wire quantization with error feedback
//                       (implies --wire-codec; changes delivered values;
//                       incompatible with --secure)
//   --topology NAME     federation topology override: full_mesh | star |
//                       ring | hierarchical | gossip (default: method's)
//   --cluster-size N    hierarchical topology cluster size  (default 8)
//   --fanout N          gossip topology out-degree           (default 4)
#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "sim/shard.hpp"
#include "obs/metrics.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario.hpp"
#include "sim/snapshot.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pfdrl;

std::optional<core::EmsMethod> parse_method(const std::string& name) {
  if (name == "local") return core::EmsMethod::kLocal;
  if (name == "cloud") return core::EmsMethod::kCloud;
  if (name == "fl") return core::EmsMethod::kFl;
  if (name == "frl") return core::EmsMethod::kFrl;
  if (name == "pfdrl") return core::EmsMethod::kPfdrl;
  return std::nullopt;
}

[[noreturn]] void usage_error(const char* msg) {
  std::fprintf(stderr, "pfdrl_cli: %s\nsee the header comment for flags\n",
               msg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  core::EmsMethod method = core::EmsMethod::kPfdrl;
  std::uint32_t homes = 5;
  std::size_t days = 5;
  std::size_t alpha = 6;
  double beta = 12.0;
  double gamma = 12.0;
  std::uint64_t seed = 42;
  bool paper_scale = false;
  bool secure = false;
  double drop = 0.0;
  net::FaultPlan fault;
  fl::ExchangePolicy robustness;
  std::string metrics_out;
  std::uint64_t snapshot_every = 0;
  std::string snapshot_out = "pfdrl_snapshot.pfrc";
  std::string resume_path;
  std::size_t shards = 0;
  core::SyncMode sync_mode = core::SyncMode::kPipeline;
  std::size_t fuse_homes = 0;
  bool wire_codec = false;
  bool wire_quant = false;
  std::optional<net::TopologyKind> topology;
  net::TopologyOptions topo_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--method") {
      const auto m = parse_method(next());
      if (!m) usage_error("unknown method");
      method = *m;
    } else if (arg == "--homes") {
      homes = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--days") {
      days = std::stoul(next());
    } else if (arg == "--alpha") {
      alpha = std::stoul(next());
    } else if (arg == "--beta") {
      beta = std::stod(next());
    } else if (arg == "--gamma") {
      gamma = std::stod(next());
    } else if (arg == "--seed") {
      seed = std::stoull(next());
    } else if (arg == "--paper-scale") {
      paper_scale = true;
    } else if (arg == "--secure") {
      secure = true;
    } else if (arg == "--drop") {
      drop = std::stod(next());
    } else if (arg == "--fault-plan") {
      try {
        fault = net::parse_fault_plan(next());
      } catch (const std::invalid_argument& e) {
        usage_error(e.what());
      }
    } else if (arg == "--deadline") {
      robustness.round_deadline_s = std::stod(next());
    } else if (arg == "--quorum") {
      robustness.quorum_fraction = std::stod(next());
    } else if (arg == "--crash") {
      try {
        robustness.failures.crashes.push_back(net::parse_crash(next()));
      } catch (const std::invalid_argument& e) {
        usage_error(e.what());
      }
    } else if (arg == "--straggler") {
      try {
        robustness.failures.stragglers.push_back(net::parse_straggler(next()));
      } catch (const std::invalid_argument& e) {
        usage_error(e.what());
      }
    } else if (arg == "--partition") {
      try {
        fault.partitions.push_back(net::parse_partition(next()));
      } catch (const std::invalid_argument& e) {
        usage_error(e.what());
      }
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (arg == "--snapshot-every") {
      snapshot_every = std::stoull(next());
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (arg == "--resume") {
      resume_path = next();
    } else if (arg == "--shards") {
      shards = std::stoul(next());
    } else if (arg == "--sync-mode") {
      const auto mode = core::parse_sync_mode(next());
      if (!mode) usage_error("--sync-mode must be bsp or pipeline");
      sync_mode = *mode;
    } else if (arg == "--pool-workers") {
      const std::size_t workers = std::stoul(next());
      if (workers == 0) usage_error("--pool-workers must be >= 1");
      util::ThreadPool::set_global_workers(workers);
    } else if (arg == "--fuse-homes") {
      fuse_homes = std::stoul(next());
    } else if (arg == "--wire-codec") {
      wire_codec = true;
    } else if (arg == "--wire-quant") {
      wire_quant = true;
    } else if (arg == "--topology") {
      const auto kind = net::parse_topology_kind(next());
      if (!kind) usage_error("unknown topology");
      topology = *kind;
    } else if (arg == "--cluster-size") {
      topo_opts.cluster_size = std::stoul(next());
    } else if (arg == "--fanout") {
      topo_opts.fanout = std::stoul(next());
    } else {
      usage_error(("unknown flag " + arg).c_str());
    }
  }
  if (days < 4) usage_error("--days must be at least 4");
  if (homes < 1) usage_error("--homes must be at least 1");
  if (drop < 0.0 || drop >= 1.0) usage_error("--drop must be in [0,1)");
  if (drop > 0.0) fault.link.drop_probability = drop;
  if (robustness.quorum_fraction < 0.0 || robustness.quorum_fraction > 1.0) {
    usage_error("--quorum must be in [0,1]");
  }
  if (secure && (!fault.reliable() || robustness.degraded())) {
    usage_error(
        "--secure needs a reliable fault-free plan (no --drop, --fault-plan "
        "faults, --deadline, --quorum, --crash, --straggler or --partition)");
  }
  if (secure && wire_quant) {
    usage_error(
        "--wire-quant cannot combine with --secure: quantizing "
        "pairwise-masked payloads breaks mask cancellation "
        "(lossless --wire-codec is fine)");
  }

  sim::ScenarioConfig sc;
  sc.neighborhood.num_households = homes;
  sc.neighborhood.seed = seed;
  sc.trace.days = days;
  sc.trace.seed = seed;
  const auto scenario = sim::Scenario::generate(sc);

  auto cfg = paper_scale ? sim::paper_pipeline(method, seed)
                         : sim::bench_pipeline(method, seed);
  cfg.alpha = alpha;
  cfg.beta_hours = beta;
  cfg.gamma_hours = gamma;
  cfg.secure_aggregation = secure;
  cfg.fault = fault;
  cfg.robustness = robustness;
  cfg.shards = shards;
  cfg.sync_mode = sync_mode;
  cfg.fuse_homes = fuse_homes;
  cfg.wire_codec = wire_codec;
  cfg.wire_quant = wire_quant;
  cfg.topology = topology;
  cfg.topology_options = topo_opts;

  const sim::ShardPlan plan = sim::ShardPlan::make(homes, shards);
  std::printf(
      "method=%s homes=%u days=%zu alpha=%zu beta=%.1fh gamma=%.1fh "
      "seed=%llu%s%s%s\n",
      core::ems_method_name(method), homes, days, alpha, beta, gamma,
      static_cast<unsigned long long>(seed),
      paper_scale ? " [paper-scale]" : "", secure ? " [secure-agg]" : "",
      topology ? (std::string(" topology=") + net::topology_name(*topology))
                     .c_str()
               : "");
  if (plan.sharded()) {
    std::printf("shards: %s (sync %s)\n", plan.describe().c_str(),
                core::sync_mode_name(sync_mode));
  }
  if (fuse_homes > 1) {
    std::printf("fused training: up to %zu homes per batch group\n",
                fuse_homes);
  }
  std::printf("\n");

  core::EmsPipeline pipeline(scenario.traces, cfg);
  const std::size_t day = data::kMinutesPerDay;
  const std::size_t fc_days = 2;
  const std::size_t eval_begin = (days - 1) * day;

  std::size_t ems_begin = fc_days * day;
  if (!resume_path.empty()) {
    // Snapshots are taken at EMS-round boundaries, after forecaster
    // training: restoring replaces both training phases up to the
    // recorded cursor, so only the remaining EMS rounds run.
    try {
      sim::RunSnapshot snap;
      try {
        snap = sim::load_snapshot(resume_path);
      } catch (const std::exception&) {
        // No whole-run file at this path — try it as the base path of a
        // per-shard snapshot set (--shards runs write one file per shard).
        snap = sim::load_sharded_snapshot(resume_path);
      }
      sim::restore_run(pipeline, snap);
      ems_begin = std::max<std::size_t>(
          ems_begin, static_cast<std::size_t>(snap.train_cursor_minutes));
      std::printf("resumed from %s (ems round %llu, minute %llu)\n\n",
                  resume_path.c_str(),
                  static_cast<unsigned long long>(snap.ems_rounds_done),
                  static_cast<unsigned long long>(snap.train_cursor_minutes));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pfdrl_cli: --resume failed: %s\n", e.what());
      return 1;
    }
  } else {
    pipeline.train_forecasters(0, fc_days * day);
  }

  std::optional<sim::SnapshotManager> snapshots;
  if (snapshot_every > 0) {
    sim::SnapshotManager::Options so;
    so.path = snapshot_out;
    so.every_rounds = snapshot_every;
    so.train_begin_minute = ems_begin;
    so.train_end_minute = eval_begin;
    so.shards = shards;
    snapshots.emplace(pipeline, so);
  }
  if (ems_begin < eval_begin) pipeline.train_ems(ems_begin, eval_begin);
  if (snapshots && snapshots->saves() > 0) {
    std::printf("snapshots: %llu saved to %s (%llu warm restart%s)\n",
                static_cast<unsigned long long>(snapshots->saves()),
                snapshot_out.c_str(),
                static_cast<unsigned long long>(snapshots->home_restarts()),
                snapshots->home_restarts() == 1 ? "" : "s");
  }

  const auto results = pipeline.evaluate(eval_begin, days * day);
  util::TextTable table({"home", "standby kWh", "net saved kWh", "net %",
                         "violations", "reward/step"});
  double net = 0.0, standby = 0.0;
  for (std::size_t h = 0; h < results.size(); ++h) {
    const auto& r = results[h];
    net += std::max(0.0, r.net_saved_kwh());
    standby += r.standby_kwh;
    table.add_row({"home" + std::to_string(h),
                   util::fmt_double(r.standby_kwh, 3),
                   util::fmt_double(r.net_saved_kwh(), 3),
                   util::fmt_percent(r.net_saved_fraction()),
                   std::to_string(r.comfort_violations),
                   util::fmt_double(
                       r.total_reward / static_cast<double>(r.steps), 2)});
  }
  table.print("evaluation day results:");
  std::printf(
      "\nforecast accuracy %.1f%%; net standby savings %.1f%% of %.2f kWh\n",
      pipeline.forecast_accuracy(eval_begin, days * day) * 100.0,
      standby > 0 ? net / standby * 100.0 : 0.0, standby);

  const auto fc = pipeline.forecast_comm_stats();
  const auto drl = pipeline.drl_comm_stats();
  std::printf("traffic: forecast %.1f MiB, DRL %.1f MiB\n",
              static_cast<double>(fc.bytes_on_wire) / (1024.0 * 1024.0),
              static_cast<double>(drl.bytes_on_wire) / (1024.0 * 1024.0));
  if (wire_codec || wire_quant) {
    const std::uint64_t logical = fc.logical_bytes + drl.logical_bytes;
    const std::uint64_t wire = fc.bytes_on_wire + drl.bytes_on_wire;
    std::printf("wire codec: %.1f MiB logical -> %.1f MiB on wire (%.2fx)\n",
                static_cast<double>(logical) / (1024.0 * 1024.0),
                static_cast<double>(wire) / (1024.0 * 1024.0),
                wire > 0 ? static_cast<double>(logical) /
                               static_cast<double>(wire)
                         : 1.0);
  }

  if (!metrics_out.empty()) {
    pipeline.sync_runtime_metrics();
    const auto& reg = pipeline.metrics();
    try {
      if (metrics_out.size() > 4 &&
          metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0) {
        reg.write_csv(metrics_out);
      } else {
        reg.write_json(metrics_out);
      }
    } catch (const std::exception& e) {
      // The run itself succeeded — report the export failure cleanly
      // instead of aborting and losing the printed results.
      std::fprintf(stderr, "pfdrl_cli: %s\n", e.what());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return 0;
}
