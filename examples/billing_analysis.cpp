// Billing analysis: what a household pays under the fixed vs variable
// Texas-style tariff across a year of seasonal load, and what the PFDRL
// EMS savings are worth under each plan.
//
//   $ ./examples/billing_analysis
#include <cstdio>

#include "data/household.hpp"
#include "data/tariff.hpp"
#include "data/trace.hpp"
#include "util/table.hpp"

int main() {
  using namespace pfdrl;

  data::NeighborhoodConfig nc;
  nc.num_households = 1;
  nc.min_devices = 6;
  nc.max_devices = 6;
  const auto home = data::make_neighborhood(nc)[0];

  const data::FixedTariff fixed;
  const data::VariableTariff variable;

  util::TextTable table({"month", "usage kWh", "standby kWh", "fixed $",
                         "variable $", "standby waste $ (fixed)"});

  double total_fixed = 0.0, total_var = 0.0, total_waste = 0.0;
  for (std::uint32_t month = 0; month < 12; ++month) {
    // One representative week per month, scaled to 30 days.
    data::TraceConfig tc;
    tc.days = 7;
    tc.month = month;
    tc.seed = 100 + month;
    const auto trace = data::generate_household_trace(home, tc);

    double fixed_cents = 0.0, var_cents = 0.0, waste_cents = 0.0;
    double usage_kwh = 0.0, standby_kwh = 0.0;
    for (const auto& dev : trace.devices) {
      for (std::size_t m = 0; m < dev.minutes(); ++m) {
        const double kwh = dev.watts[m] / 60.0 / 1000.0;
        const std::size_t minute_of_year =
            month * data::kMinutesPerMonth + (m % data::kMinutesPerDay);
        usage_kwh += kwh;
        fixed_cents += kwh * fixed.cents_per_kwh(minute_of_year);
        var_cents += kwh * variable.cents_per_kwh(minute_of_year);
        if (dev.modes[m] == data::DeviceMode::kStandby &&
            !dev.spec.protected_device) {
          standby_kwh += kwh;
          waste_cents += kwh * fixed.cents_per_kwh(minute_of_year);
        }
      }
    }
    const double scale = 30.0 / 7.0;  // week -> month
    total_fixed += fixed_cents * scale / 100.0;
    total_var += var_cents * scale / 100.0;
    total_waste += waste_cents * scale / 100.0;
    table.add_row({std::to_string(month + 1),
                   util::fmt_double(usage_kwh * scale, 1),
                   util::fmt_double(standby_kwh * scale, 2),
                   util::fmt_double(fixed_cents * scale / 100.0, 2),
                   util::fmt_double(var_cents * scale / 100.0, 2),
                   util::fmt_double(waste_cents * scale / 100.0, 2)});
  }
  table.print("monthly bill for one household:");
  std::printf(
      "\nyear: fixed $%.2f, variable $%.2f; reclaimable standby waste "
      "$%.2f/yr\n(the PFDRL EMS recovers ~95%%+ of that waste — see "
      "bench/headline_claims)\n",
      total_fixed, total_var, total_waste);
  return 0;
}
