// Deep Q-Network agent (paper §3.3.1). The Q-network follows the paper's
// architecture — 8 hidden layers of 100 ReLU neurons, 3 outputs (one
// Q-value per device mode) — and hyperparameters: learning rate 1e-3,
// discount 0.9, replay capacity 2000, target-network refresh every 100
// learn steps, Huber TD loss.
//
// The network is an nn::Mlp, so its flat parameter buffer and per-layer
// offsets are directly usable by the PFDRL base/personalization split.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/workspace.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace pfdrl::rl {

struct DqnConfig {
  std::size_t state_dim = 8;
  std::size_t num_actions = 3;
  /// Hidden architecture; the paper's is eight layers of 100.
  std::vector<std::size_t> hidden = {100, 100, 100, 100, 100, 100, 100, 100};
  double learning_rate = 1e-3;
  double discount = 0.9;  // the paper's "discounted rate"
  std::size_t replay_capacity = 2000;
  std::size_t target_replace_every = 100;
  std::size_t batch_size = 32;
  /// Double DQN (van Hasselt et al.): select the bootstrap action with
  /// the online network, evaluate it with the target network. Reduces
  /// Q-value overestimation; off by default to match the paper's DQN.
  bool double_dqn = false;
  /// Linear epsilon decay from start to end over `epsilon_decay_steps`.
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  std::size_t epsilon_decay_steps = 2000;
  /// Seeds weight initialization. Federated peers must share this (the
  /// paper's "same default model" requirement).
  std::uint64_t seed = 11;
  /// Seeds exploration / replay sampling; 0 means "use `seed`". Federated
  /// peers should differ here so their trajectories decorrelate.
  std::uint64_t exploration_seed = 0;
};

/// Everything a warm restart needs to continue this agent bitwise:
/// both networks' flat parameters (online and target drift apart between
/// refreshes), Adam moments, the replay ring, the exploration RNG, and
/// the two step counters (epsilon derives from act_steps; the target
/// refresh schedule from learn_steps).
struct DqnAgentState {
  std::vector<double> online_params;
  std::vector<double> target_params;
  nn::AdamState optimizer;
  ReplayBufferState replay;
  util::RngState rng;
  std::uint64_t act_steps = 0;
  std::uint64_t learn_steps = 0;
};

class DqnAgent {
 public:
  explicit DqnAgent(const DqnConfig& cfg);

  [[nodiscard]] const DqnConfig& config() const noexcept { return cfg_; }

  /// Epsilon-greedy action for `state` (advances the exploration
  /// schedule). Steady-state calls are allocation-free: the forward pass
  /// runs through the agent's nn::Workspace arena.
  int act(std::span<const double> state);
  /// Greedy action (evaluation policy; no exploration, no schedule).
  [[nodiscard]] int act_greedy(std::span<const double> state) const;
  /// Q-values for a state (diagnostics/tests).
  [[nodiscard]] std::vector<double> q_values(
      std::span<const double> state) const;
  /// Allocation-free variant: writes num_actions Q-values into `out`.
  void q_values_into(std::span<const double> state,
                     std::span<double> out) const;

  void remember(Transition t) { replay_.push(std::move(t)); }
  [[nodiscard]] const ReplayBuffer& replay() const noexcept { return replay_; }

  /// One DQN learning step on a replay minibatch (no-op until the buffer
  /// holds at least one batch). Returns the Huber TD loss, or 0 if
  /// skipped.
  double learn();

  /// Current exploration rate.
  [[nodiscard]] double epsilon() const noexcept;
  [[nodiscard]] std::uint64_t learn_steps() const noexcept {
    return learn_steps_;
  }

  /// Online network access for federated parameter exchange. The PFDRL
  /// split uses the Mlp's per-layer offsets.
  [[nodiscard]] nn::Mlp& network() noexcept { return net_; }
  [[nodiscard]] const nn::Mlp& network() const noexcept { return net_; }
  /// Replace online parameters wholesale (checkpoint restore): syncs the
  /// target network and resets optimizer moments.
  void set_network_parameters(std::span<const double> values);
  /// Call after mutating network() parameters in place through federated
  /// averaging. Intentionally keeps both the Adam moments and the target
  /// network's own refresh schedule (see dqn.cpp for why).
  void notify_external_parameter_update();
  /// Copy online weights into the target network (exposed for tests).
  void sync_target();

  /// Deep-copy snapshot for warm-restart persistence.
  [[nodiscard]] DqnAgentState capture_state() const;
  /// Restore a snapshot. Unlike set_network_parameters this keeps the
  /// captured target network and Adam moments instead of resetting them —
  /// the restored agent must continue learning bitwise, not cold-start
  /// its schedule. Throws std::invalid_argument on shape mismatch.
  void restore_state(const DqnAgentState& state);

 private:
  // The fused cross-home learner (rl/fused.hpp) replays this agent's
  // learn() sequence against shared slabs; it needs the same private
  // state learn() touches.
  friend class FusedDqnLearner;

  /// Single-state forward through the workspace; returns the Q-row, which
  /// lives in ws_ until the next q_row()/learn() call.
  [[nodiscard]] std::span<const double> q_row(
      std::span<const double> state) const;

  DqnConfig cfg_;
  util::Rng rng_;
  nn::Mlp net_;
  nn::Mlp target_;
  nn::Adam opt_;
  ReplayBuffer replay_;
  std::uint64_t act_steps_ = 0;
  std::uint64_t learn_steps_ = 0;
  // Inference scratch. The workspace (and the learn() buffers below) keep
  // their heap blocks across calls, so the steady-state act/learn paths
  // stop allocating once warm. Mutable: taking scratch does not change
  // the agent's observable state.
  mutable nn::Workspace ws_;
  nn::Matrix states_;
  nn::Matrix next_states_;
  std::vector<const Transition*> batch_;
};

}  // namespace pfdrl::rl
