// Fixed-capacity experience replay (the paper sets memory capacity 2000).
// Ring-buffer overwrite semantics; uniform sampling with replacement.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace pfdrl::rl {

struct Transition {
  std::vector<double> state;
  int action = 0;
  double reward = 0.0;
  std::vector<double> next_state;
  bool terminal = false;
};

/// Snapshot of a ReplayBuffer for warm-restart persistence. `entries`
/// holds the populated slots in *storage* order (index 0 of the ring
/// array first), so restoring reproduces not just the contents but the
/// exact overwrite position — sample() index draws land on identical
/// transitions afterwards.
struct ReplayBufferState {
  std::vector<Transition> entries;
  std::size_t next = 0;
  std::uint64_t total_pushed = 0;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Insert; overwrites the oldest entry once full.
  void push(Transition t);

  /// Uniform sample with replacement. Requires a non-empty buffer.
  [[nodiscard]] std::vector<const Transition*> sample(std::size_t batch,
                                                      util::Rng& rng) const;

  /// Allocation-free variant of sample(): draws into `out` (cleared and
  /// refilled; capacity is reused across calls). Consumes the identical
  /// RNG sequence as sample() for the same inputs.
  void sample_into(std::size_t batch, util::Rng& rng,
                   std::vector<const Transition*>& out) const;

  void clear() noexcept;

  /// Deep-copy snapshot of the ring (contents, write cursor, telemetry).
  [[nodiscard]] ReplayBufferState capture_state() const;
  /// Restore a snapshot into this buffer. The snapshot must fit the
  /// buffer's capacity and carry a consistent cursor; throws
  /// std::invalid_argument otherwise.
  void restore_state(const ReplayBufferState& state);

  /// Total transitions ever pushed (diagnostics).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept {
    return total_pushed_;
  }

 private:
  std::size_t capacity_;
  std::vector<Transition> storage_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace pfdrl::rl
