#include "rl/fused.hpp"

#include <algorithm>
#include <cassert>

#include "nn/loss.hpp"

namespace pfdrl::rl {

bool FusedDqnLearner::learn(std::span<DqnAgent* const> agents,
                            std::span<double> losses) {
  assert(agents.size() == losses.size());
  std::fill(losses.begin(), losses.end(), 0.0);
  if (agents.empty()) return true;

  // Fusability: the slab shapes and the shared forward passes require
  // identical dims, batch sizes, bootstrap mode, and architectures.
  const DqnAgent& ref = *agents.front();
  for (const DqnAgent* a : agents) {
    if (a->cfg_.state_dim != ref.cfg_.state_dim ||
        a->cfg_.num_actions != ref.cfg_.num_actions ||
        a->cfg_.batch_size != ref.cfg_.batch_size ||
        a->cfg_.double_dqn != ref.cfg_.double_dqn ||
        !a->net_.same_architecture(ref.net_)) {
      return false;
    }
  }

  // Warm-up gate before any RNG use, exactly as DqnAgent::learn().
  active_.clear();
  for (std::size_t i = 0; i < agents.size(); ++i) {
    if (agents[i]->replay_.size() >= agents[i]->cfg_.batch_size) {
      active_.push_back(i);
    }
  }
  if (active_.empty()) return true;

  const std::size_t bs = ref.cfg_.batch_size;
  const std::size_t state_dim = ref.cfg_.state_dim;
  const std::size_t num_actions = ref.cfg_.num_actions;
  const std::size_t rows = active_.size() * bs;

  // Sample each active agent's minibatch (its own RNG, group order) and
  // gather the transitions into the home-major slabs.
  states_.reshape(rows, state_dim);       // fully overwritten below
  next_states_.reshape(rows, state_dim);  // fully overwritten below
  slices_.clear();
  online_nets_.clear();
  target_nets_.clear();
  std::size_t row = 0;
  for (const std::size_t idx : active_) {
    DqnAgent& a = *agents[idx];
    a.replay_.sample_into(bs, a.rng_, a.batch_);
    for (std::size_t i = 0; i < bs; ++i) {
      std::copy(a.batch_[i]->state.begin(), a.batch_[i]->state.end(),
                states_.row(row + i).begin());
      std::copy(a.batch_[i]->next_state.begin(), a.batch_[i]->next_state.end(),
                next_states_.row(row + i).begin());
    }
    slices_.push_back({row, bs});
    online_nets_.push_back(&a.net_);
    target_nets_.push_back(&a.target_);
    row += bs;
  }

  // Bootstrap and prediction passes over the whole slab. Each agent's
  // slice multiplies its own parameter bank, so per-row results are
  // bitwise the per-agent predict/forward values.
  const nn::Matrix& q_next =
      target_fwd_.forward(target_nets_, slices_, next_states_);
  const nn::Matrix* q_next_online =
      ref.cfg_.double_dqn
          ? &online_next_.forward(online_nets_, slices_, next_states_)
          : nullptr;
  const nn::Matrix& q_pred = online_.forward(online_nets_, slices_, states_);

  // Per-row Huber TD gradients, only on each row's taken action.
  grad_.reshape(rows, num_actions);
  grad_.zero();
  const double inv_bs = 1.0 / static_cast<double>(bs);
  for (std::size_t m = 0; m < active_.size(); ++m) {
    DqnAgent& a = *agents[active_[m]];
    const std::size_t r0 = slices_[m].row_begin;
    double loss = 0.0;
    for (std::size_t i = 0; i < bs; ++i) {
      const std::size_t r = r0 + i;
      double max_next;
      if (q_next_online != nullptr) {
        const nn::Matrix& q_online = *q_next_online;
        std::size_t best = 0;
        for (std::size_t act = 1; act < num_actions; ++act) {
          if (q_online(r, act) > q_online(r, best)) best = act;
        }
        max_next = q_next(r, best);
      } else {
        max_next = q_next(r, 0);
        for (std::size_t act = 1; act < num_actions; ++act) {
          max_next = std::max(max_next, q_next(r, act));
        }
      }
      const double target =
          a.batch_[i]->reward +
          (a.batch_[i]->terminal ? 0.0 : a.cfg_.discount * max_next);
      const auto action = static_cast<std::size_t>(a.batch_[i]->action);
      const double td_error = q_pred(r, action) - target;
      loss += nn::huber(td_error) * inv_bs;
      grad_(r, action) = nn::huber_grad(td_error) * inv_bs;
    }
    losses[active_[m]] = loss;
  }

  // Scatter: per-agent gradient accumulation through the shared
  // backward, then each agent's own Adam step and target schedule.
  for (const std::size_t idx : active_) agents[idx]->net_.zero_grad();
  online_.backward(online_nets_, slices_, grad_);
  for (const std::size_t idx : active_) {
    DqnAgent& a = *agents[idx];
    a.opt_.step(a.net_.parameters(), a.net_.gradients());
    ++a.learn_steps_;
    if (a.learn_steps_ % a.cfg_.target_replace_every == 0) a.sync_target();
  }

  nn::note_fused_batch(active_.size(), rows);
  return true;
}

}  // namespace pfdrl::rl
