#include "rl/replay.hpp"

#include <cassert>
#include <stdexcept>

namespace pfdrl::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("ReplayBuffer: capacity 0");
  storage_.resize(capacity);
}

void ReplayBuffer::push(Transition t) {
  storage_[next_] = std::move(t);
  next_ = (next_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++total_pushed_;
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    util::Rng& rng) const {
  std::vector<const Transition*> out;
  sample_into(batch, rng, out);
  return out;
}

void ReplayBuffer::sample_into(std::size_t batch, util::Rng& rng,
                               std::vector<const Transition*>& out) const {
  if (empty()) throw std::logic_error("ReplayBuffer: sample from empty");
  out.clear();
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(size_) - 1));
    out.push_back(&storage_[idx]);
  }
}

ReplayBufferState ReplayBuffer::capture_state() const {
  ReplayBufferState state;
  state.entries.assign(storage_.begin(),
                       storage_.begin() + static_cast<std::ptrdiff_t>(size_));
  state.next = next_;
  state.total_pushed = total_pushed_;
  return state;
}

void ReplayBuffer::restore_state(const ReplayBufferState& state) {
  if (state.entries.size() > capacity_) {
    throw std::invalid_argument("ReplayBuffer: snapshot exceeds capacity");
  }
  // The write cursor must point at a valid slot: the first free slot
  // while filling, any populated slot once the ring has wrapped.
  const bool full = state.entries.size() == capacity_;
  if ((full && state.next >= capacity_) ||
      (!full && state.next != state.entries.size())) {
    throw std::invalid_argument("ReplayBuffer: inconsistent snapshot cursor");
  }
  for (std::size_t i = 0; i < state.entries.size(); ++i) {
    storage_[i] = state.entries[i];
  }
  for (std::size_t i = state.entries.size(); i < capacity_; ++i) {
    storage_[i] = Transition{};
  }
  size_ = state.entries.size();
  next_ = state.next;
  total_pushed_ = state.total_pushed;
}

void ReplayBuffer::clear() noexcept {
  next_ = 0;
  size_ = 0;
  // A cleared buffer restarts its telemetry too: leaving the cumulative
  // counter running would double-count pushes across clears.
  total_pushed_ = 0;
}

}  // namespace pfdrl::rl
