// Cross-home fused DQN learning (docs/fused_training.md).
//
// Every residence runs the same Q-network architecture, so one EMS learn
// tick across a group of homes is N identical tiny minibatches. The
// fused learner stacks the group's replay minibatches into home-major
// state/next-state slabs and drives them through three shared
// nn::FusedMlp passes (target bootstrap, optional double-DQN online
// bootstrap, online forward/backward) against each agent's own
// parameter bank, then scatters per-agent TD gradients back into each
// agent's own Adam state.
//
// Determinism contract: PRESERVED. Per agent, the operation sequence is
// exactly DqnAgent::learn() — the replay-not-full gate fires before any
// RNG use, sample_into consumes the agent's own RNG identically, every
// matmul slice is bitwise the per-home kernel result (nn/fused.hpp), the
// TD target/Huber-gradient arithmetic is per-row, and clip-free
// zero_grad/backward/step/target-sync run per agent in group order.
// Fused and per-agent learning are bitwise interchangeable (pinned by
// rl_dqn_test's fused equivalence cases).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/fused.hpp"
#include "nn/matrix.hpp"
#include "rl/dqn.hpp"

namespace pfdrl::rl {

/// Fused multi-agent DQN learner. One learn() call performs one
/// DqnAgent::learn() step for every agent in the group, bitwise
/// identical to calling agents[i]->learn() in order.
class FusedDqnLearner {
 public:
  /// Runs one fused learn step. `losses` is parallel to `agents` and
  /// receives each agent's TD loss (0.0 for agents whose replay buffer
  /// is still warming up — those agents are skipped without touching
  /// their RNG, matching the per-agent early return).
  ///
  /// Returns false — with no agent state touched — when the group is not
  /// fusable (mismatched state/action dims, batch sizes, double-DQN
  /// settings, or network architectures); the caller must fall back to
  /// per-agent learn().
  bool learn(std::span<DqnAgent* const> agents, std::span<double> losses);

 private:
  // Shared forward engines. Separate instances because each caches its
  // own activation slabs: the target and double-DQN bootstrap passes
  // must not disturb the online pass's backward caches.
  nn::FusedMlp target_fwd_;
  nn::FusedMlp online_next_;
  nn::FusedMlp online_;
  // Capacity-reusing assembly buffers (steady-state learn() calls of a
  // stable group shape allocate nothing).
  nn::Matrix states_;
  nn::Matrix next_states_;
  nn::Matrix grad_;
  std::vector<std::size_t> active_;  // indices into `agents`
  std::vector<nn::Mlp*> online_nets_;
  std::vector<nn::Mlp*> target_nets_;
  std::vector<nn::FusedSlice> slices_;
};

}  // namespace pfdrl::rl
