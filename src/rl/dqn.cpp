#include "rl/dqn.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "nn/loss.hpp"

namespace pfdrl::rl {

namespace {
std::vector<std::size_t> make_dims(const DqnConfig& cfg) {
  std::vector<std::size_t> dims;
  dims.push_back(cfg.state_dim);
  dims.insert(dims.end(), cfg.hidden.begin(), cfg.hidden.end());
  dims.push_back(cfg.num_actions);
  return dims;
}

nn::Mlp make_net(const DqnConfig& cfg, std::uint64_t salt) {
  util::Rng rng(cfg.seed + salt);
  return nn::Mlp(make_dims(cfg), nn::Activation::kRelu,
                 nn::Activation::kIdentity, nn::InitScheme::kHeNormal, rng);
}
}  // namespace

DqnAgent::DqnAgent(const DqnConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.exploration_seed != 0 ? cfg.exploration_seed : cfg.seed),
      net_(make_net(cfg, 0)),
      target_(make_net(cfg, 0)),  // same seed: target starts equal
      opt_(cfg.learning_rate),
      replay_(cfg.replay_capacity) {}

double DqnAgent::epsilon() const noexcept {
  if (act_steps_ >= cfg_.epsilon_decay_steps) return cfg_.epsilon_end;
  const double frac = static_cast<double>(act_steps_) /
                      static_cast<double>(cfg_.epsilon_decay_steps);
  return cfg_.epsilon_start + frac * (cfg_.epsilon_end - cfg_.epsilon_start);
}

int DqnAgent::act(std::span<const double> state) {
  const double eps = epsilon();
  ++act_steps_;
  if (rng_.uniform() < eps) {
    return static_cast<int>(
        rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.num_actions) - 1));
  }
  return act_greedy(state);
}

std::span<const double> DqnAgent::q_row(std::span<const double> state) const {
  assert(state.size() == cfg_.state_dim);
  ws_.reset();
  nn::Matrix& x = ws_.take(1, cfg_.state_dim);
  std::copy(state.begin(), state.end(), x.row(0).begin());
  return net_.predict(x, ws_).row(0);
}

int DqnAgent::act_greedy(std::span<const double> state) const {
  const auto q = q_row(state);
  return static_cast<int>(std::max_element(q.begin(), q.end()) - q.begin());
}

std::vector<double> DqnAgent::q_values(std::span<const double> state) const {
  std::vector<double> out(cfg_.num_actions);
  q_values_into(state, out);
  return out;
}

void DqnAgent::q_values_into(std::span<const double> state,
                             std::span<double> out) const {
  assert(out.size() == cfg_.num_actions);
  const auto q = q_row(state);
  std::copy(q.begin(), q.end(), out.begin());
}

double DqnAgent::learn() {
  if (replay_.size() < cfg_.batch_size) return 0.0;
  replay_.sample_into(cfg_.batch_size, rng_, batch_);
  const auto& batch = batch_;
  const std::size_t bs = batch.size();

  states_.reshape(bs, cfg_.state_dim);       // fully overwritten below
  next_states_.reshape(bs, cfg_.state_dim);  // fully overwritten below
  for (std::size_t i = 0; i < bs; ++i) {
    std::copy(batch[i]->state.begin(), batch[i]->state.end(),
              states_.row(i).begin());
    std::copy(batch[i]->next_state.begin(), batch[i]->next_state.end(),
              next_states_.row(i).begin());
  }

  // TD targets from the frozen target network. With double DQN the
  // bootstrap action comes from the online network instead. Both predicts
  // run through the workspace; the slots don't collide because takes only
  // advance within a reset cycle.
  ws_.reset();
  const nn::Matrix& q_next = target_.predict(next_states_, ws_);
  const nn::Matrix* q_next_online_p =
      cfg_.double_dqn ? &net_.predict(next_states_, ws_) : nullptr;
  const nn::Matrix& q_pred = net_.forward(states_);

  // Loss only on the taken action's Q-value: the gradient matrix is zero
  // everywhere else. Huber TD error, as in Algorithm 2. The gradient
  // lives in a workspace slot (taken after both predicts, so their slots
  // stay valid within this reset cycle) — steady-state learn() calls
  // reuse it without allocating.
  nn::Matrix& grad = ws_.take(bs, cfg_.num_actions);
  grad.zero();
  double loss = 0.0;
  const double inv_bs = 1.0 / static_cast<double>(bs);
  for (std::size_t i = 0; i < bs; ++i) {
    double max_next;
    if (cfg_.double_dqn) {
      const nn::Matrix& q_online = *q_next_online_p;
      std::size_t best = 0;
      for (std::size_t a = 1; a < cfg_.num_actions; ++a) {
        if (q_online(i, a) > q_online(i, best)) best = a;
      }
      max_next = q_next(i, best);
    } else {
      max_next = q_next(i, 0);
      for (std::size_t a = 1; a < cfg_.num_actions; ++a) {
        max_next = std::max(max_next, q_next(i, a));
      }
    }
    const double target =
        batch[i]->reward +
        (batch[i]->terminal ? 0.0 : cfg_.discount * max_next);
    const auto action = static_cast<std::size_t>(batch[i]->action);
    const double td_error = q_pred(i, action) - target;
    loss += nn::huber(td_error) * inv_bs;
    grad(i, action) = nn::huber_grad(td_error) * inv_bs;
  }

  net_.zero_grad();
  net_.backward(grad);
  opt_.step(net_.parameters(), net_.gradients());

  ++learn_steps_;
  if (learn_steps_ % cfg_.target_replace_every == 0) sync_target();
  return loss;
}

void DqnAgent::set_network_parameters(std::span<const double> values) {
  net_.set_parameters(values);
  sync_target();
  opt_.reset();
}

void DqnAgent::notify_external_parameter_update() {
  // Deliberately neither syncs the target network nor resets Adam.
  // Federated peers share their init and are re-averaged every round, so
  // the averaged weights stay close to the local ones: the Adam moments
  // remain valid, and the target network must keep following its own
  // refresh schedule (every target_replace_every learn steps) — forcing
  // a sync at every broadcast turns the TD targets into moving targets
  // and measurably slowed early federated learning.
}

void DqnAgent::sync_target() {
  target_.set_parameters(net_.parameters());
}

DqnAgentState DqnAgent::capture_state() const {
  DqnAgentState state;
  const auto online = net_.parameters();
  const auto target = target_.parameters();
  state.online_params.assign(online.begin(), online.end());
  state.target_params.assign(target.begin(), target.end());
  state.optimizer = opt_.capture_state();
  state.replay = replay_.capture_state();
  state.rng = rng_.state();
  state.act_steps = act_steps_;
  state.learn_steps = learn_steps_;
  return state;
}

void DqnAgent::restore_state(const DqnAgentState& state) {
  if (state.online_params.size() != net_.parameters().size() ||
      state.target_params.size() != target_.parameters().size()) {
    throw std::invalid_argument("DqnAgent: snapshot parameter size mismatch");
  }
  net_.set_parameters(state.online_params);
  target_.set_parameters(state.target_params);
  opt_.restore_state(state.optimizer);
  replay_.restore_state(state.replay);
  rng_.restore(state.rng);
  act_steps_ = state.act_steps;
  learn_steps_ = state.learn_steps;
}

}  // namespace pfdrl::rl
