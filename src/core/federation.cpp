#include "core/federation.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/layer_split.hpp"
#include "fl/exchange.hpp"
#include "obs/metrics.hpp"

namespace pfdrl::core {

DrlFederation::DrlFederation(std::size_t num_homes, std::size_t share_layers,
                             net::TopologyKind topology, net::FaultPlan fault,
                             obs::MetricsRegistry* metrics,
                             fl::ExchangePolicy policy,
                             net::TopologyOptions topology_options,
                             std::size_t shards, bool wire_codec,
                             bool wire_quant)
    : share_layers_(share_layers),
      router_(shards > 1 ? std::make_unique<net::ShardRouter>(
                               std::max<std::size_t>(1, num_homes), shards)
                         : nullptr),
      codec_(wire_codec || wire_quant
                 ? std::make_unique<net::WireCodec>(
                       net::CodecOptions{.quantize = wire_quant})
                 : nullptr),
      bus_(net::Topology(topology, std::max<std::size_t>(1, num_homes),
                         topology_options),
           std::move(fault)),
      metrics_(metrics),
      policy_(std::move(policy)) {
  if (router_) bus_.set_shard_router(router_.get());
  if (codec_) bus_.set_codec(codec_.get());
}

void DrlFederation::round(std::vector<FederatedDevice>& devices,
                          std::uint64_t round_id) {
  if (bus_.num_agents() < 2) return;

  // One exchange item per registered device agent. `send` is the α-layer
  // base prefix (Eq. 7's shared slice); `in_place` is the live parameter
  // span, so the engine lands the grouped average directly in the network
  // via fedavg_prefix and the untouched suffix stays Eq. 8's
  // personalization layers.
  std::vector<fl::ExchangeItem> items;
  items.reserve(devices.size());
  net::MessageKind kind = net::MessageKind::kDrlBaseParams;
  for (const auto& dev : devices) {
    nn::Mlp& net = dev.agent->network();
    const std::size_t prefix = base_prefix_params(net, share_layers_);
    if (share_layers_ >= net.num_layers()) {
      kind = net::MessageKind::kDrlFullParams;  // FRL shares everything
    }
    const auto params = net.parameters();
    items.push_back({.agent = dev.home,
                     .device_type = dev.device_type,
                     .send = params.subspan(0, prefix),
                     .in_place = params});
  }

  fl::ParamExchange::Options options;
  options.kind = kind;
  options.metrics = metrics_;
  options.group_size_histogram = "drl.agg_group_size";
  options.policy = policy_;
  options.parallel = router_ != nullptr;
  fl::ParamExchange exchange(bus_, options);
  const fl::ExchangeStats stats = exchange.round(
      items, round_id, [&](std::size_t i, std::span<const double>) {
        devices[i].agent->notify_external_parameter_update();
      });

  if (metrics_ != nullptr) {
    metrics_->counter("drl.rounds").add(1);
    metrics_->counter("drl.messages_relayed").add(stats.relayed);
    metrics_->counter("drl.contributions_accepted").add(stats.accepted);
    metrics_->counter("drl.contributions_rejected").add(stats.rejected);
    metrics_->counter("drl.params_averaged").add(stats.params_averaged);
    obs::record_bus_stats(*metrics_, "bus.drl", bus_.stats());
    if (router_) {
      obs::record_shard_router_stats(*metrics_, "bus.drl", router_->stats());
    }
    if (codec_) {
      obs::record_codec_stats(*metrics_, "wire.drl", codec_->stats());
    }
  }
}

void DrlFederation::begin_staged_rounds(std::vector<FederatedDevice>& devices) {
  if (staged_.has_value()) end_staged_rounds();
  if (bus_.num_agents() < 2) {
    throw std::logic_error(
        "DrlFederation: staged rounds need at least two agents");
  }

  // Identical item construction to round(), hoisted out of the per-round
  // path: parameter spans point into the live networks, which stay at
  // fixed addresses for the whole session, so the items are built once.
  std::vector<fl::ExchangeItem> items;
  items.reserve(devices.size());
  net::MessageKind kind = net::MessageKind::kDrlBaseParams;
  for (const auto& dev : devices) {
    nn::Mlp& net = dev.agent->network();
    const std::size_t prefix = base_prefix_params(net, share_layers_);
    if (share_layers_ >= net.num_layers()) {
      kind = net::MessageKind::kDrlFullParams;  // FRL shares everything
    }
    const auto params = net.parameters();
    items.push_back({.agent = dev.home,
                     .device_type = dev.device_type,
                     .send = params.subspan(0, prefix),
                     .in_place = params});
  }

  fl::ParamExchange::Options options;
  options.kind = kind;
  options.metrics = metrics_;
  options.group_size_histogram = "drl.agg_group_size";
  options.policy = policy_;
  staged_.emplace(bus_, std::move(options), std::move(items));
  staged_devices_ = &devices;
  staged_folded_ = {};
}

void DrlFederation::publish_staged(std::size_t shard, std::uint64_t round_id) {
  staged_->publish_shard(shard, round_id);
}

void DrlFederation::apply_staged(std::size_t shard, std::uint64_t round_id) {
  staged_->apply_shard(shard, round_id,
                       [this](std::size_t i, std::span<const double>) {
                         (*staged_devices_)[i]
                             .agent->notify_external_parameter_update();
                       });
}

void DrlFederation::fold_staged_metrics(std::uint64_t rounds) {
  if (!staged_.has_value()) return;
  if (metrics_ != nullptr) {
    const fl::ExchangeStats now = staged_->stats();
    metrics_->counter("drl.rounds").add(rounds);
    metrics_->counter("drl.messages_relayed")
        .add(now.relayed - staged_folded_.relayed);
    metrics_->counter("drl.contributions_accepted")
        .add(now.accepted - staged_folded_.accepted);
    metrics_->counter("drl.contributions_rejected")
        .add(now.rejected - staged_folded_.rejected);
    metrics_->counter("drl.params_averaged")
        .add(now.params_averaged - staged_folded_.params_averaged);
    staged_folded_ = now;
    obs::record_bus_stats(*metrics_, "bus.drl", bus_.stats());
    if (router_) {
      obs::record_shard_router_stats(*metrics_, "bus.drl", router_->stats());
    }
    if (codec_) {
      obs::record_codec_stats(*metrics_, "wire.drl", codec_->stats());
    }
  }
  staged_->record_metrics(rounds);
}

void DrlFederation::end_staged_rounds() {
  staged_.reset();
  staged_devices_ = nullptr;
  staged_folded_ = {};
}

std::size_t DrlFederation::staged_shards() const {
  return staged_.has_value() ? staged_->num_shards() : 1;
}

}  // namespace pfdrl::core
