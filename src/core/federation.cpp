#include "core/federation.hpp"

#include <algorithm>

#include "core/layer_split.hpp"
#include "fl/aggregate.hpp"
#include "obs/metrics.hpp"

namespace pfdrl::core {

DrlFederation::DrlFederation(std::size_t num_homes, std::size_t share_layers,
                             net::TopologyKind topology, net::LinkModel link,
                             obs::MetricsRegistry* metrics)
    : share_layers_(share_layers),
      bus_(net::Topology(topology, std::max<std::size_t>(1, num_homes)),
           link),
      metrics_(metrics) {}

void DrlFederation::round(std::vector<FederatedDevice>& devices,
                          std::uint64_t round_id) {
  if (bus_.num_agents() < 2) return;
  std::uint64_t relayed = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t params_averaged = 0;

  const net::MessageKind kind = net::MessageKind::kDrlBaseParams;

  // Phase 1: every device agent broadcasts its shared slice.
  for (const auto& dev : devices) {
    const nn::Mlp& net = dev.agent->network();
    const std::size_t prefix = base_prefix_params(net, share_layers_);
    net::Message msg;
    msg.sender = dev.home;
    msg.kind = share_layers_ >= net.num_layers()
                   ? net::MessageKind::kDrlFullParams
                   : kind;
    msg.device_type = dev.device_type;
    msg.round = round_id;
    const auto params = net.parameters();
    msg.payload.assign(params.begin(), params.begin() + prefix);
    bus_.broadcast(msg);
  }

  // Star topology: the hub relays leaf messages to the other leaves
  // (the "cloud aggregator" cost of the FRL baseline).
  if (bus_.topology().kind() == net::TopologyKind::kStar) {
    auto hub_msgs = bus_.drain(0);
    for (auto& m : hub_msgs) {
      for (std::size_t h = 1; h < bus_.num_agents(); ++h) {
        if (static_cast<net::AgentId>(h) == m.sender) continue;
        bus_.send(static_cast<net::AgentId>(h), m);
        ++relayed;
      }
      bus_.send(0, std::move(m));
    }
  }

  // Phase 2: each home drains its inbox and averages per device type.
  // Contributions sorted by sender id for bit-reproducibility.
  std::vector<std::vector<net::Message>> inboxes(bus_.num_agents());
  for (std::size_t h = 0; h < bus_.num_agents(); ++h) {
    inboxes[h] = bus_.drain(static_cast<net::AgentId>(h));
    std::sort(inboxes[h].begin(), inboxes[h].end(),
              [](const net::Message& a, const net::Message& b) {
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.device_type < b.device_type;
              });
  }

  for (auto& dev : devices) {
    nn::Mlp& net = dev.agent->network();
    const std::size_t prefix = base_prefix_params(net, share_layers_);
    const auto own = net.parameters();

    std::vector<std::span<const double>> contributions;
    contributions.push_back(own.subspan(0, prefix));
    for (const auto& m : inboxes[dev.home]) {
      if (m.device_type != dev.device_type) continue;
      if (m.payload.size() != prefix) {  // shape guard
        ++rejected;
        continue;
      }
      contributions.push_back(m.payload);
      ++accepted;
    }
    if (contributions.size() < 2) continue;  // no homologous peers

    // Eq. 7 (uniform average of the base slice); the untouched suffix is
    // Eq. 8's personalization layers.
    std::vector<double> averaged(prefix, 0.0);
    fl::fedavg(contributions, averaged);
    std::copy(averaged.begin(), averaged.end(), net.parameters().begin());
    dev.agent->notify_external_parameter_update();
    params_averaged += averaged.size();
    if (metrics_ != nullptr) {
      metrics_->histogram("drl.agg_group_size", obs::Histogram::count_buckets())
          .observe(static_cast<double>(contributions.size()));
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter("drl.rounds").add(1);
    metrics_->counter("drl.messages_relayed").add(relayed);
    metrics_->counter("drl.contributions_accepted").add(accepted);
    metrics_->counter("drl.contributions_rejected").add(rejected);
    metrics_->counter("drl.params_averaged").add(params_averaged);
    obs::record_bus_stats(*metrics_, "bus.drl", bus_.stats());
  }
}

}  // namespace pfdrl::core
