// DRL parameter federation (paper §3.3.2, Eq. 7).
//
// Groups DQN agents by device type across residences and averages either
// the full parameter vector (the FRL baseline) or only the α-layer base
// prefix (PFDRL). Parameters travel over the simulated message bus so
// communication volume is accounted exactly — the PFDRL prefix messages
// are smaller, which is what produces the paper's Fig. 14 time-overhead
// ordering (PFDRL < FRL).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "fl/exchange.hpp"
#include "net/bus.hpp"
#include "rl/dqn.hpp"

namespace pfdrl::obs {
class MetricsRegistry;
}

namespace pfdrl::core {

struct FederatedDevice {
  /// Residence / agent id on the bus.
  net::AgentId home = 0;
  /// Device type (aggregation group key).
  std::uint32_t device_type = 0;
  rl::DqnAgent* agent = nullptr;
};

class DrlFederation {
 public:
  /// `share_layers` = number of dense layers broadcast (the paper's α);
  /// pass the network's full layer count for FRL. `num_homes` sizes the
  /// bus. `fault` models the plan-exchange network (a bare LinkModel
  /// converts implicitly; lossy links shrink aggregation groups and the
  /// shape guard keeps averaging well-formed). `metrics` (optional)
  /// receives per-round drl.* instruments. `policy` adds deadline /
  /// quorum / crash / straggler degradation to every round.
  /// `topology_options` tunes the sparse topologies (hierarchical
  /// cluster size, gossip fanout/seed); mesh/star/ring ignore it.
  /// `shards` > 1 attaches a net::ShardRouter: cross-shard plan messages
  /// are batched per shard pair per round and the drain/aggregate phases
  /// run on the global pool (see docs/scaling.md). `wire_codec` attaches
  /// the lossless delta/XOR wire codec to the plan-exchange bus;
  /// `wire_quant` additionally enables lossy int8 quantization with
  /// error feedback (docs/wire.md).
  DrlFederation(std::size_t num_homes, std::size_t share_layers,
                net::TopologyKind topology, net::FaultPlan fault = {},
                obs::MetricsRegistry* metrics = nullptr,
                fl::ExchangePolicy policy = {},
                net::TopologyOptions topology_options = {},
                std::size_t shards = 0, bool wire_codec = false,
                bool wire_quant = false);

  /// One federation round over all registered devices: broadcast each
  /// agent's shared slice, then average per device type at each home
  /// (Eq. 7) and stitch with the local personalization suffix (Eq. 8).
  void round(std::vector<FederatedDevice>& devices, std::uint64_t round_id);

  // --- Staged (pipelined) rounds — fl::StagedExchange ------------------
  // The dependency-driven round pipeline (core::RoundPipeline) drives
  // federation per shard instead of per round: begin_staged_rounds builds
  // the exchange items and engine once for a device set, then every round
  // is publish_staged(s, r) per shard followed by apply_staged(s, r) once
  // the shard's in-neighbors published. fold_staged_metrics runs at
  // segment barriers (quiesced) and end_staged_rounds tears the session
  // down. `devices` must outlive the session and stay unmoved — commits
  // notify through it. Caller gates eligibility (no star topology, a
  // deterministic fault plan); the engine throws otherwise.

  void begin_staged_rounds(std::vector<FederatedDevice>& devices);
  void publish_staged(std::size_t shard, std::uint64_t round_id);
  void apply_staged(std::size_t shard, std::uint64_t round_id);
  /// Fold drl.* / exchange.* / fault.* metric deltas for the `rounds`
  /// staged rounds completed since the previous fold.
  void fold_staged_metrics(std::uint64_t rounds);
  void end_staged_rounds();
  /// Shard count of the active staged session (1 when unsharded).
  [[nodiscard]] std::size_t staged_shards() const;

  [[nodiscard]] net::BusStats comm_stats() const { return bus_.stats(); }
  [[nodiscard]] std::size_t share_layers() const noexcept {
    return share_layers_;
  }
  /// The plan-exchange bus (warm-restart fault-RNG/stats restore; see
  /// sim/snapshot.hpp).
  [[nodiscard]] net::MessageBus& bus() noexcept { return bus_; }
  [[nodiscard]] const net::MessageBus& bus() const noexcept { return bus_; }
  /// Attached cross-shard router; nullptr when unsharded.
  [[nodiscard]] const net::ShardRouter* shard_router() const noexcept {
    return router_.get();
  }
  /// Attached wire codec; nullptr unless wire_codec/wire_quant is set.
  [[nodiscard]] net::WireCodec* wire_codec() const noexcept {
    return codec_.get();
  }

 private:
  std::size_t share_layers_;
  /// Declared before bus_ — the bus holds non-owning router and codec
  /// pointers.
  std::unique_ptr<net::ShardRouter> router_;
  std::unique_ptr<net::WireCodec> codec_;
  net::MessageBus bus_;
  obs::MetricsRegistry* metrics_;
  fl::ExchangePolicy policy_;
  /// Active staged session (begin_staged_rounds .. end_staged_rounds).
  std::optional<fl::StagedExchange> staged_;
  std::vector<FederatedDevice>* staged_devices_ = nullptr;
  /// Cumulative staged stats already folded into drl.* counters.
  fl::ExchangeStats staged_folded_{};
};

}  // namespace pfdrl::core
