// One episode-rollout path for training and evaluation.
//
// EmsPipeline used to carry three near-identical loops — online training
// (ems_round), greedy scoring (evaluate) and tariff scoring
// (evaluate_savings_dollars) — each rebuilding the same EmsEnvironment
// and, worse, recomputing the same forecast series (the expensive
// predict_series sweep) for the same (home, device, interval) triple.
// EpisodeRunner owns environment construction behind a forecast-series
// cache and provides the one greedy rollout the two evaluators share.
//
// The cache is keyed (home, dev, begin, end) and must be invalidated
// whenever the forecasting models retrain (the pipeline calls
// invalidate_forecasts() from train_forecasters). Lookups are
// mutex-guarded so parallel_for rollouts can share it; the forecast is
// computed outside the lock — it is a deterministic pure function of the
// models, so a rare duplicate compute under contention is harmless and
// both racers insert identical values.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "data/trace.hpp"
#include "ems/env.hpp"
#include "rl/dqn.hpp"

namespace pfdrl::obs {
class MetricsRegistry;
}

namespace pfdrl::core {

class EpisodeRunner {
 public:
  /// Produces the forecast series (watts, one per minute) for trace
  /// minutes [begin, end) of one device — the pipeline binds whichever
  /// forecasting backend the method uses.
  using ForecastFn = std::function<std::vector<double>(
      std::size_t home, std::size_t dev, std::size_t begin, std::size_t end)>;

  /// `metrics` (optional) receives episode.forecast_cache_hits/misses.
  EpisodeRunner(const std::vector<data::HouseholdTrace>& traces,
                ForecastFn forecast, std::size_t meter_interval_minutes,
                obs::MetricsRegistry* metrics = nullptr);

  /// Environment for (home, dev) over trace minutes [begin, end); the
  /// forecast series comes from the cache when this triple was built
  /// before (and the forecasters have not retrained since).
  [[nodiscard]] ems::EmsEnvironment environment(std::size_t home,
                                                std::size_t dev,
                                                std::size_t begin,
                                                std::size_t end) const;

  /// Greedy rollout: the agent's argmax action for every step of `env`.
  [[nodiscard]] static std::vector<int> greedy_actions(
      const rl::DqnAgent& agent, const ems::EmsEnvironment& env);

  /// Drop every cached series. Call after any forecaster retrains —
  /// cached predictions are stale the moment parameters move.
  void invalidate_forecasts();

 private:
  struct Key {
    std::size_t home, dev, begin, end;
    bool operator<(const Key& o) const noexcept {
      if (home != o.home) return home < o.home;
      if (dev != o.dev) return dev < o.dev;
      if (begin != o.begin) return begin < o.begin;
      return end < o.end;
    }
  };

  const std::vector<data::HouseholdTrace>& traces_;
  ForecastFn forecast_;
  std::size_t meter_interval_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  mutable std::map<Key, std::shared_ptr<const std::vector<double>>> cache_;
};

}  // namespace pfdrl::core
