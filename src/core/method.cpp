#include "core/method.hpp"

namespace pfdrl::core {

const char* ems_method_name(EmsMethod m) noexcept {
  switch (m) {
    case EmsMethod::kLocal: return "Local";
    case EmsMethod::kCloud: return "Cloud";
    case EmsMethod::kFl: return "FL";
    case EmsMethod::kFrl: return "FRL";
    case EmsMethod::kPfdrl: return "PFDRL";
  }
  return "?";
}

MethodTraits method_traits(EmsMethod m) {
  // Encodes paper Table 2 verbatim.
  switch (m) {
    case EmsMethod::kLocal:
      return {"Local NN", "Local RL", true, true, false, false, true};
    case EmsMethod::kCloud:
      return {"Cloud NN", "Local RL", false, false, true, false, false};
    case EmsMethod::kFl:
      return {"Federated Learning", "Local RL", false, false, true, false,
              false};
    case EmsMethod::kFrl:
      return {"Federated Learning", "Federated RL", false, false, true, true,
              false};
    case EmsMethod::kPfdrl:
      return {"Decentralized Federated Learning", "Personalized Federated RL",
              true, true, true, true, true};
  }
  return {};
}

}  // namespace pfdrl::core
