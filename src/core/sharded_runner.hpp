// The fan-out stage of the EMS pipeline, in two synchronization flavors.
//
// The bulk-synchronous path: the legacy engine threw every (home, device)
// job at the global pool as one flat parallel_for — fine at 20 homes, but
// at city scale the scheduler, the forecast cache and the federation bus
// all want work grouped by home shard. ShardedRunner owns the pinned
// home→shard assignment (contiguous balanced blocks, util::shard_of — the
// same assignment net::ShardRouter uses for agent ids, so a shard's homes
// and its bus endpoints coincide) and dispatches one pool task per shard,
// recording per-shard wall time as ems.shard.imbalance /
// ems.shard.seconds. With shards <= 1 it degrades to the exact legacy
// parallel_for scheduling, which keeps unsharded runs bitwise identical
// to the pre-shard engine.
//
// The pipelined path: a BSP γ-round costs three full-pool barriers
// (compute fan-out, inbox drain, aggregation) plus a serial flush, and
// every shard waits for the slowest one at each. RoundPipeline retires
// those barriers with per-(shard, round) readiness counters derived from
// the broadcast topology: shard s advances to round r+1 the moment its
// own round-r apply is done, and apply(s, r) fires the moment every
// in-neighbor shard (self included) has published round r — delivered as
// a continuation on the pool (util::ThreadPool::submit_detached), never
// as a blocking wait, so the pipeline runs correctly even on a
// single-worker pool. Fast shards overlap round r+1 compute with slow
// shards' round-r aggregation; the only full barrier left is the segment
// boundary the caller chooses (snapshot cadence). Determinism is
// unaffected: every shard consumes exactly the same per-round neighbor
// payload set in the same pinned sort order as the barrier engine, so
// param hashes match bitwise at any worker count (docs/scaling.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::obs {
class MetricsRegistry;
}
namespace pfdrl::net {
class Topology;
}
namespace pfdrl::util {
class ThreadPool;
}

namespace pfdrl::core {

class ShardedRunner {
 public:
  /// `shards` == 0 or 1 means unsharded; clamped to num_homes.
  ShardedRunner(std::size_t num_homes, std::size_t shards,
                obs::MetricsRegistry* metrics);

  [[nodiscard]] std::size_t num_homes() const noexcept { return homes_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] bool sharded() const noexcept { return shards_ > 1; }
  [[nodiscard]] std::size_t shard_of_home(std::size_t home) const noexcept;

  /// Run `body(j)` for every job j; `job_homes[j]` names the home that
  /// owns job j (jobs of one home always land in one shard). Shards run
  /// concurrently on the global pool — thread count is bounded by the
  /// pool size, never by the job count — and jobs within a shard run in
  /// order. Bodies must be independent across jobs. Records shard timing
  /// metrics under `<metric_prefix>.` when sharded.
  void run(const std::vector<std::size_t>& job_homes,
           const std::function<void(std::size_t)>& body,
           const char* metric_prefix = "ems.shard") const;

  /// max/mean per-shard seconds of the most recent sharded run() on this
  /// runner (1.0 when unsharded or before any run).
  [[nodiscard]] double last_imbalance() const noexcept {
    return last_imbalance_;
  }

 private:
  std::size_t homes_;
  std::size_t shards_;
  obs::MetricsRegistry* metrics_;
  mutable double last_imbalance_ = 1.0;
};

/// Round synchronization discipline of the EMS federation loop.
enum class SyncMode : std::uint8_t {
  /// Bulk-synchronous: global barrier between every round phase — the
  /// reference engine every golden test pins, and the fallback for
  /// configurations the pipeline excludes (star topology, stochastic
  /// fault plans).
  kBsp = 0,
  /// Dependency-driven round pipelining: shards advance on per-round
  /// readiness counters, overlapping compute with exchange.
  kPipeline = 1,
};

[[nodiscard]] const char* sync_mode_name(SyncMode mode) noexcept;
/// Inverse of sync_mode_name() ("bsp" / "pipeline"); nullopt otherwise.
[[nodiscard]] std::optional<SyncMode> parse_sync_mode(const std::string& name);

/// What the pipelined engine did, cumulative across run() segments. Wall
/// and stall times are real clock measurements — observability only,
/// never inputs to the simulation.
struct PipelineStats {
  /// Rounds fully retired (round_done fired).
  std::uint64_t rounds = 0;
  /// (shard, round) cells applied.
  std::uint64_t shard_rounds = 0;
  /// High-water count of simultaneously open rounds (1 = no overlap
  /// achieved, e.g. a full-mesh topology on one worker).
  std::uint64_t max_rounds_in_flight = 1;
  /// Seconds shards spent between finishing their own publish and
  /// starting their apply — waiting on neighbor publishes. The pipeline
  /// analogue of BSP barrier wait.
  double stall_seconds = 0.0;
  /// Wall seconds during which at least two rounds were open at once —
  /// the overlap the barriers forbade.
  double overlap_seconds = 0.0;
  /// Total wall seconds inside run().
  double wall_seconds = 0.0;
};

/// Fold cumulative PipelineStats into `<prefix>.rounds` /
/// `.shard_rounds` counters and `.depth`, `.stall_seconds`,
/// `.overlap_seconds`, `.wall_seconds` gauges. Idempotent (set, not add)
/// so it can run after every segment. Lives here rather than in obs
/// because the obs layer sits below core in the link order.
void record_pipeline_stats(obs::MetricsRegistry& registry,
                           std::string_view prefix,
                           const PipelineStats& stats);

/// Shard-level broadcast reachability: out[s] lists every shard that
/// receives at least one message when shard s's agents broadcast, self
/// always included (a shard must see its own publish before it applies).
/// Each list is sorted unique. `shard_of` must be monotone in the agent
/// id (util::shard_of and the router's weighted boundaries both are).
/// Full mesh short-circuits to all-to-all instead of walking O(N²) edges.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> shard_broadcast_graph(
    const net::Topology& topology,
    const std::function<std::size_t(net::AgentId)>& shard_of,
    std::size_t shards);

/// The dependency-driven round scheduler. Owns no domain logic — callers
/// hand it four callbacks and a shard broadcast graph; it decides *when*
/// each (shard, round) cell runs and on which pool continuation.
class RoundPipeline {
 public:
  struct Ops {
    /// Local work for the shard's jobs at `round` (rollouts, training).
    std::function<void(std::size_t shard, std::uint64_t round)> compute;
    /// Broadcast the shard's parameters and flush its router row.
    std::function<void(std::size_t shard, std::uint64_t round)> publish;
    /// Drain + aggregate + commit; the scheduler guarantees every
    /// in-neighbor shard (self included) published `round` first.
    std::function<void(std::size_t shard, std::uint64_t round)> apply;
    /// Sequential epilogue, called exactly once per round in ascending
    /// round order (serialized; cheap bookkeeping only — the global
    /// state is NOT quiesced, later rounds may already be in flight).
    std::function<void(std::uint64_t round)> round_done;
  };

  /// `out_neighbors` as produced by shard_broadcast_graph(); its size is
  /// the shard count. In-degrees (the readiness targets) are derived by
  /// transposing.
  explicit RoundPipeline(std::vector<std::vector<std::uint32_t>> out_neighbors);

  /// Run one segment: rounds [first_round, first_round + rounds). Blocks
  /// until every cell is applied and every round_done fired — the
  /// segment boundary is the one full barrier left, which is where
  /// callers take snapshots. Exceptions from any callback abort the
  /// segment (in-flight cells finish or bail) and rethrow here.
  void run(util::ThreadPool& pool, std::uint64_t first_round,
           std::size_t rounds, const Ops& ops);

  [[nodiscard]] std::size_t shards() const noexcept { return out_.size(); }
  /// Cumulative across run() calls on this instance.
  [[nodiscard]] const PipelineStats& stats() const noexcept { return stats_; }

 private:
  std::vector<std::vector<std::uint32_t>> out_;
  std::vector<std::uint32_t> target_;  ///< in-degree incl. self, per shard
  PipelineStats stats_;
};

}  // namespace pfdrl::core
