// The bulk-synchronous fan-out stage of the EMS pipeline. The legacy
// engine threw every (home, device) job at the global pool as one flat
// parallel_for — fine at 20 homes, but at city scale the scheduler, the
// forecast cache and the federation bus all want work grouped by home
// shard. ShardedRunner owns the pinned home→shard assignment (contiguous
// balanced blocks, util::shard_of — the same assignment net::ShardRouter
// uses for agent ids, so a shard's homes and its bus endpoints coincide)
// and dispatches one pool task per shard, recording per-shard wall time
// as ems.shard.imbalance / ems.shard.seconds. With shards <= 1 it
// degrades to the exact legacy parallel_for scheduling, which keeps
// unsharded runs bitwise identical to the pre-shard engine.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace pfdrl::obs {
class MetricsRegistry;
}

namespace pfdrl::core {

class ShardedRunner {
 public:
  /// `shards` == 0 or 1 means unsharded; clamped to num_homes.
  ShardedRunner(std::size_t num_homes, std::size_t shards,
                obs::MetricsRegistry* metrics);

  [[nodiscard]] std::size_t num_homes() const noexcept { return homes_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] bool sharded() const noexcept { return shards_ > 1; }
  [[nodiscard]] std::size_t shard_of_home(std::size_t home) const noexcept;

  /// Run `body(j)` for every job j; `job_homes[j]` names the home that
  /// owns job j (jobs of one home always land in one shard). Shards run
  /// concurrently on the global pool — thread count is bounded by the
  /// pool size, never by the job count — and jobs within a shard run in
  /// order. Bodies must be independent across jobs. Records shard timing
  /// metrics under `<metric_prefix>.` when sharded.
  void run(const std::vector<std::size_t>& job_homes,
           const std::function<void(std::size_t)>& body,
           const char* metric_prefix = "ems.shard") const;

  /// max/mean per-shard seconds of the most recent sharded run() on this
  /// runner (1.0 when unsharded or before any run).
  [[nodiscard]] double last_imbalance() const noexcept {
    return last_imbalance_;
  }

 private:
  std::size_t homes_;
  std::size_t shards_;
  obs::MetricsRegistry* metrics_;
  mutable double last_imbalance_ = 1.0;
};

}  // namespace pfdrl::core
