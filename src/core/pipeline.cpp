#include "core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "net/shard_router.hpp"
#include "obs/metrics.hpp"
#include "rl/fused.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::core {

bool shares_ems_plans(EmsMethod m) noexcept {
  return m == EmsMethod::kFrl || m == EmsMethod::kPfdrl;
}

namespace {

fl::AggregationMode forecast_aggregation(EmsMethod m) noexcept {
  switch (m) {
    case EmsMethod::kLocal: return fl::AggregationMode::kNone;
    case EmsMethod::kFl:
    case EmsMethod::kFrl: return fl::AggregationMode::kCentralized;
    case EmsMethod::kPfdrl: return fl::AggregationMode::kDecentralized;
    case EmsMethod::kCloud: break;  // handled by CloudTrainer
  }
  return fl::AggregationMode::kNone;
}

/// Prefix starts of each shard's contiguous slice of a home-major list
/// (size shards+1; the shard map is monotone in the home id).
std::vector<std::size_t> shard_slices(const std::vector<std::size_t>& homes,
                                      const ShardedRunner& runner) {
  std::vector<std::size_t> begin(runner.shards() + 1, 0);
  std::size_t s = 0;
  for (std::size_t i = 0; i < homes.size(); ++i) {
    const std::size_t is = runner.shard_of_home(homes[i]);
    while (s < is) begin[++s] = i;
  }
  while (s < runner.shards()) begin[++s] = homes.size();
  return begin;
}

}  // namespace

EmsPipeline::EmsPipeline(const std::vector<data::HouseholdTrace>& traces,
                         PipelineConfig cfg)
    : traces_(traces),
      cfg_(cfg),
      runner_(
          traces_,
          [this](std::size_t home, std::size_t dev, std::size_t begin,
                 std::size_t end) {
            return forecast_series(home, dev, begin, end);
          },
          cfg_.meter_interval_minutes, &metrics()),
      shard_runner_(traces.size(), cfg.shards, &metrics()) {
  if (traces_.empty()) throw std::invalid_argument("EmsPipeline: no traces");

  // Forecasting backend.
  if (cfg_.method == EmsMethod::kCloud) {
    fl::CloudConfig cc;
    cc.method = cfg_.forecast_method;
    cc.window = cfg_.window;
    cc.train = cfg_.forecast_train;
    cc.round_period_hours = cfg_.beta_hours;
    cc.seed = cfg_.seed;
    cloud_.emplace(traces_, cc);
  } else {
    fl::DflConfig dc;
    dc.method = cfg_.forecast_method;
    dc.window = cfg_.window;
    dc.train = cfg_.forecast_train;
    dc.broadcast_period_hours = cfg_.beta_hours;
    dc.aggregation = forecast_aggregation(cfg_.method);
    dc.secure_aggregation =
        cfg_.secure_aggregation &&
        dc.aggregation != fl::AggregationMode::kNone;
    dc.seed = cfg_.seed;
    dc.fault = cfg_.fault;  // seed 0 → DflTrainer derives bus-1 stream
    dc.robustness = cfg_.robustness;
    dc.metrics = &metrics();
    dc.shards = cfg_.shards;
    dc.fuse_homes = cfg_.fuse_homes;
    dc.wire_codec = cfg_.wire_codec;
    dc.wire_quant = cfg_.wire_quant;
    dc.topology = cfg_.topology;
    dc.topology_options = cfg_.topology_options;
    dfl_.emplace(traces_, dc);
  }

  // One DQN per (home, actionable device). Protected devices (fridge,
  // HVAC, water heater — autonomous duty cyclers) are metered and
  // forecast but never actuated, so they get no agent (nullptr slot).
  // Weight seed is shared across residences per device type (homologous
  // networks must start identical for averaging to be meaningful);
  // exploration seeds differ per home.
  agents_.resize(traces_.size());
  for (std::size_t h = 0; h < traces_.size(); ++h) {
    agents_[h].reserve(traces_[h].devices.size());
    for (std::size_t d = 0; d < traces_[h].devices.size(); ++d) {
      if (traces_[h].devices[d].spec.protected_device) {
        agents_[h].push_back(nullptr);
        continue;
      }
      rl::DqnConfig qc = cfg_.dqn;
      qc.state_dim = ems::EmsEnvironment::kStateDim;
      qc.num_actions = ems::kNumActions;
      const auto type =
          static_cast<std::uint64_t>(traces_[h].devices[d].spec.type);
      qc.seed = cfg_.seed * 7919 + type;
      qc.exploration_seed = cfg_.seed * 104729 + h * 257 + type + 1;
      agents_[h].push_back(std::make_unique<rl::DqnAgent>(qc));
    }
  }

  if (shares_ems_plans(cfg_.method)) {
    const rl::DqnAgent* any = nullptr;
    for (const auto& home : agents_) {
      for (const auto& a : home) {
        if (a) { any = a.get(); break; }
      }
      if (any) break;
    }
    if (any == nullptr) {
      throw std::invalid_argument("EmsPipeline: no actionable devices");
    }
    const std::size_t layers = any->network().num_layers();
    const std::size_t share =
        cfg_.method == EmsMethod::kFrl ? layers
                                       : std::min(cfg_.alpha, layers);
    const auto topology = cfg_.topology.value_or(
        cfg_.method == EmsMethod::kFrl ? net::TopologyKind::kStar
                                       : net::TopologyKind::kFullMesh);
    // The DRL plan exchange rides the same fault plan as the forecast
    // path but on its own RNG stream (bus id 2) so the two buses never
    // share a drop mask; the per-type shape guard keeps averaging
    // well-formed when contributions go missing.
    net::FaultPlan drl_fault = cfg_.fault;
    if (drl_fault.seed == 0) {
      drl_fault.seed = net::derive_fault_seed(cfg_.seed, 2);
    }
    federation_.emplace(traces_.size(), share, topology, std::move(drl_fault),
                        &metrics(), cfg_.robustness, cfg_.topology_options,
                        cfg_.shards, cfg_.wire_codec, cfg_.wire_quant);
  }
}

EmsPipeline::~EmsPipeline() = default;

void EmsPipeline::train_forecasters(std::size_t begin, std::size_t end) {
  obs::SpanTimer span(metrics().histogram("forecast.train_seconds"));
  if (cloud_) {
    cloud_->run(begin, end);
  } else {
    dfl_->run(begin, end);
  }
  // Model parameters moved: every cached forecast series is stale.
  runner_.invalidate_forecasts();
}

double EmsPipeline::forecast_accuracy(std::size_t begin,
                                      std::size_t end) const {
  return cloud_ ? cloud_->mean_test_accuracy(begin, end)
                : dfl_->mean_test_accuracy(begin, end);
}

std::vector<double> EmsPipeline::forecast_series(std::size_t home,
                                                 std::size_t dev,
                                                 std::size_t begin,
                                                 std::size_t end) const {
  const auto& trace = traces_[home].devices[dev];
  const forecast::Forecaster& model =
      cloud_ ? cloud_->model_for_type(trace.spec.type)
             : dfl_->forecaster(home, dev);
  auto series = model.predict_series(trace, begin, end);
  // predict_series targets start at max(begin, window): pad the leading
  // minutes (no history yet) with the real reading so indices align.
  const std::size_t first =
      data::first_feasible_target(model.window_config(), begin);
  std::vector<double> out;
  out.reserve(end - begin);
  for (std::size_t m = begin; m < first && m < end; ++m) {
    out.push_back(trace.watts[m]);
  }
  out.insert(out.end(), series.begin(), series.end());
  out.resize(end - begin, trace.spec.standby_watts);
  return out;
}

EmsPipeline::EmsRoundPlan EmsPipeline::prepare_round_plan() {
  EmsRoundPlan plan;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    for (std::size_t d = 0; d < agents_[h].size(); ++d) {
      if (agents_[h][d]) {
        plan.jobs.push_back({h, d});
        plan.job_homes.push_back(h);
      }
    }
  }
  if (cfg_.fuse_homes > 1 && !plan.jobs.empty()) {
    // Fused grouping (docs/fused_training.md): consecutive jobs of up to
    // fuse_homes homes, never crossing a shard boundary. Per-agent
    // act/remember/learn sequences are unchanged by fusing, so fused
    // rounds stay bitwise identical to per-job ones.
    std::size_t start = 0;
    while (start < plan.jobs.size()) {
      const std::size_t shard =
          shard_runner_.shard_of_home(plan.jobs[start].home);
      std::size_t j = start;
      std::size_t homes_in = 0;
      while (j < plan.jobs.size() &&
             shard_runner_.shard_of_home(plan.jobs[j].home) == shard) {
        if (j == start || plan.jobs[j].home != plan.jobs[j - 1].home) {
          if (homes_in == cfg_.fuse_homes) break;
          ++homes_in;
        }
        ++j;
      }
      plan.groups.push_back({start, j});
      plan.group_homes.push_back(plan.jobs[start].home);
      start = j;
    }
    while (fused_learners_.size() < plan.groups.size()) {
      fused_learners_.push_back(std::make_unique<rl::FusedDqnLearner>());
    }
  }
  plan.shard_job_begin = shard_slices(plan.job_homes, shard_runner_);
  plan.shard_group_begin = shard_slices(plan.group_homes, shard_runner_);
  return plan;
}

void EmsPipeline::run_ems_job(const EmsRoundPlan& plan, std::size_t j,
                              std::size_t begin, std::size_t end,
                              const EmsRoundCounters& counters) {
  // One decision step per meter interval: the agent commits a mode when a
  // fresh reading arrives, holds it until the next report, and banks the
  // reward integrated over the held interval.
  const std::size_t stride =
      std::max<std::size_t>(1, cfg_.meter_interval_minutes);
  const auto [h, d] = plan.jobs[j];
  rl::DqnAgent& agent = *agents_[h][d];
  const ems::EmsEnvironment env = runner_.environment(h, d, begin, end);
  std::uint64_t steps = 0;
  std::uint64_t learns = 0;
  std::array<double, ems::EmsEnvironment::kStateDim> state;
  std::array<double, ems::EmsEnvironment::kStateDim> next_state;
  env.state_into(0, state);
  for (std::size_t t = 0; t < env.length(); t += stride) {
    const std::size_t t_next = std::min(t + stride, env.length());
    const int action = agent.act(state);
    double r = 0.0;
    for (std::size_t m = t; m < t_next; ++m) r += env.reward_at(m, action);
    const bool terminal = t_next >= env.length();
    if (terminal) {
      next_state = state;
    } else {
      env.state_into(t_next, next_state);
    }
    agent.remember({{state.begin(), state.end()},
                    action,
                    r,
                    {next_state.begin(), next_state.end()},
                    terminal});
    // `t` is a minute offset but advances one meter interval per step:
    // learn whenever the step's interval [t, t+stride) crosses a
    // multiple of the learn period, so the average learn cadence is one
    // step per learn_every_minutes of simulated time regardless of the
    // meter interval (and unaliased against `begin`).
    if ((begin + t) % cfg_.learn_every_minutes < stride) {
      agent.learn();
      ++learns;
    }
    state = next_state;
    ++steps;
  }
  counters.env_steps.add(steps);
  counters.replay_pushes.add(steps);
  counters.learn_calls.add(learns);
}

void EmsPipeline::run_fused_group(const EmsRoundPlan& plan, std::size_t g,
                                  std::size_t begin, std::size_t end,
                                  const EmsRoundCounters& counters) {
  const std::size_t stride =
      std::max<std::size_t>(1, cfg_.meter_interval_minutes);
  const auto [gb, ge] = plan.groups[g];
  const std::size_t n = ge - gb;
  std::vector<ems::EmsEnvironment> envs;
  std::vector<rl::DqnAgent*> group_agents;
  envs.reserve(n);
  group_agents.reserve(n);
  for (std::size_t j = gb; j < ge; ++j) {
    const auto [h, d] = plan.jobs[j];
    envs.push_back(runner_.environment(h, d, begin, end));
    group_agents.push_back(agents_[h][d].get());
  }
  const std::size_t len = envs.front().length();
  for (const ems::EmsEnvironment& env : envs) {
    if (env.length() != len) {
      // Ragged environments can't run in lockstep; per-job fallback.
      for (std::size_t j = gb; j < ge; ++j) {
        run_ems_job(plan, j, begin, end, counters);
      }
      return;
    }
  }
  std::uint64_t steps = 0;
  std::uint64_t learns = 0;
  std::vector<std::array<double, ems::EmsEnvironment::kStateDim>> states(n);
  std::vector<std::array<double, ems::EmsEnvironment::kStateDim>>
      next_states(n);
  for (std::size_t i = 0; i < n; ++i) envs[i].state_into(0, states[i]);
  std::vector<double> losses(n);
  rl::FusedDqnLearner& learner = *fused_learners_[g];
  for (std::size_t t = 0; t < len; t += stride) {
    const std::size_t t_next = std::min(t + stride, len);
    const bool terminal = t_next >= len;
    for (std::size_t i = 0; i < n; ++i) {
      rl::DqnAgent& agent = *group_agents[i];
      const ems::EmsEnvironment& env = envs[i];
      const int action = agent.act(states[i]);
      double r = 0.0;
      for (std::size_t m = t; m < t_next; ++m) {
        r += env.reward_at(m, action);
      }
      if (terminal) {
        next_states[i] = states[i];
      } else {
        env.state_into(t_next, next_states[i]);
      }
      agent.remember({{states[i].begin(), states[i].end()},
                      action,
                      r,
                      {next_states[i].begin(), next_states[i].end()},
                      terminal});
      states[i] = next_states[i];
    }
    // Same interval-aware gate as the per-job loop; it depends only
    // on (begin, t), so the whole group learns on the same ticks.
    if ((begin + t) % cfg_.learn_every_minutes < stride) {
      if (!learner.learn(group_agents, losses)) {
        for (rl::DqnAgent* a : group_agents) a->learn();
      }
      learns += n;
    }
    steps += n;
  }
  counters.env_steps.add(steps);
  counters.replay_pushes.add(steps);
  counters.learn_calls.add(learns);
}

void EmsPipeline::ems_round(std::size_t begin, std::size_t end) {
  // Warm-restart hook: a residence whose crash window ended with the
  // previous round re-enters this round having lost its process state;
  // the installed hook (sim::SnapshotManager) reloads it from its last
  // snapshot before any new experience is collected.
  if (on_home_restart_) {
    const net::FailureSchedule& failures = cfg_.robustness.failures;
    if (!failures.crashes.empty() && ems_rounds_done_ > 0) {
      for (std::size_t h = 0; h < traces_.size(); ++h) {
        const auto id = static_cast<net::AgentId>(h);
        if (failures.crashed(id, ems_rounds_done_ - 1) &&
            !failures.crashed(id, ems_rounds_done_)) {
          on_home_restart_(h);
        }
      }
    }
  }

  obs::MetricsRegistry& reg = metrics();
  obs::SpanTimer round_span(reg.histogram("ems.round_seconds"),
                            &reg.series("ems.round_seconds_series"));
  const EmsRoundCounters counters{reg.counter("ems.env_steps"),
                                  reg.counter("ems.replay_pushes"),
                                  reg.counter("ems.learn_calls")};
  const EmsRoundPlan plan = prepare_round_plan();

  if (!plan.groups.empty()) {
    // Fused dispatch (docs/fused_training.md): groups run their EMS
    // rollouts in lockstep so learn ticks stack into one fused batch.
    shard_runner_.run(plan.group_homes, [&](std::size_t g) {
      run_fused_group(plan, g, begin, end, counters);
    });
  } else {
    // Shard-local EMS steps: one pool task per shard of homes (the
    // legacy flat parallel_for when unsharded). Jobs are independent, so
    // the sharded grouping never changes per-agent results.
    shard_runner_.run(plan.job_homes, [&](std::size_t j) {
      run_ems_job(plan, j, begin, end, counters);
    });
  }

  // Mean exploration rate across agents after this round — the epsilon
  // trajectory is the quickest convergence sanity check in a dump.
  if (!plan.jobs.empty()) {
    double eps_sum = 0.0;
    for (const auto& [h, d] : plan.jobs) eps_sum += agents_[h][d]->epsilon();
    const double eps = eps_sum / static_cast<double>(plan.jobs.size());
    reg.gauge("ems.epsilon").set(eps);
    reg.series("ems.epsilon_series").append(eps);
  }

  if (federation_) {
    std::vector<FederatedDevice> devices;
    for (std::size_t h = 0; h < agents_.size(); ++h) {
      for (std::size_t d = 0; d < agents_[h].size(); ++d) {
        if (!agents_[h][d]) continue;
        devices.push_back(
            {static_cast<net::AgentId>(h),
             static_cast<std::uint32_t>(traces_[h].devices[d].spec.type),
             agents_[h][d].get()});
      }
    }
    federation_->round(devices, ems_rounds_done_);
  }
  ++ems_rounds_done_;
  reg.counter("ems.rounds").add(1);
  if (on_round_end_) on_round_end_(ems_rounds_done_);
}

bool EmsPipeline::pipeline_eligible() const {
  // The pipeline needs (a) something to overlap — multiple home shards
  // feeding one EMS federation — and (b) a round protocol with no
  // whole-round shared state: the star hub relay/retry handshake and
  // stochastic fault draws both consume per-round state in a
  // schedule-dependent order, so those configurations keep the barrier
  // engine (fl::StagedExchange enforces the same exclusions).
  return cfg_.sync_mode == SyncMode::kPipeline && shard_runner_.sharded() &&
         federation_.has_value() && federation_->bus().num_agents() >= 2 &&
         federation_->bus().topology().kind() != net::TopologyKind::kStar &&
         cfg_.fault.deterministic_delivery();
}

void EmsPipeline::train_ems_pipelined(std::size_t begin, std::size_t end,
                                      std::size_t round_minutes) {
  std::vector<std::pair<std::size_t, std::size_t>> windows;
  for (std::size_t b = begin; b < end; b += round_minutes) {
    windows.emplace_back(b, std::min(b + round_minutes, end));
  }
  if (windows.empty()) return;

  obs::MetricsRegistry& reg = metrics();
  const EmsRoundCounters counters{reg.counter("ems.env_steps"),
                                  reg.counter("ems.replay_pushes"),
                                  reg.counter("ems.learn_calls")};
  obs::Histogram& round_hist = reg.histogram("ems.round_seconds");
  obs::Series& round_series = reg.series("ems.round_seconds_series");
  obs::Counter& rounds_counter = reg.counter("ems.rounds");
  obs::Gauge& eps_gauge = reg.gauge("ems.epsilon");
  obs::Series& eps_series = reg.series("ems.epsilon_series");

  const EmsRoundPlan plan = prepare_round_plan();
  const std::size_t shards = shard_runner_.shards();

  // Home-major federated device list, identical to the BSP build, made
  // once: the staged session holds spans into the live networks, which
  // never move during training.
  std::vector<FederatedDevice> devices;
  devices.reserve(plan.jobs.size());
  for (const auto& [h, d] : plan.jobs) {
    devices.push_back(
        {static_cast<net::AgentId>(h),
         static_cast<std::uint32_t>(traces_[h].devices[d].spec.type),
         agents_[h][d].get()});
  }
  federation_->begin_staged_rounds(devices);
  struct StagedEnd {  // tear the session down even when a shard throws
    DrlFederation* fed;
    ~StagedEnd() { fed->end_staged_rounds(); }
  } staged_end{&*federation_};
  if (federation_->staged_shards() != shards) {
    throw std::logic_error(
        "EmsPipeline: home shards and exchange shards disagree");
  }

  const net::ShardRouter* router = federation_->shard_router();
  RoundPipeline pipe(shard_broadcast_graph(
      federation_->bus().topology(),
      [router](net::AgentId a) { return router->shard_of(a); }, shards));

  // Shard slices of the full home list, for the warm-restart scan —
  // restarts apply to every home in the shard, agents or not.
  std::vector<std::size_t> all_homes(traces_.size());
  for (std::size_t h = 0; h < all_homes.size(); ++h) all_homes[h] = h;
  const std::vector<std::size_t> shard_home_begin =
      shard_slices(all_homes, shard_runner_);

  const std::uint64_t r0 = ems_rounds_done_;
  std::uint64_t seg_first = r0;
  // Per-(round, job) exploration rates, flat-summed in ascending job
  // order at round_done so the recorded mean is bitwise identical to the
  // BSP engine's serial sum (per-shard partial sums would drift in ulps).
  std::vector<std::vector<double>> round_eps;
  std::mutex restart_mutex;
  auto last_round_end = std::chrono::steady_clock::now();

  RoundPipeline::Ops ops;
  ops.compute = [&](std::size_t s, std::uint64_t r) {
    // Warm-restart hook, shard-local: the same predicate as the BSP scan
    // but driven by the explicit round id (ems_rounds_done_ lags the
    // shard front here). Calls are serialized; distinct homes restore
    // independent state, so cross-shard order doesn't matter.
    if (on_home_restart_ && r > 0) {
      const net::FailureSchedule& failures = cfg_.robustness.failures;
      if (!failures.crashes.empty()) {
        for (std::size_t h = shard_home_begin[s]; h < shard_home_begin[s + 1];
             ++h) {
          const auto id = static_cast<net::AgentId>(h);
          if (failures.crashed(id, r - 1) && !failures.crashed(id, r)) {
            std::lock_guard<std::mutex> lock(restart_mutex);
            on_home_restart_(h);
          }
        }
      }
    }
    const auto [wb, we] = windows[static_cast<std::size_t>(r - r0)];
    if (!plan.groups.empty()) {
      for (std::size_t g = plan.shard_group_begin[s];
           g < plan.shard_group_begin[s + 1]; ++g) {
        run_fused_group(plan, g, wb, we, counters);
      }
    } else {
      for (std::size_t j = plan.shard_job_begin[s];
           j < plan.shard_job_begin[s + 1]; ++j) {
        run_ems_job(plan, j, wb, we, counters);
      }
    }
    std::vector<double>& eps =
        round_eps[static_cast<std::size_t>(r - seg_first)];
    for (std::size_t j = plan.shard_job_begin[s];
         j < plan.shard_job_begin[s + 1]; ++j) {
      const auto [h, d] = plan.jobs[j];
      eps[j] = agents_[h][d]->epsilon();
    }
  };
  ops.publish = [this](std::size_t s, std::uint64_t r) {
    federation_->publish_staged(s, r);
  };
  ops.apply = [this](std::size_t s, std::uint64_t r) {
    federation_->apply_staged(s, r);
  };
  ops.round_done = [&](std::uint64_t r) {
    if (!plan.jobs.empty()) {
      const std::vector<double>& eps =
          round_eps[static_cast<std::size_t>(r - seg_first)];
      double eps_sum = 0.0;
      for (const double e : eps) eps_sum += e;
      const double mean = eps_sum / static_cast<double>(plan.jobs.size());
      eps_gauge.set(mean);
      eps_series.append(mean);
    }
    ems_rounds_done_ = r + 1;
    rounds_counter.add(1);
    const auto now = std::chrono::steady_clock::now();
    round_hist.observe(
        std::chrono::duration<double>(now - last_round_end).count());
    round_series.append(
        std::chrono::duration<double>(now - last_round_end).count());
    last_round_end = now;
  };

  // Segments: the pipeline quiesces (the one remaining full barrier)
  // only where the round-end hook fires; with no hook the whole window
  // is one segment.
  const std::size_t nrounds = windows.size();
  const std::size_t seg_len =
      (on_round_end_ && on_round_end_every_ > 0)
          ? static_cast<std::size_t>(on_round_end_every_)
          : nrounds;
  std::size_t done = 0;
  while (done < nrounds) {
    const std::size_t seg = std::min(seg_len, nrounds - done);
    seg_first = r0 + done;
    round_eps.assign(seg, std::vector<double>(plan.jobs.size(), 0.0));
    pipe.run(util::ThreadPool::global(), r0 + done, seg, ops);
    done += seg;
    federation_->fold_staged_metrics(seg);
    if (on_round_end_) on_round_end_(ems_rounds_done_);
  }
  record_pipeline_stats(reg, "ems.pipeline", pipe.stats());
}

void EmsPipeline::train_ems(std::size_t begin, std::size_t end) {
  const auto round_minutes =
      static_cast<std::size_t>(cfg_.gamma_hours * 60.0);
  if (round_minutes == 0) {
    throw std::invalid_argument("EmsPipeline: gamma too small");
  }
  if (pipeline_eligible()) {
    train_ems_pipelined(begin, end, round_minutes);
    return;
  }
  for (std::size_t b = begin; b < end; b += round_minutes) {
    ems_round(b, std::min(b + round_minutes, end));
  }
}

void EmsPipeline::for_each_greedy_rollout(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, const ems::EmsEnvironment&,
                             const std::vector<int>&)>& visit) const {
  std::vector<std::size_t> homes(traces_.size());
  for (std::size_t h = 0; h < homes.size(); ++h) homes[h] = h;
  shard_runner_.run(
      homes,
      [&](std::size_t h) {
        for (std::size_t d = 0; d < agents_[h].size(); ++d) {
          if (!agents_[h][d]) continue;
          const ems::EmsEnvironment env = runner_.environment(h, d, begin, end);
          visit(h, env, EpisodeRunner::greedy_actions(*agents_[h][d], env));
        }
      },
      "ems.eval_shard");
}

std::vector<ems::EpisodeResult> EmsPipeline::evaluate(std::size_t begin,
                                                      std::size_t end) const {
  std::vector<ems::EpisodeResult> per_home(traces_.size());
  // visit runs on the worker owning home h: per_home[h] has one writer.
  for_each_greedy_rollout(
      begin, end,
      [&](std::size_t h, const ems::EmsEnvironment& env,
          const std::vector<int>& actions) {
        per_home[h].merge(ems::score_actions(env, actions));
      });
  return per_home;
}

std::vector<double> EmsPipeline::evaluate_savings_dollars(
    std::size_t begin, std::size_t end, const data::Tariff& tariff,
    std::size_t minute0_of_year) const {
  std::vector<double> per_home(traces_.size(), 0.0);
  for_each_greedy_rollout(
      begin, end,
      [&](std::size_t h, const ems::EmsEnvironment& env,
          const std::vector<int>& actions) {
        per_home[h] += ems::saved_dollars(env, actions, tariff, minute0_of_year);
      });
  return per_home;
}

net::BusStats EmsPipeline::forecast_comm_stats() const {
  return dfl_ ? dfl_->comm_stats() : net::BusStats{};
}

net::BusStats EmsPipeline::drl_comm_stats() const {
  return federation_ ? federation_->comm_stats() : net::BusStats{};
}

obs::MetricsRegistry& EmsPipeline::metrics() const noexcept {
  return cfg_.metrics != nullptr ? *cfg_.metrics
                                 : obs::MetricsRegistry::global();
}

void EmsPipeline::sync_runtime_metrics() const {
  obs::MetricsRegistry& reg = metrics();
  obs::record_bus_stats(reg, "bus.forecast", forecast_comm_stats());
  obs::record_bus_stats(reg, "bus.drl", drl_comm_stats());
  if (dfl_ && dfl_->shard_router() != nullptr) {
    obs::record_shard_router_stats(reg, "bus.forecast",
                                   dfl_->shard_router()->stats());
  }
  if (federation_ && federation_->shard_router() != nullptr) {
    obs::record_shard_router_stats(reg, "bus.drl",
                                   federation_->shard_router()->stats());
  }
  // Combined wire.* rollup across both federation buses; the per-bus
  // views live under wire.forecast / wire.drl.
  if ((dfl_ && dfl_->wire_codec() != nullptr) ||
      (federation_ && federation_->wire_codec() != nullptr)) {
    net::CodecStats combined;
    for (const net::WireCodec* codec :
         {dfl_ ? dfl_->wire_codec() : nullptr,
          federation_ ? federation_->wire_codec() : nullptr}) {
      if (codec == nullptr) continue;
      const net::CodecStats s = codec->stats();
      combined.frames += s.frames;
      combined.repeat_frames += s.repeat_frames;
      combined.raw_escapes += s.raw_escapes;
      combined.raw_bytes += s.raw_bytes;
      combined.coded_bytes += s.coded_bytes;
      combined.encode_ns += s.encode_ns;
      combined.decode_ns += s.decode_ns;
    }
    obs::record_codec_stats(reg, "wire", combined);
  }
  obs::record_thread_pool_stats(reg, "pool",
                                util::ThreadPool::global().stats());
  obs::record_nn_workspace_stats(reg);
  obs::record_nn_kernel_stats(reg);
  obs::record_nn_fused_stats(reg);
}

const rl::DqnAgent& EmsPipeline::agent(std::size_t home,
                                       std::size_t dev) const {
  const auto& slot = agents_.at(home).at(dev);
  if (!slot) {
    throw std::out_of_range("EmsPipeline::agent: protected device has none");
  }
  return *slot;
}

rl::DqnAgent* EmsPipeline::mutable_agent(std::size_t home, std::size_t dev) {
  return agents_.at(home).at(dev).get();
}

}  // namespace pfdrl::core
