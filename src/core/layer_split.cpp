#include "core/layer_split.hpp"

#include <algorithm>

namespace pfdrl::core {

std::size_t base_prefix_params(const nn::Mlp& net, std::size_t alpha) {
  const std::size_t layers = std::min(alpha, net.num_layers());
  return net.layer_offset(layers);
}

std::size_t hidden_layer_count(const nn::Mlp& net) noexcept {
  return net.num_layers() > 0 ? net.num_layers() - 1 : 0;
}

}  // namespace pfdrl::core
