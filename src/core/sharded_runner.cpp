#include "core/sharded_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "util/shard.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::core {

ShardedRunner::ShardedRunner(std::size_t num_homes, std::size_t shards,
                             obs::MetricsRegistry* metrics)
    : homes_(num_homes),
      shards_(shards == 0 ? 1 : std::min(shards, num_homes)),
      metrics_(metrics) {
  if (metrics_ != nullptr && shards_ > 1) {
    metrics_->gauge("ems.shard.count").set(static_cast<double>(shards_));
  }
}

std::size_t ShardedRunner::shard_of_home(std::size_t home) const noexcept {
  return util::shard_of(home, homes_, shards_);
}

void ShardedRunner::run(const std::vector<std::size_t>& job_homes,
                        const std::function<void(std::size_t)>& body,
                        const char* metric_prefix) const {
  const util::ShardTiming timing = util::sharded_for(
      util::ThreadPool::global(), job_homes.size(), shards_,
      [&](std::size_t j) { return shard_of_home(job_homes[j]); }, body);
  if (timing.shard_seconds.empty()) return;
  last_imbalance_ = timing.max_over_mean();
  if (metrics_ != nullptr) {
    obs::record_shard_timing(*metrics_, metric_prefix, timing);
  }
}

// ---------------------------------------------------------------------------
// SyncMode

const char* sync_mode_name(SyncMode mode) noexcept {
  switch (mode) {
    case SyncMode::kBsp:
      return "bsp";
    case SyncMode::kPipeline:
      return "pipeline";
  }
  return "?";
}

std::optional<SyncMode> parse_sync_mode(const std::string& name) {
  if (name == "bsp") return SyncMode::kBsp;
  if (name == "pipeline") return SyncMode::kPipeline;
  return std::nullopt;
}

void record_pipeline_stats(obs::MetricsRegistry& registry,
                           std::string_view prefix,
                           const PipelineStats& stats) {
  const std::string p(prefix);
  registry.counter(p + ".rounds").set(stats.rounds);
  registry.counter(p + ".shard_rounds").set(stats.shard_rounds);
  registry.gauge(p + ".depth")
      .set(static_cast<double>(stats.max_rounds_in_flight));
  registry.gauge(p + ".stall_seconds").set(stats.stall_seconds);
  registry.gauge(p + ".overlap_seconds").set(stats.overlap_seconds);
  registry.gauge(p + ".wall_seconds").set(stats.wall_seconds);
}

// ---------------------------------------------------------------------------
// Shard broadcast graph

std::vector<std::vector<std::uint32_t>> shard_broadcast_graph(
    const net::Topology& topology,
    const std::function<std::size_t(net::AgentId)>& shard_of,
    std::size_t shards) {
  if (shards == 0) throw std::invalid_argument("shard graph: zero shards");
  std::vector<std::vector<std::uint32_t>> out(shards);
  if (topology.kind() == net::TopologyKind::kFullMesh) {
    // Every shard holds >= 1 agent and every distinct agent pair is an
    // edge, so the shard graph is all-to-all; skip the O(N²) edge walk.
    for (std::size_t s = 0; s < shards; ++s) {
      out[s].resize(shards);
      for (std::size_t d = 0; d < shards; ++d) {
        out[s][d] = static_cast<std::uint32_t>(d);
      }
    }
    return out;
  }
  // Sparse kinds: walk the real edges (O(total degree)).
  std::vector<char> seen(shards * shards, 0);
  const std::size_t n = topology.num_agents();
  for (std::size_t a = 0; a < n; ++a) {
    const std::size_t s = shard_of(static_cast<net::AgentId>(a));
    if (s >= shards) throw std::out_of_range("shard graph: bad shard id");
    seen[s * shards + s] = 1;  // self, always
    topology.for_each_neighbor(static_cast<net::AgentId>(a),
                               [&](net::AgentId b) {
                                 const std::size_t d = shard_of(b);
                                 seen[s * shards + d] = 1;
                               });
  }
  for (std::size_t s = 0; s < shards; ++s) {
    seen[s * shards + s] = 1;  // shards with no agents still self-publish
    for (std::size_t d = 0; d < shards; ++d) {
      if (seen[s * shards + d]) out[s].push_back(static_cast<std::uint32_t>(d));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// RoundPipeline

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One segment's scheduling state. Readiness counters are the whole
/// synchronization story: ready[s][r] counts publishes visible to shard s
/// for round r; the increment that reaches target[s] submits the apply
/// continuation, and the apply chains the shard's next compute. No task
/// ever blocks, so the segment completes on a pool of any size.
struct Segment {
  util::ThreadPool& pool;
  const RoundPipeline::Ops& ops;
  const std::vector<std::vector<std::uint32_t>>& out;
  const std::vector<std::uint32_t>& target;
  const std::size_t shards;
  const std::uint64_t first_round;
  const std::size_t rounds;

  std::unique_ptr<std::atomic<std::uint32_t>[]> ready;
  std::unique_ptr<std::atomic<std::uint32_t>[]> applies_left;
  std::unique_ptr<std::atomic<std::uint64_t>[]> publish_end_ns;
  std::atomic<std::uint64_t> stall_ns{0};

  std::atomic<std::size_t> inflight{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  // Round retirement ordering + depth/overlap bookkeeping, all under one
  // mutex (touched once per shard-round, not per job).
  std::mutex progress_mutex;
  std::vector<char> round_complete;
  std::size_t next_done = 0;      ///< next round index to retire
  std::size_t top_entered = 0;    ///< 1 + highest round index started
  std::size_t prev_depth = 0;
  std::uint64_t depth_mark_ns = 0;
  std::size_t max_depth = 1;
  double overlap_s = 0.0;

  Segment(util::ThreadPool& p, const RoundPipeline::Ops& o,
          const std::vector<std::vector<std::uint32_t>>& out_neighbors,
          const std::vector<std::uint32_t>& targets, std::uint64_t first,
          std::size_t count)
      : pool(p),
        ops(o),
        out(out_neighbors),
        target(targets),
        shards(out_neighbors.size()),
        first_round(first),
        rounds(count),
        ready(new std::atomic<std::uint32_t>[shards * count]),
        applies_left(new std::atomic<std::uint32_t>[count]),
        publish_end_ns(new std::atomic<std::uint64_t>[shards * count]),
        round_complete(count, 0),
        depth_mark_ns(now_ns()) {
    for (std::size_t i = 0; i < shards * count; ++i) {
      ready[i].store(0, std::memory_order_relaxed);
      publish_end_ns[i].store(0, std::memory_order_relaxed);
    }
    for (std::size_t r = 0; r < count; ++r) {
      applies_left[r].store(static_cast<std::uint32_t>(shards),
                            std::memory_order_relaxed);
    }
  }

  void fail(std::exception_ptr e) {
    {
      std::lock_guard lock(error_mutex);
      if (!error) error = std::move(e);
    }
    failed.store(true, std::memory_order_release);
  }

  template <typename Fn>
  void spawn(Fn&& fn) {
    inflight.fetch_add(1, std::memory_order_relaxed);
    pool.submit_detached([this, f = std::forward<Fn>(fn)]() mutable {
      if (!failed.load(std::memory_order_acquire)) {
        try {
          f();
        } catch (...) {
          fail(std::current_exception());
        }
      }
      if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  void update_depth_locked() {
    const std::uint64_t now = now_ns();
    if (prev_depth >= 2) {
      overlap_s +=
          static_cast<double>(now - depth_mark_ns) * 1e-9;
    }
    depth_mark_ns = now;
    const std::size_t depth =
        top_entered > next_done ? top_entered - next_done : 0;
    prev_depth = depth;
    if (depth > max_depth) max_depth = depth;
  }

  /// compute + publish for cell (s, ri), then notify the out-neighbors.
  void step(std::size_t s, std::size_t ri) {
    {
      std::lock_guard lock(progress_mutex);
      if (ri + 1 > top_entered) {
        top_entered = ri + 1;
        update_depth_locked();
      }
    }
    const std::uint64_t r = first_round + ri;
    ops.compute(s, r);
    ops.publish(s, r);
    publish_end_ns[s * rounds + ri].store(now_ns(), std::memory_order_relaxed);
    for (const std::uint32_t d : out[s]) notify(d, ri);
  }

  void notify(std::size_t d, std::size_t ri) {
    // seq_cst RMW chain: the publisher's payload writes happen-before the
    // final increment, which happens-before the apply task it submits.
    if (ready[d * rounds + ri].fetch_add(1) + 1 == target[d]) {
      spawn([this, d, ri] { apply_cell(d, ri); });
    }
  }

  void apply_cell(std::size_t s, std::size_t ri) {
    const std::uint64_t r = first_round + ri;
    const std::uint64_t start = now_ns();
    const std::uint64_t published =
        publish_end_ns[s * rounds + ri].load(std::memory_order_relaxed);
    if (published != 0 && start > published) {
      stall_ns.fetch_add(start - published, std::memory_order_relaxed);
    }
    ops.apply(s, r);
    if (applies_left[ri].fetch_sub(1) == 1) retire_round(ri);
    // Chain the shard's next round inline — the worker already holds the
    // freshest cache lines for this shard's state.
    if (ri + 1 < rounds && !failed.load(std::memory_order_acquire)) {
      step(s, ri + 1);
    }
  }

  void retire_round(std::size_t ri) {
    std::lock_guard lock(progress_mutex);
    round_complete[ri] = 1;
    while (next_done < rounds && round_complete[next_done]) {
      const std::uint64_t r = first_round + next_done;
      ++next_done;
      update_depth_locked();
      if (ops.round_done) ops.round_done(r);
    }
  }
};

}  // namespace

RoundPipeline::RoundPipeline(
    std::vector<std::vector<std::uint32_t>> out_neighbors)
    : out_(std::move(out_neighbors)) {
  if (out_.empty()) throw std::invalid_argument("RoundPipeline: zero shards");
  target_.assign(out_.size(), 0);
  for (std::size_t s = 0; s < out_.size(); ++s) {
    auto& row = out_[s];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    bool has_self = false;
    for (const std::uint32_t d : row) {
      if (d >= out_.size()) {
        throw std::out_of_range("RoundPipeline: bad neighbor shard");
      }
      if (d == s) has_self = true;
      ++target_[d];
    }
    if (!has_self) {
      throw std::invalid_argument(
          "RoundPipeline: a shard must be its own out-neighbor (it applies "
          "its own publish)");
    }
  }
}

void RoundPipeline::run(util::ThreadPool& pool, std::uint64_t first_round,
                        std::size_t rounds, const Ops& ops) {
  if (rounds == 0) return;
  if (!ops.compute || !ops.publish || !ops.apply) {
    throw std::invalid_argument("RoundPipeline: missing op");
  }
  const std::uint64_t wall_start = now_ns();
  Segment seg(pool, ops, out_, target_, first_round, rounds);
  for (std::size_t s = 0; s < out_.size(); ++s) {
    seg.spawn([&seg, s] { seg.step(s, 0); });
  }
  {
    std::unique_lock lock(seg.done_mutex);
    seg.done_cv.wait(lock, [&seg] {
      return seg.inflight.load(std::memory_order_acquire) == 0;
    });
  }
  if (seg.error) std::rethrow_exception(seg.error);

  stats_.rounds += rounds;
  stats_.shard_rounds += out_.size() * rounds;
  if (seg.max_depth > stats_.max_rounds_in_flight) {
    stats_.max_rounds_in_flight = seg.max_depth;
  }
  stats_.stall_seconds +=
      static_cast<double>(seg.stall_ns.load(std::memory_order_relaxed)) * 1e-9;
  stats_.overlap_seconds += seg.overlap_s;
  stats_.wall_seconds +=
      static_cast<double>(now_ns() - wall_start) * 1e-9;
}

}  // namespace pfdrl::core
