#include "core/sharded_runner.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/shard.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::core {

ShardedRunner::ShardedRunner(std::size_t num_homes, std::size_t shards,
                             obs::MetricsRegistry* metrics)
    : homes_(num_homes),
      shards_(shards == 0 ? 1 : std::min(shards, num_homes)),
      metrics_(metrics) {
  if (metrics_ != nullptr && shards_ > 1) {
    metrics_->gauge("ems.shard.count").set(static_cast<double>(shards_));
  }
}

std::size_t ShardedRunner::shard_of_home(std::size_t home) const noexcept {
  return util::shard_of(home, homes_, shards_);
}

void ShardedRunner::run(const std::vector<std::size_t>& job_homes,
                        const std::function<void(std::size_t)>& body,
                        const char* metric_prefix) const {
  const util::ShardTiming timing = util::sharded_for(
      util::ThreadPool::global(), job_homes.size(), shards_,
      [&](std::size_t j) { return shard_of_home(job_homes[j]); }, body);
  if (timing.shard_seconds.empty()) return;
  last_imbalance_ = timing.max_over_mean();
  if (metrics_ != nullptr) {
    obs::record_shard_timing(*metrics_, metric_prefix, timing);
  }
}

}  // namespace pfdrl::core
