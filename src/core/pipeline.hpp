// End-to-end EMS pipelines for all five compared methods (paper Table 2).
//
// A pipeline wires together:
//   * a load-forecast training backend — local-only, cloud-pooled,
//     hub-federated (FL) or decentralized-federated (DFL, β schedule);
//   * one DQN EMS agent per (residence, device), trained online on the
//     EmsEnvironment minute stream;
//   * for FRL / PFDRL, a DrlFederation that exchanges EMS parameters at
//     the γ schedule (all layers for FRL, α base layers for PFDRL).
//
// The per-(home,device) work inside a γ round is embarrassingly parallel
// and fans out on the global thread pool. Federation rounds are barriers
// in the bulk-synchronous engine, mirroring the synchronous broadcast in
// Algorithms 1/2; the pipelined engine (PipelineConfig::sync_mode)
// replaces them with per-shard dependency edges and produces bitwise
// identical results (core::RoundPipeline, docs/scaling.md).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/episode.hpp"
#include "core/federation.hpp"
#include "core/method.hpp"
#include "core/sharded_runner.hpp"
#include "data/tariff.hpp"
#include "data/trace.hpp"
#include "ems/accounting.hpp"
#include "ems/env.hpp"
#include "fl/baselines.hpp"
#include "fl/dfl.hpp"
#include "rl/dqn.hpp"

namespace pfdrl::obs {
class Counter;
class MetricsRegistry;
}

namespace pfdrl::rl {
class FusedDqnLearner;
}

namespace pfdrl::core {

struct PipelineConfig {
  EmsMethod method = EmsMethod::kPfdrl;

  // Forecasting.
  forecast::Method forecast_method = forecast::Method::kLstm;
  data::WindowConfig window{};
  forecast::TrainConfig forecast_train{};
  /// β: forecast-parameter broadcast period (hours).
  double beta_hours = 12.0;
  /// Pairwise-mask the DFL forecast broadcasts (fl/secure_agg.hpp).
  bool secure_aggregation = false;

  // EMS / DRL.
  rl::DqnConfig dqn{};
  /// γ: DRL-parameter broadcast period (hours).
  double gamma_hours = 12.0;
  /// α: number of base (shared) DQN layers for PFDRL.
  std::size_t alpha = 6;
  /// Run a DQN learn step every this many simulated minutes. The EMS
  /// decision loop advances one meter interval per step, so the gate is
  /// interval-aware: a learn step fires in every step whose interval
  /// contains a multiple of this period.
  std::size_t learn_every_minutes = 4;
  /// Meter reporting period fed to the EMS environment (minutes). Also
  /// the EMS decision cadence: agents act when a new reading arrives
  /// (between reports the observable state barely moves), and the
  /// transition reward integrates the held action over the interval.
  std::size_t meter_interval_minutes = ems::EmsEnvironment::kDefaultMeterInterval;

  /// Fault plan shared by the forecast (DFL) and the DRL plan exchange
  /// buses: link model plus injected drops, delay/jitter, duplication,
  /// reordering and partition windows. Each bus gets its own RNG stream
  /// derived from `seed` (bus ids 1 and 2) unless fault.seed is set.
  net::FaultPlan fault{};
  /// Deadline / quorum / crash / straggler policy applied to both
  /// federation paths. Default = original always-everything rounds.
  fl::ExchangePolicy robustness{};

  /// Metrics sink for the ems.* / dfl.* / drl.* / bus.* instruments;
  /// nullptr means the process-global obs::MetricsRegistry.
  obs::MetricsRegistry* metrics = nullptr;

  std::uint64_t seed = 123;

  // Bulk-synchronous sharding (docs/scaling.md). 0/1 = the legacy flat
  // fan-out. > 1 partitions homes into contiguous shards: EMS/training
  // steps run one pool task per shard, cross-shard parameter messages
  // batch per shard pair per round (net::ShardRouter), and the exchange
  // drain/aggregate phases run on the pool. On a clean fault plan,
  // results are bitwise identical to the unsharded engine.
  std::size_t shards = 0;
  /// Round synchronization of the EMS loop (docs/scaling.md). kPipeline
  /// overlaps one shard's compute with another's exchange using
  /// per-(shard, round) readiness counters instead of global barriers;
  /// param hashes stay bitwise identical to kBsp at any pool size. Runs
  /// that are ineligible (unsharded, no EMS federation, star topology,
  /// stochastic fault plans, < 2 homes) silently use the BSP engine, so
  /// the default is safe for every method.
  SyncMode sync_mode = SyncMode::kPipeline;
  /// Cross-home fused training (docs/fused_training.md): > 1 gathers up
  /// to this many homes' jobs — never crossing a shard boundary — into
  /// one fused batch group. Forecast rounds fuse their minibatches and
  /// EMS rounds run in lockstep so DQN learn steps stack into one slab
  /// per group. 0/1 = the legacy per-home paths. Results are bitwise
  /// identical either way; non-fusable groups fall back per home.
  std::size_t fuse_homes = 0;
  /// Lossless delta/XOR wire codec on BOTH federation buses
  /// (docs/wire.md): payload broadcasts are delta-coded against each
  /// sender's previous round and bill the compressed frame size.
  /// Received parameters stay bitwise identical — default off purely
  /// because it is new, not because it changes results.
  bool wire_codec = false;
  /// Opt-in lossy int8 quantization with per-home error feedback
  /// (implies wire_codec). Changes delivered parameter values (still
  /// twin-run deterministic), so bitwise goldens exclude it.
  bool wire_quant = false;
  /// Federation topology override for BOTH exchange paths; nullopt keeps
  /// the method defaults (DFL full mesh / FL+FRL star). The sparse kinds
  /// (kHierarchical, kGossip) cut broadcast cost to O(N·degree).
  std::optional<net::TopologyKind> topology;
  /// Cluster size / gossip fanout+seed for the sparse topologies.
  net::TopologyOptions topology_options{};
};

class EmsPipeline {
 public:
  EmsPipeline(const std::vector<data::HouseholdTrace>& traces,
              PipelineConfig cfg);
  ~EmsPipeline();

  [[nodiscard]] const PipelineConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t num_homes() const noexcept {
    return traces_.size();
  }

  /// Phase A — train the forecasting models over [begin, end) minutes.
  void train_forecasters(std::size_t begin, std::size_t end);

  /// Mean paper-accuracy of the forecasting stage over [begin, end).
  [[nodiscard]] double forecast_accuracy(std::size_t begin,
                                         std::size_t end) const;

  /// Phase B — online EMS training over [begin, end) minutes, with DRL
  /// federation every γ hours (methods that share EMS plans only).
  void train_ems(std::size_t begin, std::size_t end);

  /// Greedy-policy evaluation over [begin, end): one merged result per
  /// residence (summed over its devices).
  [[nodiscard]] std::vector<ems::EpisodeResult> evaluate(
      std::size_t begin, std::size_t end) const;

  /// Dollars saved per residence under `tariff` over [begin, end);
  /// `minute0_of_year` anchors time-of-use pricing.
  [[nodiscard]] std::vector<double> evaluate_savings_dollars(
      std::size_t begin, std::size_t end, const data::Tariff& tariff,
      std::size_t minute0_of_year) const;

  /// Communication accounting.
  [[nodiscard]] net::BusStats forecast_comm_stats() const;
  [[nodiscard]] net::BusStats drl_comm_stats() const;

  /// The metrics sink this pipeline records into (config override or the
  /// process-global registry).
  [[nodiscard]] obs::MetricsRegistry& metrics() const noexcept;
  /// Fold externally accumulated runtime stats (both buses, the global
  /// thread pool) into the registry; call before exporting so the dump
  /// carries bus drop/byte counters and pool counters even for methods
  /// that never touched a bus.
  void sync_runtime_metrics() const;

  /// DQN agent of (home, device) — exposed for tests and examples.
  [[nodiscard]] const rl::DqnAgent& agent(std::size_t home,
                                          std::size_t dev) const;

  // --- Warm-restart persistence surface (consumed by sim/snapshot) ----
  // The pipeline exposes its mutable internals and two hooks instead of
  // knowing about snapshots itself: sim layers RunSnapshot/SnapshotManager
  // on top (core must not depend on sim).

  [[nodiscard]] std::uint64_t ems_rounds_done() const noexcept {
    return ems_rounds_done_;
  }
  void set_ems_rounds_done(std::uint64_t rounds) noexcept {
    ems_rounds_done_ = rounds;
  }
  /// Device count of `home` (agent slots, including protected devices).
  [[nodiscard]] std::size_t num_devices(std::size_t home) const {
    return agents_.at(home).size();
  }
  /// Agent pointer; nullptr for protected (agent-less) devices.
  [[nodiscard]] const rl::DqnAgent* agent_ptr(std::size_t home,
                                              std::size_t dev) const {
    return agents_.at(home).at(dev).get();
  }
  /// Mutable agent pointer; nullptr for protected (agent-less) devices.
  [[nodiscard]] rl::DqnAgent* mutable_agent(std::size_t home, std::size_t dev);
  [[nodiscard]] fl::DflTrainer* dfl_trainer() noexcept {
    return dfl_ ? &*dfl_ : nullptr;
  }
  [[nodiscard]] const fl::DflTrainer* dfl_trainer() const noexcept {
    return dfl_ ? &*dfl_ : nullptr;
  }
  [[nodiscard]] fl::CloudTrainer* cloud_trainer() noexcept {
    return cloud_ ? &*cloud_ : nullptr;
  }
  [[nodiscard]] const fl::CloudTrainer* cloud_trainer() const noexcept {
    return cloud_ ? &*cloud_ : nullptr;
  }
  [[nodiscard]] DrlFederation* drl_federation() noexcept {
    return federation_ ? &*federation_ : nullptr;
  }
  [[nodiscard]] const DrlFederation* drl_federation() const noexcept {
    return federation_ ? &*federation_ : nullptr;
  }
  /// Drop every cached forecast series (call after restoring model
  /// parameters out-of-band).
  void invalidate_forecast_cache() { runner_.invalidate_forecasts(); }

  /// Fires with the updated ems_rounds_done() — the periodic-snapshot
  /// trigger. The BSP engine invokes the hook after every round; the
  /// pipelined engine runs in segments of `every_rounds` rounds and
  /// invokes the hook only at segment boundaries, where the pipeline is
  /// fully quiesced (every shard applied, all metrics folded). Callers
  /// that act on a cadence anyway (sim::SnapshotManager) pass it here so
  /// the pipeline only barriers where the hook would actually fire; the
  /// default of 1 preserves per-round firing at the cost of per-round
  /// quiescing.
  void set_on_round_end(std::function<void(std::uint64_t)> hook,
                        std::uint64_t every_rounds = 1) {
    on_round_end_ = std::move(hook);
    on_round_end_every_ = every_rounds;
  }
  /// Fires at the start of the first EMS round after residence `home`
  /// exits a crash window (cfg.robustness.failures). With no hook
  /// installed, behaviour is the original robustness model: the home kept
  /// its in-memory state across the outage (uplink loss, not process
  /// loss). A snapshot manager installs a hook that reloads the home from
  /// its last snapshot — the warm-restart model.
  void set_on_home_restart(std::function<void(std::size_t)> hook) {
    on_home_restart_ = std::move(hook);
  }

 private:
  /// Forecast series (watts) for trace minutes [begin, end) of one
  /// device, from whichever backend the method uses. Raw (uncached)
  /// backend call — episode code goes through runner_ instead.
  [[nodiscard]] std::vector<double> forecast_series(std::size_t home,
                                                    std::size_t dev,
                                                    std::size_t begin,
                                                    std::size_t end) const;

  /// The shared evaluation rollout: for every actionable (home, device),
  /// build the cached environment over [begin, end), run the greedy
  /// policy and hand (home, env, actions) to `visit`. Homes fan out on
  /// the pool; `visit` runs on the worker owning that home.
  void for_each_greedy_rollout(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t home, const ems::EmsEnvironment& env,
                               const std::vector<int>& actions)>& visit) const;

  // --- One γ-round, factored so both sync engines share its body ------
  struct EmsJob {
    std::size_t home, dev;
  };
  struct FusedGroup {
    std::size_t begin_j, end_j;  ///< job range [begin_j, end_j)
  };
  /// The round's work-list, identical for BSP and pipelined rounds: one
  /// job per live (home, device) agent in home-major order, optional
  /// fused groups (never crossing a shard boundary), and the shard
  /// slicing of both (size shards+1 prefix arrays; jobs/groups are
  /// home-major and the shard map is monotone, so slices are contiguous).
  struct EmsRoundPlan {
    std::vector<EmsJob> jobs;
    std::vector<std::size_t> job_homes;
    std::vector<FusedGroup> groups;  ///< empty unless fuse_homes > 1
    std::vector<std::size_t> group_homes;
    std::vector<std::size_t> shard_job_begin;
    std::vector<std::size_t> shard_group_begin;
  };
  struct EmsRoundCounters {
    obs::Counter& env_steps;
    obs::Counter& replay_pushes;
    obs::Counter& learn_calls;
  };
  /// Build the round plan (and grow fused_learners_ to match — group
  /// boundaries are pinned by (jobs, shards, fuse_homes), so this is
  /// idempotent across rounds).
  [[nodiscard]] EmsRoundPlan prepare_round_plan();
  /// One (home, device) EMS rollout+train pass over trace minutes
  /// [begin, end). Independent across jobs; safe to run concurrently for
  /// jobs of distinct homes.
  void run_ems_job(const EmsRoundPlan& plan, std::size_t j, std::size_t begin,
                   std::size_t end, const EmsRoundCounters& counters);
  /// Lockstep fused pass over group g's jobs (falls back to per-job runs
  /// when the group's environments are ragged).
  void run_fused_group(const EmsRoundPlan& plan, std::size_t g,
                       std::size_t begin, std::size_t end,
                       const EmsRoundCounters& counters);

  /// True when train_ems may use the dependency-driven pipeline: asked
  /// for, sharded, federated, and free of the whole-round protocols
  /// (star relay, stochastic fault draws) that need a global barrier.
  [[nodiscard]] bool pipeline_eligible() const;
  void train_ems_pipelined(std::size_t begin, std::size_t end,
                           std::size_t round_minutes);

  void ems_round(std::size_t begin, std::size_t end);

  const std::vector<data::HouseholdTrace>& traces_;
  PipelineConfig cfg_;

  std::optional<fl::DflTrainer> dfl_;      // Local / FL / FRL / PFDRL
  std::optional<fl::CloudTrainer> cloud_;  // Cloud

  std::vector<std::vector<std::unique_ptr<rl::DqnAgent>>> agents_;
  std::optional<DrlFederation> federation_;  // FRL / PFDRL
  /// Declared after cfg_ (its ForecastFn and metrics sink read it).
  EpisodeRunner runner_;
  /// Bulk-synchronous fan-out stage (cfg_.shards); with shards <= 1 it
  /// reproduces the legacy flat parallel_for scheduling exactly.
  ShardedRunner shard_runner_;
  /// Per-group fused DQN learners (cfg_.fuse_homes > 1). Group
  /// boundaries are pinned by (jobs, shards, fuse_homes), so group g
  /// reuses the same learner's slab capacity every round.
  std::vector<std::unique_ptr<rl::FusedDqnLearner>> fused_learners_;
  std::uint64_t ems_rounds_done_ = 0;
  std::uint64_t on_round_end_every_ = 1;
  std::function<void(std::uint64_t)> on_round_end_;
  std::function<void(std::size_t)> on_home_restart_;
};

/// True if the method federates its EMS (FRL, PFDRL).
bool shares_ems_plans(EmsMethod m) noexcept;

}  // namespace pfdrl::core
