// The paper's comparison matrix (Table 2): which load-forecasting and
// EMS-training scheme each compared method uses, and the qualitative
// properties the paper attributes to them.
#pragma once

#include <cstdint>
#include <string>

namespace pfdrl::core {

enum class EmsMethod : std::uint8_t {
  kLocal = 0,  // local NN forecasting + local RL
  kCloud,      // cloud NN forecasting + local RL
  kFl,         // federated-learning forecasting + local RL
  kFrl,        // federated forecasting + fully federated RL
  kPfdrl,      // decentralized federated forecasting + personalized fed RL
};
constexpr std::size_t kNumEmsMethods = 5;

const char* ems_method_name(EmsMethod m) noexcept;

/// Table 2, row for a method.
struct MethodTraits {
  std::string load_forecasting;
  std::string ems;
  bool local_area = false;       // no traffic leaves the neighbourhood
  bool data_privacy = false;     // raw data never leaves the residence…
                                 // …AND no central party holds the model
  bool small_batch_training = false;
  bool shares_ems = false;       // EMS plans are exchanged
  bool personalization = false;  // per-residence model components
};

MethodTraits method_traits(EmsMethod m);

}  // namespace pfdrl::core
