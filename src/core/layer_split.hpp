// The PFDRL base/personalization layer split (paper §3.3.2).
//
// The DQN's Mlp stores parameters flat, layer by layer; choosing α base
// layers means federating the flat prefix covering dense layers
// [0, α) and keeping the suffix — the remaining hidden layers plus the
// output head — local (Eq. 8: the deployed model is the aggregated base
// concatenated with the local personalization layers).
#pragma once

#include <cstddef>

#include "nn/mlp.hpp"

namespace pfdrl::core {

/// Flat parameter count of the α-layer base prefix. α is clamped to the
/// network's layer count (α == num_layers means "share everything", the
/// FRL setting).
std::size_t base_prefix_params(const nn::Mlp& net, std::size_t alpha);

/// Number of *hidden* layers in a DQN Mlp (layers minus the output head);
/// the paper's α ranges over these (1..8 for the 8-hidden-layer net).
std::size_t hidden_layer_count(const nn::Mlp& net) noexcept;

}  // namespace pfdrl::core
