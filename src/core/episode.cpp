#include "core/episode.hpp"

#include <array>
#include <utility>

#include "obs/metrics.hpp"

namespace pfdrl::core {

EpisodeRunner::EpisodeRunner(const std::vector<data::HouseholdTrace>& traces,
                             ForecastFn forecast,
                             std::size_t meter_interval_minutes,
                             obs::MetricsRegistry* metrics)
    : traces_(traces),
      forecast_(std::move(forecast)),
      meter_interval_(meter_interval_minutes),
      metrics_(metrics) {}

ems::EmsEnvironment EpisodeRunner::environment(std::size_t home,
                                               std::size_t dev,
                                               std::size_t begin,
                                               std::size_t end) const {
  const Key key{home, dev, begin, end};
  std::shared_ptr<const std::vector<double>> series;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) series = it->second;
  }
  if (series) {
    if (metrics_ != nullptr) {
      metrics_->counter("episode.forecast_cache_hits").add(1);
    }
  } else {
    series = std::make_shared<const std::vector<double>>(
        forecast_(home, dev, begin, end));
    {
      std::lock_guard<std::mutex> lock(mu_);
      cache_.emplace(key, series);
    }
    if (metrics_ != nullptr) {
      metrics_->counter("episode.forecast_cache_misses").add(1);
    }
  }
  // Shared-forecast overload: the environment references the cached
  // series instead of copying a day's worth of minutes per episode.
  return ems::EmsEnvironment(traces_[home].devices[dev], std::move(series),
                             begin, meter_interval_);
}

std::vector<int> EpisodeRunner::greedy_actions(const rl::DqnAgent& agent,
                                               const ems::EmsEnvironment& env) {
  std::vector<int> actions(env.length());
  std::array<double, ems::EmsEnvironment::kStateDim> state;
  for (std::size_t i = 0; i < env.length(); ++i) {
    env.state_into(i, state);
    actions[i] = agent.act_greedy(state);
  }
  return actions;
}

void EpisodeRunner::invalidate_forecasts() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace pfdrl::core
