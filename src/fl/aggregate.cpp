#include "fl/aggregate.hpp"

#include <cassert>
#include <stdexcept>

namespace pfdrl::fl {

void fedavg(std::span<const std::span<const double>> inputs,
            std::span<double> out) {
  if (inputs.empty()) throw std::invalid_argument("fedavg: no inputs");
  const std::size_t n = out.size();
  for (const auto& in : inputs) {
    if (in.size() != n) throw std::invalid_argument("fedavg: size mismatch");
  }
  const double inv = 1.0 / static_cast<double>(inputs.size());
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (const auto& in : inputs) sum += in[i];
    out[i] = sum * inv;
  }
}

void fedavg_weighted(std::span<const std::span<const double>> inputs,
                     std::span<const double> weights, std::span<double> out) {
  if (inputs.empty()) throw std::invalid_argument("fedavg_weighted: no inputs");
  if (inputs.size() != weights.size()) {
    throw std::invalid_argument("fedavg_weighted: weights size mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("fedavg_weighted: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("fedavg_weighted: zero total weight");
  }
  const std::size_t n = out.size();
  for (const auto& in : inputs) {
    if (in.size() != n) {
      throw std::invalid_argument("fedavg_weighted: size mismatch");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      sum += weights[k] * inputs[k][i];
    }
    out[i] = sum / total;
  }
}

void fedavg_prefix(std::span<const std::span<const double>> inputs,
                   std::size_t prefix_len, std::span<double> out) {
  if (inputs.empty()) throw std::invalid_argument("fedavg_prefix: no inputs");
  if (prefix_len > out.size()) {
    throw std::invalid_argument("fedavg_prefix: prefix exceeds output");
  }
  for (const auto& in : inputs) {
    if (in.size() < prefix_len) {
      throw std::invalid_argument("fedavg_prefix: input shorter than prefix");
    }
  }
  const double inv = 1.0 / static_cast<double>(inputs.size());
  for (std::size_t i = 0; i < prefix_len; ++i) {
    double sum = 0.0;
    for (const auto& in : inputs) sum += in[i];
    out[i] = sum * inv;
  }
}

}  // namespace pfdrl::fl
