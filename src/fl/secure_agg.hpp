// Secure aggregation for the decentralized broadcasts (extension of the
// paper's privacy story).
//
// The paper motivates DFL with the risk of training-data reconstruction
// from shared models (gradient/model inversion, Geiping et al. 2020 —
// their reference [12]). Plain DFL still broadcasts each residence's raw
// parameters to every neighbour; this module closes that gap with
// pairwise additive masking in the style of Bonawitz et al. (CCS 2017),
// simplified for the synchronous full-participation setting:
//
//   * every unordered pair {i, j} of participating agents shares a mask
//     vector derived from a pairwise seed (stand-in for a Diffie-Hellman
//     agreement);
//   * agent i broadcasts  x_i + sum_{j>i} m_ij - sum_{j<i} m_ji ;
//   * each mask appears exactly once with '+' and once with '-' across
//     the group, so the *sum* (and hence the FedAvg mean) of all masked
//     vectors equals the sum of the true vectors, while any individual
//     broadcast is statistically masked.
//
// An optional Gaussian perturbation (differential-privacy style) can be
// stacked on top; unlike the pairwise masks it does not cancel, trading
// accuracy for protection against colluding receivers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::fl {

struct SecureAggConfig {
  bool pairwise_masking = true;
  /// Mask amplitude. Large enough to hide parameter values (which live
  /// in roughly [-3, 3] after init/training), small enough that the
  /// floating-point cancellation error stays negligible.
  double mask_scale = 32.0;
  /// Standard deviation of optional non-cancelling Gaussian noise
  /// (0 = off). This is the knob that trades accuracy for protection
  /// against colluding receivers.
  double dp_sigma = 0.0;
  /// Deployment-wide shared secret entering every pairwise seed
  /// (stand-in for the key-agreement step).
  std::uint64_t shared_secret = 0x5EC12E7A66ULL;
};

class SecureAggregator {
 public:
  explicit SecureAggregator(SecureAggConfig cfg = {}) noexcept : cfg_(cfg) {}

  [[nodiscard]] const SecureAggConfig& config() const noexcept { return cfg_; }

  /// Mask `params` as agent `self` for `round`, given the sorted list of
  /// all agents participating in this aggregation group (must contain
  /// `self`). Returns the masked vector to broadcast.
  [[nodiscard]] std::vector<double> mask(
      net::AgentId self, std::uint64_t round,
      std::span<const net::AgentId> group,
      std::span<const double> params) const;

  /// The pairwise mask between agents a and b for a round (exposed for
  /// tests; both endpoints derive the identical vector).
  [[nodiscard]] std::vector<double> pairwise_mask(net::AgentId a,
                                                  net::AgentId b,
                                                  std::uint64_t round,
                                                  std::size_t size) const;

  /// Residual mask magnitude if `group` were aggregated by summation:
  /// exactly 0 by construction; tests assert the floating-point residue.
  static double sum_residual(std::span<const std::vector<double>> masked,
                             std::span<const std::vector<double>> plain);

 private:
  SecureAggConfig cfg_;
};

}  // namespace pfdrl::fl
