// Federated parameter aggregation primitives (the paper's Eq. 2 / Alg. 1
// averaging step, and the Eq. 7 base-layer variant used by PFDRL).
//
// All functions are order-independent up to floating-point associativity;
// the callers always pass contributions in a fixed (agent-id) order so
// results are bit-reproducible regardless of delivery interleaving.
#pragma once

#include <cstddef>
#include <span>

namespace pfdrl::fl {

/// Uniform FedAvg: out = mean of all inputs. All spans must share one
/// size; `inputs` must be non-empty. out may alias inputs[i].
void fedavg(std::span<const std::span<const double>> inputs,
            std::span<double> out);

/// Weighted FedAvg (weights renormalized internally; must be >= 0 with a
/// positive sum).
void fedavg_weighted(std::span<const std::span<const double>> inputs,
                     std::span<const double> weights, std::span<double> out);

/// Average only the prefix [0, prefix_len) of each vector (PFDRL base
/// layers); the suffix of `out` is left untouched (personalization
/// layers stay local, Eq. 8).
void fedavg_prefix(std::span<const std::span<const double>> inputs,
                   std::size_t prefix_len, std::span<double> out);

}  // namespace pfdrl::fl
