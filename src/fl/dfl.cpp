#include "fl/dfl.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>
#include <stdexcept>

#include "fl/aggregate.hpp"
#include "forecast/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::fl {

const char* aggregation_mode_name(AggregationMode m) noexcept {
  switch (m) {
    case AggregationMode::kDecentralized: return "decentralized";
    case AggregationMode::kCentralized: return "centralized";
    case AggregationMode::kNone: return "local";
  }
  return "?";
}

namespace {
net::TopologyKind topology_for(AggregationMode m) noexcept {
  return m == AggregationMode::kCentralized ? net::TopologyKind::kStar
                                            : net::TopologyKind::kFullMesh;
}
}  // namespace

DflTrainer::DflTrainer(const std::vector<data::HouseholdTrace>& traces,
                       DflConfig cfg)
    : traces_(traces),
      cfg_(cfg),
      bus_(net::Topology(topology_for(cfg.aggregation),
                         std::max<std::size_t>(1, traces.size())),
           cfg.link) {
  if (traces_.empty()) throw std::invalid_argument("DflTrainer: no traces");
  if (cfg_.secure_aggregation && cfg_.link.drop_probability > 0.0) {
    throw std::invalid_argument(
        "DflTrainer: secure aggregation needs a reliable link (pairwise "
        "masks only cancel under full participation)");
  }
  const std::size_t minutes = traces_.front().minutes();
  for (const auto& t : traces_) {
    if (t.minutes() != minutes) {
      throw std::invalid_argument("DflTrainer: trace length mismatch");
    }
  }
  agents_.resize(traces_.size());
  for (std::size_t h = 0; h < traces_.size(); ++h) {
    for (std::size_t d = 0; d < traces_[h].devices.size(); ++d) {
      // Same (method, window, seed) everywhere: the paper requires all
      // residences to start from the same default model per device type,
      // otherwise averaging mixes incompatible coordinate systems.
      const auto type =
          static_cast<std::uint64_t>(traces_[h].devices[d].spec.type);
      agents_[h].devices.push_back(forecast::make_forecaster(
          cfg_.method, cfg_.window, cfg_.seed * 1000 + type));
    }
  }
}

std::size_t DflTrainer::run(std::size_t train_begin, std::size_t train_end) {
  const auto round_minutes = static_cast<std::size_t>(
      cfg_.broadcast_period_hours * 60.0);
  if (round_minutes == 0) {
    throw std::invalid_argument("DflTrainer: broadcast period too small");
  }
  std::size_t rounds = 0;
  for (std::size_t begin = train_begin; begin < train_end;
       begin += round_minutes) {
    round(begin, std::min(begin + round_minutes, train_end));
    ++rounds;
  }
  return rounds;
}

void DflTrainer::round(std::size_t begin, std::size_t end) {
  std::optional<obs::SpanTimer> round_span;
  if (cfg_.metrics != nullptr) {
    round_span.emplace(cfg_.metrics->histogram("dfl.round_seconds"),
                       &cfg_.metrics->series("dfl.round_seconds_series"));
  }
  // Local training step: every (agent, device) pair trains on the newly
  // recorded minutes. The pairs are independent, so fan out on the pool.
  struct Job {
    std::size_t home;
    std::size_t dev;
  };
  std::vector<Job> jobs;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      jobs.push_back({h, d});
    }
  }
  util::ThreadPool::global().parallel_for(0, jobs.size(), [&](std::size_t j) {
    const auto [h, d] = jobs[j];
    // Per-job RNG forked deterministically: results do not depend on the
    // thread schedule.
    util::Rng rng =
        util::Rng(cfg_.seed).fork(rounds_done_ * 10000 + h * 100 + d);
    auto& model = *agents_[h].devices[d];
    forecast::TrainConfig train =
        forecast::resolve_train_config(cfg_.method, cfg_.train);
    // Small-batch training (paper Table 2): federated agents train on a
    // bounded sample of each round's windows and lean on aggregation for
    // coverage; the Local baseline (kNone) uses everything it has.
    if (cfg_.max_round_samples > 0 &&
        cfg_.aggregation != AggregationMode::kNone) {
      const std::size_t hist = data::history_needed(model.window_config());
      const std::size_t span = end > begin + hist ? end - begin - hist : 0;
      const std::size_t windows = span / std::max<std::size_t>(1, train.stride);
      if (windows > cfg_.max_round_samples) {
        train.stride = (span + cfg_.max_round_samples - 1) /
                       cfg_.max_round_samples;
      }
    }
    model.train(traces_[h].devices[d], begin, end, train, rng);
  });

  if (cfg_.aggregation != AggregationMode::kNone && agents_.size() > 1) {
    broadcast_and_aggregate(rounds_done_);
  }
  ++rounds_done_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("dfl.rounds").add(1);
    cfg_.metrics->counter("dfl.devices_trained").add(jobs.size());
    obs::record_bus_stats(*cfg_.metrics, "bus.forecast", bus_.stats());
  }
}

void DflTrainer::broadcast_and_aggregate(std::uint64_t round_id) {
  // Aggregation groups: the sorted agent list per device type. Needed
  // both for secure masking (masks cancel exactly within a full group)
  // and to know whether a device has any homologous peers at all.
  std::map<std::uint32_t, std::vector<net::AgentId>> groups;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    for (std::size_t d = 0; d < traces_[h].devices.size(); ++d) {
      const auto type =
          static_cast<std::uint32_t>(traces_[h].devices[d].spec.type);
      auto& members = groups[type];
      if (members.empty() || members.back() != static_cast<net::AgentId>(h)) {
        members.push_back(static_cast<net::AgentId>(h));
      }
    }
  }

  const SecureAggregator aggregator(cfg_.secure);
  // Masked (or plain) payload per (home, device), reused for both the
  // broadcast and the sender's own contribution to its local average —
  // pairwise masks only cancel if every group member contributes the
  // masked form.
  std::vector<std::vector<std::vector<double>>> payloads(agents_.size());

  // Phase 1: every agent broadcasts each device model. With the star
  // topology the hub (agent 0) additionally relays, doubling the wire
  // cost — the "cloud" tax the paper's DFL removes.
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    payloads[h].resize(agents_[h].devices.size());
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      const auto type =
          static_cast<std::uint32_t>(traces_[h].devices[d].spec.type);
      const auto params = agents_[h].devices[d]->parameters();
      if (cfg_.secure_aggregation && groups[type].size() > 1) {
        payloads[h][d] = aggregator.mask(static_cast<net::AgentId>(h),
                                         round_id, groups[type], params);
      } else {
        payloads[h][d].assign(params.begin(), params.end());
      }
      net::Message msg;
      msg.sender = static_cast<net::AgentId>(h);
      msg.kind = net::MessageKind::kForecastParams;
      msg.device_type = type;
      msg.round = round_id;
      msg.payload = payloads[h][d];
      bus_.broadcast(msg);
    }
  }

  if (cfg_.aggregation == AggregationMode::kCentralized) {
    // Hub relays every leaf message to every other leaf so each agent
    // ends up with the same information as in the decentralized case.
    auto hub_msgs = bus_.drain(0);
    for (auto& m : hub_msgs) {
      for (std::size_t h = 1; h < agents_.size(); ++h) {
        if (static_cast<net::AgentId>(h) == m.sender) continue;
        bus_.send(static_cast<net::AgentId>(h), m);
      }
      // The hub keeps a copy for its own aggregation.
      bus_.send(0, std::move(m));
    }
  }

  // Phase 2: each agent drains its inbox and averages per device type.
  // Aggregation runs in fixed agent order with contributions sorted by
  // sender id — deterministic regardless of delivery interleaving.
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    auto inbox = bus_.drain(static_cast<net::AgentId>(h));
    std::sort(inbox.begin(), inbox.end(),
              [](const net::Message& a, const net::Message& b) {
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.device_type < b.device_type;
              });
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      const auto type =
          static_cast<std::uint32_t>(traces_[h].devices[d].spec.type);
      auto& model = *agents_[h].devices[d];
      const auto own = model.parameters();

      std::vector<std::span<const double>> contributions;
      contributions.push_back(payloads[h][d]);
      for (const auto& m : inbox) {
        if (m.device_type != type) continue;
        if (m.payload.size() != own.size()) {  // shape guard
          ++rejected;
          continue;
        }
        contributions.push_back(m.payload);
        ++accepted;
      }
      if (contributions.size() < 2) continue;  // nobody else has this type
      std::vector<double> averaged(own.size(), 0.0);
      fedavg(contributions, averaged);
      model.set_parameters(averaged);
      if (cfg_.metrics != nullptr) {
        cfg_.metrics
            ->histogram("dfl.agg_group_size", obs::Histogram::count_buckets())
            .observe(static_cast<double>(contributions.size()));
      }
    }
  }
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("dfl.contributions_accepted").add(accepted);
    cfg_.metrics->counter("dfl.contributions_rejected").add(rejected);
  }
}

const forecast::Forecaster& DflTrainer::forecaster(std::size_t home,
                                                   std::size_t dev) const {
  return *agents_.at(home).devices.at(dev);
}

double DflTrainer::mean_test_accuracy(std::size_t begin,
                                      std::size_t end) const {
  util::RunningStats stats;
  for (double acc : per_agent_accuracy(begin, end)) stats.add(acc);
  return stats.mean();
}

std::vector<double> DflTrainer::per_agent_accuracy(std::size_t begin,
                                                   std::size_t end) const {
  std::vector<double> out(agents_.size(), 0.0);
  util::ThreadPool::global().parallel_for(0, agents_.size(), [&](std::size_t h) {
    util::RunningStats stats;
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      const auto result = forecast::evaluate(*agents_[h].devices[d],
                                             traces_[h].devices[d], begin, end);
      if (result.samples > 0) stats.add(result.mean_accuracy);
    }
    out[h] = stats.mean();
  });
  return out;
}

}  // namespace pfdrl::fl
