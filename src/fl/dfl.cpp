#include "fl/dfl.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <optional>
#include <stdexcept>

#include "fl/exchange.hpp"
#include "forecast/fused.hpp"
#include "forecast/metrics.hpp"
#include "obs/metrics.hpp"
#include "util/shard.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::fl {

const char* aggregation_mode_name(AggregationMode m) noexcept {
  switch (m) {
    case AggregationMode::kDecentralized: return "decentralized";
    case AggregationMode::kCentralized: return "centralized";
    case AggregationMode::kNone: return "local";
  }
  return "?";
}

namespace {
net::TopologyKind topology_for(AggregationMode m) noexcept {
  return m == AggregationMode::kCentralized ? net::TopologyKind::kStar
                                            : net::TopologyKind::kFullMesh;
}

// Forecast bus = bus id 1 in the experiment's fault-seed namespace (the
// DRL federation bus is id 2). Only derived when the plan itself carries
// no seed, so explicit FaultPlan::seed always wins.
net::FaultPlan seeded_fault(net::FaultPlan fault, std::uint64_t exp_seed) {
  if (fault.seed == 0) fault.seed = net::derive_fault_seed(exp_seed, 1);
  return fault;
}
}  // namespace

DflTrainer::DflTrainer(const std::vector<data::HouseholdTrace>& traces,
                       DflConfig cfg)
    : traces_(traces),
      cfg_(cfg),
      router_(cfg.shards > 1
                  ? std::make_unique<net::ShardRouter>(
                        std::max<std::size_t>(1, traces.size()), cfg.shards)
                  : nullptr),
      codec_(cfg.wire_codec || cfg.wire_quant
                 ? std::make_unique<net::WireCodec>(
                       net::CodecOptions{.quantize = cfg.wire_quant})
                 : nullptr),
      bus_(net::Topology(cfg.topology.value_or(topology_for(cfg.aggregation)),
                         std::max<std::size_t>(1, traces.size()),
                         cfg.topology_options),
           seeded_fault(cfg.fault, cfg.seed)) {
  if (router_) bus_.set_shard_router(router_.get());
  if (codec_) bus_.set_codec(codec_.get());
  if (traces_.empty()) throw std::invalid_argument("DflTrainer: no traces");
  if (cfg_.secure_aggregation &&
      (!cfg_.fault.reliable() || cfg_.robustness.degraded())) {
    throw std::invalid_argument(
        "DflTrainer: secure aggregation needs a reliable link and no "
        "degradation policy (pairwise masks only cancel under full "
        "participation)");
  }
  const net::TopologyKind bus_kind = bus_.topology().kind();
  if (cfg_.secure_aggregation && bus_kind != net::TopologyKind::kFullMesh &&
      bus_kind != net::TopologyKind::kStar) {
    throw std::invalid_argument(
        "DflTrainer: secure aggregation needs a full-view topology "
        "(full_mesh or star) — sparse broadcasts leave masks uncancelled");
  }
  const std::size_t minutes = traces_.front().minutes();
  for (const auto& t : traces_) {
    if (t.minutes() != minutes) {
      throw std::invalid_argument("DflTrainer: trace length mismatch");
    }
  }
  agents_.resize(traces_.size());
  for (std::size_t h = 0; h < traces_.size(); ++h) {
    for (std::size_t d = 0; d < traces_[h].devices.size(); ++d) {
      // Same (method, window, seed) everywhere: the paper requires all
      // residences to start from the same default model per device type,
      // otherwise averaging mixes incompatible coordinate systems.
      const auto type =
          static_cast<std::uint64_t>(traces_[h].devices[d].spec.type);
      agents_[h].devices.push_back(forecast::make_forecaster(
          cfg_.method, cfg_.window, cfg_.seed * 1000 + type));
    }
  }
}

DflTrainer::~DflTrainer() = default;

std::size_t DflTrainer::run(std::size_t train_begin, std::size_t train_end) {
  const auto round_minutes = static_cast<std::size_t>(
      cfg_.broadcast_period_hours * 60.0);
  if (round_minutes == 0) {
    throw std::invalid_argument("DflTrainer: broadcast period too small");
  }
  std::size_t rounds = 0;
  for (std::size_t begin = train_begin; begin < train_end;
       begin += round_minutes) {
    round(begin, std::min(begin + round_minutes, train_end));
    ++rounds;
  }
  return rounds;
}

void DflTrainer::round(std::size_t begin, std::size_t end) {
  std::optional<obs::SpanTimer> round_span;
  if (cfg_.metrics != nullptr) {
    round_span.emplace(cfg_.metrics->histogram("dfl.round_seconds"),
                       &cfg_.metrics->series("dfl.round_seconds_series"));
  }
  // Local training step: every (agent, device) pair trains on the newly
  // recorded minutes. The pairs are independent, so fan out on the pool.
  struct Job {
    std::size_t home;
    std::size_t dev;
  };
  std::vector<Job> jobs;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      jobs.push_back({h, d});
    }
  }
  // Per-epoch training windows this round, summed over jobs (the same
  // span/stride arithmetic the sampling cap uses). Relaxed atomic: jobs
  // only accumulate; the fold into the registry happens once below.
  std::atomic<std::uint64_t> round_windows{0};
  // Per-round train config + trainable-window span for one model.
  // Small-batch training (paper Table 2): federated agents train on a
  // bounded sample of each round's windows and lean on aggregation for
  // coverage; the Local baseline (kNone) uses everything it has. The
  // span/stride arithmetic is home-independent (every forecaster shares
  // cfg_.window), which is what lets fused groups share one config.
  const auto capped_train = [&](const forecast::Forecaster& model) {
    forecast::TrainConfig train =
        forecast::resolve_train_config(cfg_.method, cfg_.train);
    const std::size_t hist = data::history_needed(model.window_config());
    const std::size_t span = end > begin + hist ? end - begin - hist : 0;
    if (cfg_.max_round_samples > 0 &&
        cfg_.aggregation != AggregationMode::kNone) {
      const std::size_t windows = span / std::max<std::size_t>(1, train.stride);
      if (windows > cfg_.max_round_samples) {
        train.stride = (span + cfg_.max_round_samples - 1) /
                       cfg_.max_round_samples;
      }
    }
    return std::pair{train, span};
  };
  const auto train_job = [&](std::size_t j) {
    const auto [h, d] = jobs[j];
    // Per-job RNG forked deterministically: results do not depend on the
    // thread schedule.
    util::Rng rng =
        util::Rng(cfg_.seed).fork(rounds_done_ * 10000 + h * 100 + d);
    auto& model = *agents_[h].devices[d];
    const auto [train, span] = capped_train(model);
    round_windows.fetch_add(span / std::max<std::size_t>(1, train.stride),
                            std::memory_order_relaxed);
    model.train(traces_[h].devices[d], begin, end, train, rng);
  };
  // Sharded engine: one pool task per shard of homes instead of one per
  // job. The per-job RNG fork keeps results independent of which path
  // (or thread) runs a job, so sharding never changes training output.
  util::ShardTiming timing;
  if (cfg_.fuse_homes > 1 && !jobs.empty()) {
    // Fused dispatch (docs/fused_training.md): consecutive jobs of up to
    // fuse_homes homes — never crossing a shard boundary — form one
    // fused batch group. Per-job RNG forks and window accounting are
    // unchanged, so fused rounds stay bitwise identical to per-job ones.
    struct Group {
      std::size_t begin_j, end_j;
    };
    std::vector<Group> groups;
    std::size_t start = 0;
    while (start < jobs.size()) {
      const std::size_t shard =
          util::shard_of(jobs[start].home, agents_.size(), cfg_.shards);
      std::size_t j = start;
      std::size_t homes_in = 0;
      while (j < jobs.size() &&
             util::shard_of(jobs[j].home, agents_.size(), cfg_.shards) ==
                 shard) {
        if (j == start || jobs[j].home != jobs[j - 1].home) {
          if (homes_in == cfg_.fuse_homes) break;
          ++homes_in;
        }
        ++j;
      }
      groups.push_back({start, j});
      start = j;
    }
    while (fused_pool_.size() < groups.size()) {
      fused_pool_.push_back(
          std::make_unique<forecast::FusedForecastTrainer>());
    }
    const auto train_group = [&](std::size_t g) {
      const auto [gb, ge] = groups[g];
      std::vector<util::Rng> rngs;
      rngs.reserve(ge - gb);
      std::vector<forecast::FusedTrainJob> fjobs(ge - gb);
      for (std::size_t j = gb; j < ge; ++j) {
        const auto [h, d] = jobs[j];
        rngs.push_back(
            util::Rng(cfg_.seed).fork(rounds_done_ * 10000 + h * 100 + d));
      }
      for (std::size_t j = gb; j < ge; ++j) {
        const auto [h, d] = jobs[j];
        fjobs[j - gb] = {agents_[h].devices[d].get(), &traces_[h].devices[d],
                         &rngs[j - gb], 0.0};
      }
      const auto [train, span] = capped_train(*fjobs.front().forecaster);
      round_windows.fetch_add(
          static_cast<std::uint64_t>(ge - gb) *
              (span / std::max<std::size_t>(1, train.stride)),
          std::memory_order_relaxed);
      if (!fused_pool_[g]->train(fjobs, begin, end, train)) {
        // Non-fusable group (closed-form method, mismatched shapes):
        // per-job fallback with the still-unconsumed forked RNGs.
        for (std::size_t j = gb; j < ge; ++j) {
          const auto [h, d] = jobs[j];
          agents_[h].devices[d]->train(traces_[h].devices[d], begin, end,
                                       train, rngs[j - gb]);
        }
      }
    };
    timing = util::sharded_for(
        util::ThreadPool::global(), groups.size(), cfg_.shards,
        [&](std::size_t g) {
          return util::shard_of(jobs[groups[g].begin_j].home, agents_.size(),
                                cfg_.shards);
        },
        train_group);
  } else {
    timing = util::sharded_for(
        util::ThreadPool::global(), jobs.size(), cfg_.shards,
        [&](std::size_t j) {
          return util::shard_of(jobs[j].home, agents_.size(), cfg_.shards);
        },
        train_job);
  }
  if (cfg_.metrics != nullptr) {
    obs::record_shard_timing(*cfg_.metrics, "dfl.shard", timing);
  }

  if (cfg_.aggregation != AggregationMode::kNone && agents_.size() > 1) {
    broadcast_and_aggregate(rounds_done_);
  }
  ++rounds_done_;
  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("dfl.rounds").add(1);
    cfg_.metrics->counter("dfl.devices_trained").add(jobs.size());
    cfg_.metrics->counter("dfl.train_windows")
        .add(round_windows.load(std::memory_order_relaxed));
    obs::record_bus_stats(*cfg_.metrics, "bus.forecast", bus_.stats());
    if (router_) {
      obs::record_shard_router_stats(*cfg_.metrics, "bus.forecast",
                                     router_->stats());
    }
    if (codec_) {
      obs::record_codec_stats(*cfg_.metrics, "wire.forecast",
                              codec_->stats());
    }
  }
}

void DflTrainer::broadcast_and_aggregate(std::uint64_t round_id) {
  // One exchange item per (home, device); the engine owns the whole
  // broadcast → relay → drain → sort → shape-guard → average round
  // (Alg. 1's aggregation step). Forecasters expose no mutable flat
  // span, so the averaged result arrives through the commit callback.
  struct Slot {
    std::size_t home, dev;
  };
  std::vector<Slot> slots;
  std::vector<ExchangeItem> items;
  for (std::size_t h = 0; h < agents_.size(); ++h) {
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      const auto type =
          static_cast<std::uint32_t>(traces_[h].devices[d].spec.type);
      slots.push_back({h, d});
      items.push_back({.agent = static_cast<net::AgentId>(h),
                       .device_type = type,
                       .send = agents_[h].devices[d]->parameters(),
                       .in_place = {}});
    }
  }

  const SecureAggregator aggregator(cfg_.secure);
  ParamExchange::Options options;
  options.kind = net::MessageKind::kForecastParams;
  options.secure = cfg_.secure_aggregation ? &aggregator : nullptr;
  options.metrics = cfg_.metrics;
  options.group_size_histogram = "dfl.agg_group_size";
  options.policy = cfg_.robustness;
  options.parallel = router_ != nullptr;
  ParamExchange exchange(bus_, options);
  const ExchangeStats stats = exchange.round(
      items, round_id, [&](std::size_t i, std::span<const double> averaged) {
        agents_[slots[i].home].devices[slots[i].dev]->set_parameters(averaged);
      });

  if (cfg_.metrics != nullptr) {
    cfg_.metrics->counter("dfl.contributions_accepted").add(stats.accepted);
    cfg_.metrics->counter("dfl.contributions_rejected").add(stats.rejected);
  }
}

const forecast::Forecaster& DflTrainer::forecaster(std::size_t home,
                                                   std::size_t dev) const {
  return *agents_.at(home).devices.at(dev);
}

forecast::Forecaster& DflTrainer::mutable_forecaster(std::size_t home,
                                                     std::size_t dev) {
  return *agents_.at(home).devices.at(dev);
}

double DflTrainer::mean_test_accuracy(std::size_t begin,
                                      std::size_t end) const {
  util::RunningStats stats;
  for (double acc : per_agent_accuracy(begin, end)) stats.add(acc);
  return stats.mean();
}

std::vector<double> DflTrainer::per_agent_accuracy(std::size_t begin,
                                                   std::size_t end) const {
  std::vector<double> out(agents_.size(), 0.0);
  util::ThreadPool::global().parallel_for(0, agents_.size(), [&](std::size_t h) {
    util::RunningStats stats;
    for (std::size_t d = 0; d < agents_[h].devices.size(); ++d) {
      const auto result = forecast::evaluate(*agents_[h].devices[d],
                                             traces_[h].devices[d], begin, end);
      if (result.samples > 0) stats.add(result.mean_accuracy);
    }
    out[h] = stats.mean();
  });
  return out;
}

}  // namespace pfdrl::fl
