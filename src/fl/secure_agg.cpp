#include "fl/secure_agg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace pfdrl::fl {

std::vector<double> SecureAggregator::pairwise_mask(net::AgentId a,
                                                    net::AgentId b,
                                                    std::uint64_t round,
                                                    std::size_t size) const {
  if (a > b) std::swap(a, b);
  // Seed mixes the shared secret, round, and the ordered pair so every
  // (pair, round) gets an independent stream both endpoints can derive.
  std::uint64_t seed = cfg_.shared_secret;
  seed ^= 0x9E3779B97F4A7C15ULL * (round + 1);
  seed ^= (static_cast<std::uint64_t>(a) << 32) | b;
  util::Rng rng(util::splitmix64(seed));
  std::vector<double> mask(size);
  for (double& m : mask) m = rng.uniform(-cfg_.mask_scale, cfg_.mask_scale);
  return mask;
}

std::vector<double> SecureAggregator::mask(
    net::AgentId self, std::uint64_t round,
    std::span<const net::AgentId> group,
    std::span<const double> params) const {
  if (std::find(group.begin(), group.end(), self) == group.end()) {
    throw std::invalid_argument("SecureAggregator: self not in group");
  }
  std::vector<double> out(params.begin(), params.end());

  if (cfg_.pairwise_masking) {
    for (net::AgentId peer : group) {
      if (peer == self) continue;
      const auto m = pairwise_mask(self, peer, round, out.size());
      // Lower id adds, higher id subtracts: the pair cancels in the sum.
      const double sign = self < peer ? 1.0 : -1.0;
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += sign * m[i];
    }
  }

  if (cfg_.dp_sigma > 0.0) {
    std::uint64_t seed = cfg_.shared_secret ^ (round * 1000003 + self);
    util::Rng rng(util::splitmix64(seed));
    for (double& v : out) v += rng.normal(0.0, cfg_.dp_sigma);
  }
  return out;
}

double SecureAggregator::sum_residual(
    std::span<const std::vector<double>> masked,
    std::span<const std::vector<double>> plain) {
  assert(masked.size() == plain.size());
  if (masked.empty()) return 0.0;
  const std::size_t n = masked.front().size();
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double masked_sum = 0.0;
    double plain_sum = 0.0;
    for (std::size_t k = 0; k < masked.size(); ++k) {
      masked_sum += masked[k][i];
      plain_sum += plain[k][i];
    }
    worst = std::max(worst, std::abs(masked_sum - plain_sum));
  }
  return worst;
}

}  // namespace pfdrl::fl
