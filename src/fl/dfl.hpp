// Decentralized federated learning for load forecasting (paper §3.2,
// Algorithm 1).
//
// The trainer owns one forecaster per (residence, device). Simulated
// time advances in rounds of `broadcast_period_hours` (the paper's β):
// within a round every agent trains each of its device models on the
// newly recorded minutes (in parallel on the thread pool); at the round
// boundary agents broadcast the parameters of every device model over
// the message bus and average them with the homologous models (same
// device *type*) received from other residences.
//
// Aggregation modes cover the paper's comparison matrix:
//   kDecentralized — full-mesh broadcast, average at every agent (DFL);
//   kCentralized   — star topology through an aggregator hub (classic FL
//                    with a cloud server; same averaging math, different
//                    communication pattern and trust assumptions);
//   kNone          — purely local training (the Local baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "data/household.hpp"
#include "data/trace.hpp"
#include "fl/exchange.hpp"
#include "fl/secure_agg.hpp"
#include "forecast/forecaster.hpp"
#include "net/bus.hpp"

namespace pfdrl::obs {
class MetricsRegistry;
}

namespace pfdrl::forecast {
class FusedForecastTrainer;
}

namespace pfdrl::fl {

enum class AggregationMode : std::uint8_t {
  kDecentralized = 0,
  kCentralized = 1,
  kNone = 2,
};

const char* aggregation_mode_name(AggregationMode m) noexcept;

struct DflConfig {
  forecast::Method method = forecast::Method::kLstm;
  data::WindowConfig window{};
  forecast::TrainConfig train{};
  /// β: hours of data recorded (and trained on) between broadcasts.
  double broadcast_period_hours = 12.0;
  AggregationMode aggregation = AggregationMode::kDecentralized;
  std::uint64_t seed = 7;
  /// Cap on supervised samples per device per round (cost control for
  /// very long rounds); 0 = unlimited.
  std::size_t max_round_samples = 300;
  /// Pairwise-mask broadcasts so no neighbour ever sees a residence's raw
  /// parameters (see fl/secure_agg.hpp). The aggregate is unchanged up to
  /// floating-point residue (plus optional DP noise).
  bool secure_aggregation = false;
  SecureAggConfig secure{};
  /// Link behaviour: bandwidth/latency/loss plus injected delay, jitter,
  /// duplication, reordering and partition windows. With a faulty plan,
  /// aggregation simply averages the contributions that made it through
  /// (secure_aggregation requires FaultPlan::reliable() — masks only
  /// cancel under full participation). When fault.seed is 0 the trainer
  /// derives a per-bus stream from `seed` (bus id 1) so the forecast and
  /// DRL buses never share a drop mask.
  net::FaultPlan fault{};
  /// Deadline / quorum / crash / straggler policy for exchange rounds.
  /// The default reproduces the original always-everything round.
  ExchangePolicy robustness{};
  /// Metrics sink for the dfl.* / bus.forecast.* instruments; nullptr
  /// disables recording.
  obs::MetricsRegistry* metrics = nullptr;
  /// Broadcast topology override; nullopt keeps the aggregation-mode
  /// default (full mesh for decentralized, star for centralized). The
  /// sparse kinds (hierarchical, gossip) drop broadcast cost from O(N²)
  /// links to O(N·degree) for city-scale runs — see docs/scaling.md.
  std::optional<net::TopologyKind> topology;
  /// Cluster size / gossip fanout+seed for the sparse topologies.
  net::TopologyOptions topology_options{};
  /// Shards for the bulk-synchronous engine: > 1 buckets per-home
  /// training onto one pool task per shard, batches cross-shard
  /// parameter messages per shard pair per round (net::ShardRouter), and
  /// parallelizes the exchange drain/aggregate phases. 0/1 = the legacy
  /// flat fan-out (bitwise identical results either way on a clean
  /// fault plan).
  std::size_t shards = 0;
  /// Cross-home fused training (docs/fused_training.md): > 1 gathers the
  /// (home, device) jobs of up to this many homes — never crossing a
  /// shard boundary — into one fused batch group per training step, so
  /// each gate runs one big slab matmul instead of per-home stripes.
  /// 0/1 = the legacy per-job path. Bitwise identical results either
  /// way; groups that turn out non-fusable fall back per job.
  std::size_t fuse_homes = 0;
  /// Lossless delta/XOR wire codec for parameter broadcasts
  /// (docs/wire.md): received params stay bitwise identical, only the
  /// billed wire bytes shrink. Default off.
  bool wire_codec = false;
  /// Opt-in lossy int8 quantization with per-home error feedback on top
  /// of the codec (implies wire_codec); changes delivered values, so it
  /// is excluded from the bitwise goldens. Twin runs stay deterministic.
  bool wire_quant = false;
};

/// One agent's per-device model set.
struct AgentModels {
  std::vector<std::unique_ptr<forecast::Forecaster>> devices;
};

class DflTrainer {
 public:
  /// `traces` holds one HouseholdTrace per residence; all must cover the
  /// same number of minutes.
  DflTrainer(const std::vector<data::HouseholdTrace>& traces, DflConfig cfg);
  ~DflTrainer();

  [[nodiscard]] std::size_t num_agents() const noexcept {
    return agents_.size();
  }
  [[nodiscard]] const DflConfig& config() const noexcept { return cfg_; }

  /// Train over trace minutes [train_begin, train_end) in β-hour rounds.
  /// Returns the number of rounds executed.
  std::size_t run(std::size_t train_begin, std::size_t train_end);

  /// Execute a single round over [begin, end) minutes (exposed for the
  /// accuracy-vs-days experiment that interleaves training and testing).
  void round(std::size_t begin, std::size_t end);

  /// Forecaster of agent `home` for its device index `dev`.
  [[nodiscard]] const forecast::Forecaster& forecaster(std::size_t home,
                                                       std::size_t dev) const;

  /// Mean paper-accuracy over all agents/devices for test minutes
  /// [begin, end).
  [[nodiscard]] double mean_test_accuracy(std::size_t begin,
                                          std::size_t end) const;
  /// Per-agent mean accuracy (for personalization error bars).
  [[nodiscard]] std::vector<double> per_agent_accuracy(std::size_t begin,
                                                       std::size_t end) const;

  [[nodiscard]] net::BusStats comm_stats() const { return bus_.stats(); }

  // --- Warm-restart persistence surface (see sim/snapshot.hpp) --------
  /// Rounds executed so far. The per-round training RNG is forked from
  /// (seed, rounds_done, home, dev), so restoring this counter plus the
  /// forecaster states is all a bitwise resume needs.
  [[nodiscard]] std::uint64_t rounds_done() const noexcept {
    return rounds_done_;
  }
  void set_rounds_done(std::uint64_t rounds) noexcept {
    rounds_done_ = rounds;
  }
  /// Mutable forecaster access for snapshot restore.
  [[nodiscard]] forecast::Forecaster& mutable_forecaster(std::size_t home,
                                                         std::size_t dev);
  /// The broadcast bus (fault-RNG and stats restore).
  [[nodiscard]] net::MessageBus& bus() noexcept { return bus_; }
  [[nodiscard]] const net::MessageBus& bus() const noexcept { return bus_; }
  /// Attached cross-shard router; nullptr when unsharded.
  [[nodiscard]] const net::ShardRouter* shard_router() const noexcept {
    return router_.get();
  }
  /// Attached wire codec; nullptr unless wire_codec/wire_quant is set.
  [[nodiscard]] net::WireCodec* wire_codec() const noexcept {
    return codec_.get();
  }

 private:
  void broadcast_and_aggregate(std::uint64_t round_id);

  const std::vector<data::HouseholdTrace>& traces_;
  DflConfig cfg_;
  std::vector<AgentModels> agents_;
  /// Per-group fused trainers (cfg_.fuse_homes > 1). Group boundaries
  /// are pinned by (jobs, shards, fuse_homes), so group g reuses the
  /// same trainer's slab capacity every round.
  std::vector<std::unique_ptr<forecast::FusedForecastTrainer>> fused_pool_;
  /// Declared before bus_ — the bus holds non-owning router and codec
  /// pointers.
  std::unique_ptr<net::ShardRouter> router_;
  std::unique_ptr<net::WireCodec> codec_;
  net::MessageBus bus_;
  std::uint64_t rounds_done_ = 0;
};

}  // namespace pfdrl::fl
