// Centralized ("cloud") load-forecast training baseline: all residences
// upload their raw data to one place, which trains a single global model
// per device type. This is the privacy-violating comparator the paper's
// DFL replaces — statistically it is the strongest pooled-data setting,
// but it produces one model for heterogeneous homes (no per-residence
// fit), which is exactly the weakness Figs. 8/9 expose.
//
// A purely local baseline needs no separate class: DflTrainer with
// AggregationMode::kNone is the Local setting.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "data/trace.hpp"
#include "forecast/forecaster.hpp"

namespace pfdrl::fl {

struct CloudConfig {
  forecast::Method method = forecast::Method::kLstm;
  data::WindowConfig window{};
  forecast::TrainConfig train{};
  /// Training cadence in hours (mirrors DFL's β for cost parity).
  double round_period_hours = 12.0;
  std::uint64_t seed = 7;
};

class CloudTrainer {
 public:
  CloudTrainer(const std::vector<data::HouseholdTrace>& traces,
               CloudConfig cfg);

  /// Train over [train_begin, train_end) in rounds; returns round count.
  std::size_t run(std::size_t train_begin, std::size_t train_end);
  void round(std::size_t begin, std::size_t end);

  /// The single global model for a device type (throws if the type never
  /// occurs in the neighbourhood).
  [[nodiscard]] const forecast::Forecaster& model_for_type(
      data::DeviceType type) const;

  [[nodiscard]] double mean_test_accuracy(std::size_t begin,
                                          std::size_t end) const;
  [[nodiscard]] std::vector<double> per_agent_accuracy(std::size_t begin,
                                                       std::size_t end) const;

  /// Bytes of *raw data* shipped to the cloud so far (privacy/cost
  /// accounting: 8 bytes per minute sample per device).
  [[nodiscard]] std::uint64_t raw_bytes_uploaded() const noexcept {
    return raw_bytes_uploaded_;
  }

  // --- Warm-restart persistence surface (see sim/snapshot.hpp) --------
  [[nodiscard]] std::uint64_t rounds_done() const noexcept {
    return rounds_done_;
  }
  void set_rounds_done(std::uint64_t rounds) noexcept {
    rounds_done_ = rounds;
  }
  void set_raw_bytes_uploaded(std::uint64_t bytes) noexcept {
    raw_bytes_uploaded_ = bytes;
  }
  /// Device types with a global model, sorted (snapshot iteration order).
  [[nodiscard]] std::vector<data::DeviceType> model_types() const;
  [[nodiscard]] forecast::Forecaster& mutable_model_for_type(
      data::DeviceType type);

 private:
  const std::vector<data::HouseholdTrace>& traces_;
  CloudConfig cfg_;
  /// One global model per device type, keyed by type.
  std::map<data::DeviceType, std::unique_ptr<forecast::Forecaster>> models_;
  std::uint64_t rounds_done_ = 0;
  std::uint64_t raw_bytes_uploaded_ = 0;
};

}  // namespace pfdrl::fl
