#include "fl/baselines.hpp"

#include "forecast/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::fl {

CloudTrainer::CloudTrainer(const std::vector<data::HouseholdTrace>& traces,
                           CloudConfig cfg)
    : traces_(traces), cfg_(cfg) {
  if (traces_.empty()) throw std::invalid_argument("CloudTrainer: no traces");
  for (const auto& home : traces_) {
    for (const auto& dev : home.devices) {
      if (!models_.contains(dev.spec.type)) {
        models_[dev.spec.type] = forecast::make_forecaster(
            cfg_.method, cfg_.window,
            cfg_.seed * 1000 + static_cast<std::uint64_t>(dev.spec.type));
      }
    }
  }
}

std::size_t CloudTrainer::run(std::size_t train_begin, std::size_t train_end) {
  const auto round_minutes =
      static_cast<std::size_t>(cfg_.round_period_hours * 60.0);
  if (round_minutes == 0) {
    throw std::invalid_argument("CloudTrainer: round period too small");
  }
  std::size_t rounds = 0;
  for (std::size_t begin = train_begin; begin < train_end;
       begin += round_minutes) {
    round(begin, std::min(begin + round_minutes, train_end));
    ++rounds;
  }
  return rounds;
}

void CloudTrainer::round(std::size_t begin, std::size_t end) {
  // Pooled training: the global per-type model sees every residence's
  // trace for this window, in home order. Types are independent -> pool.
  std::vector<data::DeviceType> types;
  types.reserve(models_.size());
  for (const auto& [type, _] : models_) types.push_back(type);

  util::ThreadPool::global().parallel_for(0, types.size(), [&](std::size_t i) {
    const data::DeviceType type = types[i];
    auto& model = *models_.at(type);
    util::Rng rng = util::Rng(cfg_.seed).fork(
        rounds_done_ * 100 + static_cast<std::uint64_t>(type));
    for (const auto& home : traces_) {
      for (std::size_t d = 0; d < home.devices.size(); ++d) {
        if (home.devices[d].spec.type != type) continue;
        model.train(home.devices[d], begin, end, cfg_.train, rng);
      }
    }
  });

  // Raw-data upload accounting (every sampled minute, 8 bytes/sample).
  for (const auto& home : traces_) {
    raw_bytes_uploaded_ +=
        static_cast<std::uint64_t>(home.devices.size()) * (end - begin) * 8;
  }
  ++rounds_done_;
}

const forecast::Forecaster& CloudTrainer::model_for_type(
    data::DeviceType type) const {
  const auto it = models_.find(type);
  if (it == models_.end()) {
    throw std::out_of_range("CloudTrainer: unknown device type");
  }
  return *it->second;
}

std::vector<data::DeviceType> CloudTrainer::model_types() const {
  std::vector<data::DeviceType> types;
  types.reserve(models_.size());
  for (const auto& [type, model] : models_) types.push_back(type);
  return types;
}

forecast::Forecaster& CloudTrainer::mutable_model_for_type(
    data::DeviceType type) {
  const auto it = models_.find(type);
  if (it == models_.end()) {
    throw std::out_of_range("CloudTrainer: unknown device type");
  }
  return *it->second;
}

double CloudTrainer::mean_test_accuracy(std::size_t begin,
                                        std::size_t end) const {
  util::RunningStats stats;
  for (double acc : per_agent_accuracy(begin, end)) stats.add(acc);
  return stats.mean();
}

std::vector<double> CloudTrainer::per_agent_accuracy(std::size_t begin,
                                                     std::size_t end) const {
  std::vector<double> out(traces_.size(), 0.0);
  util::ThreadPool::global().parallel_for(0, traces_.size(), [&](std::size_t h) {
    util::RunningStats stats;
    for (const auto& dev : traces_[h].devices) {
      const auto& model = model_for_type(dev.spec.type);
      const auto result = forecast::evaluate(model, dev, begin, end);
      if (result.samples > 0) stats.add(result.mean_accuracy);
    }
    out[h] = stats.mean();
  });
  return out;
}

}  // namespace pfdrl::fl
