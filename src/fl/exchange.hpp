// The federated exchange round, as one reusable engine.
//
// Both of the paper's federation loops — DFL forecast averaging every β
// hours (Alg. 1) and DRL base-layer averaging every γ hours (Eq. 7) —
// are the same communication pattern: every agent broadcasts a flat
// parameter slice along the topology, a star hub optionally relays leaf
// messages (the "cloud tax" of the centralized baselines), every agent
// drains its inbox in deterministic (sender, device_type) order, guards
// contribution shapes, and averages per device-type group. ParamExchange
// owns that whole round; DflTrainer and DrlFederation are thin
// configurations of it (gossip-averaging systems — DSGD, FedAvg — treat
// the exchange round as a primitive, and so do we).
//
// Zero-copy: outgoing slices become one net::Payload allocation each; the
// bus fans out refcounted handles, so a full-mesh broadcast is O(1)
// payload allocations regardless of receiver count. The engine reports
// the per-round allocation count as `exchange.payload_copies`.
//
// Determinism: inboxes are sorted by (sender, device_type) before
// averaging and items are processed in caller order, so results are
// bit-reproducible regardless of delivery interleaving — the property
// the fixed-seed golden test pins down.
//
// Degradation: rounds are deadline-based when ExchangePolicy asks for it.
// Each round drains whatever arrived by the per-round deadline (in
// simulated time), discards stale leftovers from earlier rounds and
// duplicate deliveries, aggregates the quorum that made it with a
// participation-weighted average (each unique arrival weighs 1/K), and
// falls back to local-only parameters when the quorum is missed. Crashed
// residences skip the round entirely; the star-relay hub path retries
// missing leaf contributions with backoff. Every degradation decision is
// observable through the exchange.* and fault.* metric families — see
// docs/robustness.md for the exact semantics the tests pin.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "fl/secure_agg.hpp"
#include "net/bus.hpp"
#include "net/fault.hpp"

namespace pfdrl::obs {
class MetricsRegistry;
}

namespace pfdrl::fl {

/// One (agent, device) participant in an exchange round.
struct ExchangeItem {
  /// Residence / agent id on the bus.
  net::AgentId agent = 0;
  /// Device type — the aggregation group key (homologous models only).
  std::uint32_t device_type = 0;
  /// The shared slice this item broadcasts and averages over (for PFDRL
  /// this is the α-layer base prefix; for DFL the full parameter vector).
  std::span<const double> send;
  /// Optional in-place destination covering at least send.size() values
  /// (typically the network's flat parameter span). When non-empty the
  /// grouped average is written via fedavg_prefix — Eq. 7 lands directly
  /// in the live parameters and the untouched suffix is Eq. 8's
  /// personalization layers. When empty the engine averages into scratch
  /// and hands the result to the commit callback instead.
  std::span<double> in_place;
};

/// Robustness policy for a round: how long to wait, how many peers are
/// enough, how hard the star hub tries, and which residences are down.
/// The default policy reproduces the original always-everything round.
struct ExchangePolicy {
  /// Per-round deadline in simulated seconds; contributions whose
  /// Message::arrival_s exceeds it are discarded as late. 0 = no
  /// deadline (drain everything from the current round).
  double round_deadline_s = 0.0;
  /// Minimum fraction of an item's nominal aggregation group (own
  /// contribution included) that must arrive for averaging; below it the
  /// item falls back to its local parameters. 0 disables the gate
  /// (Options::min_group still applies).
  double quorum_fraction = 0.0;
  /// Star topology only: retransmission attempts per missing leaf
  /// contribution on the leaf->hub path. 0 disables retries.
  std::size_t hub_retries = 2;
  /// Extra simulated arrival delay per retry attempt (backoff).
  double retry_backoff_s = 0.05;
  /// Crash windows and compute stragglers, per residence.
  net::FailureSchedule failures{};

  [[nodiscard]] bool degraded() const noexcept {
    return round_deadline_s > 0.0 || quorum_fraction > 0.0 ||
           !failures.empty();
  }
};

/// What one round did (callers fold these into their own dfl.* / drl.*
/// metric namespaces; the engine also records exchange.* instruments).
struct ExchangeStats {
  /// Peer contributions merged after the shape guard.
  std::uint64_t accepted = 0;
  /// Contributions rejected by the shape guard.
  std::uint64_t rejected = 0;
  /// Hub relays performed (star topology only).
  std::uint64_t relayed = 0;
  /// Items whose group reached min_group and quorum and were averaged.
  std::uint64_t items_averaged = 0;
  /// Parameters overwritten by averaging, summed over items.
  std::uint64_t params_averaged = 0;
  /// Payload buffer allocations during the round (zero-copy accounting:
  /// one per broadcast item, never per receiver).
  std::uint64_t payload_allocations = 0;
  /// Duplicate deliveries collapsed by the (sender, device_type) dedupe
  /// — aggregation is idempotent under the bus's duplication fault.
  std::uint64_t duplicates = 0;
  /// Messages from older rounds discarded at drain (a restarted
  /// residence's crash backlog).
  std::uint64_t stale_msgs = 0;
  /// Current-round messages discarded for arriving past the deadline.
  std::uint64_t late_msgs = 0;
  /// Items whose group met the quorum fraction (counted only when the
  /// quorum gate is enabled).
  std::uint64_t quorum_met = 0;
  /// Items gated out by the quorum fraction (local fallback).
  std::uint64_t quorum_missed = 0;
  /// Live items that did not average this round for any reason (below
  /// min_group, or quorum missed) and kept local parameters — each one
  /// is an item-round of staleness.
  std::uint64_t local_fallbacks = 0;
  /// Items skipped because their residence is inside a crash window.
  std::uint64_t crashed_items = 0;
  /// Leaf->hub retransmissions attempted by the star relay path.
  std::uint64_t retries = 0;
};

class ParamExchange {
 public:
  struct Options {
    /// Kind stamped on outgoing messages.
    net::MessageKind kind = net::MessageKind::kForecastParams;
    /// Pairwise-mask broadcasts (groups of >= 2) so no neighbour sees raw
    /// parameters; the masked form is also the sender's own contribution,
    /// since masks only cancel under full group participation.
    const SecureAggregator* secure = nullptr;
    /// Minimum group size (own contribution included) to average at all;
    /// below it the item keeps its local parameters untouched.
    std::size_t min_group = 2;
    /// Sink for the exchange.* instruments; nullptr disables recording.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional caller-namespaced histogram for per-average group sizes
    /// (e.g. "dfl.agg_group_size"); empty records exchange.group_size
    /// only.
    std::string group_size_histogram;
    /// Deadline / quorum / retry / failure-schedule policy; the default
    /// reproduces the original always-everything round.
    ExchangePolicy policy{};
    /// Run the drain/filter/sort and per-item aggregation phases on the
    /// global thread pool (the sharded engine sets this when shards > 1).
    /// Results are bitwise identical to the serial path: every inbox and
    /// every item is independent, contributions are sorted before
    /// averaging, and stat counters are order-independent sums. The
    /// commit callback must then be safe to invoke concurrently for
    /// distinct items (both in-tree consumers write to per-item targets).
    bool parallel = false;
  };

  /// Invoked for every averaged item after its result landed; `averaged`
  /// aliases item.in_place for in-place items and engine scratch
  /// otherwise (consumers without a mutable flat span call
  /// set_parameters here; consumers with one use it to notify).
  using CommitFn =
      std::function<void(std::size_t item, std::span<const double> averaged)>;

  ParamExchange(net::MessageBus& bus, Options options);

  /// One full round: broadcast, optional star relay, drain, sort, shape
  /// guard, grouped average, commit. The star relay triggers off the
  /// bus's own topology. Items must be in deterministic caller order
  /// (ascending agent recommended); an agent may own several items.
  ExchangeStats round(std::span<const ExchangeItem> items,
                      std::uint64_t round_id, const CommitFn& commit);

 private:
  net::MessageBus& bus_;
  Options options_;
};

/// The same exchange round as ParamExchange, carved into per-shard
/// publish/apply stages so the dependency-driven round pipeline
/// (core::RoundPipeline, docs/scaling.md) can overlap one shard's
/// encode/route with another's compute instead of running the round
/// behind a global barrier.
///
/// Contract: construct once per pipelined run with items sorted
/// ascending by agent. For every round r, publish_shard(s, r) must run
/// before apply_shard(d, r) for every shard d that s broadcasts into
/// (readiness is the pipeline's job); within one shard the calls are
/// sequential. Outgoing payloads are refcounted net::Payload handles, so
/// a shard publishing round r+1 never invalidates the round-r frames a
/// slower neighbor is still aggregating — the handles ARE the double
/// buffer. Inboxes are drained generationally (MessageBus::drain_round):
/// round-r messages are extracted, older rounds are discarded as stale,
/// newer rounds stay parked.
///
/// Exclusions, enforced at construction: star topologies (the hub
/// relay/retry protocol is a whole-round barrier by nature) and fault
/// plans with stochastic draws (FaultPlan::deterministic_delivery() —
/// overlapped rounds would consume the shared per-bus fault stream in a
/// schedule-dependent order). Callers fall back to ParamExchange::round
/// for those configurations.
///
/// Stats accumulate across rounds (order-independent atomic sums, so
/// totals are bitwise identical to the per-round BSP stats);
/// record_metrics() folds exchange.*/fault.* deltas per segment instead
/// of per round.
class StagedExchange {
 public:
  StagedExchange(net::MessageBus& bus, ParamExchange::Options options,
                 std::vector<ExchangeItem> items);
  ~StagedExchange();

  StagedExchange(const StagedExchange&) = delete;
  StagedExchange& operator=(const StagedExchange&) = delete;

  /// Shard count, derived from the bus's attached router (1 when flat).
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_; }

  /// Phase 1 for `shard` at `round_id`: broadcast every live owned item
  /// and hand the shard's cross-shard pair batches over (flush_src).
  void publish_shard(std::size_t shard, std::uint64_t round_id);

  /// Phases 2+3 for `shard` at `round_id`: generational drain of the
  /// shard's inboxes, deadline filter, pinned (sender, device_type)
  /// sort, grouped average, commit. Every in-neighbor shard must have
  /// published `round_id` first.
  void apply_shard(std::size_t shard, std::uint64_t round_id,
                   const ParamExchange::CommitFn& commit);

  /// Cumulative stats over all staged rounds so far.
  [[nodiscard]] ExchangeStats stats() const;

  /// Fold exchange.* / fault.* metric deltas accumulated since the last
  /// call (or construction); `rounds_completed` is the number of staged
  /// rounds in the window. BSP records per round, the staged engine per
  /// segment — the counter totals agree.
  void record_metrics(std::uint64_t rounds_completed);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t shards_ = 1;
};

}  // namespace pfdrl::fl
