#include "fl/exchange.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <stdexcept>

#include "fl/aggregate.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::fl {

ParamExchange::ParamExchange(net::MessageBus& bus, Options options)
    : bus_(bus), options_(std::move(options)) {}

ExchangeStats ParamExchange::round(std::span<const ExchangeItem> items,
                                   std::uint64_t round_id,
                                   const CommitFn& commit) {
  ExchangeStats stats;
  const std::uint64_t allocations_before = net::Payload::allocations();
  const net::BusStats bus_before = bus_.stats();
  const ExchangePolicy& policy = options_.policy;
  const auto is_crashed = [&](net::AgentId a) {
    return policy.failures.crashed(a, round_id);
  };

  // Aggregation groups: the sorted agent list per device type. Needed
  // for secure masking (masks cancel exactly within a full group), to
  // know whether a device has homologous peers at all, and as the
  // *nominal* group size the quorum fraction is measured against —
  // crashed members still count toward the denominator, so a shrinking
  // live set shows up as a falling quorum fill, not a moving target.
  std::map<std::uint32_t, std::vector<net::AgentId>> groups;
  for (const auto& item : items) groups[item.device_type].push_back(item.agent);
  for (auto& [type, members] : groups) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }

  // Phase 1: every live item broadcasts its shared slice as one
  // refcounted payload; the bus fans out handles, not copies. Crashed
  // residences skip the round (no broadcast, no drain — their inbox
  // backlog is discarded as stale after restart). Stragglers start late:
  // their compute delay seeds Message::arrival_s, so with a deadline
  // their contributions tend to miss the cut at every receiver. The
  // (possibly masked) payload doubles as the sender's own contribution
  // in phase 3 — pairwise masks only cancel if every group member
  // contributes the masked form.
  std::vector<net::Payload> sent(items.size());
  std::vector<char> live(items.size(), 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    if (is_crashed(item.agent)) {
      live[i] = 0;
      ++stats.crashed_items;
      // A crashed residence's receivers hold stale delta mirrors (and
      // its quant error accumulator died with the process) — drop its
      // codec streams so the first post-restart broadcast is a keyframe.
      if (net::WireCodec* codec = bus_.codec(); codec != nullptr) {
        codec->reset_agent(item.agent);
      }
      continue;
    }
    const auto& group = groups[item.device_type];
    if (options_.secure != nullptr && group.size() > 1) {
      sent[i] = options_.secure->mask(item.agent, round_id, group, item.send);
    } else {
      sent[i] = std::vector<double>(item.send.begin(), item.send.end());
    }
    net::Message msg;
    msg.sender = item.agent;
    msg.kind = options_.kind;
    msg.device_type = item.device_type;
    msg.round = round_id;
    msg.arrival_s = policy.failures.compute_delay(item.agent);
    msg.payload = sent[i];
    bus_.broadcast(msg);
  }
  // Tick barrier: hand parked cross-shard traffic over to the inboxes as
  // one batch per shard pair, in pinned (src, dst) order. No-op without
  // an attached net::ShardRouter.
  bus_.flush_shard_batches();

  // Star topology: the hub relays leaf messages to the other leaves and
  // keeps a copy for its own aggregation — the "cloud aggregator" tax of
  // the centralized baselines. Relayed messages share the same payload
  // buffer as the original and accumulate the second hop's latency. When
  // the lossy leaf->hub link ate a contribution, the leaf retransmits
  // with backoff (up to policy.hub_retries attempts); a crashed hub
  // takes the whole round down — every leaf falls back to local.
  std::vector<net::Message> hub_keep;
  if (bus_.topology().kind() == net::TopologyKind::kStar && !is_crashed(0)) {
    auto hub_msgs = bus_.drain(0);
    if (policy.hub_retries > 0) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto& item = items[i];
        if (!live[i] || item.agent == 0) continue;
        const auto hub_has = [&] {
          return std::any_of(hub_msgs.begin(), hub_msgs.end(),
                             [&](const net::Message& m) {
                               return m.sender == item.agent &&
                                      m.device_type == item.device_type;
                             });
        };
        for (std::size_t attempt = 1;
             attempt <= policy.hub_retries && !hub_has(); ++attempt) {
          net::Message msg;
          msg.sender = item.agent;
          msg.kind = options_.kind;
          msg.device_type = item.device_type;
          msg.round = round_id;
          msg.arrival_s = policy.failures.compute_delay(item.agent) +
                          static_cast<double>(attempt) *
                              policy.retry_backoff_s;
          msg.payload = sent[i];
          ++stats.retries;
          bus_.send(0, msg);
          auto retried = bus_.drain(0);
          hub_msgs.insert(hub_msgs.end(),
                          std::make_move_iterator(retried.begin()),
                          std::make_move_iterator(retried.end()));
        }
      }
    }
    for (auto& m : hub_msgs) {
      for (std::size_t h = 1; h < bus_.num_agents(); ++h) {
        if (static_cast<net::AgentId>(h) == m.sender) continue;
        bus_.send(static_cast<net::AgentId>(h), m);
        ++stats.relayed;
      }
      // The hub already holds this copy in hand — it aggregates from it
      // directly instead of looping it back through the (possibly
      // faulty) network.
      hub_keep.push_back(std::move(m));
    }
  }

  // Phase 2: drain every live inbox, discard stale (older-round) and
  // late (past-deadline) deliveries, and sort the survivors by
  // (sender, device_type) so averaging order never depends on delivery
  // interleaving. Crashed agents keep their backlog for next time.
  // Inboxes are independent, so with Options::parallel this fans out on
  // the global pool; the counters are order-independent sums, so the
  // result is bitwise identical either way.
  const double deadline = policy.round_deadline_s;
  std::atomic<std::uint64_t> stale_msgs{0};
  std::atomic<std::uint64_t> late_msgs{0};
  std::vector<std::vector<net::Message>> inboxes(bus_.num_agents());
  const auto drain_inbox = [&](std::size_t h) {
    if (is_crashed(static_cast<net::AgentId>(h))) return;
    auto raw = bus_.drain(static_cast<net::AgentId>(h));
    if (h == 0 && !hub_keep.empty()) {
      raw.insert(raw.end(), std::make_move_iterator(hub_keep.begin()),
                 std::make_move_iterator(hub_keep.end()));
      hub_keep.clear();
    }
    auto& kept = inboxes[h];
    kept.reserve(raw.size());
    for (auto& m : raw) {
      if (m.round != round_id) {
        stale_msgs.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (deadline > 0.0 && m.arrival_s > deadline) {
        late_msgs.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      kept.push_back(std::move(m));
    }
    std::sort(kept.begin(), kept.end(),
              [](const net::Message& a, const net::Message& b) {
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.device_type < b.device_type;
              });
  };
  if (options_.parallel) {
    util::ThreadPool::global().parallel_for(0, bus_.num_agents(), drain_inbox);
  } else {
    for (std::size_t h = 0; h < bus_.num_agents(); ++h) drain_inbox(h);
  }
  stats.stale_msgs = stale_msgs.load();
  stats.late_msgs = late_msgs.load();

  obs::Histogram* group_hist = nullptr;
  obs::Histogram* caller_hist = nullptr;
  if (options_.metrics != nullptr) {
    group_hist = &options_.metrics->histogram("exchange.group_size",
                                              obs::Histogram::count_buckets());
    if (!options_.group_size_histogram.empty()) {
      caller_hist = &options_.metrics->histogram(
          options_.group_size_histogram, obs::Histogram::count_buckets());
    }
  }

  // Phase 3: participation-weighted grouped average. Contributions are
  // deduped per (sender, device_type) — duplicated deliveries collapse
  // to one vote, so every unique participant that made the deadline
  // weighs exactly 1/K in the mean. An item whose group misses the
  // quorum (or min_group) keeps its local parameters untouched: one more
  // item-round of staleness, never an average over garbage.
  // Items only read the drained inboxes and the sent payload copies and
  // write their own in_place span (or local scratch), so with
  // Options::parallel they fan out on the pool; per-item results and the
  // summed counters are bitwise identical to the serial path.
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> local_fallbacks{0};
  std::atomic<std::uint64_t> quorum_missed{0};
  std::atomic<std::uint64_t> quorum_met{0};
  std::atomic<std::uint64_t> items_averaged{0};
  std::atomic<std::uint64_t> params_averaged{0};
  const auto aggregate_item = [&](std::size_t i) {
    if (!live[i]) return;
    const auto& item = items[i];
    const std::size_t shared_len = item.send.size();
    std::vector<double> scratch;
    std::vector<std::span<const double>> contributions;
    contributions.push_back(sent[i]);
    bool have_prev = false;
    net::AgentId prev_sender = 0;
    for (const auto& m : inboxes[item.agent]) {
      if (m.device_type != item.device_type) continue;
      if (m.sender == item.agent) continue;  // echo guard
      if (have_prev && m.sender == prev_sender) {  // duplicate delivery
        duplicates.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      have_prev = true;
      prev_sender = m.sender;
      if (m.payload.size() != shared_len) {  // shape guard
        rejected.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      contributions.push_back(m.payload);
      accepted.fetch_add(1, std::memory_order_relaxed);
    }

    const std::size_t nominal = groups.at(item.device_type).size();
    std::size_t required = options_.min_group;
    if (policy.quorum_fraction > 0.0) {
      required = std::max(
          required, static_cast<std::size_t>(std::ceil(
                        policy.quorum_fraction * static_cast<double>(nominal))));
    }
    if (contributions.size() < required) {  // local fallback
      local_fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (policy.quorum_fraction > 0.0) {
        quorum_missed.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (policy.quorum_fraction > 0.0) {
      quorum_met.fetch_add(1, std::memory_order_relaxed);
    }

    std::span<const double> averaged;
    if (!item.in_place.empty()) {
      // Eq. 7 in place: the shared prefix of the live parameter span is
      // overwritten; the suffix (Eq. 8's personalization layers) is never
      // touched.
      fedavg_prefix(contributions, shared_len, item.in_place);
      averaged = std::span<const double>(item.in_place).subspan(0, shared_len);
    } else {
      scratch.assign(shared_len, 0.0);
      fedavg(contributions, scratch);
      averaged = scratch;
    }
    items_averaged.fetch_add(1, std::memory_order_relaxed);
    params_averaged.fetch_add(shared_len, std::memory_order_relaxed);
    if (group_hist != nullptr) {
      group_hist->observe(static_cast<double>(contributions.size()));
    }
    if (caller_hist != nullptr) {
      caller_hist->observe(static_cast<double>(contributions.size()));
    }
    if (commit) commit(i, averaged);
  };
  if (options_.parallel) {
    util::ThreadPool::global().parallel_for(0, items.size(), aggregate_item);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) aggregate_item(i);
  }
  stats.duplicates = duplicates.load();
  stats.rejected = rejected.load();
  stats.accepted = accepted.load();
  stats.local_fallbacks = local_fallbacks.load();
  stats.quorum_missed = quorum_missed.load();
  stats.quorum_met = quorum_met.load();
  stats.items_averaged = items_averaged.load();
  stats.params_averaged = params_averaged.load();

  stats.payload_allocations = net::Payload::allocations() - allocations_before;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.counter("exchange.rounds").add(1);
    reg.counter("exchange.items").add(items.size());
    reg.counter("exchange.payload_copies").add(stats.payload_allocations);
    reg.counter("exchange.relays").add(stats.relayed);
    reg.counter("exchange.quorum_met").add(stats.quorum_met);
    reg.counter("exchange.quorum_missed").add(stats.quorum_missed);
    reg.counter("exchange.stale_rounds").add(stats.local_fallbacks);
    reg.counter("exchange.stale_msgs").add(stats.stale_msgs);
    reg.counter("exchange.late_msgs").add(stats.late_msgs);
    reg.counter("exchange.duplicate_msgs").add(stats.duplicates);
    reg.counter("exchange.crashed_items").add(stats.crashed_items);
    reg.counter("exchange.retries").add(stats.retries);
    // fault.* — the run-wide fault ledger, folded as per-round deltas of
    // this bus's counters so both federation buses add into one family.
    const net::BusStats bus_after = bus_.stats();
    reg.counter("fault.drops")
        .add(bus_after.messages_dropped - bus_before.messages_dropped);
    reg.counter("fault.partition_drops")
        .add(bus_after.messages_partition_dropped -
             bus_before.messages_partition_dropped);
    reg.counter("fault.duplicates")
        .add(bus_after.messages_duplicated - bus_before.messages_duplicated);
    reg.counter("fault.delayed_msgs")
        .add(bus_after.messages_delayed - bus_before.messages_delayed);
    reg.counter("fault.crashes").add(stats.crashed_items);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// StagedExchange — ParamExchange::round carved into per-shard stages for
// the dependency-driven pipeline. Every semantic detail (crash handling,
// secure masking, stale/late filters, sort keys, quorum math, fedavg
// order) is the same code path as above; only the iteration boundaries
// and the lifetime of the sent-payload slots differ.

struct StagedExchange::Impl {
  net::MessageBus& bus;
  ParamExchange::Options options;
  std::vector<ExchangeItem> items;
  // Nominal aggregation groups, computed once — membership is a property
  // of the item set, not of any round.
  std::map<std::uint32_t, std::vector<net::AgentId>> groups;
  std::size_t shards = 1;
  // Contiguous per-shard slices (size shards + 1): items owned by shard s
  // are [item_begin[s], item_begin[s+1]), agents are
  // [agent_begin[s], agent_begin[s+1]). Contiguity holds because items
  // are sorted by agent and the shard map is monotone in the agent id.
  std::vector<std::size_t> item_begin;
  std::vector<std::size_t> agent_begin;
  // Persistent send slots: the refcounted handles are the double buffer.
  // publish_shard(s, r+1) overwrites a slot while inbox handles keep the
  // round-r allocation alive for any neighbor still aggregating it.
  std::vector<net::Payload> sent;
  std::vector<char> live;
  // Drained inboxes, indexed by agent. Shards touch disjoint agent
  // ranges, so no locking; cleared after phase 3 to release handles.
  std::vector<std::vector<net::Message>> inboxes;

  obs::Histogram* group_hist = nullptr;
  obs::Histogram* caller_hist = nullptr;

  // Cumulative order-independent sums — totals are bitwise identical to
  // the per-round BSP stats added up.
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> items_averaged{0};
  std::atomic<std::uint64_t> params_averaged{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> stale_msgs{0};
  std::atomic<std::uint64_t> late_msgs{0};
  std::atomic<std::uint64_t> quorum_met{0};
  std::atomic<std::uint64_t> quorum_missed{0};
  std::atomic<std::uint64_t> local_fallbacks{0};
  std::atomic<std::uint64_t> crashed_items{0};

  std::uint64_t allocations_at_ctor = 0;
  // record_metrics() window baselines (deltas fold per segment).
  ExchangeStats reported{};
  net::BusStats bus_reported{};
  std::uint64_t allocations_reported = 0;

  Impl(net::MessageBus& b, ParamExchange::Options o,
       std::vector<ExchangeItem> it)
      : bus(b), options(std::move(o)), items(std::move(it)) {
    if (bus.topology().kind() == net::TopologyKind::kStar) {
      throw std::logic_error(
          "StagedExchange: star hub relay is a whole-round protocol; use "
          "ParamExchange");
    }
    if (!bus.fault_plan().deterministic_delivery()) {
      throw std::logic_error(
          "StagedExchange: stochastic fault plan would draw the per-bus "
          "fault stream in schedule order; use ParamExchange");
    }
    for (std::size_t i = 1; i < items.size(); ++i) {
      if (items[i].agent < items[i - 1].agent) {
        throw std::invalid_argument(
            "StagedExchange: items must be sorted ascending by agent");
      }
    }
    for (const auto& item : items) {
      groups[item.device_type].push_back(item.agent);
    }
    for (auto& [type, members] : groups) {
      std::sort(members.begin(), members.end());
      members.erase(std::unique(members.begin(), members.end()),
                    members.end());
    }
    net::ShardRouter* router = bus.shard_router();
    shards = router != nullptr ? router->num_shards() : 1;
    const auto shard_of = [router](net::AgentId a) {
      return router != nullptr ? router->shard_of(a) : std::size_t{0};
    };
    item_begin.assign(shards + 1, items.size());
    item_begin[0] = 0;
    agent_begin.assign(shards + 1, bus.num_agents());
    agent_begin[0] = 0;
    std::size_t s = 0;
    for (std::size_t i = 0; i < items.size(); ++i) {
      const std::size_t is = shard_of(items[i].agent);
      while (s < is) item_begin[++s] = i;
    }
    s = 0;
    for (std::size_t a = 0; a < bus.num_agents(); ++a) {
      const std::size_t as = shard_of(static_cast<net::AgentId>(a));
      if (as < s) {
        throw std::logic_error("StagedExchange: non-monotone shard map");
      }
      while (s < as) agent_begin[++s] = a;
    }
    sent.resize(items.size());
    live.assign(items.size(), 1);
    inboxes.resize(bus.num_agents());
    allocations_at_ctor = net::Payload::allocations();
    allocations_reported = allocations_at_ctor;
    bus_reported = bus.stats();
    if (options.metrics != nullptr) {
      group_hist = &options.metrics->histogram(
          "exchange.group_size", obs::Histogram::count_buckets());
      if (!options.group_size_histogram.empty()) {
        caller_hist = &options.metrics->histogram(
            options.group_size_histogram, obs::Histogram::count_buckets());
      }
    }
  }

  void publish_shard(std::size_t s, std::uint64_t round_id) {
    const ExchangePolicy& policy = options.policy;
    for (std::size_t i = item_begin[s]; i < item_begin[s + 1]; ++i) {
      const auto& item = items[i];
      if (policy.failures.crashed(item.agent, round_id)) {
        live[i] = 0;
        crashed_items.fetch_add(1, std::memory_order_relaxed);
        if (net::WireCodec* codec = bus.codec(); codec != nullptr) {
          codec->reset_agent(item.agent);
        }
        continue;
      }
      live[i] = 1;
      const auto& group = groups.at(item.device_type);
      if (options.secure != nullptr && group.size() > 1) {
        sent[i] = options.secure->mask(item.agent, round_id, group, item.send);
      } else {
        sent[i] = std::vector<double>(item.send.begin(), item.send.end());
      }
      net::Message msg;
      msg.sender = item.agent;
      msg.kind = options.kind;
      msg.device_type = item.device_type;
      msg.round = round_id;
      msg.arrival_s = policy.failures.compute_delay(item.agent);
      msg.payload = sent[i];
      bus.broadcast(msg);
    }
    bus.flush_shard_batches_from(s);
  }

  void apply_shard(std::size_t s, std::uint64_t round_id,
                   const ParamExchange::CommitFn& commit) {
    const ExchangePolicy& policy = options.policy;
    const double deadline = policy.round_deadline_s;

    // Phase 2 for this shard's agents: generational drain, stale/late
    // filter, pinned (sender, device_type) sort. Item-less agents drain
    // too — their inboxes must not pile up across rounds. Crashed agents
    // keep their backlog; a later drain_round discards it as stale, the
    // same totals as BSP's next-round drain.
    std::size_t stale = 0;
    std::uint64_t late = 0;
    for (std::size_t a = agent_begin[s]; a < agent_begin[s + 1]; ++a) {
      const auto agent = static_cast<net::AgentId>(a);
      if (policy.failures.crashed(agent, round_id)) continue;
      auto raw = bus.drain_round(agent, round_id, &stale);
      auto& kept = inboxes[a];
      kept.clear();
      kept.reserve(raw.size());
      for (auto& m : raw) {
        if (deadline > 0.0 && m.arrival_s > deadline) {
          ++late;
          continue;
        }
        kept.push_back(std::move(m));
      }
      std::sort(kept.begin(), kept.end(),
                [](const net::Message& x, const net::Message& y) {
                  if (x.sender != y.sender) return x.sender < y.sender;
                  return x.device_type < y.device_type;
                });
    }
    stale_msgs.fetch_add(stale, std::memory_order_relaxed);
    late_msgs.fetch_add(late, std::memory_order_relaxed);

    // Phase 3 for this shard's items: identical aggregation semantics to
    // ParamExchange (echo guard, dup collapse, shape guard, quorum
    // against the nominal denominator, fedavg in caller item order).
    for (std::size_t i = item_begin[s]; i < item_begin[s + 1]; ++i) {
      if (!live[i]) continue;
      const auto& item = items[i];
      const std::size_t shared_len = item.send.size();
      std::vector<double> scratch;
      std::vector<std::span<const double>> contributions;
      contributions.push_back(sent[i]);
      bool have_prev = false;
      net::AgentId prev_sender = 0;
      for (const auto& m : inboxes[item.agent]) {
        if (m.device_type != item.device_type) continue;
        if (m.sender == item.agent) continue;  // echo guard
        if (have_prev && m.sender == prev_sender) {
          duplicates.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        have_prev = true;
        prev_sender = m.sender;
        if (m.payload.size() != shared_len) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        contributions.push_back(m.payload);
        accepted.fetch_add(1, std::memory_order_relaxed);
      }

      const std::size_t nominal = groups.at(item.device_type).size();
      std::size_t required = options.min_group;
      if (policy.quorum_fraction > 0.0) {
        required = std::max(
            required,
            static_cast<std::size_t>(std::ceil(
                policy.quorum_fraction * static_cast<double>(nominal))));
      }
      if (contributions.size() < required) {
        local_fallbacks.fetch_add(1, std::memory_order_relaxed);
        if (policy.quorum_fraction > 0.0) {
          quorum_missed.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (policy.quorum_fraction > 0.0) {
        quorum_met.fetch_add(1, std::memory_order_relaxed);
      }

      std::span<const double> averaged;
      if (!item.in_place.empty()) {
        fedavg_prefix(contributions, shared_len, item.in_place);
        averaged =
            std::span<const double>(item.in_place).subspan(0, shared_len);
      } else {
        scratch.assign(shared_len, 0.0);
        fedavg(contributions, scratch);
        averaged = scratch;
      }
      items_averaged.fetch_add(1, std::memory_order_relaxed);
      params_averaged.fetch_add(shared_len, std::memory_order_relaxed);
      if (group_hist != nullptr) {
        group_hist->observe(static_cast<double>(contributions.size()));
      }
      if (caller_hist != nullptr) {
        caller_hist->observe(static_cast<double>(contributions.size()));
      }
      if (commit) commit(i, averaged);
    }

    // Release the round's payload handles for this shard's agents.
    for (std::size_t a = agent_begin[s]; a < agent_begin[s + 1]; ++a) {
      inboxes[a].clear();
    }
  }

  [[nodiscard]] ExchangeStats snapshot() const {
    ExchangeStats out;
    out.accepted = accepted.load();
    out.rejected = rejected.load();
    out.items_averaged = items_averaged.load();
    out.params_averaged = params_averaged.load();
    out.duplicates = duplicates.load();
    out.stale_msgs = stale_msgs.load();
    out.late_msgs = late_msgs.load();
    out.quorum_met = quorum_met.load();
    out.quorum_missed = quorum_missed.load();
    out.local_fallbacks = local_fallbacks.load();
    out.crashed_items = crashed_items.load();
    out.payload_allocations = net::Payload::allocations() - allocations_at_ctor;
    return out;
  }
};

StagedExchange::StagedExchange(net::MessageBus& bus,
                               ParamExchange::Options options,
                               std::vector<ExchangeItem> items)
    : impl_(std::make_unique<Impl>(bus, std::move(options), std::move(items))) {
  shards_ = impl_->shards;
  // While this session is live, a pair batch holding two round
  // generations is a broken pipeline invariant — have the router fail
  // fast instead of silently interleaving rounds.
  if (net::ShardRouter* router = impl_->bus.shard_router()) {
    router->set_strict_rounds(true);
  }
}

StagedExchange::~StagedExchange() {
  if (net::ShardRouter* router = impl_->bus.shard_router()) {
    router->set_strict_rounds(false);
  }
}

void StagedExchange::publish_shard(std::size_t shard, std::uint64_t round_id) {
  impl_->publish_shard(shard, round_id);
}

void StagedExchange::apply_shard(std::size_t shard, std::uint64_t round_id,
                                 const ParamExchange::CommitFn& commit) {
  impl_->apply_shard(shard, round_id, commit);
}

ExchangeStats StagedExchange::stats() const { return impl_->snapshot(); }

void StagedExchange::record_metrics(std::uint64_t rounds_completed) {
  Impl& im = *impl_;
  if (im.options.metrics == nullptr) return;
  const ExchangeStats cur = im.snapshot();
  const ExchangeStats& prev = im.reported;
  obs::MetricsRegistry& reg = *im.options.metrics;
  reg.counter("exchange.rounds").add(rounds_completed);
  reg.counter("exchange.items").add(im.items.size() * rounds_completed);
  reg.counter("exchange.payload_copies")
      .add(net::Payload::allocations() - im.allocations_reported);
  // No star relay path in the staged engine, but the counters must exist
  // so bsp and pipeline runs export the same exchange.* family.
  reg.counter("exchange.relays").add(0);
  reg.counter("exchange.retries").add(0);
  reg.counter("exchange.quorum_met").add(cur.quorum_met - prev.quorum_met);
  reg.counter("exchange.quorum_missed")
      .add(cur.quorum_missed - prev.quorum_missed);
  reg.counter("exchange.stale_rounds")
      .add(cur.local_fallbacks - prev.local_fallbacks);
  reg.counter("exchange.stale_msgs").add(cur.stale_msgs - prev.stale_msgs);
  reg.counter("exchange.late_msgs").add(cur.late_msgs - prev.late_msgs);
  reg.counter("exchange.duplicate_msgs")
      .add(cur.duplicates - prev.duplicates);
  reg.counter("exchange.crashed_items")
      .add(cur.crashed_items - prev.crashed_items);
  const net::BusStats bus_after = im.bus.stats();
  reg.counter("fault.drops")
      .add(bus_after.messages_dropped - im.bus_reported.messages_dropped);
  reg.counter("fault.partition_drops")
      .add(bus_after.messages_partition_dropped -
           im.bus_reported.messages_partition_dropped);
  reg.counter("fault.duplicates")
      .add(bus_after.messages_duplicated - im.bus_reported.messages_duplicated);
  reg.counter("fault.delayed_msgs")
      .add(bus_after.messages_delayed - im.bus_reported.messages_delayed);
  reg.counter("fault.crashes").add(cur.crashed_items - prev.crashed_items);
  im.reported = cur;
  im.bus_reported = bus_after;
  im.allocations_reported = net::Payload::allocations();
}

}  // namespace pfdrl::fl
