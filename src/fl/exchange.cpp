#include "fl/exchange.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>

#include "fl/aggregate.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::fl {

ParamExchange::ParamExchange(net::MessageBus& bus, Options options)
    : bus_(bus), options_(std::move(options)) {}

ExchangeStats ParamExchange::round(std::span<const ExchangeItem> items,
                                   std::uint64_t round_id,
                                   const CommitFn& commit) {
  ExchangeStats stats;
  const std::uint64_t allocations_before = net::Payload::allocations();
  const net::BusStats bus_before = bus_.stats();
  const ExchangePolicy& policy = options_.policy;
  const auto is_crashed = [&](net::AgentId a) {
    return policy.failures.crashed(a, round_id);
  };

  // Aggregation groups: the sorted agent list per device type. Needed
  // for secure masking (masks cancel exactly within a full group), to
  // know whether a device has homologous peers at all, and as the
  // *nominal* group size the quorum fraction is measured against —
  // crashed members still count toward the denominator, so a shrinking
  // live set shows up as a falling quorum fill, not a moving target.
  std::map<std::uint32_t, std::vector<net::AgentId>> groups;
  for (const auto& item : items) groups[item.device_type].push_back(item.agent);
  for (auto& [type, members] : groups) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }

  // Phase 1: every live item broadcasts its shared slice as one
  // refcounted payload; the bus fans out handles, not copies. Crashed
  // residences skip the round (no broadcast, no drain — their inbox
  // backlog is discarded as stale after restart). Stragglers start late:
  // their compute delay seeds Message::arrival_s, so with a deadline
  // their contributions tend to miss the cut at every receiver. The
  // (possibly masked) payload doubles as the sender's own contribution
  // in phase 3 — pairwise masks only cancel if every group member
  // contributes the masked form.
  std::vector<net::Payload> sent(items.size());
  std::vector<char> live(items.size(), 1);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    if (is_crashed(item.agent)) {
      live[i] = 0;
      ++stats.crashed_items;
      // A crashed residence's receivers hold stale delta mirrors (and
      // its quant error accumulator died with the process) — drop its
      // codec streams so the first post-restart broadcast is a keyframe.
      if (net::WireCodec* codec = bus_.codec(); codec != nullptr) {
        codec->reset_agent(item.agent);
      }
      continue;
    }
    const auto& group = groups[item.device_type];
    if (options_.secure != nullptr && group.size() > 1) {
      sent[i] = options_.secure->mask(item.agent, round_id, group, item.send);
    } else {
      sent[i] = std::vector<double>(item.send.begin(), item.send.end());
    }
    net::Message msg;
    msg.sender = item.agent;
    msg.kind = options_.kind;
    msg.device_type = item.device_type;
    msg.round = round_id;
    msg.arrival_s = policy.failures.compute_delay(item.agent);
    msg.payload = sent[i];
    bus_.broadcast(msg);
  }
  // Tick barrier: hand parked cross-shard traffic over to the inboxes as
  // one batch per shard pair, in pinned (src, dst) order. No-op without
  // an attached net::ShardRouter.
  bus_.flush_shard_batches();

  // Star topology: the hub relays leaf messages to the other leaves and
  // keeps a copy for its own aggregation — the "cloud aggregator" tax of
  // the centralized baselines. Relayed messages share the same payload
  // buffer as the original and accumulate the second hop's latency. When
  // the lossy leaf->hub link ate a contribution, the leaf retransmits
  // with backoff (up to policy.hub_retries attempts); a crashed hub
  // takes the whole round down — every leaf falls back to local.
  std::vector<net::Message> hub_keep;
  if (bus_.topology().kind() == net::TopologyKind::kStar && !is_crashed(0)) {
    auto hub_msgs = bus_.drain(0);
    if (policy.hub_retries > 0) {
      for (std::size_t i = 0; i < items.size(); ++i) {
        const auto& item = items[i];
        if (!live[i] || item.agent == 0) continue;
        const auto hub_has = [&] {
          return std::any_of(hub_msgs.begin(), hub_msgs.end(),
                             [&](const net::Message& m) {
                               return m.sender == item.agent &&
                                      m.device_type == item.device_type;
                             });
        };
        for (std::size_t attempt = 1;
             attempt <= policy.hub_retries && !hub_has(); ++attempt) {
          net::Message msg;
          msg.sender = item.agent;
          msg.kind = options_.kind;
          msg.device_type = item.device_type;
          msg.round = round_id;
          msg.arrival_s = policy.failures.compute_delay(item.agent) +
                          static_cast<double>(attempt) *
                              policy.retry_backoff_s;
          msg.payload = sent[i];
          ++stats.retries;
          bus_.send(0, msg);
          auto retried = bus_.drain(0);
          hub_msgs.insert(hub_msgs.end(),
                          std::make_move_iterator(retried.begin()),
                          std::make_move_iterator(retried.end()));
        }
      }
    }
    for (auto& m : hub_msgs) {
      for (std::size_t h = 1; h < bus_.num_agents(); ++h) {
        if (static_cast<net::AgentId>(h) == m.sender) continue;
        bus_.send(static_cast<net::AgentId>(h), m);
        ++stats.relayed;
      }
      // The hub already holds this copy in hand — it aggregates from it
      // directly instead of looping it back through the (possibly
      // faulty) network.
      hub_keep.push_back(std::move(m));
    }
  }

  // Phase 2: drain every live inbox, discard stale (older-round) and
  // late (past-deadline) deliveries, and sort the survivors by
  // (sender, device_type) so averaging order never depends on delivery
  // interleaving. Crashed agents keep their backlog for next time.
  // Inboxes are independent, so with Options::parallel this fans out on
  // the global pool; the counters are order-independent sums, so the
  // result is bitwise identical either way.
  const double deadline = policy.round_deadline_s;
  std::atomic<std::uint64_t> stale_msgs{0};
  std::atomic<std::uint64_t> late_msgs{0};
  std::vector<std::vector<net::Message>> inboxes(bus_.num_agents());
  const auto drain_inbox = [&](std::size_t h) {
    if (is_crashed(static_cast<net::AgentId>(h))) return;
    auto raw = bus_.drain(static_cast<net::AgentId>(h));
    if (h == 0 && !hub_keep.empty()) {
      raw.insert(raw.end(), std::make_move_iterator(hub_keep.begin()),
                 std::make_move_iterator(hub_keep.end()));
      hub_keep.clear();
    }
    auto& kept = inboxes[h];
    kept.reserve(raw.size());
    for (auto& m : raw) {
      if (m.round != round_id) {
        stale_msgs.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (deadline > 0.0 && m.arrival_s > deadline) {
        late_msgs.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      kept.push_back(std::move(m));
    }
    std::sort(kept.begin(), kept.end(),
              [](const net::Message& a, const net::Message& b) {
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.device_type < b.device_type;
              });
  };
  if (options_.parallel) {
    util::ThreadPool::global().parallel_for(0, bus_.num_agents(), drain_inbox);
  } else {
    for (std::size_t h = 0; h < bus_.num_agents(); ++h) drain_inbox(h);
  }
  stats.stale_msgs = stale_msgs.load();
  stats.late_msgs = late_msgs.load();

  obs::Histogram* group_hist = nullptr;
  obs::Histogram* caller_hist = nullptr;
  if (options_.metrics != nullptr) {
    group_hist = &options_.metrics->histogram("exchange.group_size",
                                              obs::Histogram::count_buckets());
    if (!options_.group_size_histogram.empty()) {
      caller_hist = &options_.metrics->histogram(
          options_.group_size_histogram, obs::Histogram::count_buckets());
    }
  }

  // Phase 3: participation-weighted grouped average. Contributions are
  // deduped per (sender, device_type) — duplicated deliveries collapse
  // to one vote, so every unique participant that made the deadline
  // weighs exactly 1/K in the mean. An item whose group misses the
  // quorum (or min_group) keeps its local parameters untouched: one more
  // item-round of staleness, never an average over garbage.
  // Items only read the drained inboxes and the sent payload copies and
  // write their own in_place span (or local scratch), so with
  // Options::parallel they fan out on the pool; per-item results and the
  // summed counters are bitwise identical to the serial path.
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> local_fallbacks{0};
  std::atomic<std::uint64_t> quorum_missed{0};
  std::atomic<std::uint64_t> quorum_met{0};
  std::atomic<std::uint64_t> items_averaged{0};
  std::atomic<std::uint64_t> params_averaged{0};
  const auto aggregate_item = [&](std::size_t i) {
    if (!live[i]) return;
    const auto& item = items[i];
    const std::size_t shared_len = item.send.size();
    std::vector<double> scratch;
    std::vector<std::span<const double>> contributions;
    contributions.push_back(sent[i]);
    bool have_prev = false;
    net::AgentId prev_sender = 0;
    for (const auto& m : inboxes[item.agent]) {
      if (m.device_type != item.device_type) continue;
      if (m.sender == item.agent) continue;  // echo guard
      if (have_prev && m.sender == prev_sender) {  // duplicate delivery
        duplicates.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      have_prev = true;
      prev_sender = m.sender;
      if (m.payload.size() != shared_len) {  // shape guard
        rejected.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      contributions.push_back(m.payload);
      accepted.fetch_add(1, std::memory_order_relaxed);
    }

    const std::size_t nominal = groups.at(item.device_type).size();
    std::size_t required = options_.min_group;
    if (policy.quorum_fraction > 0.0) {
      required = std::max(
          required, static_cast<std::size_t>(std::ceil(
                        policy.quorum_fraction * static_cast<double>(nominal))));
    }
    if (contributions.size() < required) {  // local fallback
      local_fallbacks.fetch_add(1, std::memory_order_relaxed);
      if (policy.quorum_fraction > 0.0) {
        quorum_missed.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    if (policy.quorum_fraction > 0.0) {
      quorum_met.fetch_add(1, std::memory_order_relaxed);
    }

    std::span<const double> averaged;
    if (!item.in_place.empty()) {
      // Eq. 7 in place: the shared prefix of the live parameter span is
      // overwritten; the suffix (Eq. 8's personalization layers) is never
      // touched.
      fedavg_prefix(contributions, shared_len, item.in_place);
      averaged = std::span<const double>(item.in_place).subspan(0, shared_len);
    } else {
      scratch.assign(shared_len, 0.0);
      fedavg(contributions, scratch);
      averaged = scratch;
    }
    items_averaged.fetch_add(1, std::memory_order_relaxed);
    params_averaged.fetch_add(shared_len, std::memory_order_relaxed);
    if (group_hist != nullptr) {
      group_hist->observe(static_cast<double>(contributions.size()));
    }
    if (caller_hist != nullptr) {
      caller_hist->observe(static_cast<double>(contributions.size()));
    }
    if (commit) commit(i, averaged);
  };
  if (options_.parallel) {
    util::ThreadPool::global().parallel_for(0, items.size(), aggregate_item);
  } else {
    for (std::size_t i = 0; i < items.size(); ++i) aggregate_item(i);
  }
  stats.duplicates = duplicates.load();
  stats.rejected = rejected.load();
  stats.accepted = accepted.load();
  stats.local_fallbacks = local_fallbacks.load();
  stats.quorum_missed = quorum_missed.load();
  stats.quorum_met = quorum_met.load();
  stats.items_averaged = items_averaged.load();
  stats.params_averaged = params_averaged.load();

  stats.payload_allocations = net::Payload::allocations() - allocations_before;
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.counter("exchange.rounds").add(1);
    reg.counter("exchange.items").add(items.size());
    reg.counter("exchange.payload_copies").add(stats.payload_allocations);
    reg.counter("exchange.relays").add(stats.relayed);
    reg.counter("exchange.quorum_met").add(stats.quorum_met);
    reg.counter("exchange.quorum_missed").add(stats.quorum_missed);
    reg.counter("exchange.stale_rounds").add(stats.local_fallbacks);
    reg.counter("exchange.stale_msgs").add(stats.stale_msgs);
    reg.counter("exchange.late_msgs").add(stats.late_msgs);
    reg.counter("exchange.duplicate_msgs").add(stats.duplicates);
    reg.counter("exchange.crashed_items").add(stats.crashed_items);
    reg.counter("exchange.retries").add(stats.retries);
    // fault.* — the run-wide fault ledger, folded as per-round deltas of
    // this bus's counters so both federation buses add into one family.
    const net::BusStats bus_after = bus_.stats();
    reg.counter("fault.drops")
        .add(bus_after.messages_dropped - bus_before.messages_dropped);
    reg.counter("fault.partition_drops")
        .add(bus_after.messages_partition_dropped -
             bus_before.messages_partition_dropped);
    reg.counter("fault.duplicates")
        .add(bus_after.messages_duplicated - bus_before.messages_duplicated);
    reg.counter("fault.delayed_msgs")
        .add(bus_after.messages_delayed - bus_before.messages_delayed);
    reg.counter("fault.crashes").add(stats.crashed_items);
  }
  return stats;
}

}  // namespace pfdrl::fl
