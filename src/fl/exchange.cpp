#include "fl/exchange.hpp"

#include <algorithm>
#include <map>

#include "fl/aggregate.hpp"
#include "obs/metrics.hpp"

namespace pfdrl::fl {

ParamExchange::ParamExchange(net::MessageBus& bus, Options options)
    : bus_(bus), options_(std::move(options)) {}

ExchangeStats ParamExchange::round(std::span<const ExchangeItem> items,
                                   std::uint64_t round_id,
                                   const CommitFn& commit) {
  ExchangeStats stats;
  const std::uint64_t allocations_before = net::Payload::allocations();

  // Aggregation groups: the sorted agent list per device type. Needed
  // both for secure masking (masks cancel exactly within a full group)
  // and to know whether a device has any homologous peers at all.
  std::map<std::uint32_t, std::vector<net::AgentId>> groups;
  for (const auto& item : items) groups[item.device_type].push_back(item.agent);
  for (auto& [type, members] : groups) {
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()), members.end());
  }

  // Phase 1: every item broadcasts its shared slice as one refcounted
  // payload; the bus fans out handles, not copies. The (possibly masked)
  // payload doubles as the sender's own contribution in phase 2 —
  // pairwise masks only cancel if every group member contributes the
  // masked form.
  std::vector<net::Payload> sent(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    const auto& group = groups[item.device_type];
    if (options_.secure != nullptr && group.size() > 1) {
      sent[i] = options_.secure->mask(item.agent, round_id, group, item.send);
    } else {
      sent[i] = std::vector<double>(item.send.begin(), item.send.end());
    }
    net::Message msg;
    msg.sender = item.agent;
    msg.kind = options_.kind;
    msg.device_type = item.device_type;
    msg.round = round_id;
    msg.payload = sent[i];
    bus_.broadcast(msg);
  }

  // Star topology: the hub relays leaf messages to the other leaves and
  // keeps a copy for its own aggregation — the "cloud aggregator" tax of
  // the centralized baselines. Relayed messages share the same payload
  // buffer as the original.
  if (bus_.topology().kind() == net::TopologyKind::kStar) {
    auto hub_msgs = bus_.drain(0);
    for (auto& m : hub_msgs) {
      for (std::size_t h = 1; h < bus_.num_agents(); ++h) {
        if (static_cast<net::AgentId>(h) == m.sender) continue;
        bus_.send(static_cast<net::AgentId>(h), m);
        ++stats.relayed;
      }
      bus_.send(0, std::move(m));
    }
  }

  // Phase 2: drain every inbox and sort by (sender, device_type) so
  // averaging order never depends on delivery interleaving.
  std::vector<std::vector<net::Message>> inboxes(bus_.num_agents());
  for (std::size_t h = 0; h < bus_.num_agents(); ++h) {
    inboxes[h] = bus_.drain(static_cast<net::AgentId>(h));
    std::sort(inboxes[h].begin(), inboxes[h].end(),
              [](const net::Message& a, const net::Message& b) {
                if (a.sender != b.sender) return a.sender < b.sender;
                return a.device_type < b.device_type;
              });
  }

  obs::Histogram* group_hist = nullptr;
  obs::Histogram* caller_hist = nullptr;
  if (options_.metrics != nullptr) {
    group_hist = &options_.metrics->histogram("exchange.group_size",
                                              obs::Histogram::count_buckets());
    if (!options_.group_size_histogram.empty()) {
      caller_hist = &options_.metrics->histogram(
          options_.group_size_histogram, obs::Histogram::count_buckets());
    }
  }

  std::vector<double> scratch;
  std::vector<std::span<const double>> contributions;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    const std::size_t shared_len = item.send.size();
    contributions.clear();
    contributions.push_back(sent[i]);
    for (const auto& m : inboxes[item.agent]) {
      if (m.device_type != item.device_type) continue;
      if (m.payload.size() != shared_len) {  // shape guard
        ++stats.rejected;
        continue;
      }
      contributions.push_back(m.payload);
      ++stats.accepted;
    }
    if (contributions.size() < options_.min_group) continue;  // no peers

    std::span<const double> averaged;
    if (!item.in_place.empty()) {
      // Eq. 7 in place: the shared prefix of the live parameter span is
      // overwritten; the suffix (Eq. 8's personalization layers) is never
      // touched.
      fedavg_prefix(contributions, shared_len, item.in_place);
      averaged = std::span<const double>(item.in_place).subspan(0, shared_len);
    } else {
      scratch.assign(shared_len, 0.0);
      fedavg(contributions, scratch);
      averaged = scratch;
    }
    ++stats.items_averaged;
    stats.params_averaged += shared_len;
    if (group_hist != nullptr) {
      group_hist->observe(static_cast<double>(contributions.size()));
    }
    if (caller_hist != nullptr) {
      caller_hist->observe(static_cast<double>(contributions.size()));
    }
    if (commit) commit(i, averaged);
  }

  stats.payload_allocations = net::Payload::allocations() - allocations_before;
  if (options_.metrics != nullptr) {
    options_.metrics->counter("exchange.rounds").add(1);
    options_.metrics->counter("exchange.items").add(items.size());
    options_.metrics->counter("exchange.payload_copies")
        .add(stats.payload_allocations);
    options_.metrics->counter("exchange.relays").add(stats.relayed);
  }
  return stats;
}

}  // namespace pfdrl::fl
