// Run-wide observability layer (metrics + lightweight tracing).
//
// A MetricsRegistry is a thread-safe bag of named instruments:
//   * Counter   — monotonically increasing uint64 (events, bytes);
//   * Gauge     — last-value double (epsilon, queue depth);
//   * Histogram — fixed-bucket distribution of doubles (round wall times,
//                 aggregation group sizes);
//   * Series    — append-only time series (per-round trajectories).
//
// Instruments are lock-free on the hot path (atomics; Series takes a
// mutex but is only appended once per round); the registry map itself is
// mutex-guarded and hands out references that stay valid for the
// registry's lifetime. Exporters emit a single JSON document or a flat
// CSV so every run — CLI, bench, test — can leave a machine-readable
// sidecar of what it actually did.
//
// Naming convention: `<module>.<what>[_<unit>]`, e.g. `ems.round_seconds`
// (see docs/observability.md for the full catalogue).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/bus.hpp"
#include "util/shard.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Overwrite with an externally accumulated total (used when folding a
  /// component's own cumulative stats — e.g. BusStats — into the
  /// registry; repeated folds must not double-count).
  void set(std::uint64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  /// Raise to `value` if larger (high-water marks).
  void update_max(double value) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-layout histogram: bucket i counts observations <= bounds[i];
/// anything above the last bound lands in the overflow bucket. The
/// layout is frozen at construction so concurrent observes need no
/// coordination beyond per-bucket atomic increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t overflow_count() const noexcept {
    return overflow_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  void reset() noexcept;

  /// Standard layouts. Wall-time buckets span 1 µs .. ~134 s (doubling);
  /// count buckets are 1, 2, 4, ... 2^15.
  static std::vector<double> time_buckets();
  static std::vector<double> count_buckets();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Append-only trajectory (one point per round). Mutex-guarded — intended
/// for round-granularity appends, not per-step hot paths.
class Series {
 public:
  void append(double value);
  [[nodiscard]] std::vector<double> values() const;
  [[nodiscard]] std::size_t size() const;
  void reset();
  /// Replace the trajectory wholesale (warm-restart persistence).
  void restore(std::vector<double> values);

 private:
  mutable std::mutex mutex_;
  std::vector<double> values_;
};

/// Deterministic slice of a registry for warm-restart persistence:
/// counters, gauges and series — the instruments whose values a resumed
/// run must continue from. Histograms are deliberately excluded: they
/// hold wall-time distributions, which are not reproducible and restart
/// from empty on resume.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, std::vector<double>> series;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. The returned reference stays valid for the
  /// registry's lifetime. Requesting an existing name as a different
  /// instrument kind throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bucket_bounds` applies only on first creation (the layout is part
  /// of the instrument's identity); defaults to time_buckets().
  Histogram& histogram(std::string_view name,
                       std::vector<double> bucket_bounds = {});
  Series& series(std::string_view name);

  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const;
  /// Zero every instrument (layouts and names survive).
  void reset();

  /// Snapshot / restore the deterministic instruments (counters, gauges,
  /// series; histograms excluded — see MetricsSnapshot). Restore
  /// find-or-creates each named instrument and overwrites its value;
  /// instruments absent from the snapshot are left untouched.
  [[nodiscard]] MetricsSnapshot capture_state() const;
  void restore_state(const MetricsSnapshot& snapshot);

  /// One JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{...},"series":{...}} with names sorted.
  [[nodiscard]] std::string to_json() const;
  /// Flat rows: kind,name,field,value.
  [[nodiscard]] std::string to_csv() const;
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

  /// Process-wide default registry (what components fall back to when no
  /// explicit sink is injected).
  static MetricsRegistry& global();

 private:
  struct Entry {
    // Exactly one is set; kept as separate slots so references returned
    // to callers are stable and strongly typed.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Series> series;
  };

  Entry& entry(std::string_view name);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// RAII span timer: records elapsed wall seconds into a histogram (and
/// optionally appends to a per-round series) when it goes out of scope.
class SpanTimer {
 public:
  explicit SpanTimer(Histogram& sink, Series* trajectory = nullptr) noexcept
      : sink_(&sink), trajectory_(trajectory) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { stop(); }

  /// Record now and disarm; returns the elapsed seconds recorded.
  double stop();

 private:
  Histogram* sink_;
  Series* trajectory_;
  util::Stopwatch watch_;
};

/// Fold a bus's cumulative BusStats into `<prefix>.messages_sent`,
/// `.messages_delivered`, `.messages_dropped`, `.bytes_on_wire` counters
/// and a `<prefix>.simulated_transfer_seconds` gauge. Idempotent (set,
/// not add) so it can run after every round.
void record_bus_stats(MetricsRegistry& registry, std::string_view prefix,
                      const net::BusStats& stats);

/// Fold a shard router's cumulative stats into `<prefix>.shard_batches`,
/// `.shard_batched_msgs`, `.shard_batched_bytes` counters and
/// `<prefix>.shard_flushes` / `.shard_max_queue_depth` gauges — the
/// batched cross-shard side of the record_bus_stats ledger (one batch
/// per shard pair per tick vs. one send per message). Idempotent (set,
/// not add) so it can run after every round.
void record_shard_router_stats(MetricsRegistry& registry,
                               std::string_view prefix,
                               const net::ShardRouterStats& stats);

/// Fold a wire codec's cumulative stats into `<prefix>.raw_bytes`,
/// `.coded_bytes`, `.frames`, `.repeat_frames`, `.raw_escapes`,
/// `.encode_ns`, `.decode_ns` counters and a `<prefix>.ratio` gauge
/// (raw/coded — the achieved compression). Idempotent (set, not add) so
/// it can run after every round. Prefix convention: `wire` for the
/// combined pipeline ledger, `wire.forecast` / `wire.drl` per bus.
void record_codec_stats(MetricsRegistry& registry, std::string_view prefix,
                        const net::CodecStats& stats);

/// Fold one sharded dispatch's per-shard wall-clock timings into a
/// `<prefix>.imbalance` gauge (max/mean shard seconds — 1.0 is perfectly
/// balanced) and a `<prefix>.seconds` histogram (one observation per
/// shard). No-op for an unsharded dispatch (empty timing).
void record_shard_timing(MetricsRegistry& registry, std::string_view prefix,
                         const util::ShardTiming& timing);

/// Fold a pool's cumulative counters into `<prefix>.tasks_executed`,
/// `.tasks_stolen` counters and a `<prefix>.max_queue_depth` gauge.
void record_thread_pool_stats(MetricsRegistry& registry,
                              std::string_view prefix,
                              const util::ThreadPoolStats& stats);

/// Fold the process-wide nn::Workspace telemetry into an
/// `nn.workspace_allocs` counter (heap acquisitions by all arenas since
/// process start — flat once the steady state is reached) and an
/// `nn.scratch_bytes` gauge (bytes currently held by live arenas).
/// Idempotent (set, not add) so it can run after every round.
void record_nn_workspace_stats(MetricsRegistry& registry);

/// Fold the process-wide nn::kernels telemetry into an
/// `nn.kernel_train_batches` counter (train_batch calls across every
/// model since process start) and an `nn.kernel_lanes` gauge (the fixed
/// accumulator-lane count of the strip-mined reduction kernels — a
/// build constant, recorded so dumps are self-describing). Idempotent
/// (set, not add) so it can run after every round.
void record_nn_kernel_stats(MetricsRegistry& registry);

/// Fold the process-wide fused-batch telemetry (nn/fused.hpp) into an
/// `nn.fused_batches` counter (fused train steps), an
/// `nn.fused_batch_rows` counter (cumulative slab rows trained fused),
/// and an `nn.fused_homes` gauge (high-water group members per fused
/// batch — 0 when every batch ran the per-home path). Idempotent (set,
/// not add) so it can run after every round.
void record_nn_fused_stats(MetricsRegistry& registry);

}  // namespace pfdrl::obs
