#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "nn/fused.hpp"
#include "nn/kernels.hpp"
#include "nn/workspace.hpp"

namespace pfdrl::obs {

namespace {

void atomic_update_min(std::atomic<double>& slot, double value) noexcept {
  double seen = slot.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void atomic_update_max(std::atomic<double>& slot, double value) noexcept {
  double seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& slot, double delta) noexcept {
  double seen = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(seen, seen + delta,
                                     std::memory_order_relaxed)) {
  }
}

/// JSON number formatting: finite doubles round-trip via %.17g; the
/// sentinel infinities from an empty histogram serialize as null.
void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
}

std::string csv_double(double v) {
  if (!std::isfinite(v)) return "nan";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Gauge::update_max(double value) noexcept {
  atomic_update_max(value_, value);
}

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)),
      counts_(bounds_.size()),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds not sorted");
  }
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  if (it == bounds_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_update_min(min_, value);
  atomic_update_max(max_, value);
}

double Histogram::min() const noexcept {
  return min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const auto n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::time_buckets() {
  std::vector<double> b;
  double v = 1e-6;
  for (int i = 0; i < 28; ++i) {  // 1 µs .. ~134 s
    b.push_back(v);
    v *= 2.0;
  }
  return b;
}

std::vector<double> Histogram::count_buckets() {
  std::vector<double> b;
  double v = 1.0;
  for (int i = 0; i < 16; ++i) {  // 1 .. 32768
    b.push_back(v);
    v *= 2.0;
  }
  return b;
}

void Series::append(double value) {
  std::lock_guard lock(mutex_);
  values_.push_back(value);
}

std::vector<double> Series::values() const {
  std::lock_guard lock(mutex_);
  return values_;
}

std::size_t Series::size() const {
  std::lock_guard lock(mutex_);
  return values_.size();
}

void Series::reset() {
  std::lock_guard lock(mutex_);
  values_.clear();
}

void Series::restore(std::vector<double> values) {
  std::lock_guard lock(mutex_);
  values_ = std::move(values);
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name) {
  // Callers hold mutex_.
  return entries_[std::string(name)];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name);
  if (!e.counter) {
    if (e.gauge || e.histogram || e.series) {
      throw std::logic_error("metrics: '" + std::string(name) +
                             "' already registered as another kind");
    }
    e.counter = std::make_unique<Counter>();
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name);
  if (!e.gauge) {
    if (e.counter || e.histogram || e.series) {
      throw std::logic_error("metrics: '" + std::string(name) +
                             "' already registered as another kind");
    }
    e.gauge = std::make_unique<Gauge>();
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bucket_bounds) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name);
  if (!e.histogram) {
    if (e.counter || e.gauge || e.series) {
      throw std::logic_error("metrics: '" + std::string(name) +
                             "' already registered as another kind");
    }
    if (bucket_bounds.empty()) bucket_bounds = Histogram::time_buckets();
    e.histogram = std::make_unique<Histogram>(std::move(bucket_bounds));
  }
  return *e.histogram;
}

Series& MetricsRegistry::series(std::string_view name) {
  std::lock_guard lock(mutex_);
  Entry& e = entry(name);
  if (!e.series) {
    if (e.counter || e.gauge || e.histogram) {
      throw std::logic_error("metrics: '" + std::string(name) +
                             "' already registered as another kind");
    }
    e.series = std::make_unique<Series>();
  }
  return *e.series;
}

bool MetricsRegistry::contains(std::string_view name) const {
  std::lock_guard lock(mutex_);
  return entries_.find(name) != entries_.end();
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
    if (e.series) e.series->reset();
  }
}

MetricsSnapshot MetricsRegistry::capture_state() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, e] : entries_) {
    if (e.counter) snapshot.counters[name] = e.counter->value();
    if (e.gauge) snapshot.gauges[name] = e.gauge->value();
    if (e.series) snapshot.series[name] = e.series->values();
  }
  return snapshot;
}

void MetricsRegistry::restore_state(const MetricsSnapshot& snapshot) {
  // Goes through the public find-or-create accessors (each takes the
  // registry lock itself) so restoring into a fresh registry creates the
  // instruments and kind conflicts surface as the usual logic_error.
  for (const auto& [name, value] : snapshot.counters) counter(name).set(value);
  for (const auto& [name, value] : snapshot.gauges) gauge(name).set(value);
  for (const auto& [name, values] : snapshot.series) series(name).restore(values);
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\n";

  const auto emit_section = [&](const char* kind, auto&& has,
                                auto&& emit_value, bool last) {
    out += "  ";
    append_json_string(out, kind);
    out += ": {";
    bool first = true;
    for (const auto& [name, e] : entries_) {
      if (!has(e)) continue;
      out += first ? "\n    " : ",\n    ";
      first = false;
      append_json_string(out, name);
      out += ": ";
      emit_value(e);
    }
    out += first ? "}" : "\n  }";
    out += last ? "\n" : ",\n";
  };

  emit_section(
      "counters", [](const Entry& e) { return e.counter != nullptr; },
      [&](const Entry& e) { out += std::to_string(e.counter->value()); },
      false);
  emit_section(
      "gauges", [](const Entry& e) { return e.gauge != nullptr; },
      [&](const Entry& e) { append_json_double(out, e.gauge->value()); },
      false);
  emit_section(
      "histograms", [](const Entry& e) { return e.histogram != nullptr; },
      [&](const Entry& e) {
        const Histogram& h = *e.histogram;
        out += "{\"count\": " + std::to_string(h.count());
        out += ", \"sum\": ";
        append_json_double(out, h.sum());
        out += ", \"min\": ";
        append_json_double(out, h.min());
        out += ", \"max\": ";
        append_json_double(out, h.max());
        out += ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) out += ", ";
          out += "{\"le\": ";
          append_json_double(out, h.bounds()[i]);
          out += ", \"count\": " + std::to_string(h.bucket_count(i)) + "}";
        }
        out += "], \"overflow\": " + std::to_string(h.overflow_count()) + "}";
      },
      false);
  emit_section(
      "series", [](const Entry& e) { return e.series != nullptr; },
      [&](const Entry& e) {
        out += "[";
        const auto values = e.series->values();
        for (std::size_t i = 0; i < values.size(); ++i) {
          if (i > 0) out += ", ";
          append_json_double(out, values[i]);
        }
        out += "]";
      },
      true);

  out += "}\n";
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::lock_guard lock(mutex_);
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      out += "counter," + name + ",value," +
             std::to_string(e.counter->value()) + "\n";
    } else if (e.gauge) {
      out += "gauge," + name + ",value," + csv_double(e.gauge->value()) + "\n";
    } else if (e.histogram) {
      const Histogram& h = *e.histogram;
      out += "histogram," + name + ",count," + std::to_string(h.count()) + "\n";
      out += "histogram," + name + ",sum," + csv_double(h.sum()) + "\n";
      out += "histogram," + name + ",min," + csv_double(h.min()) + "\n";
      out += "histogram," + name + ",max," + csv_double(h.max()) + "\n";
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        out += "histogram," + name + ",le=" + csv_double(h.bounds()[i]) + "," +
               std::to_string(h.bucket_count(i)) + "\n";
      }
      out += "histogram," + name + ",overflow," +
             std::to_string(h.overflow_count()) + "\n";
    } else if (e.series) {
      const auto values = e.series->values();
      for (std::size_t i = 0; i < values.size(); ++i) {
        out += "series," + name + "," + std::to_string(i) + "," +
               csv_double(values[i]) + "\n";
      }
    }
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("metrics: cannot write " + path);
  out << to_json();
}

void MetricsRegistry::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("metrics: cannot write " + path);
  out << to_csv();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

double SpanTimer::stop() {
  if (sink_ == nullptr) return 0.0;
  const double elapsed = watch_.elapsed_seconds();
  sink_->observe(elapsed);
  if (trajectory_ != nullptr) trajectory_->append(elapsed);
  sink_ = nullptr;
  trajectory_ = nullptr;
  return elapsed;
}

void record_bus_stats(MetricsRegistry& registry, std::string_view prefix,
                      const net::BusStats& stats) {
  const std::string p(prefix);
  registry.counter(p + ".messages_sent").set(stats.messages_sent);
  registry.counter(p + ".messages_delivered").set(stats.messages_delivered);
  registry.counter(p + ".messages_dropped").set(stats.messages_dropped);
  registry.counter(p + ".messages_partition_dropped")
      .set(stats.messages_partition_dropped);
  registry.counter(p + ".messages_duplicated").set(stats.messages_duplicated);
  registry.counter(p + ".messages_delayed").set(stats.messages_delayed);
  registry.counter(p + ".bytes_on_wire").set(stats.bytes_on_wire);
  registry.counter(p + ".logical_bytes").set(stats.logical_bytes);
  registry.gauge(p + ".simulated_transfer_seconds")
      .set(stats.simulated_transfer_seconds);
  registry.gauge(p + ".simulated_fault_delay_seconds")
      .set(stats.simulated_fault_delay_seconds);
}

void record_shard_router_stats(MetricsRegistry& registry,
                               std::string_view prefix,
                               const net::ShardRouterStats& stats) {
  const std::string p(prefix);
  registry.counter(p + ".shard_batches").set(stats.batches_flushed);
  registry.counter(p + ".shard_batched_msgs").set(stats.messages_batched);
  registry.counter(p + ".shard_batched_bytes").set(stats.batched_bytes);
  registry.counter(p + ".shard_batched_wire_bytes")
      .set(stats.batched_wire_bytes);
  registry.gauge(p + ".shard_flushes")
      .set(static_cast<double>(stats.flushes));
  registry.gauge(p + ".shard_max_queue_depth")
      .set(static_cast<double>(stats.max_batch_depth));
}

void record_codec_stats(MetricsRegistry& registry, std::string_view prefix,
                        const net::CodecStats& stats) {
  const std::string p(prefix);
  registry.counter(p + ".frames").set(stats.frames);
  registry.counter(p + ".repeat_frames").set(stats.repeat_frames);
  registry.counter(p + ".raw_escapes").set(stats.raw_escapes);
  registry.counter(p + ".raw_bytes").set(stats.raw_bytes);
  registry.counter(p + ".coded_bytes").set(stats.coded_bytes);
  registry.counter(p + ".encode_ns").set(stats.encode_ns);
  registry.counter(p + ".decode_ns").set(stats.decode_ns);
  registry.gauge(p + ".ratio").set(stats.ratio());
}

void record_shard_timing(MetricsRegistry& registry, std::string_view prefix,
                         const util::ShardTiming& timing) {
  if (timing.shard_seconds.empty()) return;
  const std::string p(prefix);
  registry.gauge(p + ".imbalance").set(timing.max_over_mean());
  Histogram& hist = registry.histogram(p + ".seconds",
                                       Histogram::time_buckets());
  for (double s : timing.shard_seconds) hist.observe(s);
}

void record_thread_pool_stats(MetricsRegistry& registry,
                              std::string_view prefix,
                              const util::ThreadPoolStats& stats) {
  const std::string p(prefix);
  registry.counter(p + ".tasks_executed").set(stats.tasks_executed);
  registry.counter(p + ".tasks_stolen").set(stats.tasks_stolen);
  registry.counter(p + ".tasks_inline").set(stats.tasks_inline);
  registry.counter(p + ".tasks_heap").set(stats.tasks_heap);
  registry.gauge(p + ".max_queue_depth")
      .set(static_cast<double>(stats.max_queue_depth));
}

void record_nn_workspace_stats(MetricsRegistry& registry) {
  registry.counter("nn.workspace_allocs").set(nn::Workspace::total_allocations());
  registry.gauge("nn.scratch_bytes")
      .set(static_cast<double>(nn::Workspace::total_bytes()));
}

void record_nn_kernel_stats(MetricsRegistry& registry) {
  registry.counter("nn.kernel_train_batches")
      .set(nn::kernels::total_train_batches());
  registry.gauge("nn.kernel_lanes")
      .set(static_cast<double>(nn::kernels::kLanes));
  registry.gauge("nn.kernel_vector_math")
      .set(nn::kernels::vector_math_active() ? 1.0 : 0.0);
}

void record_nn_fused_stats(MetricsRegistry& registry) {
  registry.counter("nn.fused_batches").set(nn::total_fused_batches());
  registry.counter("nn.fused_batch_rows").set(nn::total_fused_rows());
  registry.gauge("nn.fused_homes")
      .set(static_cast<double>(nn::max_fused_members()));
}

}  // namespace pfdrl::obs
