#include "util/records.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace pfdrl::util {

namespace {

constexpr std::uint32_t kMagic = 0x50465243;  // "PFRC"
constexpr std::uint32_t kVersion = 1;
// Header: magic + version. Record frame: u64 length + u32 crc.
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kFrameBytes = 12;

std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320U ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(std::span<const std::uint8_t>& in, const char* what) {
  if (in.size() < sizeof(T)) {
    throw std::runtime_error(std::string("records: truncated ") + what);
  }
  T value;
  std::memcpy(&value, in.data(), sizeof(T));
  in = in.subspan(sizeof(T));
  return value;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::uint8_t b : bytes) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes) {
  // Stage next to the target so the final rename never crosses a
  // filesystem boundary (cross-device rename is not atomic, and fails
  // outright on POSIX).
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("records: cannot open " + tmp);
  }
  const std::size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("records: write failed " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("records: rename failed " + path);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("records: cannot open " + path);
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> chunk;
  for (;;) {
    const std::size_t got = std::fread(chunk.data(), 1, chunk.size(), f);
    bytes.insert(bytes.end(), chunk.begin(), chunk.begin() + got);
    if (got < chunk.size()) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw std::runtime_error("records: read failed " + path);
  return bytes;
}

RecordWriter::RecordWriter() {
  buffer_.reserve(kHeaderBytes);
  append_pod(buffer_, kMagic);
  append_pod(buffer_, kVersion);
}

void RecordWriter::append(std::span<const std::uint8_t> payload) {
  buffer_.reserve(buffer_.size() + kFrameBytes + payload.size());
  append_pod(buffer_, static_cast<std::uint64_t>(payload.size()));
  append_pod(buffer_, crc32(payload));
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++count_;
}

void RecordWriter::write_file(const std::string& path) const {
  atomic_write_file(path, buffer_);
}

RecordReader::RecordReader(std::span<const std::uint8_t> bytes)
    : rest_(bytes) {
  if (read_pod<std::uint32_t>(rest_, "header") != kMagic) {
    throw std::runtime_error("records: bad magic");
  }
  if (read_pod<std::uint32_t>(rest_, "header") != kVersion) {
    throw std::runtime_error("records: unsupported version");
  }
}

std::optional<std::span<const std::uint8_t>> RecordReader::next() {
  if (rest_.empty()) return std::nullopt;
  const auto len = read_pod<std::uint64_t>(rest_, "record length");
  const auto crc = read_pod<std::uint32_t>(rest_, "record crc");
  // The length prefix is attacker/corruption-controlled: validate it
  // against the bytes actually present before forming the payload span.
  if (len > rest_.size()) {
    throw std::runtime_error("records: record length exceeds input");
  }
  const auto payload = rest_.first(static_cast<std::size_t>(len));
  rest_ = rest_.subspan(static_cast<std::size_t>(len));
  if (crc32(payload) != crc) {
    throw std::runtime_error("records: crc mismatch (corrupt record)");
  }
  ++read_;
  return payload;
}

}  // namespace pfdrl::util
