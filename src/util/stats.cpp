#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pfdrl::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderror() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) noexcept {
  return std::sqrt(variance(xs));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> empirical_cdf(std::span<const double> xs,
                                  std::span<const double> points) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), p);
    const auto k = static_cast<double>(it - sorted.begin());
    out.push_back(sorted.empty() ? 0.0 : k / static_cast<double>(sorted.size()));
  }
  return out;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  LinearFit fit;
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 2) {
    fit.intercept = ys.empty() ? 0.0 : ys[0];
    return fit;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  (void)n;
  if (sxx > 0.0) fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double clamp01(double x) noexcept { return std::clamp(x, 0.0, 1.0); }

}  // namespace pfdrl::util
