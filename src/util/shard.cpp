#include "util/shard.hpp"

#include <stdexcept>

#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace pfdrl::util {

std::size_t shard_of(std::size_t i, std::size_t n, std::size_t shards) noexcept {
  if (shards <= 1 || n == 0) return 0;
  // Inverse of shard_begin: the unique s with s*n/shards <= i < (s+1)*n/shards.
  return ((i + 1) * shards - 1) / n;
}

std::size_t shard_begin(std::size_t s, std::size_t n,
                        std::size_t shards) noexcept {
  if (shards <= 1) return s == 0 ? 0 : n;
  return (s * n) / shards;
}

double ShardTiming::max_over_mean() const noexcept {
  if (shard_seconds.empty()) return 1.0;
  double sum = 0.0;
  double max = 0.0;
  for (double s : shard_seconds) {
    sum += s;
    if (s > max) max = s;
  }
  const double mean = sum / static_cast<double>(shard_seconds.size());
  return mean > 0.0 ? max / mean : 1.0;
}

ShardTiming sharded_for(ThreadPool& pool, std::size_t n_items,
                        std::size_t shards,
                        const std::function<std::size_t(std::size_t)>& shard_of_item,
                        const std::function<void(std::size_t)>& body) {
  ShardTiming timing;
  if (shards <= 1 || n_items <= 1) {
    pool.parallel_for(0, n_items, body);
    return timing;
  }
  std::vector<std::vector<std::size_t>> buckets(shards);
  for (std::size_t i = 0; i < n_items; ++i) {
    const std::size_t s = shard_of_item(i);
    if (s >= shards) throw std::out_of_range("sharded_for: bad shard index");
    buckets[s].push_back(i);
  }
  timing.shard_seconds.assign(shards, 0.0);
  pool.parallel_for(
      0, shards,
      [&](std::size_t s) {
        const Stopwatch watch;
        for (std::size_t i : buckets[s]) body(i);
        timing.shard_seconds[s] = watch.elapsed_seconds();
      },
      /*grain=*/1);
  return timing;
}

}  // namespace pfdrl::util
