#include "util/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <exception>

namespace pfdrl::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::push_task(TaskSlot task) {
  if (task.is_inline()) {
    tasks_inline_.fetch_add(1, std::memory_order_relaxed);
  } else {
    tasks_heap_.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t idx =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    std::lock_guard lock(queues_[idx]->mutex);
    queues_[idx]->tasks.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1, std::memory_order_release) + 1;
  // Racy-but-monotonic high-water mark; exactness is not worth a lock on
  // the submit path.
  std::uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (seen < depth && !max_queue_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  // Notify under the wake mutex: a worker that just found all queues
  // empty holds this mutex until it blocks, so the notification cannot
  // land in the window between its predicate check and its wait.
  {
    std::lock_guard lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_pop_or_steal(std::size_t self, TaskSlot& out) {
  // Own queue first (back: LIFO for locality)...
  {
    auto& q = *queues_[self];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // ...then steal from victims (front: FIFO keeps large chunks flowing).
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    auto& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard lock(q.mutex);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      tasks_stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  TaskSlot task;
  for (;;) {
    if (try_pop_or_steal(index, task)) {
      task();
      task = TaskSlot();
      pending_.fetch_sub(1, std::memory_order_release);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock lock(wake_mutex_);
    wake_cv_.wait(lock, [this, index] {
      if (stop_.load(std::memory_order_acquire)) return true;
      // Re-check queues under the wake lock to avoid lost wakeups.
      for (const auto& q : queues_) {
        std::lock_guard ql(q->mutex);
        if (!q->tasks.empty()) return true;
      }
      (void)index;
      return false;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      (end - begin + grain - 1) / grain);
}

void ThreadPool::parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t num_chunks) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (num_chunks == 0) num_chunks = size() * 4;
  num_chunks = std::clamp<std::size_t>(num_chunks, 1, n);

  if (num_chunks == 1) {
    body(begin, end);
    return;
  }

  // Shared state lives in a shared_ptr: helper tasks may still be
  // draining their (empty) chunk loop after the caller has observed
  // completion and returned, so they must not reference stack locals.
  struct SweepState {
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> next_chunk{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::function<void(std::size_t, std::size_t)> body;
    std::size_t begin = 0, base = 0, rem = 0, num_chunks = 0;
    // First exception thrown by any chunk body; later chunks are skipped
    // (but still counted) and the caller rethrows after the barrier.
    std::atomic<bool> failed{false};
    std::exception_ptr error;  // written once, guarded by done_mutex
  };
  auto state = std::make_shared<SweepState>();
  state->body = body;
  state->begin = begin;
  state->base = n / num_chunks;
  state->rem = n % num_chunks;
  state->num_chunks = num_chunks;

  const auto run_chunks = [](const std::shared_ptr<SweepState>& st) {
    for (;;) {
      const std::size_t c =
          st->next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= st->num_chunks) return;
      // First `rem` chunks get one extra element: deterministic layout.
      const std::size_t lo = st->begin + c * st->base + std::min(c, st->rem);
      const std::size_t hi = lo + st->base + (c < st->rem ? 1 : 0);
      if (!st->failed.load(std::memory_order_acquire)) {
        try {
          st->body(lo, hi);
        } catch (...) {
          std::lock_guard lock(st->done_mutex);
          if (!st->failed.exchange(true, std::memory_order_acq_rel)) {
            st->error = std::current_exception();
          }
        }
      }
      if (st->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          st->num_chunks) {
        std::lock_guard lock(st->done_mutex);
        st->done_cv.notify_all();
      }
    }
  };

  // Post one helper task per worker; the caller also executes chunks so
  // nested parallel_for from inside a worker cannot deadlock.
  const std::size_t helpers = std::min(size(), num_chunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    push_task([state, run_chunks] { run_chunks(state); });
  }
  run_chunks(state);

  std::unique_lock lock(state->done_mutex);
  state->done_cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->num_chunks;
  });
  if (state->failed.load(std::memory_order_acquire)) {
    std::rethrow_exception(state->error);
  }
}

namespace {
std::atomic<std::size_t> g_global_workers_override{0};
}  // namespace

void ThreadPool::set_global_workers(std::size_t workers) noexcept {
  g_global_workers_override.store(workers, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    const std::size_t override =
        g_global_workers_override.load(std::memory_order_relaxed);
    if (override > 0) return override;
    if (const char* env = std::getenv("PFDRL_POOL_WORKERS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};  // ctor default: hardware concurrency
  }());
  return pool;
}

ThreadPoolStats ThreadPool::stats() const noexcept {
  ThreadPoolStats s;
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_stolen = tasks_stolen_.load(std::memory_order_relaxed);
  s.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  s.tasks_inline = tasks_inline_.load(std::memory_order_relaxed);
  s.tasks_heap = tasks_heap_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace pfdrl::util
