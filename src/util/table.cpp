#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace pfdrl::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      os << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print(const std::string& title) const {
  std::cout << render(title) << std::flush;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace pfdrl::util
