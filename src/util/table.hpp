// ASCII table printer for benchmark output. Every bench binary prints its
// figure/table series through this so that rows are aligned and stable to
// diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace pfdrl::util {

/// Builds an aligned text table. Numeric cells should be pre-formatted by
/// the caller (see `fmt_double`).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with column padding, a header underline, and `title` above.
  [[nodiscard]] std::string render(const std::string& title = {}) const;
  /// Render and write to stdout.
  void print(const std::string& title = {}) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.*f") without locale surprises.
std::string fmt_double(double v, int precision = 3);
/// Percentage formatting: 0.921 -> "92.1%".
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace pfdrl::util
