// Deterministic pseudo-random number generation for all PFDRL components.
//
// Every stochastic component in the library (trace generation, weight
// initialization, epsilon-greedy exploration, replay sampling) takes an
// explicit `Rng` so that experiments are reproducible per seed and
// independent of thread scheduling. The generator is xoshiro256**,
// seeded via splitmix64 as recommended by its authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace pfdrl::util {

/// splitmix64 step: used for seeding and for cheap stateless hashing of
/// (seed, stream-id) pairs into independent generator states.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Complete serializable generator state. The Box-Muller cache is part of
/// it: normal() produces variates in pairs and hands out the cached
/// second one on the next call, so a snapshot that dropped the cache
/// would make a restored stream diverge bitwise after any odd number of
/// normal() draws.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
  std::uint64_t seed = 0;
};

/// xoshiro256** engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> distributions, but the member helpers below are preferred:
/// they are guaranteed stable across platforms (no libstdc++-specific
/// distribution algorithms).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the engine. Two Rng instances with equal seeds produce equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Derive an independent child generator. Deterministic in
  /// (parent seed, stream). Used to give each device/agent/thread its
  /// own stream so parallel generation is schedule-independent.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box-Muller (cached second variate).
  double normal() noexcept;
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;
  /// Index in [0, weights.size()) sampled proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights) noexcept;

  /// Snapshot the complete generator state (xoshiro words, Box-Muller
  /// cache, fork seed). restore() continues the stream bitwise —
  /// including mid-normal() pairs and subsequent fork() derivations.
  [[nodiscard]] RngState state() const noexcept {
    return {s_, cached_normal_, has_cached_normal_, seed_};
  }
  void restore(const RngState& state) noexcept {
    s_ = state.s;
    cached_normal_ = state.cached_normal;
    has_cached_normal_ = state.has_cached_normal;
    seed_ = state.seed;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_ = 0;  // retained for fork()
};

}  // namespace pfdrl::util
