// Tiny leveled logger. Thread-safe line-at-a-time output; level is a
// process-wide atomic so benches can silence library chatter.
#pragma once

#include <sstream>
#include <string>

namespace pfdrl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at `level` (no-op if below the global threshold).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace pfdrl::util
