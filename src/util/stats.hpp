// Descriptive statistics used throughout the benchmarks and metric
// collectors: streaming mean/variance (Welford), percentiles, CDF
// sampling, and simple linear regression for trend checks in tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pfdrl::util {

/// Numerically stable streaming accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double stderror() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

double mean(std::span<const double> xs) noexcept;
double variance(std::span<const double> xs) noexcept;
double stddev(std::span<const double> xs) noexcept;

/// Linear-interpolated percentile, q in [0, 1]. Copies and sorts.
/// Returns 0 for empty input.
double percentile(std::span<const double> xs, double q);

/// Empirical CDF evaluated at `points`: fraction of xs <= point.
std::vector<double> empirical_cdf(std::span<const double> xs,
                                  std::span<const double> points);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
/// Requires xs.size() == ys.size() and at least two points with
/// non-degenerate x spread (otherwise b = 0).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient; 0 when either side is degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Clamp helper used by metric code (std::clamp but tolerant of lo > hi
/// never occurring by contract; asserts in debug builds).
double clamp01(double x) noexcept;

}  // namespace pfdrl::util
