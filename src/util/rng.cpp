#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace pfdrl::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream) const noexcept {
  // Mix the parent's seed with the stream id through splitmix64 so that
  // fork(a) and fork(b) are decorrelated even for adjacent stream ids.
  std::uint64_t sm = seed_ ^ (0xD1B54A32D192ED03ULL * (stream + 1));
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Debiased modulo via rejection (Lemire-style threshold).
  const std::uint64_t threshold = (0 - span) % span;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = mag * std::sin(angle);
  has_cached_normal_ = true;
  return mag * std::cos(angle);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

}  // namespace pfdrl::util
