// Versioned, length-prefixed binary record streams — the on-disk
// substrate of run persistence (snapshots, trace archives, replay logs).
//
// A record file is:
//
//   [u32 magic "PFRC"] [u32 format version]
//   repeated records:
//     [u64 payload length] [u32 CRC-32 of payload] [payload bytes]
//
// Every record carries its own CRC so a torn write, a flipped bit or a
// truncated tail is detected at the exact record boundary instead of
// surfacing later as silently-wrong floats. Readers validate the header
// and every length prefix against the remaining bytes before touching
// payload data, so corrupt input can throw but never read out of bounds.
//
// File replacement is crash-safe: write_file() stages the bytes in a
// temp file in the destination directory and rename()s into place, so a
// crash mid-write leaves either the old file or the new one — never a
// truncated hybrid. save/load round-trips are bytewise exact.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace pfdrl::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

/// Atomically replace `path` with `bytes`: stage in a temp file in the
/// same directory, flush, then rename() into place (atomic on POSIX when
/// source and destination share a filesystem — guaranteed here because
/// the temp lives next to the target). Throws std::runtime_error on IO
/// failure and removes the temp file before throwing.
void atomic_write_file(const std::string& path,
                       std::span<const std::uint8_t> bytes);

/// Whole-file read. Throws std::runtime_error when the file can't be
/// opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// Accumulates records into an in-memory byte stream (header included).
class RecordWriter {
 public:
  RecordWriter();

  /// Append one record (length prefix + CRC + payload copy).
  void append(std::span<const std::uint8_t> payload);

  [[nodiscard]] std::size_t record_count() const noexcept { return count_; }
  /// The complete stream so far: header plus every appended record.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buffer_;
  }

  /// Crash-safe write of the whole stream via atomic_write_file().
  void write_file(const std::string& path) const;

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t count_ = 0;
};

/// Sequential reader over a record stream. Validates the header at
/// construction and each record's length prefix and CRC at next();
/// throws std::runtime_error on any malformed input. The returned spans
/// alias the caller's backing buffer, which must outlive them.
class RecordReader {
 public:
  explicit RecordReader(std::span<const std::uint8_t> bytes);

  /// The next record's payload, or nullopt at a clean end of stream.
  std::optional<std::span<const std::uint8_t>> next();

  /// Records consumed so far.
  [[nodiscard]] std::size_t records_read() const noexcept { return read_; }

 private:
  std::span<const std::uint8_t> rest_;
  std::size_t read_ = 0;
};

}  // namespace pfdrl::util
