// Shard assignment and sharded parallel dispatch primitives for the
// bulk-synchronous engine (docs/scaling.md). Homes are partitioned into
// contiguous balanced blocks — shard s of S over N items covers
// [s*N/S, (s+1)*N/S) — so assignment is pinned by (N, S) alone and twin
// runs agree without any stored mapping. The low-level pieces live here
// (below net/core in the link order) so the message router, the DFL
// trainer, and the EMS pipeline can all share them.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace pfdrl::util {

class ThreadPool;

/// Shard owning item `i` of `n` under `shards` contiguous balanced
/// blocks. shards==0 is treated as 1 (unsharded).
[[nodiscard]] std::size_t shard_of(std::size_t i, std::size_t n,
                                   std::size_t shards) noexcept;

/// First item of shard `s` (also one-past-last of shard s-1).
[[nodiscard]] std::size_t shard_begin(std::size_t s, std::size_t n,
                                      std::size_t shards) noexcept;

/// Wall-clock seconds each shard spent in its serial slice of a
/// sharded_for dispatch; empty when the dispatch ran unsharded.
struct ShardTiming {
  std::vector<double> shard_seconds;

  /// Imbalance ratio max/mean over non-empty timings; 1.0 when unsharded
  /// or degenerate (the perfectly balanced value).
  [[nodiscard]] double max_over_mean() const noexcept;
};

/// Run `body(i)` for every i in [0, n_items). When shards <= 1 this is
/// exactly ThreadPool::parallel_for (the legacy scheduling, preserved so
/// unsharded runs stay bitwise identical to the pre-shard engine).
/// Otherwise items are bucketed by `shard_of_item(i)` preserving item
/// order within a bucket, and buckets run as one pool task each: thread
/// count is bounded by the pool, never by N. Bodies must be independent
/// across items (no ordering is guaranteed between shards).
ShardTiming sharded_for(ThreadPool& pool, std::size_t n_items,
                        std::size_t shards,
                        const std::function<std::size_t(std::size_t)>& shard_of_item,
                        const std::function<void(std::size_t)>& body);

}  // namespace pfdrl::util
