// Work-stealing thread pool used to fan out per-device forecaster
// training, per-agent DRL steps, and blocked matmul tiles.
//
// Design notes (HPC-parallel idioms):
//  * One bounded deque per worker; owners push/pop at the back, thieves
//    steal from the front, which keeps the common path contention-free.
//  * `parallel_for` does static range chunking (deterministic work
//    decomposition) so numeric results are reproducible: any reduction
//    over chunk results is performed in chunk-index order by the caller.
//  * The pool is also usable as a plain task executor via `submit`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace pfdrl::util {

/// Cumulative pool counters (monotonic over the pool's lifetime).
struct ThreadPoolStats {
  /// Tasks popped and executed by workers (caller-run parallel_for
  /// chunks are not pool tasks and don't count here).
  std::uint64_t tasks_executed = 0;
  /// Tasks taken from another worker's queue.
  std::uint64_t tasks_stolen = 0;
  /// High-water mark of tasks queued but not yet started.
  std::uint64_t max_queue_depth = 0;
  /// Tasks whose callable fit the TaskSlot inline buffer (no heap
  /// allocation on the submit path).
  std::uint64_t tasks_inline = 0;
  /// Tasks that spilled to the heap (capture larger than the buffer).
  std::uint64_t tasks_heap = 0;
};

/// Move-only type-erased `void()` callable with small-buffer storage.
/// Callables up to kInlineBytes (and max_align_t alignment) live inside
/// the slot; larger captures fall back to one heap allocation. Unlike
/// std::function this accepts move-only callables (packaged_task,
/// lambdas capturing unique_ptr), which is what lets submit() skip the
/// shared_ptr<packaged_task> wrapper it used to heap-allocate per task.
class TaskSlot {
 public:
  static constexpr std::size_t kInlineBytes = 56;

  TaskSlot() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TaskSlot>>>
  // NOLINTNEXTLINE(bugprone-forwarding-reference-overload)
  TaskSlot(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      static constexpr VTable vt = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* src, void* dst) noexcept {
            ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
            static_cast<Fn*>(src)->~Fn();
          },
          [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
          /*inline_stored=*/true};
      vtable_ = &vt;
    } else {
      heap_ = new Fn(std::forward<F>(fn));
      static constexpr VTable vt = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          /*relocate=*/nullptr,
          [](void* p) noexcept { delete static_cast<Fn*>(p); },
          /*inline_stored=*/false};
      vtable_ = &vt;
    }
  }

  TaskSlot(TaskSlot&& other) noexcept { move_from(other); }

  TaskSlot& operator=(TaskSlot&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  TaskSlot(const TaskSlot&) = delete;
  TaskSlot& operator=(const TaskSlot&) = delete;

  ~TaskSlot() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  /// True when the callable lives in the inline buffer (SBO hit).
  [[nodiscard]] bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_stored;
  }

  void operator()() { vtable_->invoke(target()); }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // inline slots only
    void (*destroy)(void*) noexcept;
    bool inline_stored;
  };

  [[nodiscard]] void* target() noexcept {
    return vtable_->inline_stored ? static_cast<void*>(storage_) : heap_;
  }

  void move_from(TaskSlot& other) noexcept {
    vtable_ = other.vtable_;
    if (vtable_ == nullptr) return;
    if (vtable_->inline_stored) {
      vtable_->relocate(other.storage_, storage_);
    } else {
      heap_ = other.heap_;
      other.heap_ = nullptr;
    }
    other.vtable_ = nullptr;
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(target());
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  void* heap_ = nullptr;
  const VTable* vtable_ = nullptr;
};

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (default: hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; returns a future for its result. The
  /// packaged_task moves straight into the queue's TaskSlot — no
  /// shared_ptr wrapper, no std::function copyability tax.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    std::packaged_task<R()> task(std::forward<F>(fn));
    std::future<R> fut = task.get_future();
    push_task(TaskSlot(std::move(task)));
    return fut;
  }

  /// Continuation-style enqueue: no future, no promise/shared-state
  /// allocation. The caller is responsible for its own completion
  /// signalling (readiness counters, condition variables). This is the
  /// hot path the round pipeline schedules on.
  template <typename F>
  void submit_detached(F&& fn) {
    push_task(TaskSlot(std::forward<F>(fn)));
  }

  /// Run body(i) for i in [begin, end) across the pool and wait.
  /// The static chunking is deterministic in (range, grain); the calling
  /// thread participates, so the pool never deadlocks when parallel_for
  /// is invoked from a worker.
  /// If any body invocation throws, the first exception (in completion
  /// order) is rethrown on the calling thread after all chunks have
  /// settled; remaining chunks are skipped.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Chunked variant: body(chunk_begin, chunk_end). Useful when per-chunk
  /// setup (e.g. a thread-local accumulator) amortizes across iterations.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t num_chunks = 0);

  /// The process-wide default pool (lazily constructed, never destroyed
  /// before exit). Library code that does not care about pool identity
  /// should use this to avoid oversubscription. Honors the
  /// PFDRL_POOL_WORKERS environment variable (positive integer) on first
  /// use, so CI and benches can pin the worker count without a code
  /// change; defaults to hardware concurrency.
  static ThreadPool& global();

  /// Pin the global pool's worker count programmatically (CLI
  /// --pool-workers). Takes precedence over PFDRL_POOL_WORKERS; must be
  /// called before the first global() use to have any effect — the pool
  /// is constructed once and never resized.
  static void set_global_workers(std::size_t workers) noexcept;

  /// Snapshot of the cumulative pool counters.
  [[nodiscard]] ThreadPoolStats stats() const noexcept;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<TaskSlot> tasks;
  };

  void push_task(TaskSlot task);
  bool try_pop_or_steal(std::size_t self, TaskSlot& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
  std::atomic<std::uint64_t> tasks_inline_{0};
  std::atomic<std::uint64_t> tasks_heap_{0};
};

}  // namespace pfdrl::util
