// Work-stealing thread pool used to fan out per-device forecaster
// training, per-agent DRL steps, and blocked matmul tiles.
//
// Design notes (HPC-parallel idioms):
//  * One bounded deque per worker; owners push/pop at the back, thieves
//    steal from the front, which keeps the common path contention-free.
//  * `parallel_for` does static range chunking (deterministic work
//    decomposition) so numeric results are reproducible: any reduction
//    over chunk results is performed in chunk-index order by the caller.
//  * The pool is also usable as a plain task executor via `submit`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace pfdrl::util {

/// Cumulative pool counters (monotonic over the pool's lifetime).
struct ThreadPoolStats {
  /// Tasks popped and executed by workers (caller-run parallel_for
  /// chunks are not pool tasks and don't count here).
  std::uint64_t tasks_executed = 0;
  /// Tasks taken from another worker's queue.
  std::uint64_t tasks_stolen = 0;
  /// High-water mark of tasks queued but not yet started.
  std::uint64_t max_queue_depth = 0;
};

class ThreadPool {
 public:
  /// Create a pool with `num_threads` workers (default: hardware
  /// concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue an arbitrary task; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    push_task([task] { (*task)(); });
    return fut;
  }

  /// Run body(i) for i in [begin, end) across the pool and wait.
  /// The static chunking is deterministic in (range, grain); the calling
  /// thread participates, so the pool never deadlocks when parallel_for
  /// is invoked from a worker.
  /// If any body invocation throws, the first exception (in completion
  /// order) is rethrown on the calling thread after all chunks have
  /// settled; remaining chunks are skipped.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Chunked variant: body(chunk_begin, chunk_end). Useful when per-chunk
  /// setup (e.g. a thread-local accumulator) amortizes across iterations.
  void parallel_for_chunked(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& body,
      std::size_t num_chunks = 0);

  /// The process-wide default pool (lazily constructed, never destroyed
  /// before exit). Library code that does not care about pool identity
  /// should use this to avoid oversubscription.
  static ThreadPool& global();

  /// Snapshot of the cumulative pool counters.
  [[nodiscard]] ThreadPoolStats stats() const noexcept;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void push_task(std::function<void()> task);
  bool try_pop_or_steal(std::size_t self, std::function<void()>& out);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> tasks_stolen_{0};
  std::atomic<std::uint64_t> max_queue_depth_{0};
};

}  // namespace pfdrl::util
