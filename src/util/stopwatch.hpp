// Monotonic wall-clock stopwatch for the time-overhead figures
// (paper Fig. 13 / Fig. 14) and the micro benchmarks.
#pragma once

#include <chrono>

namespace pfdrl::util {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace pfdrl::util
