// Minimal CSV reader/writer used for exporting benchmark series and for
// persisting/reloading synthetic traces. Handles quoting, embedded commas
// and newlines in quoted fields; numeric convenience accessors.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pfdrl::util {

/// An in-memory CSV table: a header row plus data rows of strings.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> header);

  [[nodiscard]] const std::vector<std::string>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }

  /// Column index for a header name, or nullopt if absent.
  [[nodiscard]] std::optional<std::size_t> column(std::string_view name) const;

  /// Append a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] const std::string& cell(std::size_t row, std::size_t col) const;
  /// Parse a cell as double; returns nullopt on parse failure.
  [[nodiscard]] std::optional<double> cell_as_double(std::size_t row,
                                                     std::size_t col) const;
  /// Entire column as doubles; unparseable cells become 0.
  [[nodiscard]] std::vector<double> column_as_doubles(std::size_t col) const;

  /// Serialize with RFC-4180-style quoting.
  [[nodiscard]] std::string to_string() const;
  /// Parse from text. Throws std::runtime_error on structurally broken
  /// input (unterminated quote).
  static CsvTable parse(std::string_view text);

  /// Convenience file IO. Throws std::runtime_error on IO failure.
  void save(const std::string& path) const;
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quote a single field if it contains a comma, quote, or newline.
std::string csv_escape(std::string_view field);

}  // namespace pfdrl::util
