#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace pfdrl::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_out_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(g_out_mutex);
  std::cerr << "[pfdrl " << level_name(level) << "] " << message << '\n';
}

}  // namespace pfdrl::util
