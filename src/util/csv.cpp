#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pfdrl::util {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

std::optional<std::size_t> CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == name) return i;
  }
  return std::nullopt;
}

void CsvTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

const std::string& CsvTable::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::optional<double> CsvTable::cell_as_double(std::size_t row,
                                               std::size_t col) const {
  const std::string& s = cell(row, col);
  double value = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::vector<double> CsvTable::column_as_doubles(std::size_t col) const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out.push_back(cell_as_double(r, col).value_or(0.0));
  }
  return out;
}

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvTable::to_string() const {
  std::ostringstream os;
  auto emit_row = [&os](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

CsvTable CsvTable::parse(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    current.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    records.push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty() || !current.empty()) end_row();
        break;
      default:
        field += c;
        row_has_content = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted field");
  if (row_has_content || !field.empty() || !current.empty()) end_row();

  CsvTable table;
  if (records.empty()) return table;
  table.header_ = std::move(records.front());
  for (std::size_t r = 1; r < records.size(); ++r) {
    table.add_row(std::move(records[r]));
  }
  return table;
}

void CsvTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("csv: cannot open for write: " + path);
  out << to_string();
  if (!out) throw std::runtime_error("csv: write failed: " + path);
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace pfdrl::util
