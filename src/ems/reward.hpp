// The paper's reward function (Table 1). Actions are target device modes
// (0 = off, 1 = standby, 2 = on); the ground-truth column is the mode the
// device is actually needed in. Matching earns +10; one-step mismatches
// -10; two-step mismatches -30; the single exception is the whole point
// of the system — turning a standby device fully off earns +30.
#pragma once

#include "data/device.hpp"

namespace pfdrl::ems {

constexpr int kNumActions = 3;

/// Table 1 exactly.
double reward(data::DeviceMode ground_truth, data::DeviceMode action) noexcept;

/// Integer action index <-> mode (Eq. 5: 0 off, 1 standby, 2 on).
constexpr data::DeviceMode action_to_mode(int action) noexcept {
  return static_cast<data::DeviceMode>(action);
}
constexpr int mode_to_action(data::DeviceMode mode) noexcept {
  return static_cast<int>(mode);
}

/// The reward-optimal action for a ground-truth mode (used by tests and
/// the oracle baseline): on -> on, standby -> off, off -> off.
data::DeviceMode optimal_action(data::DeviceMode ground_truth) noexcept;

}  // namespace pfdrl::ems
