// Energy and monetary accounting for an executed EMS policy
// (paper §4.1 metrics 3 and 4).
//
// Savings are measured against generator ground truth: a minute counts
// as "saved" when the device truly sat in standby and the policy turned
// it off. Turning off (or standing-by) a device the user actually had on
// is a comfort violation — counted, never credited.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "data/tariff.hpp"
#include "ems/env.hpp"

namespace pfdrl::ems {

struct EpisodeResult {
  double total_reward = 0.0;
  /// Ground-truth standby energy available in the episode (kWh).
  double standby_kwh = 0.0;
  /// Standby energy the policy actually reclaimed (kWh).
  double saved_kwh = 0.0;
  /// On-minutes the policy wrongly interrupted.
  std::size_t comfort_violations = 0;
  /// Energy of interrupted use (kWh): the power the user was actually
  /// drawing during violated minutes. An EMS that cuts devices in use
  /// does not save that energy — the user restores it immediately — so
  /// figures bill it against the system (see net_saved_kwh).
  double violation_kwh = 0.0;
  std::size_t steps = 0;
  /// Saved energy bucketed by hour of day (kWh).
  std::array<double, 24> saved_kwh_by_hour{};

  /// Fraction of available standby energy reclaimed in [0, 1]
  /// (gross: ignores comfort violations — an always-off policy scores 1).
  [[nodiscard]] double saved_fraction() const noexcept {
    return standby_kwh > 0.0 ? saved_kwh / standby_kwh : 0.0;
  }
  /// Savings net of interrupted-use energy (can be negative while the
  /// policy is still reckless).
  [[nodiscard]] double net_saved_kwh() const noexcept {
    return saved_kwh - violation_kwh;
  }
  /// Net savings as a fraction of available standby energy, floored at 0.
  /// This is the metric the saved-standby-energy figures report.
  [[nodiscard]] double net_saved_fraction() const noexcept {
    if (standby_kwh <= 0.0) return 0.0;
    return net_saved_kwh() > 0.0 ? net_saved_kwh() / standby_kwh : 0.0;
  }

  void merge(const EpisodeResult& other) noexcept;
};

/// Score a full action sequence against the environment. `actions[i]` is
/// the action taken at step i; actions.size() must equal env.length().
EpisodeResult score_actions(const EmsEnvironment& env,
                            const std::vector<int>& actions);

/// Monetary value (dollars) of saved energy under a tariff. `minute0` is
/// the minute-of-year of episode step 0 (for time-of-use pricing).
double saved_dollars(const EmsEnvironment& env, const std::vector<int>& actions,
                     const data::Tariff& tariff, std::size_t minute0);

}  // namespace pfdrl::ems
