#include "ems/policies.hpp"

#include "data/trace.hpp"

namespace pfdrl::ems {

std::vector<int> oracle_actions(const EmsEnvironment& env) {
  std::vector<int> actions(env.length());
  for (std::size_t i = 0; i < env.length(); ++i) {
    actions[i] = mode_to_action(optimal_action(env.true_mode(i)));
  }
  return actions;
}

std::vector<int> reactive_actions(const EmsEnvironment& env) {
  std::vector<int> actions(env.length());
  for (std::size_t i = 0; i < env.length(); ++i) {
    const std::size_t minute = env.begin_minute() + i;
    const std::size_t report = env.last_report_minute(minute);
    const auto mode = classify_mode(env.trace().watts[report], env.bands());
    actions[i] = mode_to_action(optimal_action(mode));
  }
  return actions;
}

std::vector<int> timer_actions(const EmsEnvironment& env,
                               std::size_t off_hour, std::size_t on_hour) {
  std::vector<int> actions(env.length());
  for (std::size_t i = 0; i < env.length(); ++i) {
    const std::size_t minute = env.begin_minute() + i;
    const std::size_t hour = data::hour_of_day(minute);
    const bool in_window = off_hour <= on_hour
                               ? (hour >= off_hour && hour < on_hour)
                               : (hour >= off_hour || hour < on_hour);
    if (in_window) {
      actions[i] = mode_to_action(data::DeviceMode::kOff);
    } else {
      // Outside its window the timer leaves the device alone (hold the
      // last reported mode, same as the passive baseline).
      const std::size_t report = env.last_report_minute(minute);
      actions[i] = mode_to_action(
          classify_mode(env.trace().watts[report], env.bands()));
    }
  }
  return actions;
}

std::vector<int> passive_actions(const EmsEnvironment& env) {
  std::vector<int> actions(env.length());
  for (std::size_t i = 0; i < env.length(); ++i) {
    const std::size_t minute = env.begin_minute() + i;
    const std::size_t report = env.last_report_minute(minute);
    const auto mode = classify_mode(env.trace().watts[report], env.bands());
    actions[i] = mode_to_action(mode);  // hold, never optimize
  }
  return actions;
}

}  // namespace pfdrl::ems
