// Operating-mode classification from observed power draw (paper §3.3.1):
// a reading of ~0 is off; within ±10% of the device's standby level is
// standby; within ±10% of the on level is on. Readings outside all bands
// (noise, transients) fall back to the nearest mode center measured by
// relative distance, so the classifier is total.
#pragma once

#include "data/device.hpp"

namespace pfdrl::ems {

struct ModeBands {
  double standby_watts = 5.0;
  double on_watts = 100.0;
  /// Below this the device is considered off (watts).
  double off_floor = 0.5;
  /// Half-width of the standby/on bands as a fraction (paper: 0.9–1.1,
  /// i.e. 0.10).
  double band = 0.10;
};

/// Bands for a concrete device spec.
ModeBands bands_for(const data::DeviceSpec& spec) noexcept;

/// Classify one power reading.
data::DeviceMode classify_mode(double watts, const ModeBands& bands) noexcept;

/// Mode center value (watts) for reconstructing a nominal draw.
double mode_watts(data::DeviceMode mode, const ModeBands& bands) noexcept;

}  // namespace pfdrl::ems
