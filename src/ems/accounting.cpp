#include "ems/accounting.hpp"

#include <cassert>
#include <stdexcept>

namespace pfdrl::ems {

void EpisodeResult::merge(const EpisodeResult& other) noexcept {
  total_reward += other.total_reward;
  standby_kwh += other.standby_kwh;
  saved_kwh += other.saved_kwh;
  comfort_violations += other.comfort_violations;
  violation_kwh += other.violation_kwh;
  steps += other.steps;
  for (std::size_t h = 0; h < 24; ++h) {
    saved_kwh_by_hour[h] += other.saved_kwh_by_hour[h];
  }
}

EpisodeResult score_actions(const EmsEnvironment& env,
                            const std::vector<int>& actions) {
  if (actions.size() != env.length()) {
    throw std::invalid_argument("score_actions: action count mismatch");
  }
  EpisodeResult result;
  result.steps = actions.size();
  bool in_violation = false;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    result.total_reward += env.reward_at(i, actions[i]);
    const auto truth = env.true_mode(i);
    const auto act = action_to_mode(actions[i]);
    const double kwh = env.real_watts(i) / 60.0 / 1000.0;
    if (truth == data::DeviceMode::kStandby) {
      result.standby_kwh += kwh;
      if (act == data::DeviceMode::kOff) {
        result.saved_kwh += kwh;
        const std::size_t hour =
            data::hour_of_day(env.begin_minute() + i);
        result.saved_kwh_by_hour[hour] += kwh;
      }
      in_violation = false;
    } else if (truth == data::DeviceMode::kOn &&
               act != data::DeviceMode::kOn) {
      // Interrupting a device in use. The user overrides immediately
      // (turns it back on), so each contiguous violated stretch costs
      // one interruption event plus that minute's energy — not the whole
      // session.
      if (!in_violation) {
        ++result.comfort_violations;
        result.violation_kwh += kwh;
        in_violation = true;
      }
    } else {
      in_violation = false;
    }
  }
  return result;
}

double saved_dollars(const EmsEnvironment& env,
                     const std::vector<int>& actions,
                     const data::Tariff& tariff, std::size_t minute0) {
  if (actions.size() != env.length()) {
    throw std::invalid_argument("saved_dollars: action count mismatch");
  }
  double cents = 0.0;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (env.true_mode(i) != data::DeviceMode::kStandby) continue;
    if (action_to_mode(actions[i]) != data::DeviceMode::kOff) continue;
    const double kwh = env.real_watts(i) / 60.0 / 1000.0;
    cents += kwh * tariff.cents_per_kwh(minute0 + i);
  }
  return cents / 100.0;
}

}  // namespace pfdrl::ems
