#include "ems/mode.hpp"

#include <cmath>

namespace pfdrl::ems {

ModeBands bands_for(const data::DeviceSpec& spec) noexcept {
  ModeBands bands;
  bands.standby_watts = spec.standby_watts;
  bands.on_watts = spec.on_watts;
  return bands;
}

data::DeviceMode classify_mode(double watts,
                               const ModeBands& bands) noexcept {
  if (watts < bands.off_floor) return data::DeviceMode::kOff;
  const double lo_s = (1.0 - bands.band) * bands.standby_watts;
  const double hi_s = (1.0 + bands.band) * bands.standby_watts;
  if (watts >= lo_s && watts <= hi_s) return data::DeviceMode::kStandby;
  const double lo_on = (1.0 - bands.band) * bands.on_watts;
  const double hi_on = (1.0 + bands.band) * bands.on_watts;
  if (watts >= lo_on && watts <= hi_on) return data::DeviceMode::kOn;

  // Outside all bands: nearest center by relative (log-scale) distance —
  // a 40 W reading on a 5 W-standby / 1800 W-on HVAC is much closer to
  // standby than to on.
  const double d_off = std::abs(std::log(std::max(watts, 1e-3) /
                                         std::max(bands.off_floor, 1e-3)));
  const double d_s =
      std::abs(std::log(std::max(watts, 1e-3) / bands.standby_watts));
  const double d_on =
      std::abs(std::log(std::max(watts, 1e-3) / bands.on_watts));
  if (d_s <= d_on && d_s <= d_off) return data::DeviceMode::kStandby;
  if (d_on <= d_s && d_on <= d_off) return data::DeviceMode::kOn;
  return data::DeviceMode::kOff;
}

double mode_watts(data::DeviceMode mode, const ModeBands& bands) noexcept {
  switch (mode) {
    case data::DeviceMode::kOff: return 0.0;
    case data::DeviceMode::kStandby: return bands.standby_watts;
    case data::DeviceMode::kOn: return bands.on_watts;
  }
  return 0.0;
}

}  // namespace pfdrl::ems
