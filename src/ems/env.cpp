#include "ems/env.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "data/dataset.hpp"

namespace pfdrl::ems {

EmsEnvironment::EmsEnvironment(const data::DeviceTrace& trace,
                               std::vector<double> forecast_watts,
                               std::size_t begin, std::size_t meter_interval)
    : EmsEnvironment(trace,
                     std::make_shared<const std::vector<double>>(
                         std::move(forecast_watts)),
                     begin, meter_interval) {}

EmsEnvironment::EmsEnvironment(
    const data::DeviceTrace& trace,
    std::shared_ptr<const std::vector<double>> forecast_watts,
    std::size_t begin, std::size_t meter_interval)
    : trace_(&trace),
      forecast_(std::move(forecast_watts)),
      begin_(begin),
      meter_interval_(std::max<std::size_t>(1, meter_interval)),
      bands_(bands_for(trace.spec)),
      scale_(data::normalization_scale(trace.spec)) {
  if (!forecast_) {
    throw std::invalid_argument("EmsEnvironment: null forecast series");
  }
  if (begin_ + forecast_->size() > trace.minutes()) {
    throw std::invalid_argument("EmsEnvironment: span exceeds trace");
  }
}

std::size_t EmsEnvironment::last_report_minute(
    std::size_t minute) const noexcept {
  if (minute == 0) return 0;
  // Reports land at minutes 0, R, 2R, ...; the newest strictly before
  // `minute` is available when acting at `minute`.
  return ((minute - 1) / meter_interval_) * meter_interval_;
}

std::vector<double> EmsEnvironment::state_at(std::size_t idx) const {
  std::vector<double> s(kStateDim, 0.0);
  state_into(idx, s);
  return s;
}

void EmsEnvironment::state_into(std::size_t idx, std::span<double> out) const {
  assert(idx < length());
  assert(out.size() == kStateDim);
  double* s = out.data();
  const std::size_t minute = begin_ + idx;
  // Log-compressed encoding: off/standby/on land on well-separated
  // levels (~0 / ~0.3 / ~0.9) instead of 0 / 0.01 / 0.7.
  s[0] = data::encode_watts((*forecast_)[idx], scale_, /*log_scale=*/true);
  // Causal meter history: the two most recent *reported* readings.
  const std::size_t report = last_report_minute(minute);
  const std::size_t prev_report =
      report >= meter_interval_ ? report - meter_interval_ : 0;
  s[1] = data::encode_watts(trace_->watts[report], scale_, /*log_scale=*/true);
  s[2] = data::encode_watts(trace_->watts[prev_report], scale_,
                            /*log_scale=*/true);
  const double hour_frac =
      static_cast<double>(minute % data::kMinutesPerDay) /
      static_cast<double>(data::kMinutesPerDay);
  s[3] = std::sin(2.0 * std::numbers::pi * hour_frac);
  s[4] = std::cos(2.0 * std::numbers::pi * hour_frac);
}

data::DeviceMode EmsEnvironment::observed_mode(std::size_t idx) const {
  return classify_mode(real_watts(idx), bands_);
}

data::DeviceMode EmsEnvironment::predicted_mode(std::size_t idx) const {
  return classify_mode((*forecast_)[idx], bands_);
}

data::DeviceMode EmsEnvironment::true_mode(std::size_t idx) const {
  return trace_->modes[begin_ + idx];
}

double EmsEnvironment::reward_at(std::size_t idx, int action) const {
  return reward(observed_mode(idx), action_to_mode(action));
}

double EmsEnvironment::real_watts(std::size_t idx) const noexcept {
  return trace_->watts[begin_ + idx];
}

double EmsEnvironment::forecast_watts(std::size_t idx) const noexcept {
  return (*forecast_)[idx];
}

}  // namespace pfdrl::ems
