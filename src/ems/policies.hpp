// Non-learning EMS policies: the upper bound (oracle) and the heuristics
// a commercial product would ship without RL. They bracket the DQN's
// performance in the ablation bench and give the examples something to
// compare against.
#pragma once

#include <vector>

#include "ems/env.hpp"

namespace pfdrl::ems {

/// Upper bound: acts on generator ground truth (not realizable — the
/// truth is only known to the simulator).
std::vector<int> oracle_actions(const EmsEnvironment& env);

/// Reactive rule on the newest meter report: off when the report reads
/// standby or off, on when it reads on. No anticipation, no learning.
std::vector<int> reactive_actions(const EmsEnvironment& env);

/// Night timer: switch everything off between `off_hour` and `on_hour`
/// (e.g. 0-6 AM), leave devices alone otherwise. The classic dumb plug
/// timer.
std::vector<int> timer_actions(const EmsEnvironment& env,
                               std::size_t off_hour = 0,
                               std::size_t on_hour = 6);

/// Do nothing: hold each device in its last *reported* mode (an EMS that
/// never initiates a switch). Saves nothing; the no-EMS baseline.
std::vector<int> passive_actions(const EmsEnvironment& env);

}  // namespace pfdrl::ems
