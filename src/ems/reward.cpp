#include "ems/reward.hpp"

#include <cstdlib>

namespace pfdrl::ems {

double reward(data::DeviceMode ground_truth,
              data::DeviceMode action) noexcept {
  using data::DeviceMode;
  // The one exception first: reclaiming standby waste pays +30.
  if (ground_truth == DeviceMode::kStandby && action == DeviceMode::kOff) {
    return 30.0;
  }
  if (ground_truth == action) return 10.0;
  const int distance = std::abs(static_cast<int>(ground_truth) -
                                static_cast<int>(action));
  return distance >= 2 ? -30.0 : -10.0;
}

data::DeviceMode optimal_action(data::DeviceMode ground_truth) noexcept {
  using data::DeviceMode;
  switch (ground_truth) {
    case DeviceMode::kOn: return DeviceMode::kOn;
    case DeviceMode::kStandby: return DeviceMode::kOff;
    case DeviceMode::kOff: return DeviceMode::kOff;
  }
  return DeviceMode::kOff;
}

}  // namespace pfdrl::ems
