// The per-device EMS environment (paper §3.3.1 MDP).
//
// At each minute the agent observes the *predicted* energy value (from
// the DFL load forecast) and the *real-time* energy value (from the
// meter) — exactly the state the paper defines (§3.3.1: "the state space
// consists of two separate parts: the predicted energy consumption ...
// and the real-time energy consumption").
//
// Causality matters: the action for minute t must be chosen before
// minute t's consumption is measured (a minute already metered cannot be
// reclaimed), and smart-plug meters report on an interval rather than
// continuously (default: every 15 minutes — typical for home energy
// monitors). The real-time part of the state is therefore the last two
// *reported* readings, while the forecast part is the prediction *for* t:
//   [ pred watts(t) | real watts(last report) | real watts(prev report) |
//     sin hour | cos hour ]        (all watts log-encoded)
// Between reports only the forecast and the learned (household-specific)
// schedule can tell the agent what the device is doing — which is why
// the paper stresses that "the DRL agent performance is highly
// influenced by the DFL load forecasting accuracy", and why household
// schedule knowledge (the personalization layers) has real value.
//
// The mode *thresholds* are deliberately not part of the state: the
// Q-network has to learn each device's off/standby/on power bands, and
// because those bands differ between residences (unit-level jitter),
// this is precisely where PFDRL's personalization layers earn their
// keep and where naive full-model averaging (FRL) misplaces decision
// boundaries.
//
// The agent picks a target mode (off / standby / on). Transitions are
// deterministic (paper: "the probability between states is always 1") —
// the trace advances by one minute regardless of the action; the action
// only earns reward and, when it turns a standby device off, reclaims
// that minute's standby energy.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "data/device.hpp"
#include "data/trace.hpp"
#include "ems/mode.hpp"
#include "ems/reward.hpp"

namespace pfdrl::ems {

class EmsEnvironment {
 public:
  /// `forecast_watts[i]` is the predicted draw for trace minute
  /// `begin + i`; the environment covers minutes [begin, begin + size).
  /// `meter_interval` is the reporting period of the device's meter in
  /// minutes (>= 1; 1 = continuous metering).
  EmsEnvironment(const data::DeviceTrace& trace,
                 std::vector<double> forecast_watts, std::size_t begin,
                 std::size_t meter_interval = kDefaultMeterInterval);
  /// Shared-forecast overload: the environment holds a reference to the
  /// caller's series instead of copying it. Used by core::EpisodeRunner,
  /// whose forecast cache hands the same (possibly multi-day) series to
  /// every episode over a window.
  EmsEnvironment(const data::DeviceTrace& trace,
                 std::shared_ptr<const std::vector<double>> forecast_watts,
                 std::size_t begin,
                 std::size_t meter_interval = kDefaultMeterInterval);

  static constexpr std::size_t kStateDim = 5;
  static constexpr std::size_t kDefaultMeterInterval = 5;

  [[nodiscard]] std::size_t meter_interval() const noexcept {
    return meter_interval_;
  }
  /// Trace minute of the most recent meter report available when acting
  /// at trace minute `minute` (reports land at multiples of the
  /// interval; the report covering minute m is available from m+1 on).
  [[nodiscard]] std::size_t last_report_minute(std::size_t minute)
      const noexcept;

  [[nodiscard]] std::size_t length() const noexcept {
    return forecast_->size();
  }
  [[nodiscard]] std::size_t begin_minute() const noexcept { return begin_; }
  [[nodiscard]] const data::DeviceTrace& trace() const noexcept {
    return *trace_;
  }
  [[nodiscard]] const ModeBands& bands() const noexcept { return bands_; }

  /// State vector for step `idx` in [0, length()).
  [[nodiscard]] std::vector<double> state_at(std::size_t idx) const;
  /// Allocation-free variant: writes the state into `out`, which must be
  /// exactly kStateDim wide. Hot-path entry used by the episode runner.
  void state_into(std::size_t idx, std::span<double> out) const;

  /// Mode classified from the real power reading at step idx (what the
  /// agent and the reward can observe).
  [[nodiscard]] data::DeviceMode observed_mode(std::size_t idx) const;
  /// Mode classified from the forecast at step idx.
  [[nodiscard]] data::DeviceMode predicted_mode(std::size_t idx) const;
  /// Generator ground truth (benchmark accounting only).
  [[nodiscard]] data::DeviceMode true_mode(std::size_t idx) const;

  /// Table-1 reward for taking `action` at step idx.
  [[nodiscard]] double reward_at(std::size_t idx, int action) const;

  /// Real power reading at step idx (watts).
  [[nodiscard]] double real_watts(std::size_t idx) const noexcept;
  [[nodiscard]] double forecast_watts(std::size_t idx) const noexcept;

 private:
  const data::DeviceTrace* trace_;
  std::shared_ptr<const std::vector<double>> forecast_;
  std::size_t begin_;
  std::size_t meter_interval_;
  ModeBands bands_;
  double scale_;
};

}  // namespace pfdrl::ems
