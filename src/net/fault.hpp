// Composable fault-injection model for the simulated residential network.
//
// PFDRL is cloud-free: parameter exchange rides home links that drop,
// delay, reorder and duplicate traffic, and residences go dark or lag
// behind. A FaultPlan describes what the *links* of one bus do to every
// delivery (loss, fixed+jitter delay, duplication, reordering, scheduled
// partitions); a FailureSchedule describes what the *nodes* do (crash /
// restart windows and slow-node compute stragglers) and is consumed one
// layer up, by the fl::ParamExchange round (see docs/robustness.md for
// the full layering picture).
//
// Determinism: all fault randomness is drawn from one per-bus RNG stream
// seeded by FaultPlan::seed. Callers that own an experiment seed derive
// the per-bus stream with derive_fault_seed(experiment_seed, bus_id), so
// the forecast bus and the DRL plan-exchange bus never replay the same
// drop mask (the old shared-constant-seed bug) while the whole run stays
// bitwise reproducible per seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::net {

struct LinkModel {
  /// Simulated bandwidth in bytes/second (default: 100 Mbit home LAN).
  double bytes_per_second = 12.5e6;
  /// Fixed per-message latency in seconds.
  double base_latency_s = 2e-3;
  /// Probability that a delivery is silently dropped (lossy Wi-Fi model;
  /// 0 = reliable). Receivers must tolerate missing contributions — the
  /// FedAvg layer already averages whatever arrives.
  double drop_probability = 0.0;

  [[nodiscard]] double transfer_seconds(std::size_t bytes) const noexcept {
    return base_latency_s + static_cast<double>(bytes) / bytes_per_second;
  }
};

/// Scheduled link partition: while active (round in [from_round,
/// until_round)), deliveries between a group member and a non-member are
/// dropped in both directions. Traffic within the group, and among the
/// non-members, is unaffected — the classic split-brain window.
struct PartitionWindow {
  std::uint64_t from_round = 0;   ///< inclusive
  std::uint64_t until_round = 0;  ///< exclusive
  std::vector<AgentId> group;

  [[nodiscard]] bool active(std::uint64_t round) const noexcept {
    return round >= from_round && round < until_round;
  }
  [[nodiscard]] bool contains(AgentId a) const noexcept;
  /// True if this window cuts the a<->b link during `round`.
  [[nodiscard]] bool severs(AgentId a, AgentId b,
                            std::uint64_t round) const noexcept;
};

/// Everything one bus's links do to traffic. Extends the plain LinkModel
/// (bandwidth / latency / loss) with delay+jitter, duplication,
/// reordering and scheduled partitions. Implicitly constructible from a
/// LinkModel so existing "just set a drop rate" call sites keep working.
struct FaultPlan {
  LinkModel link{};
  /// Fixed extra delivery delay in simulated seconds (on top of the
  /// link's transfer time).
  double delay_s = 0.0;
  /// Uniform extra delay in [0, jitter_s) per delivery.
  double jitter_s = 0.0;
  /// Probability that a delivered message is enqueued twice (the second
  /// copy is billed and arrives one transfer later — a retransmission).
  double duplicate_probability = 0.0;
  /// Insert deliveries at a random inbox position instead of the tail.
  bool reorder = false;
  /// Scheduled split-brain windows, keyed by the message's round stamp.
  std::vector<PartitionWindow> partitions;
  /// Seed of this bus's private fault stream. 0 selects the legacy
  /// constant stream; derive_fault_seed() gives each bus its own.
  std::uint64_t seed = 0;

  FaultPlan() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) — a LinkModel is a plan.
  FaultPlan(LinkModel l) noexcept : link(l) {}

  /// True when every delivery arrives exactly once (no loss, duplication
  /// or partitions) — the precondition for secure aggregation, whose
  /// pairwise masks only cancel under full participation.
  [[nodiscard]] bool reliable() const noexcept {
    return link.drop_probability <= 0.0 && duplicate_probability <= 0.0 &&
           partitions.empty();
  }
  /// True if any partition window cuts a<->b during `round`.
  [[nodiscard]] bool severed(AgentId a, AgentId b,
                             std::uint64_t round) const noexcept;

  /// True when delivery consumes no randomness: no loss, no jitter, no
  /// duplication, no reordering. Partitions and fixed delay are pure
  /// functions of (sender, receiver, round) and stay deterministic under
  /// any delivery order. This is the pipelined engine's eligibility
  /// gate — with stochastic draws, overlapping rounds would consume the
  /// shared per-bus fault stream in a schedule-dependent order and break
  /// bitwise reproducibility, so such plans fall back to the barrier
  /// engine (docs/scaling.md).
  [[nodiscard]] bool deterministic_delivery() const noexcept {
    return link.drop_probability <= 0.0 && jitter_s <= 0.0 &&
           duplicate_probability <= 0.0 && !reorder;
  }
};

/// Per-bus fault stream: hashes (experiment seed, bus id) so distinct
/// buses of one experiment draw independent drop/jitter masks while the
/// run stays deterministic per seed. Never returns 0 (the "unset"
/// sentinel).
[[nodiscard]] std::uint64_t derive_fault_seed(std::uint64_t experiment_seed,
                                              std::uint64_t bus_id) noexcept;

/// One residence going dark for a window of exchange rounds: while
/// crashed the agent neither broadcasts nor drains its inbox (messages
/// pile up and are discarded as stale after restart). Local training is
/// unaffected — the home lost its uplink, not its compute.
struct CrashWindow {
  AgentId agent = 0;
  std::uint64_t from_round = 0;   ///< inclusive
  std::uint64_t until_round = 0;  ///< exclusive
};

/// A slow node: every broadcast it sends starts `compute_delay_s`
/// simulated seconds late, so with a round deadline its contributions
/// tend to miss the cut at every receiver.
struct StragglerSpec {
  AgentId agent = 0;
  double compute_delay_s = 0.0;
};

/// Per-residence failure schedule, consumed by fl::ParamExchange.
struct FailureSchedule {
  std::vector<CrashWindow> crashes;
  std::vector<StragglerSpec> stragglers;

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && stragglers.empty();
  }
  [[nodiscard]] bool crashed(AgentId agent, std::uint64_t round) const noexcept;
  [[nodiscard]] double compute_delay(AgentId agent) const noexcept;
};

/// Parse "key=value,..." fault specs, e.g.
///   "drop=0.2,delay=0.01,jitter=0.005,dup=0.02,reorder=1".
/// Keys: drop, delay, jitter, dup, reorder, bw (bytes/s), latency.
/// Throws std::invalid_argument on unknown keys or malformed values.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Parse "FROM:UNTIL:a,b,c" (round window + partition group agent ids).
[[nodiscard]] PartitionWindow parse_partition(const std::string& spec);

/// Parse "AGENT:FROM:UNTIL" (crash window in exchange rounds).
[[nodiscard]] CrashWindow parse_crash(const std::string& spec);

/// Parse "AGENT:DELAY_SECONDS".
[[nodiscard]] StragglerSpec parse_straggler(const std::string& spec);

}  // namespace pfdrl::net
