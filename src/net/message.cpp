#include "net/message.hpp"

namespace pfdrl::net {

const char* message_kind_name(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kForecastParams: return "forecast_params";
    case MessageKind::kDrlBaseParams: return "drl_base_params";
    case MessageKind::kDrlFullParams: return "drl_full_params";
  }
  return "?";
}

std::size_t Message::wire_bytes() const noexcept {
  // 4 (sender) + 1 (kind) + 4 (device_type) + 8 (round) + 8 (len)
  constexpr std::size_t kHeader = 25;
  return kHeader + payload.size() * sizeof(double);
}

}  // namespace pfdrl::net
