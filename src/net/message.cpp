#include "net/message.hpp"

#include <atomic>

namespace pfdrl::net {

namespace {
std::atomic<std::uint64_t> g_payload_allocations{0};
}  // namespace

Payload::Payload(std::vector<double> values)
    : buf_(std::make_shared<const std::vector<double>>(std::move(values))) {
  g_payload_allocations.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Payload::allocations() noexcept {
  return g_payload_allocations.load(std::memory_order_relaxed);
}

const char* message_kind_name(MessageKind k) noexcept {
  switch (k) {
    case MessageKind::kForecastParams: return "forecast_params";
    case MessageKind::kDrlBaseParams: return "drl_base_params";
    case MessageKind::kDrlFullParams: return "drl_full_params";
  }
  return "?";
}

namespace {
// 4 (sender) + 1 (kind) + 4 (device_type) + 8 (round) + 8 (len)
constexpr std::size_t kHeader = 25;
}  // namespace

std::size_t Message::wire_bytes() const noexcept {
  return kHeader + (coded_bytes != 0 ? coded_bytes
                                     : payload.size() * sizeof(double));
}

std::size_t Message::logical_bytes() const noexcept {
  return kHeader + payload.size() * sizeof(double);
}

}  // namespace pfdrl::net
