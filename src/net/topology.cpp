#include "net/topology.hpp"

#include <stdexcept>

namespace pfdrl::net {

const char* topology_name(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kFullMesh: return "full_mesh";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kHierarchical: return "hierarchical";
    case TopologyKind::kGossip: return "gossip";
  }
  return "?";
}

std::optional<TopologyKind> parse_topology_kind(const std::string& name) {
  if (name == "full_mesh" || name == "mesh") return TopologyKind::kFullMesh;
  if (name == "star") return TopologyKind::kStar;
  if (name == "ring") return TopologyKind::kRing;
  if (name == "hierarchical") return TopologyKind::kHierarchical;
  if (name == "gossip") return TopologyKind::kGossip;
  return std::nullopt;
}

Topology::Topology(TopologyKind kind, std::size_t num_agents,
                   TopologyOptions options)
    : kind_(kind), n_(num_agents), opts_(options) {
  if (num_agents == 0) throw std::invalid_argument("Topology: zero agents");
  // Normalize the knobs once so the hot iteration never re-clamps.
  opts_.cluster_size = std::clamp<std::size_t>(opts_.cluster_size, 1, n_);
  opts_.fanout =
      std::min({opts_.fanout, n_ > 0 ? n_ - 1 : std::size_t{0},
                kMaxGossipFanout});
}

std::vector<AgentId> Topology::neighbors(AgentId sender) const {
  std::vector<AgentId> out;
  out.reserve(broadcast_links(sender));
  for_each_neighbor(sender, [&out](AgentId to) { out.push_back(to); });
  return out;
}

std::size_t Topology::broadcast_links(AgentId sender) const {
  switch (kind_) {
    case TopologyKind::kFullMesh:
      return n_ - 1;
    case TopologyKind::kStar:
      return sender == 0 ? n_ - 1 : 1;
    case TopologyKind::kRing:
      return n_ > 2 ? 2 : (n_ > 1 ? 1 : 0);
    case TopologyKind::kHierarchical:
    case TopologyKind::kGossip: {
      // Gossip peer counts depend on rejection sampling and hierarchical
      // on ragged tail clusters; count via the same iteration the bus
      // uses so accounting always agrees with delivery.
      std::size_t links = 0;
      for_each_neighbor(sender, [&links](AgentId) { ++links; });
      return links;
    }
  }
  return 0;
}

bool Topology::connected() const {
  if (n_ == 0) return false;
  if (n_ == 1) return true;
  // Strong connectivity of the directed broadcast graph: forward BFS
  // from agent 0 must reach everyone, and backward BFS (over reversed
  // edges) must too. Reverse adjacency is materialized once per call —
  // this is a diagnostic/validation primitive, not a broadcast path.
  std::vector<std::vector<AgentId>> reverse(n_);
  for (std::size_t s = 0; s < n_; ++s) {
    for_each_neighbor(static_cast<AgentId>(s), [&](AgentId to) {
      reverse[to].push_back(static_cast<AgentId>(s));
    });
  }
  const auto sweep = [this, &reverse](bool forward) {
    std::vector<char> seen(n_, 0);
    std::vector<AgentId> stack{AgentId{0}};
    seen[0] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const AgentId at = stack.back();
      stack.pop_back();
      const auto visit = [&](AgentId next) {
        if (!seen[next]) {
          seen[next] = 1;
          ++reached;
          stack.push_back(next);
        }
      };
      if (forward) {
        for_each_neighbor(at, visit);
      } else {
        for (AgentId next : reverse[at]) visit(next);
      }
    }
    return reached == n_;
  };
  return sweep(true) && sweep(false);
}

}  // namespace pfdrl::net
