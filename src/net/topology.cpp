#include "net/topology.hpp"

#include <stdexcept>

namespace pfdrl::net {

const char* topology_name(TopologyKind k) noexcept {
  switch (k) {
    case TopologyKind::kFullMesh: return "full_mesh";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kRing: return "ring";
  }
  return "?";
}

Topology::Topology(TopologyKind kind, std::size_t num_agents)
    : kind_(kind), n_(num_agents) {
  if (num_agents == 0) throw std::invalid_argument("Topology: zero agents");
}

std::vector<AgentId> Topology::neighbors(AgentId sender) const {
  std::vector<AgentId> out;
  switch (kind_) {
    case TopologyKind::kFullMesh:
      out.reserve(n_ - 1);
      for (std::size_t i = 0; i < n_; ++i) {
        if (i != sender) out.push_back(static_cast<AgentId>(i));
      }
      break;
    case TopologyKind::kStar:
      // Agent 0 is the hub. Leaves talk to the hub; the hub reaches all.
      if (sender == 0) {
        out.reserve(n_ - 1);
        for (std::size_t i = 1; i < n_; ++i) {
          out.push_back(static_cast<AgentId>(i));
        }
      } else {
        out.push_back(0);
      }
      break;
    case TopologyKind::kRing:
      if (n_ > 1) {
        out.push_back(static_cast<AgentId>((sender + 1) % n_));
        if (n_ > 2) {
          out.push_back(static_cast<AgentId>((sender + n_ - 1) % n_));
        }
      }
      break;
  }
  return out;
}

std::size_t Topology::broadcast_links(AgentId sender) const {
  return neighbors(sender).size();
}

}  // namespace pfdrl::net
