// Wire codec for parameter payloads — the bytes-per-round hot path of
// federated training (docs/wire.md).
//
// Successive broadcasts of one model differ in a few low mantissa bits
// once training converges, so the codec keeps one *stream* per
// (sender, message kind, device type) holding the previous round's
// frame, XORs the new fp64 vector against it (Gorilla/FPC-style), and
// packs the sparse-leading-zero residuals with a branch-free
// nibble-length scheme: a 4-bit significant-byte count per value, then
// the significant little-endian bytes. The transform is **lossless** —
// decoded parameters are bitwise identical to what the sender encoded,
// so every golden test passes unmodified with the codec on. Frames that
// would expand (first round, incompressible deltas) fall back to a raw
// escape, and an exact retransmission collapses to a one-byte repeat
// frame.
//
// An opt-in lossy mode (--wire-quant) int8-quantizes each frame with a
// per-stream error-feedback accumulator: the quantization residual is
// carried into the next round's frame, so the time-averaged drift is
// unbiased. Delivered payloads are the dequantized values — receivers
// on one bus all observe the same doubles, and twin identically seeded
// runs stay bitwise equal to each other (but not to an unquantized
// run, so the mode is excluded from the bitwise goldens).
//
// Every encode immediately decodes its own frame and verifies the
// round-trip bitwise (throwing on any mismatch), so the decoder is
// exercised on every message of every run, not just in tests. See
// docs/wire.md for the stream-state contract a multi-process deployment
// must add (per-receiver mirrors, keyframe on resync).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::net {

struct CodecOptions {
  /// Lossy int8 quantization with per-stream error feedback. Default off
  /// — the lossless delta/XOR path is always active when a codec is
  /// attached to a bus.
  bool quantize = false;
};

struct CodecStats {
  /// Frames encoded (one per coded message).
  std::uint64_t frames = 0;
  /// Frames that collapsed to the one-byte repeat marker.
  std::uint64_t repeat_frames = 0;
  /// Frames that fell back to the raw escape (delta would have expanded).
  std::uint64_t raw_escapes = 0;
  /// Payload bytes before coding (8 * values).
  std::uint64_t raw_bytes = 0;
  /// Frame bytes after coding.
  std::uint64_t coded_bytes = 0;
  /// Wall nanoseconds spent encoding (packing only, verify excluded).
  std::uint64_t encode_ns = 0;
  /// Wall nanoseconds spent in the verify decodes.
  std::uint64_t decode_ns = 0;

  /// Compression ratio raw/coded; 1.0 before any frame.
  [[nodiscard]] double ratio() const noexcept {
    return coded_bytes > 0
               ? static_cast<double>(raw_bytes) / static_cast<double>(coded_bytes)
               : 1.0;
  }
};

/// One stream's resumable state, captured into sim::RunSnapshot so a
/// crash-resumed run encodes the same frame sequence (and byte counts)
/// as the uninterrupted one.
struct CodecStreamSnapshot {
  std::uint64_t sender = 0;
  std::uint8_t kind = 0;
  std::uint32_t device_type = 0;
  std::vector<double> prev;  ///< previous frame's values (bitwise)
  std::vector<double> err;   ///< quant error-feedback accumulator
};

class WireCodec {
 public:
  /// Frame type tag — the first byte of every coded frame.
  enum Flag : std::uint8_t {
    kPacked = 0,  ///< nibble-length packed XOR delta vs `prev`
    kRaw = 1,     ///< raw escape: 8n literal bytes
    kRepeat = 2,  ///< bitwise retransmission of `prev`
    kQuant = 3,   ///< int8 quantized: 8-byte scale + n bytes
  };

  explicit WireCodec(CodecOptions options = {}) : options_(options) {}

  /// Encode msg.payload on the stream keyed by (sender, kind,
  /// device_type) and stamp msg.coded_bytes with the frame size. In
  /// quantize mode the payload is replaced with the dequantized values
  /// every receiver observes. No-op if the message is already coded
  /// (relays and duplicates keep the original frame size). Verifies the
  /// frame round-trips bitwise; throws std::logic_error if not.
  void encode(Message& msg);

  /// Drop every stream owned by `sender` — called when the residence
  /// crashes or warm-restarts, because its receivers' mirrors are stale;
  /// the next frame is a keyframe (delta vs zero).
  void reset_agent(AgentId sender);
  /// Drop all stream state (streams only; stats survive).
  void reset_streams();

  [[nodiscard]] CodecStats stats() const;
  void reset_stats();

  [[nodiscard]] bool quantize() const noexcept { return options_.quantize; }

  /// Stream state snapshot/restore (sim::RunSnapshot) — sorted by key,
  /// so serialization is deterministic.
  [[nodiscard]] std::vector<CodecStreamSnapshot> capture_streams() const;
  void restore_streams(const std::vector<CodecStreamSnapshot>& streams);

  // --- stateless frame layer (benches and tests drive this directly) ---

  /// Encode `values` as a delta frame against `prev` (empty or
  /// size-mismatched `prev` means keyframe: delta vs zero bits).
  /// Appends nothing; `out` is overwritten. Returns the frame size.
  static std::size_t encode_frame(std::span<const double> values,
                                  std::span<const double> prev,
                                  std::vector<std::uint8_t>& out);

  /// Decode a frame produced by encode_frame back into `count` doubles.
  /// `prev` must be the same previous-frame contents the encoder saw.
  /// Throws std::runtime_error on truncated, trailing-garbage or
  /// malformed input; never reads out of bounds.
  static void decode_frame(std::span<const std::uint8_t> frame,
                           std::span<const double> prev, std::size_t count,
                           std::vector<double>& out);

  /// Worst-case frame size for `count` doubles (the raw escape).
  [[nodiscard]] static constexpr std::size_t max_frame_bytes(
      std::size_t count) noexcept {
    return 1 + count * sizeof(double);
  }

 private:
  struct Stream {
    std::vector<double> prev;
    std::vector<double> err;
  };
  using Key = std::tuple<std::uint64_t, std::uint8_t, std::uint32_t>;

  /// Quantize `values` (plus carried error) into the stream's int8 frame
  /// and overwrite `values` with the dequantized result. Returns the
  /// frame size. Updates stream.err.
  std::size_t encode_quant(Stream& stream, std::vector<double>& values,
                           std::vector<std::uint8_t>& out);

  CodecOptions options_;
  mutable std::mutex mutex_;
  std::map<Key, Stream> streams_;
  CodecStats stats_;
  std::vector<std::uint8_t> frame_;
  std::vector<double> verify_;
};

}  // namespace pfdrl::net
