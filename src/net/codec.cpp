#include "net/codec.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace pfdrl::net {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t bits_of(double v) noexcept {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double double_of(std::uint64_t b) noexcept {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

std::size_t WireCodec::encode_frame(std::span<const double> values,
                                    std::span<const double> prev,
                                    std::vector<std::uint8_t>& out) {
  const std::size_t n = values.size();
  const bool have_prev = prev.size() == n && n > 0;
  if (have_prev &&
      std::memcmp(values.data(), prev.data(), n * sizeof(double)) == 0) {
    out.assign(1, static_cast<std::uint8_t>(kRepeat));
    return 1;
  }

  const std::size_t nibble_bytes = (n + 1) / 2;
  // Worst case (every residual 8 bytes) plus one word of store slack for
  // the branch-free writer below.
  out.resize(1 + nibble_bytes + n * sizeof(double) + sizeof(std::uint64_t));
  out[0] = static_cast<std::uint8_t>(kPacked);
  std::uint8_t* nibbles = out.data() + 1;
  std::memset(nibbles, 0, nibble_bytes);
  std::uint8_t* cursor = nibbles + nibble_bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x =
        bits_of(values[i]) ^ (have_prev ? bits_of(prev[i]) : std::uint64_t{0});
    // Significant little-endian byte count: 0 for x == 0, else
    // ceil((64 - clz) / 8); (71 - clz) / 8 computes both branch-free.
    const unsigned sig =
        (71u - static_cast<unsigned>(std::countl_zero(x))) / 8u;
    nibbles[i >> 1] |=
        static_cast<std::uint8_t>(sig << ((i & 1u) * 4u));
    std::memcpy(cursor, &x, sizeof(x));  // full-word store, advance by sig
    cursor += sig;
  }
  std::size_t size = static_cast<std::size_t>(cursor - out.data());
  if (size >= 1 + n * sizeof(double)) {
    // The delta would expand (keyframe of incompressible bits) — escape
    // to a raw literal so coded never exceeds raw by more than the flag.
    out[0] = static_cast<std::uint8_t>(kRaw);
    if (n > 0) {
      std::memcpy(out.data() + 1, values.data(), n * sizeof(double));
    }
    size = 1 + n * sizeof(double);
  }
  out.resize(size);
  return size;
}

void WireCodec::decode_frame(std::span<const std::uint8_t> frame,
                             std::span<const double> prev, std::size_t count,
                             std::vector<double>& out) {
  if (frame.empty()) throw std::runtime_error("codec: empty frame");
  const bool have_prev = prev.size() == count && count > 0;
  const std::uint8_t flag = frame[0];
  const std::span<const std::uint8_t> body = frame.subspan(1);
  out.resize(count);
  switch (flag) {
    case kRepeat: {
      if (!body.empty()) {
        throw std::runtime_error("codec: repeat frame carries payload bytes");
      }
      if (!have_prev) {
        throw std::runtime_error("codec: repeat frame without stream state");
      }
      std::copy(prev.begin(), prev.end(), out.begin());
      return;
    }
    case kRaw: {
      if (body.size() != count * sizeof(double)) {
        throw std::runtime_error("codec: raw frame size mismatch");
      }
      if (count > 0) std::memcpy(out.data(), body.data(), body.size());
      return;
    }
    case kPacked: {
      const std::size_t nibble_bytes = (count + 1) / 2;
      if (body.size() < nibble_bytes) {
        throw std::runtime_error("codec: truncated nibble table");
      }
      const std::uint8_t* nibbles = body.data();
      const std::uint8_t* cursor = nibbles + nibble_bytes;
      const std::uint8_t* const end = body.data() + body.size();
      for (std::size_t i = 0; i < count; ++i) {
        const unsigned sig = (nibbles[i >> 1] >> ((i & 1u) * 4u)) & 0xFu;
        if (sig > sizeof(std::uint64_t)) {
          throw std::runtime_error("codec: bad significant-byte count");
        }
        if (static_cast<std::size_t>(end - cursor) < sig) {
          throw std::runtime_error("codec: truncated packed frame");
        }
        std::uint64_t x = 0;
        std::memcpy(&x, cursor, sig);
        cursor += sig;
        const std::uint64_t p = have_prev ? bits_of(prev[i]) : std::uint64_t{0};
        out[i] = double_of(x ^ p);
      }
      if (cursor != end) {
        throw std::runtime_error("codec: trailing bytes in packed frame");
      }
      if ((count & 1u) != 0 && (nibbles[count >> 1] >> 4u) != 0) {
        throw std::runtime_error("codec: nonzero nibble padding");
      }
      return;
    }
    case kQuant: {
      if (body.size() != sizeof(double) + count) {
        throw std::runtime_error("codec: quant frame size mismatch");
      }
      double scale = 0.0;
      std::memcpy(&scale, body.data(), sizeof(scale));
      if (!std::isfinite(scale) || scale < 0.0) {
        throw std::runtime_error("codec: bad quant scale");
      }
      const auto* q =
          reinterpret_cast<const std::int8_t*>(body.data() + sizeof(double));
      for (std::size_t i = 0; i < count; ++i) {
        out[i] = scale * static_cast<double>(q[i]);
      }
      return;
    }
    default:
      throw std::runtime_error("codec: unknown frame flag");
  }
}

std::size_t WireCodec::encode_quant(Stream& stream,
                                    std::vector<double>& values,
                                    std::vector<std::uint8_t>& out) {
  const std::size_t n = values.size();
  if (stream.err.size() != n) stream.err.assign(n, 0.0);
  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = values[i] + stream.err[i];
    const double a = std::abs(t);
    if (std::isfinite(a) && a > max_abs) max_abs = a;
  }
  const double scale = max_abs > 0.0 ? max_abs / 127.0 : 0.0;
  out.resize(1 + sizeof(double) + n);
  out[0] = static_cast<std::uint8_t>(kQuant);
  std::memcpy(out.data() + 1, &scale, sizeof(scale));
  auto* q = reinterpret_cast<std::int8_t*>(out.data() + 1 + sizeof(double));
  for (std::size_t i = 0; i < n; ++i) {
    const double t = values[i] + stream.err[i];
    long qi = 0;
    if (scale > 0.0 && std::isfinite(t)) {
      qi = std::lround(t / scale);
      qi = std::clamp(qi, -127L, 127L);
    }
    q[i] = static_cast<std::int8_t>(qi);
    const double deq = scale * static_cast<double>(qi);
    // Error feedback: the residual rides into the next round's frame, so
    // the time-averaged quantization drift is unbiased. Non-finite
    // inputs carry no residual (they quantize to 0 by definition).
    stream.err[i] = std::isfinite(t) ? t - deq : 0.0;
    values[i] = deq;
  }
  return out.size();
}

void WireCodec::encode(Message& msg) {
  if (msg.coded_bytes != 0) return;  // relays/duplicates keep their frame
  std::lock_guard lock(mutex_);
  Stream& stream = streams_[Key{msg.sender,
                                static_cast<std::uint8_t>(msg.kind),
                                msg.device_type}];
  const std::size_t n = msg.payload.size();
  std::size_t coded = 0;
  if (options_.quantize) {
    const std::span<const double> in = msg.payload.span();
    std::vector<double> delivered(in.begin(), in.end());
    const std::uint64_t t0 = now_ns();
    coded = encode_quant(stream, delivered, frame_);
    const std::uint64_t t1 = now_ns();
    stats_.encode_ns += t1 - t0;
    decode_frame(std::span<const std::uint8_t>(frame_.data(), coded), {}, n,
                 verify_);
    stats_.decode_ns += now_ns() - t1;
    if (verify_.size() != delivered.size() ||
        (n > 0 && std::memcmp(verify_.data(), delivered.data(),
                              n * sizeof(double)) != 0)) {
      throw std::logic_error("codec: quant frame round-trip mismatch");
    }
    msg.payload.assign(delivered.begin(), delivered.end());
  } else {
    const std::span<const double> values = msg.payload.span();
    const std::uint64_t t0 = now_ns();
    coded = encode_frame(values, stream.prev, frame_);
    const std::uint64_t t1 = now_ns();
    stats_.encode_ns += t1 - t0;
    // Verify-on-encode: the decoder runs against the same previous frame
    // the encoder delta'd against, on every message of every run.
    decode_frame(std::span<const std::uint8_t>(frame_.data(), coded),
                 stream.prev, n, verify_);
    stats_.decode_ns += now_ns() - t1;
    if (verify_.size() != n ||
        (n > 0 &&
         std::memcmp(verify_.data(), values.data(), n * sizeof(double)) != 0)) {
      throw std::logic_error("codec: lossless round-trip mismatch");
    }
    if (frame_[0] != kRepeat) {
      stream.prev.assign(values.begin(), values.end());
    }
  }
  msg.coded_bytes = coded;
  ++stats_.frames;
  if (!frame_.empty() && frame_[0] == kRepeat) ++stats_.repeat_frames;
  if (!frame_.empty() && frame_[0] == kRaw) ++stats_.raw_escapes;
  stats_.raw_bytes += n * sizeof(double);
  stats_.coded_bytes += coded;
}

void WireCodec::reset_agent(AgentId sender) {
  std::lock_guard lock(mutex_);
  std::erase_if(streams_, [sender](const auto& kv) {
    return std::get<0>(kv.first) == sender;
  });
}

void WireCodec::reset_streams() {
  std::lock_guard lock(mutex_);
  streams_.clear();
}

CodecStats WireCodec::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void WireCodec::reset_stats() {
  std::lock_guard lock(mutex_);
  stats_ = CodecStats{};
}

std::vector<CodecStreamSnapshot> WireCodec::capture_streams() const {
  std::lock_guard lock(mutex_);
  std::vector<CodecStreamSnapshot> out;
  out.reserve(streams_.size());
  for (const auto& [key, stream] : streams_) {
    CodecStreamSnapshot snap;
    snap.sender = std::get<0>(key);
    snap.kind = std::get<1>(key);
    snap.device_type = std::get<2>(key);
    snap.prev = stream.prev;
    snap.err = stream.err;
    out.push_back(std::move(snap));
  }
  return out;  // map order: sorted by key, so serialization is stable
}

void WireCodec::restore_streams(
    const std::vector<CodecStreamSnapshot>& streams) {
  std::lock_guard lock(mutex_);
  streams_.clear();
  for (const auto& snap : streams) {
    Stream& stream = streams_[Key{snap.sender, snap.kind, snap.device_type}];
    stream.prev = snap.prev;
    stream.err = snap.err;
  }
}

}  // namespace pfdrl::net
