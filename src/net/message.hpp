// Messages exchanged between smart-home agents over the simulated
// residential network. Payloads are flat parameter vectors (the only
// thing PFDRL ever transmits — raw data never leaves a residence).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace pfdrl::net {

using AgentId = std::uint32_t;

/// Immutable, refcounted parameter buffer. Copying a Payload (and hence a
/// Message) copies a shared handle, never the doubles — a full-mesh
/// broadcast enqueues N handles to one allocation instead of N deep
/// copies. The simulated wire still bills every *delivery* for the full
/// logical byte count (see MessageBus::deliver); only the in-process
/// memory traffic is collapsed.
class Payload {
 public:
  Payload() = default;
  /// Takes ownership of `values` (one buffer allocation, counted).
  Payload(std::vector<double> values);  // NOLINT(google-explicit-constructor)

  [[nodiscard]] std::size_t size() const noexcept {
    return buf_ ? buf_->size() : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::span<const double> span() const noexcept {
    return buf_ ? std::span<const double>(*buf_) : std::span<const double>();
  }
  // NOLINTNEXTLINE(google-explicit-constructor) — payloads read as spans.
  operator std::span<const double>() const noexcept { return span(); }
  double operator[](std::size_t i) const noexcept { return (*buf_)[i]; }

  void assign(std::size_t count, double value) {
    *this = Payload(std::vector<double>(count, value));
  }
  template <class It>
  void assign(It first, It last) {
    *this = Payload(std::vector<double>(first, last));
  }

  /// Reference count of the underlying buffer (0 when empty); tests use
  /// this to prove broadcasts share rather than copy.
  [[nodiscard]] long use_count() const noexcept { return buf_.use_count(); }

  /// Process-wide count of payload buffer allocations. Copying a Payload
  /// or Message never bumps this — only constructing one from a fresh
  /// vector does. The exchange engine snapshots it around a round to
  /// report `exchange.payload_copies`.
  [[nodiscard]] static std::uint64_t allocations() noexcept;

 private:
  std::shared_ptr<const std::vector<double>> buf_;
};

enum class MessageKind : std::uint8_t {
  /// Load-forecasting model parameters for one device (DFL, β schedule).
  kForecastParams = 0,
  /// DRL base-layer parameters (PFDRL, γ schedule).
  kDrlBaseParams = 1,
  /// Full DRL parameters (the FRL baseline shares everything).
  kDrlFullParams = 2,
};

const char* message_kind_name(MessageKind k) noexcept;

struct Message {
  AgentId sender = 0;
  MessageKind kind = MessageKind::kForecastParams;
  /// Which device's forecaster this is (index into the household's device
  /// list by *type*, so homologous devices aggregate across residences).
  std::uint32_t device_type = 0;
  /// Training round the parameters came from (staleness accounting).
  std::uint64_t round = 0;
  /// Simulated arrival offset within the round, in seconds. The sender
  /// seeds it with its compute delay (straggler model); every bus hop
  /// adds transfer time plus injected delay/jitter. Deadline-based
  /// exchange rounds discard contributions whose arrival_s exceeds the
  /// round deadline. Simulation metadata — not billed as wire bytes.
  double arrival_s = 0.0;
  Payload payload;
  /// Frame size in bytes after the wire codec encoded the payload; 0
  /// means uncoded (the payload ships as raw doubles). Stamped once by
  /// net::WireCodec at broadcast/send time; copies (relays, duplicates,
  /// shard-batch parking) keep the frame size of the original encode.
  std::uint64_t coded_bytes = 0;

  /// Serialized size in bytes on the simulated wire: header plus the
  /// coded frame when a codec encoded this message, else the raw
  /// payload. This is what links bill transfer time and bytes for.
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
  /// Pre-codec size: header plus the raw payload, regardless of coding
  /// — the logical ledger the wire ledger is compared against.
  [[nodiscard]] std::size_t logical_bytes() const noexcept;
};

}  // namespace pfdrl::net
