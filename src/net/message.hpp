// Messages exchanged between smart-home agents over the simulated
// residential network. Payloads are flat parameter vectors (the only
// thing PFDRL ever transmits — raw data never leaves a residence).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfdrl::net {

using AgentId = std::uint32_t;

enum class MessageKind : std::uint8_t {
  /// Load-forecasting model parameters for one device (DFL, β schedule).
  kForecastParams = 0,
  /// DRL base-layer parameters (PFDRL, γ schedule).
  kDrlBaseParams = 1,
  /// Full DRL parameters (the FRL baseline shares everything).
  kDrlFullParams = 2,
};

const char* message_kind_name(MessageKind k) noexcept;

struct Message {
  AgentId sender = 0;
  MessageKind kind = MessageKind::kForecastParams;
  /// Which device's forecaster this is (index into the household's device
  /// list by *type*, so homologous devices aggregate across residences).
  std::uint32_t device_type = 0;
  /// Training round the parameters came from (staleness accounting).
  std::uint64_t round = 0;
  std::vector<double> payload;

  /// Serialized size in bytes on the simulated wire (header + payload).
  [[nodiscard]] std::size_t wire_bytes() const noexcept;
};

}  // namespace pfdrl::net
