// Broadcast topologies for the decentralized network. The paper's DFL
// broadcasts to every other residence in the building (full mesh); star
// and ring are provided for the ablation bench comparing decentralized
// against hub-routed aggregation. For city-scale runs two sparse kinds
// exist: hierarchical (cluster hubs — clusters align with shards) and
// gossip (seeded pseudo-random fanout), both with O(degree) lazily
// computed neighbor iteration so a broadcast never materializes an O(N)
// vector. See docs/scaling.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::net {

enum class TopologyKind : std::uint8_t {
  kFullMesh = 0,
  kStar = 1,
  kRing = 2,
  /// Two-level topology: agents are grouped into clusters of
  /// `TopologyOptions::cluster_size`; the first agent of each cluster is
  /// its hub. Leaves talk to their hub; hubs talk to their cluster and
  /// to every other hub. Broadcast cost is O(N) total instead of O(N²).
  kHierarchical = 3,
  /// Each agent pushes to `TopologyOptions::fanout` pseudo-random peers
  /// chosen statically per (gossip_seed, sender) — the graph is fixed
  /// for a run, so twin runs at the same seed share the exact peer sets.
  kGossip = 4,
};

const char* topology_name(TopologyKind k) noexcept;
/// Inverse of topology_name(); nullopt for unknown names.
std::optional<TopologyKind> parse_topology_kind(const std::string& name);

/// Tuning knobs for the sparse kinds; ignored by mesh/star/ring.
struct TopologyOptions {
  /// kHierarchical: homes per cluster (clamped to [1, N]).
  std::size_t cluster_size = 8;
  /// kGossip: out-degree per agent (clamped to [0, min(N-1, 32)]).
  std::size_t fanout = 4;
  /// kGossip: seed for the static peer selection.
  std::uint64_t gossip_seed = 1;
};

namespace detail {
/// splitmix64 finalizer — the stateless mixer behind gossip peer choice.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace detail

class Topology {
 public:
  /// Hard cap on gossip fanout; keeps the per-broadcast dedupe scratch on
  /// the stack.
  static constexpr std::size_t kMaxGossipFanout = 32;

  Topology(TopologyKind kind, std::size_t num_agents,
           TopologyOptions options = {});

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t num_agents() const noexcept { return n_; }
  [[nodiscard]] const TopologyOptions& options() const noexcept {
    return opts_;
  }

  /// Visit every agent that directly receives a broadcast from `sender`,
  /// in a deterministic order, without allocating. This is the hot path
  /// — MessageBus::broadcast and the exchange engine iterate through it.
  template <typename Fn>
  void for_each_neighbor(AgentId sender, Fn&& fn) const {
    switch (kind_) {
      case TopologyKind::kFullMesh:
        for (std::size_t i = 0; i < n_; ++i) {
          if (i != sender) fn(static_cast<AgentId>(i));
        }
        break;
      case TopologyKind::kStar:
        // Agent 0 is the hub. Leaves talk to the hub; the hub reaches all.
        if (sender == 0) {
          for (std::size_t i = 1; i < n_; ++i) fn(static_cast<AgentId>(i));
        } else {
          fn(AgentId{0});
        }
        break;
      case TopologyKind::kRing:
        if (n_ > 1) {
          fn(static_cast<AgentId>((sender + 1) % n_));
          if (n_ > 2) fn(static_cast<AgentId>((sender + n_ - 1) % n_));
        }
        break;
      case TopologyKind::kHierarchical: {
        const std::size_t cs = opts_.cluster_size;
        const std::size_t cluster = sender / cs;
        const auto hub = static_cast<AgentId>(cluster * cs);
        if (sender != hub) {
          fn(hub);
          break;
        }
        const std::size_t end = std::min(n_, (cluster + 1) * cs);
        for (std::size_t m = hub + 1; m < end; ++m) {
          fn(static_cast<AgentId>(m));
        }
        for (std::size_t c = 0; c * cs < n_; ++c) {
          if (c != cluster) fn(static_cast<AgentId>(c * cs));
        }
        break;
      }
      case TopologyKind::kGossip: {
        AgentId chosen[kMaxGossipFanout];
        std::size_t count = 0;
        const std::size_t want = opts_.fanout;
        const std::uint64_t base =
            detail::mix64(opts_.gossip_seed ^
                          (0xA24BAED4963EE407ULL * (std::uint64_t{sender} + 1)));
        // Rejection-sample distinct non-self peers; the attempt budget
        // guards termination for adversarial (seed, N) pairs — in that
        // degenerate case the sender just has fewer peers.
        const std::uint64_t budget = 16 * static_cast<std::uint64_t>(want) + 64;
        for (std::uint64_t attempt = 0; count < want && attempt < budget;
             ++attempt) {
          const auto cand =
              static_cast<AgentId>(detail::mix64(base + attempt) % n_);
          if (cand == sender) continue;
          bool dup = false;
          for (std::size_t j = 0; j < count; ++j) {
            if (chosen[j] == cand) {
              dup = true;
              break;
            }
          }
          if (dup) continue;
          chosen[count++] = cand;
          fn(cand);
        }
        break;
      }
    }
  }

  /// Agents that directly receive a broadcast from `sender`. Allocates a
  /// fresh vector — kept for tests and cold paths; hot paths must use
  /// for_each_neighbor().
  [[nodiscard]] std::vector<AgentId> neighbors(AgentId sender) const;

  /// Number of links a broadcast from `sender` traverses (communication
  /// cost accounting). Allocation-free.
  [[nodiscard]] std::size_t broadcast_links(AgentId sender) const;

  /// True if every agent can eventually hear every other agent, i.e. the
  /// directed broadcast graph is strongly connected. O(N + E) per call.
  [[nodiscard]] bool connected() const;

 private:
  TopologyKind kind_;
  std::size_t n_;
  TopologyOptions opts_;
};

}  // namespace pfdrl::net
