// Broadcast topologies for the decentralized network. The paper's DFL
// broadcasts to every other residence in the building (full mesh); star
// and ring are provided for the ablation bench comparing decentralized
// against hub-routed aggregation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::net {

enum class TopologyKind : std::uint8_t { kFullMesh = 0, kStar = 1, kRing = 2 };

const char* topology_name(TopologyKind k) noexcept;

class Topology {
 public:
  Topology(TopologyKind kind, std::size_t num_agents);

  [[nodiscard]] TopologyKind kind() const noexcept { return kind_; }
  [[nodiscard]] std::size_t num_agents() const noexcept { return n_; }

  /// Agents that directly receive a broadcast from `sender`.
  [[nodiscard]] std::vector<AgentId> neighbors(AgentId sender) const;

  /// Number of links a broadcast from `sender` traverses (communication
  /// cost accounting).
  [[nodiscard]] std::size_t broadcast_links(AgentId sender) const;

  /// True if every agent can eventually hear every other agent (all
  /// provided topologies are connected; kept for API completeness).
  [[nodiscard]] bool connected() const noexcept { return n_ > 0; }

 private:
  TopologyKind kind_;
  std::size_t n_;
};

}  // namespace pfdrl::net
