// Thread-safe in-process message bus simulating the residential LAN the
// paper's agents broadcast over. Each agent owns an inbox; broadcasts
// fan out along the configured topology. The bus accounts for bytes and
// messages per link and models per-link latency (virtual, accumulated
// into counters — the simulation clock, not wall time, pays for it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace pfdrl::net {

struct LinkModel {
  /// Simulated bandwidth in bytes/second (default: 100 Mbit home LAN).
  double bytes_per_second = 12.5e6;
  /// Fixed per-message latency in seconds.
  double base_latency_s = 2e-3;
  /// Probability that a delivery is silently dropped (lossy Wi-Fi model;
  /// 0 = reliable). Receivers must tolerate missing contributions — the
  /// FedAvg layer already averages whatever arrives.
  double drop_probability = 0.0;

  [[nodiscard]] double transfer_seconds(std::size_t bytes) const noexcept {
    return base_latency_s + static_cast<double>(bytes) / bytes_per_second;
  }
};

struct BusStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_on_wire = 0;
  /// Total simulated link-seconds consumed by transfers.
  double simulated_transfer_seconds = 0.0;
};

class MessageBus {
 public:
  MessageBus(Topology topology, LinkModel link = {});

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t num_agents() const noexcept {
    return topology_.num_agents();
  }

  /// Broadcast along the topology from msg.sender. Returns the number of
  /// inboxes the message was delivered to.
  std::size_t broadcast(const Message& msg);

  /// Point-to-point send (used by the star hub to relay).
  void send(AgentId to, Message msg);

  /// Non-blocking receive for `agent`.
  std::optional<Message> try_receive(AgentId agent);
  /// Drain everything currently queued for `agent`.
  std::vector<Message> drain(AgentId agent);
  /// Blocking receive with a wall-clock timeout; nullopt on timeout.
  std::optional<Message> receive_for(AgentId agent, double timeout_seconds);

  [[nodiscard]] std::size_t inbox_size(AgentId agent) const;
  [[nodiscard]] BusStats stats() const;
  void reset_stats();

 private:
  struct Inbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void deliver(AgentId to, Message msg);

  Topology topology_;
  LinkModel link_;
  util::Rng drop_rng_{0xD20BULL};
  mutable std::mutex drop_mutex_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable std::mutex stats_mutex_;
  BusStats stats_;
};

}  // namespace pfdrl::net
