// Thread-safe in-process message bus simulating the residential LAN the
// paper's agents broadcast over. Each agent owns an inbox; broadcasts
// fan out along the configured topology. The bus accounts for bytes and
// messages per link and models per-link latency (virtual, accumulated
// into counters — the simulation clock, not wall time, pays for it).
//
// Link faults are injected here, per delivery, from a net::FaultPlan:
// silent drops, fixed+jitter delay (stamped into Message::arrival_s for
// the deadline-based exchange rounds), duplication, reordering, and
// scheduled partitions keyed on the message's round. All fault
// randomness comes from one per-bus RNG stream (FaultPlan::seed), so
// runs are bitwise reproducible per seed and distinct buses never share
// a drop mask. Node-level failures (crashes, stragglers) live one layer
// up, in fl::ParamExchange — see docs/robustness.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "net/codec.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"
#include "net/shard_router.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace pfdrl::net {

struct BusStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  /// All failed deliveries (random loss + partition cuts).
  std::uint64_t messages_dropped = 0;
  /// Subset of messages_dropped caused by an active partition window.
  std::uint64_t messages_partition_dropped = 0;
  /// Deliveries enqueued twice by the duplication fault.
  std::uint64_t messages_duplicated = 0;
  /// Deliveries that received extra injected delay (delay_s/jitter_s).
  std::uint64_t messages_delayed = 0;
  /// Bytes billed at the link layer — post-codec frame sizes when a
  /// wire codec is attached, identical to logical_bytes otherwise.
  std::uint64_t bytes_on_wire = 0;
  /// Pre-codec bytes of the same deliveries (header + raw payload).
  /// bytes_on_wire / logical_bytes is the bus's achieved compression.
  std::uint64_t logical_bytes = 0;
  /// Total simulated link-seconds consumed by transfers.
  double simulated_transfer_seconds = 0.0;
  /// Total injected fault delay (fixed + jitter), simulated seconds.
  double simulated_fault_delay_seconds = 0.0;
};

class MessageBus {
 public:
  /// `fault` describes everything this bus's links do to traffic; a bare
  /// LinkModel converts implicitly for loss-only call sites.
  MessageBus(Topology topology, FaultPlan fault = {});

  [[nodiscard]] const Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const FaultPlan& fault_plan() const noexcept { return fault_; }
  [[nodiscard]] std::size_t num_agents() const noexcept {
    return topology_.num_agents();
  }

  /// Attach a cross-shard batching router (non-owning; may be nullptr to
  /// detach). With a router attached, broadcast() delivers same-shard
  /// targets immediately and parks cross-shard deliveries in the
  /// router's pair batches; flush_shard_batches() completes them. The
  /// router must outlive the bus or be detached first.
  void set_shard_router(ShardRouter* router) noexcept { router_ = router; }
  [[nodiscard]] ShardRouter* shard_router() const noexcept { return router_; }

  /// Attach a wire codec (non-owning; nullptr detaches). With a codec
  /// attached, broadcast()/send() encode the payload once against the
  /// sender's stream before fan-out — every delivery (including parked
  /// cross-shard batches and fault duplicates) then bills the coded
  /// frame size instead of the raw payload. The codec must outlive the
  /// bus or be detached first.
  void set_codec(WireCodec* codec) noexcept { codec_ = codec; }
  [[nodiscard]] WireCodec* codec() const noexcept { return codec_; }

  /// Drain the attached router's pair batches (pinned ascending
  /// (src shard, dst shard) order) into the inboxes, applying the same
  /// per-delivery fault/accounting path as direct delivery. Returns the
  /// number of messages handed over; 0 with no router attached.
  std::size_t flush_shard_batches();

  /// Pipelined variant: drain only the batches originating from shard
  /// `src_shard` (one row of the router's pair grid). Concurrent calls
  /// with distinct source shards are safe; this is how a shard publishes
  /// its round without waiting for the global barrier. Returns 0 with no
  /// router attached.
  std::size_t flush_shard_batches_from(std::size_t src_shard);

  /// Broadcast along the topology from msg.sender. Returns the number of
  /// links traversed (cross-shard deliveries may still be parked in the
  /// shard router until flush_shard_batches()).
  std::size_t broadcast(const Message& msg);

  /// Point-to-point send (used by the star hub to relay).
  void send(AgentId to, Message msg);

  /// Non-blocking receive for `agent`.
  std::optional<Message> try_receive(AgentId agent);
  /// Drain everything currently queued for `agent`.
  std::vector<Message> drain(AgentId agent);
  /// Generational drain for the pipelined engine: extract exactly the
  /// messages tagged `round`, discard older generations as stale
  /// (counted into `*stale_discarded` when non-null), and leave newer
  /// rounds parked — a fast neighbor may already have published round
  /// r+1 while this agent is still consuming round r.
  std::vector<Message> drain_round(AgentId agent, std::uint64_t round,
                                   std::size_t* stale_discarded = nullptr);
  /// Blocking receive with a wall-clock timeout; nullopt on timeout.
  std::optional<Message> receive_for(AgentId agent, double timeout_seconds);

  [[nodiscard]] std::size_t inbox_size(AgentId agent) const;
  [[nodiscard]] BusStats stats() const;
  void reset_stats();
  /// Restore accounting wholesale (warm-restart persistence).
  void restore_stats(const BusStats& stats);

  /// Fault-RNG snapshot/restore for warm restarts: the per-bus fault
  /// stream must continue where it left off or a resumed chaos run draws
  /// a different drop/delay mask than the uninterrupted one. In-flight
  /// inbox contents are intentionally NOT part of a snapshot — the
  /// exchange layer already treats unread backlog as stale and discards
  /// it (docs/robustness.md).
  [[nodiscard]] util::RngState fault_rng_state() const;
  void restore_fault_rng(const util::RngState& state);

 private:
  struct Inbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  void deliver(AgentId to, Message msg);
  void enqueue(Inbox& inbox, Message msg, std::uint64_t reorder_draw);

  Topology topology_;
  FaultPlan fault_;
  ShardRouter* router_ = nullptr;
  WireCodec* codec_ = nullptr;
  util::Rng fault_rng_;
  mutable std::mutex fault_mutex_;
  std::vector<std::unique_ptr<Inbox>> inboxes_;
  mutable std::mutex stats_mutex_;
  BusStats stats_;
};

}  // namespace pfdrl::net
