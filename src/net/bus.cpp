#include "net/bus.hpp"

#include <chrono>
#include <stdexcept>

namespace pfdrl::net {

MessageBus::MessageBus(Topology topology, LinkModel link)
    : topology_(std::move(topology)), link_(link) {
  inboxes_.reserve(topology_.num_agents());
  for (std::size_t i = 0; i < topology_.num_agents(); ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void MessageBus::deliver(AgentId to, Message msg) {
  if (to >= inboxes_.size()) throw std::out_of_range("bus: bad agent id");
  const std::size_t bytes = msg.wire_bytes();
  if (link_.drop_probability > 0.0) {
    bool dropped;
    {
      std::lock_guard lock(drop_mutex_);
      dropped = drop_rng_.bernoulli(link_.drop_probability);
    }
    if (dropped) {
      std::lock_guard slock(stats_mutex_);
      ++stats_.messages_dropped;
      return;
    }
  }
  {
    auto& inbox = *inboxes_[to];
    std::lock_guard lock(inbox.mutex);
    inbox.queue.push_back(std::move(msg));
    inbox.cv.notify_one();
  }
  std::lock_guard slock(stats_mutex_);
  ++stats_.messages_delivered;
  stats_.bytes_on_wire += bytes;
  stats_.simulated_transfer_seconds += link_.transfer_seconds(bytes);
}

std::size_t MessageBus::broadcast(const Message& msg) {
  const auto targets = topology_.neighbors(msg.sender);
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.messages_sent;
  }
  for (AgentId to : targets) deliver(to, msg);
  return targets.size();
}

void MessageBus::send(AgentId to, Message msg) {
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.messages_sent;
  }
  deliver(to, std::move(msg));
}

std::optional<Message> MessageBus::try_receive(AgentId agent) {
  auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  if (inbox.queue.empty()) return std::nullopt;
  Message msg = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return msg;
}

std::vector<Message> MessageBus::drain(AgentId agent) {
  auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  std::vector<Message> out(std::make_move_iterator(inbox.queue.begin()),
                           std::make_move_iterator(inbox.queue.end()));
  inbox.queue.clear();
  return out;
}

std::optional<Message> MessageBus::receive_for(AgentId agent,
                                               double timeout_seconds) {
  auto& inbox = *inboxes_.at(agent);
  std::unique_lock lock(inbox.mutex);
  const bool got = inbox.cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&inbox] { return !inbox.queue.empty(); });
  if (!got) return std::nullopt;
  Message msg = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return msg;
}

std::size_t MessageBus::inbox_size(AgentId agent) const {
  const auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  return inbox.queue.size();
}

BusStats MessageBus::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void MessageBus::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = BusStats{};
}

}  // namespace pfdrl::net
