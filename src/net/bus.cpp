#include "net/bus.hpp"

#include <chrono>
#include <stdexcept>

namespace pfdrl::net {

namespace {
// Legacy constant fault stream, used when FaultPlan::seed is 0 so that
// directly constructed buses (tests, micro-benches) stay reproducible
// without an experiment seed. Experiment-owned buses derive a per-bus
// stream with derive_fault_seed() instead.
constexpr std::uint64_t kLegacyFaultSeed = 0xD20BULL;
}  // namespace

MessageBus::MessageBus(Topology topology, FaultPlan fault)
    : topology_(std::move(topology)),
      fault_(std::move(fault)),
      fault_rng_(fault_.seed != 0 ? fault_.seed : kLegacyFaultSeed) {
  inboxes_.reserve(topology_.num_agents());
  for (std::size_t i = 0; i < topology_.num_agents(); ++i) {
    inboxes_.push_back(std::make_unique<Inbox>());
  }
}

void MessageBus::enqueue(Inbox& inbox, Message msg,
                         std::uint64_t reorder_draw) {
  std::lock_guard lock(inbox.mutex);
  if (fault_.reorder && !inbox.queue.empty()) {
    const std::size_t pos = reorder_draw % (inbox.queue.size() + 1);
    inbox.queue.insert(inbox.queue.begin() + static_cast<std::ptrdiff_t>(pos),
                       std::move(msg));
  } else {
    inbox.queue.push_back(std::move(msg));
  }
  inbox.cv.notify_one();
}

void MessageBus::deliver(AgentId to, Message msg) {
  if (to >= inboxes_.size()) throw std::out_of_range("bus: bad agent id");
  const std::size_t bytes = msg.wire_bytes();
  const std::size_t logical = msg.logical_bytes();
  const LinkModel& link = fault_.link;

  // All fault decisions for this delivery come from the per-bus stream,
  // drawn in a fixed order (drop, jitter, duplicate, reorder position)
  // so the stream state depends only on the delivery sequence.
  bool dropped = false;
  bool partitioned = false;
  bool duplicated = false;
  double extra_delay = 0.0;
  std::uint64_t reorder_draw = 0;
  {
    std::lock_guard lock(fault_mutex_);
    if (fault_.severed(msg.sender, to, msg.round)) {
      partitioned = true;
    } else if (link.drop_probability > 0.0 &&
               fault_rng_.bernoulli(link.drop_probability)) {
      dropped = true;
    } else {
      extra_delay = fault_.delay_s;
      if (fault_.jitter_s > 0.0) {
        extra_delay += fault_rng_.uniform(0.0, fault_.jitter_s);
      }
      if (fault_.duplicate_probability > 0.0) {
        duplicated = fault_rng_.bernoulli(fault_.duplicate_probability);
      }
      if (fault_.reorder) reorder_draw = fault_rng_.next();
    }
  }
  if (partitioned || dropped) {
    std::lock_guard slock(stats_mutex_);
    ++stats_.messages_dropped;
    if (partitioned) ++stats_.messages_partition_dropped;
    return;
  }

  const double transfer = link.transfer_seconds(bytes);
  msg.arrival_s += transfer + extra_delay;
  Message duplicate;
  if (duplicated) {
    duplicate = msg;  // shares the payload handle — no deep copy
    duplicate.arrival_s += transfer;  // retransmission: one transfer later
  }
  auto& inbox = *inboxes_[to];
  enqueue(inbox, std::move(msg), reorder_draw);
  if (duplicated) enqueue(inbox, std::move(duplicate), reorder_draw);

  std::lock_guard slock(stats_mutex_);
  stats_.messages_delivered += duplicated ? 2 : 1;
  stats_.bytes_on_wire += duplicated ? 2 * bytes : bytes;
  stats_.logical_bytes += duplicated ? 2 * logical : logical;
  stats_.simulated_transfer_seconds += duplicated ? 2 * transfer : transfer;
  if (duplicated) ++stats_.messages_duplicated;
  if (extra_delay > 0.0) {
    ++stats_.messages_delayed;
    stats_.simulated_fault_delay_seconds += extra_delay;
  }
}

std::size_t MessageBus::broadcast(const Message& msg) {
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.messages_sent;
  }
  // Encode once per broadcast: every fan-out target shares the same
  // refcounted payload handle and the same coded frame size.
  Message coded = msg;
  if (codec_ != nullptr) codec_->encode(coded);
  std::size_t links = 0;
  topology_.for_each_neighbor(coded.sender, [&](AgentId to) {
    ++links;
    if (router_ != nullptr && router_->cross_shard(coded.sender, to)) {
      router_->enqueue(to, coded);  // parked until flush_shard_batches()
    } else {
      deliver(to, coded);
    }
  });
  return links;
}

std::size_t MessageBus::flush_shard_batches() {
  if (router_ == nullptr) return 0;
  return router_->flush(
      [this](AgentId to, Message&& msg) { deliver(to, std::move(msg)); });
}

std::size_t MessageBus::flush_shard_batches_from(std::size_t src_shard) {
  if (router_ == nullptr) return 0;
  return router_->flush_src(
      src_shard,
      [this](AgentId to, Message&& msg) { deliver(to, std::move(msg)); });
}

void MessageBus::send(AgentId to, Message msg) {
  {
    std::lock_guard slock(stats_mutex_);
    ++stats_.messages_sent;
  }
  // Already-coded messages (hub relays of a received frame) keep their
  // original frame size; fresh ones are encoded against the sender's
  // stream — an exact retransmission collapses to a repeat frame.
  if (codec_ != nullptr) codec_->encode(msg);
  deliver(to, std::move(msg));
}

std::optional<Message> MessageBus::try_receive(AgentId agent) {
  auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  if (inbox.queue.empty()) return std::nullopt;
  Message msg = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return msg;
}

std::vector<Message> MessageBus::drain(AgentId agent) {
  auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  std::vector<Message> out(std::make_move_iterator(inbox.queue.begin()),
                           std::make_move_iterator(inbox.queue.end()));
  inbox.queue.clear();
  return out;
}

std::vector<Message> MessageBus::drain_round(AgentId agent,
                                             std::uint64_t round,
                                             std::size_t* stale_discarded) {
  auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  std::vector<Message> out;
  std::size_t stale = 0;
  for (auto it = inbox.queue.begin(); it != inbox.queue.end();) {
    if (it->round == round) {
      out.push_back(std::move(*it));
      it = inbox.queue.erase(it);
    } else if (it->round < round) {
      ++stale;
      it = inbox.queue.erase(it);
    } else {
      ++it;  // next generation — stays parked for its own drain
    }
  }
  if (stale_discarded != nullptr) *stale_discarded += stale;
  return out;
}

std::optional<Message> MessageBus::receive_for(AgentId agent,
                                               double timeout_seconds) {
  auto& inbox = *inboxes_.at(agent);
  std::unique_lock lock(inbox.mutex);
  const bool got = inbox.cv.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [&inbox] { return !inbox.queue.empty(); });
  if (!got) return std::nullopt;
  Message msg = std::move(inbox.queue.front());
  inbox.queue.pop_front();
  return msg;
}

std::size_t MessageBus::inbox_size(AgentId agent) const {
  const auto& inbox = *inboxes_.at(agent);
  std::lock_guard lock(inbox.mutex);
  return inbox.queue.size();
}

BusStats MessageBus::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void MessageBus::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = BusStats{};
}

void MessageBus::restore_stats(const BusStats& stats) {
  std::lock_guard lock(stats_mutex_);
  stats_ = stats;
}

util::RngState MessageBus::fault_rng_state() const {
  std::lock_guard lock(fault_mutex_);
  return fault_rng_.state();
}

void MessageBus::restore_fault_rng(const util::RngState& state) {
  std::lock_guard lock(fault_mutex_);
  fault_rng_.restore(state);
}

}  // namespace pfdrl::net
