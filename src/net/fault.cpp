#include "net/fault.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace pfdrl::net {

bool PartitionWindow::contains(AgentId a) const noexcept {
  return std::find(group.begin(), group.end(), a) != group.end();
}

bool PartitionWindow::severs(AgentId a, AgentId b,
                             std::uint64_t round) const noexcept {
  return active(round) && contains(a) != contains(b);
}

bool FaultPlan::severed(AgentId a, AgentId b,
                        std::uint64_t round) const noexcept {
  for (const auto& w : partitions) {
    if (w.severs(a, b, round)) return true;
  }
  return false;
}

std::uint64_t derive_fault_seed(std::uint64_t experiment_seed,
                                std::uint64_t bus_id) noexcept {
  // Two splitmix64 steps decorrelate adjacent (seed, bus) pairs; the
  // golden-ratio stride keeps bus streams apart even for seed 0.
  std::uint64_t state =
      experiment_seed + (bus_id + 1) * 0x9E3779B97F4A7C15ULL;
  std::uint64_t derived = util::splitmix64(state);
  derived = util::splitmix64(state) ^ derived;
  return derived == 0 ? 0x5EEDULL : derived;
}

bool FailureSchedule::crashed(AgentId agent, std::uint64_t round) const noexcept {
  for (const auto& w : crashes) {
    if (w.agent == agent && round >= w.from_round && round < w.until_round) {
      return true;
    }
  }
  return false;
}

double FailureSchedule::compute_delay(AgentId agent) const noexcept {
  double delay = 0.0;
  for (const auto& s : stragglers) {
    if (s.agent == agent) delay += s.compute_delay_s;
  }
  return delay;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

double parse_double(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad " + what + " value '" +
                                value + "'");
  }
}

std::uint64_t parse_u64(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault spec: bad " + what + " value '" +
                                value + "'");
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const auto& field : split(spec, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "drop") {
      plan.link.drop_probability = parse_double(key, value);
      if (plan.link.drop_probability < 0.0 || plan.link.drop_probability >= 1.0)
        throw std::invalid_argument("fault spec: drop must be in [0,1)");
    } else if (key == "delay") {
      plan.delay_s = parse_double(key, value);
    } else if (key == "jitter") {
      plan.jitter_s = parse_double(key, value);
    } else if (key == "dup") {
      plan.duplicate_probability = parse_double(key, value);
      if (plan.duplicate_probability < 0.0 || plan.duplicate_probability > 1.0)
        throw std::invalid_argument("fault spec: dup must be in [0,1]");
    } else if (key == "reorder") {
      plan.reorder = parse_u64(key, value) != 0;
    } else if (key == "bw") {
      plan.link.bytes_per_second = parse_double(key, value);
    } else if (key == "latency") {
      plan.link.base_latency_s = parse_double(key, value);
    } else if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else {
      throw std::invalid_argument("fault spec: unknown key '" + key + "'");
    }
  }
  return plan;
}

PartitionWindow parse_partition(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 3) {
    throw std::invalid_argument(
        "partition spec: expected FROM:UNTIL:a,b,... got '" + spec + "'");
  }
  PartitionWindow w;
  w.from_round = parse_u64("partition from", parts[0]);
  w.until_round = parse_u64("partition until", parts[1]);
  for (const auto& id : split(parts[2], ',')) {
    if (id.empty()) continue;
    w.group.push_back(static_cast<AgentId>(parse_u64("partition agent", id)));
  }
  if (w.group.empty()) {
    throw std::invalid_argument("partition spec: empty agent group");
  }
  return w;
}

CrashWindow parse_crash(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 3) {
    throw std::invalid_argument(
        "crash spec: expected AGENT:FROM:UNTIL, got '" + spec + "'");
  }
  CrashWindow w;
  w.agent = static_cast<AgentId>(parse_u64("crash agent", parts[0]));
  w.from_round = parse_u64("crash from", parts[1]);
  w.until_round = parse_u64("crash until", parts[2]);
  return w;
}

StragglerSpec parse_straggler(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 2) {
    throw std::invalid_argument(
        "straggler spec: expected AGENT:DELAY_SECONDS, got '" + spec + "'");
  }
  StragglerSpec s;
  s.agent = static_cast<AgentId>(parse_u64("straggler agent", parts[0]));
  s.compute_delay_s = parse_double("straggler delay", parts[1]);
  return s;
}

}  // namespace pfdrl::net
