#include "net/shard_router.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/shard.hpp"

namespace pfdrl::net {

ShardRouter::ShardRouter(std::size_t num_agents, std::size_t num_shards)
    : n_(num_agents), shards_(num_shards == 0 ? 1 : num_shards) {
  if (num_agents == 0) throw std::invalid_argument("ShardRouter: zero agents");
  if (shards_ > n_) shards_ = n_;
  pairs_.reserve(shards_ * shards_);
  for (std::size_t i = 0; i < shards_ * shards_; ++i) {
    pairs_.push_back(std::make_unique<PairBatch>());
  }
}

ShardRouter::ShardRouter(std::size_t num_agents,
                         std::vector<std::size_t> boundaries)
    : n_(num_agents),
      shards_(boundaries.size() >= 2 ? boundaries.size() - 1 : 0),
      boundaries_(std::move(boundaries)) {
  if (num_agents == 0) throw std::invalid_argument("ShardRouter: zero agents");
  if (boundaries_.size() < 2 || boundaries_.front() != 0 ||
      boundaries_.back() != n_ ||
      !std::is_sorted(boundaries_.begin(), boundaries_.end()) ||
      std::adjacent_find(boundaries_.begin(), boundaries_.end()) !=
          boundaries_.end()) {
    throw std::invalid_argument("ShardRouter: malformed shard boundaries");
  }
  pairs_.reserve(shards_ * shards_);
  for (std::size_t i = 0; i < shards_ * shards_; ++i) {
    pairs_.push_back(std::make_unique<PairBatch>());
  }
}

std::size_t ShardRouter::shard_of(AgentId agent) const noexcept {
  if (!boundaries_.empty()) {
    return static_cast<std::size_t>(
        std::upper_bound(boundaries_.begin(), boundaries_.end(),
                         static_cast<std::size_t>(agent)) -
        boundaries_.begin() - 1);
  }
  return util::shard_of(agent, n_, shards_);
}

void ShardRouter::enqueue(AgentId to, Message msg) {
  if (to >= n_ || msg.sender >= n_) {
    throw std::out_of_range("ShardRouter: bad agent id");
  }
  auto& batch = *pairs_[shard_of(msg.sender) * shards_ + shard_of(to)];
  {
    std::lock_guard lock(batch.mutex);
    if (batch.items.empty()) {
      batch.epoch = msg.round;
    } else if (batch.epoch != msg.round &&
               strict_rounds_.load(std::memory_order_relaxed)) {
      // Two round generations in one un-flushed batch means a publisher
      // ran ahead of its own flush — a broken pipeline invariant, not a
      // recoverable condition.
      throw std::logic_error("ShardRouter: mixed-round pair batch");
    }
    batch.items.emplace_back(to, std::move(msg));
  }
  std::lock_guard slock(stats_mutex_);
  ++stats_.messages_batched;
}

std::size_t ShardRouter::drain_row(
    std::size_t src, const std::function<void(AgentId, Message&&)>& deliver) {
  // Slab framing of one flushed pair batch: a real deployment ships the
  // whole batch as one transfer — a slab header (magic + shard pair +
  // round + message count), then per message a subheader (recipient,
  // sender, kind, device_type, frame length) and the coded frame. The
  // 25-byte per-message wire header is amortized into the subheader.
  constexpr std::uint64_t kSlabHeader = 16;
  constexpr std::uint64_t kSlabSubheader = 17;
  std::size_t handed_over = 0;
  std::uint64_t batches = 0;
  std::uint64_t bytes = 0;
  std::uint64_t wire = 0;
  std::uint64_t max_depth = 0;
  // Pinned ascending dst drain order within the row.
  for (std::size_t dst = 0; dst < shards_; ++dst) {
    auto& pair = *pairs_[src * shards_ + dst];
    std::vector<std::pair<AgentId, Message>> items;
    {
      std::lock_guard lock(pair.mutex);
      items.swap(pair.items);
    }
    if (items.empty()) continue;
    ++batches;
    wire += kSlabHeader;
    if (items.size() > max_depth) max_depth = items.size();
    for (auto& [to, msg] : items) {
      bytes += msg.logical_bytes();
      wire += kSlabSubheader +
              (msg.coded_bytes != 0 ? msg.coded_bytes
                                    : msg.payload.size() * sizeof(double));
      deliver(to, std::move(msg));
      ++handed_over;
    }
  }
  std::lock_guard slock(stats_mutex_);
  stats_.batches_flushed += batches;
  stats_.batched_bytes += bytes;
  stats_.batched_wire_bytes += wire;
  if (max_depth > stats_.max_batch_depth) stats_.max_batch_depth = max_depth;
  return handed_over;
}

std::size_t ShardRouter::flush(
    const std::function<void(AgentId, Message&&)>& deliver) {
  std::size_t handed_over = 0;
  // Pinned ascending (src, dst) drain order — pairs_ is row-major in src.
  for (std::size_t src = 0; src < shards_; ++src) {
    handed_over += drain_row(src, deliver);
  }
  std::lock_guard slock(stats_mutex_);
  ++stats_.flushes;
  return handed_over;
}

std::size_t ShardRouter::flush_src(
    std::size_t src, const std::function<void(AgentId, Message&&)>& deliver) {
  if (src >= shards_) throw std::out_of_range("ShardRouter: bad src shard");
  const std::size_t handed_over = drain_row(src, deliver);
  std::lock_guard slock(stats_mutex_);
  ++stats_.flushes;
  return handed_over;
}

std::size_t ShardRouter::pending() const {
  std::size_t total = 0;
  for (const auto& pair : pairs_) {
    std::lock_guard lock(pair->mutex);
    total += pair->items.size();
  }
  return total;
}

ShardRouterStats ShardRouter::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void ShardRouter::reset_stats() {
  std::lock_guard lock(stats_mutex_);
  stats_ = ShardRouterStats{};
}

}  // namespace pfdrl::net
