// Batched cross-shard message exchange for the bulk-synchronous engine
// (docs/scaling.md). Agents are partitioned into contiguous shards
// (util::shard_of); same-shard traffic flows straight into inboxes,
// while cross-shard messages are parked in a per-(src shard, dst shard)
// batch and handed over as ONE drain per shard pair per tick. Payloads
// stay refcounted handles, so batching moves pointers, not parameter
// bytes. flush() drains pairs in pinned ascending (src, dst) order and
// preserves enqueue order within a pair, which keeps sharded runs
// deterministic per seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/message.hpp"

namespace pfdrl::net {

struct ShardRouterStats {
  /// Cross-shard messages parked in a pair batch.
  std::uint64_t messages_batched = 0;
  /// Non-empty (src, dst) pair batches handed over across all flushes —
  /// the number of cross-shard "transfers" a real deployment would pay
  /// for, vs. messages_batched individual sends without batching.
  std::uint64_t batches_flushed = 0;
  /// flush() calls (ticks with any router attached).
  std::uint64_t flushes = 0;
  /// Logical (pre-codec) bytes carried inside flushed batches: the full
  /// per-message header + raw payload, as if each message had been sent
  /// individually and uncoded.
  std::uint64_t batched_bytes = 0;
  /// Post-codec bytes the cross-shard transfers actually pay: one slab
  /// header per flushed pair batch plus, per message, a slab subheader
  /// and the coded frame (raw payload when uncoded). Compare against
  /// batched_bytes for the achieved cross-shard compression.
  std::uint64_t batched_wire_bytes = 0;
  /// High-water message count of any single pair batch at flush time
  /// (per-shard queue depth).
  std::uint64_t max_batch_depth = 0;
};

class ShardRouter {
 public:
  ShardRouter(std::size_t num_agents, std::size_t num_shards);

  /// Cost-weighted assignment: explicit contiguous boundaries (size
  /// shards+1, strictly increasing, boundaries.front() == 0 and
  /// boundaries.back() == num_agents), as produced by
  /// sim::ShardPlan::make_weighted. shard_of becomes an upper_bound over
  /// the boundaries — still monotone in the agent id, so the pipelined
  /// engine's shard_broadcast_graph precondition holds unchanged.
  ShardRouter(std::size_t num_agents, std::vector<std::size_t> boundaries);

  [[nodiscard]] std::size_t num_agents() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_; }
  /// Pinned contiguous assignment — util::shard_of arithmetic, or an
  /// upper_bound over the explicit boundaries when constructed with one.
  [[nodiscard]] std::size_t shard_of(AgentId agent) const noexcept;
  [[nodiscard]] bool cross_shard(AgentId a, AgentId b) const noexcept {
    return shard_of(a) != shard_of(b);
  }

  /// Park a cross-shard delivery in the (shard(msg.sender), shard(to))
  /// batch. Thread-safe; callers on different pairs never contend.
  void enqueue(AgentId to, Message msg);

  /// Drain all pair batches in ascending (src shard, dst shard) order,
  /// invoking `deliver(to, msg)` for each parked message in its original
  /// enqueue order. Returns the number of messages handed over. Not
  /// re-entrant; call from the tick barrier only.
  std::size_t flush(const std::function<void(AgentId, Message&&)>& deliver);

  /// Drain only the batches whose source shard is `src` (row `src` of
  /// the pair grid), ascending dst order, same slab accounting as
  /// flush(). This is the pipelined engine's publish step: shard src
  /// hands its round-r traffic over as soon as its own compute is done,
  /// without waiting for the other shards. Concurrent calls with
  /// distinct `src` values are safe (they touch disjoint rows);
  /// concurrent calls with the same `src` are not allowed.
  std::size_t flush_src(std::size_t src,
                        const std::function<void(AgentId, Message&&)>& deliver);

  /// Toggle the single-generation batch invariant. The pipelined engine
  /// flushes a source row before that shard's next round can publish, so
  /// while a staged session is active a pair batch must never hold two
  /// round generations — enqueue() throws if one does. The
  /// bulk-synchronous contract is looser (a lagging flusher may park
  /// several rounds), so the check is off by default;
  /// fl::StagedExchange turns it on for the session's duration.
  void set_strict_rounds(bool strict) noexcept {
    strict_rounds_.store(strict, std::memory_order_relaxed);
  }

  /// Messages currently parked across all pair batches.
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] ShardRouterStats stats() const;
  void reset_stats();

 private:
  struct PairBatch {
    std::mutex mutex;
    std::vector<std::pair<AgentId, Message>> items;
    /// Round tag of the messages currently parked here (checked only
    /// under set_strict_rounds).
    std::uint64_t epoch = 0;
  };

  std::size_t drain_row(std::size_t src,
                        const std::function<void(AgentId, Message&&)>& deliver);

  std::size_t n_;
  std::size_t shards_;
  /// Empty for the uniform (N, S) assignment; else shards_+1 boundaries.
  std::vector<std::size_t> boundaries_;
  /// Dense shards_ × shards_ grid, row = src shard.
  std::vector<std::unique_ptr<PairBatch>> pairs_;
  std::atomic<bool> strict_rounds_{false};
  mutable std::mutex stats_mutex_;
  ShardRouterStats stats_;
};

}  // namespace pfdrl::net
