// Cross-home fused forecaster training (docs/fused_training.md).
//
// A DFL round trains one forecaster per (home, device) on that device's
// newly recorded minutes — thousands of tiny minibatches through
// identical architectures. The fused trainer takes a group of such jobs
// (same method, same window/train config), builds every job's dataset,
// and then runs the group's epochs in lockstep: each epoch's shuffled
// rows are gathered ONCE into a persistent epoch arena laid out in
// batch-consumption order, and each (epoch, batch index) trains its
// home-major span of that arena in place (via the engines' src_row0
// offset) through the nn::Fused* engines against each job's own
// parameter bank and Adam state.
//
// Determinism contract: PRESERVED. Per job, the observable sequence is
// exactly the per-home Forecaster::train() loop — the empty-dataset
// early-out fires before any RNG use, each epoch shuffles the job's own
// index order with the job's own RNG (util::Rng::shuffle consumes the
// stream as a function of the vector size alone, so trainer-owned order
// vectors are stream-identical to the forecaster-owned ones), batches
// are visited in the same offsets, and each slice's forward/BPTT/Adam
// step is bitwise the solo train_batch (nn/fused.hpp). Jobs whose
// dataset runs out of batches early simply drop out of later fused
// batches; their epoch-loss bookkeeping is untouched by the others.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "data/trace.hpp"
#include "forecast/forecaster.hpp"
#include "nn/fused.hpp"
#include "nn/matrix.hpp"
#include "nn/optimizer.hpp"
#include "util/rng.hpp"

namespace pfdrl::nn {
class GruRegressor;
class LstmRegressor;
class Mlp;
}  // namespace pfdrl::nn

namespace pfdrl::forecast {

/// One (home, device) training job inside a fused group. `loss` receives
/// the value Forecaster::train() would have returned.
struct FusedTrainJob {
  Forecaster* forecaster = nullptr;
  const data::DeviceTrace* trace = nullptr;
  util::Rng* rng = nullptr;
  double loss = 0.0;
};

/// Fused multi-home forecaster trainer. One train() call performs one
/// Forecaster::train(trace, begin, end, cfg, rng) per job, bitwise
/// identical to running the jobs one by one.
class FusedForecastTrainer {
 public:
  /// Runs the whole group over [begin, end) with the shared config.
  /// Returns false — with no job state touched — when the group is not
  /// fusable (non-NN or mixed methods, mismatched network or dataset
  /// shapes); the caller must fall back to per-job Forecaster::train().
  bool train(std::span<FusedTrainJob> jobs, std::size_t begin,
             std::size_t end, const TrainConfig& cfg);

 private:
  bool train_lstm(std::span<FusedTrainJob> jobs, std::size_t begin,
                  std::size_t end, const TrainConfig& tcfg);
  bool train_gru(std::span<FusedTrainJob> jobs, std::size_t begin,
                 std::size_t end, const TrainConfig& tcfg);
  bool train_bp(std::span<FusedTrainJob> jobs, std::size_t begin,
                std::size_t end, const TrainConfig& tcfg);

  nn::FusedLstm lstm_;
  nn::FusedGru gru_;
  nn::FusedMlp mlp_;
  // Per-job datasets (rebuilt per round; building is pure so a fallback
  // after dataset construction still leaves job state untouched).
  std::vector<data::SequenceSet> seq_sets_;
  std::vector<data::SupervisedSet> sup_sets_;
  // Per-job shuffle orders (trainer-owned stand-ins for the forecaster's
  // private order_ buffers; RNG-stream-identical, see header comment).
  std::vector<std::vector<std::size_t>> orders_;
  // Capacity-reusing epoch arena + dispatch buffers. The arena holds the
  // WHOLE epoch's rows in exact batch-consumption order — one t-outer
  // gather pass per epoch instead of a strided re-gather per batch — and
  // each batch trains in place via the engines' src_row0 offset. The
  // gather_* maps record arena row -> (job, dataset row) for the pass.
  std::vector<nn::Matrix> slab_xs_;  // per-step arenas ([0] only for BP)
  nn::Matrix slab_y_;
  std::vector<std::size_t> gather_job_;
  std::vector<std::size_t> gather_src_;
  std::vector<std::size_t> active_;  // jobs with non-empty datasets
  std::vector<std::size_t> part_;    // jobs participating in one batch
  std::vector<nn::FusedSlice> slices_;
  std::vector<const nn::Matrix*> xs_ptrs_;
  std::vector<nn::Optimizer*> opts_;
  std::vector<double> batch_losses_;
  std::vector<double> loss_sums_;
  std::vector<std::size_t> batch_counts_;
  std::vector<nn::LstmRegressor*> lstm_nets_;
  std::vector<nn::GruRegressor*> gru_nets_;
  std::vector<nn::Mlp*> mlp_nets_;
  std::vector<nn::LstmRegressor*> lstm_all_;
  std::vector<nn::GruRegressor*> gru_all_;
  std::vector<nn::Mlp*> mlp_all_;
  std::vector<nn::Adam*> adam_all_;
};

}  // namespace pfdrl::forecast
