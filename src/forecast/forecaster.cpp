#include "forecast/forecaster.hpp"

#include <stdexcept>

#include "forecast/bp.hpp"
#include "forecast/gru_forecaster.hpp"
#include "forecast/lr.hpp"
#include "forecast/lstm_forecaster.hpp"
#include "forecast/svr.hpp"

namespace pfdrl::forecast {

const char* method_name(Method m) noexcept {
  switch (m) {
    case Method::kLr: return "LR";
    case Method::kSvr: return "SVM";
    case Method::kBp: return "BP";
    case Method::kLstm: return "LSTM";
    case Method::kGru: return "GRU";
  }
  return "?";
}

TrainConfig resolve_train_config(Method m, TrainConfig base) noexcept {
  // Tuned per method: the linear models converge in one or few passes,
  // the gradient-trained networks need more epochs and a larger Adam
  // step to reach their ceiling within a broadcast round.
  std::size_t epochs = 1;
  double lr = 1e-3;
  std::size_t stride = 1;
  switch (m) {
    case Method::kLr:
      epochs = 1;
      stride = 2;  // closed form; subsampling only trims the Gram pass
      break;
    case Method::kSvr:
      epochs = 4;
      lr = 1e-3;
      break;
    case Method::kBp:
      epochs = 20;
      lr = 3e-3;
      break;
    case Method::kLstm:
    case Method::kGru:
      epochs = 8;
      lr = 3e-3;
      break;
  }
  if (base.epochs == 0) base.epochs = epochs;
  if (base.learning_rate == 0.0) base.learning_rate = lr;
  if (base.stride == 0) base.stride = stride;
  return base;
}

std::unique_ptr<Forecaster> make_forecaster(Method method,
                                            const data::WindowConfig& window,
                                            std::uint64_t seed) {
  switch (method) {
    case Method::kLr:
      return std::make_unique<LrForecaster>(window);
    case Method::kSvr:
      return std::make_unique<SvrForecaster>(window);
    case Method::kBp:
      return std::make_unique<BpForecaster>(window, seed);
    case Method::kLstm:
      return std::make_unique<LstmForecaster>(window, seed);
    case Method::kGru:
      return std::make_unique<GruForecaster>(window, seed);
  }
  throw std::invalid_argument("make_forecaster: unknown method");
}

}  // namespace pfdrl::forecast
