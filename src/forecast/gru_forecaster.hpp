// GRU load forecaster — extension beyond the paper's four methods: the
// lighter recurrent cell at the same interface, compared against the
// LSTM in bench/ablation_design.
#pragma once

#include "forecast/forecaster.hpp"
#include "nn/gru.hpp"
#include "nn/optimizer.hpp"

namespace pfdrl::forecast {

class GruForecaster final : public Forecaster {
 public:
  GruForecaster(const data::WindowConfig& window, std::uint64_t seed,
                std::size_t hidden = 32);

  [[nodiscard]] Method method() const noexcept override {
    return Method::kGru;
  }
  double train(const data::DeviceTrace& trace, std::size_t begin,
               std::size_t end, const TrainConfig& cfg,
               util::Rng& rng) override;
  [[nodiscard]] std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const override;
  [[nodiscard]] std::span<const double> parameters() const override {
    return net_.parameters();
  }
  void set_parameters(std::span<const double> values) override;
  [[nodiscard]] std::vector<double> train_state() const override;
  void set_train_state(std::span<const double> state) override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  // Fused cross-home training (forecast/fused.hpp) replays this class's
  // train loop against shared slabs; it needs net_ and opt_ only.
  friend struct FusedAccess;

  GruForecaster(const GruForecaster&) = default;

  nn::GruRegressor net_;
  nn::Adam opt_;
  // Minibatch gather buffers, reshaped in place per batch (see
  // LstmForecaster). Contents fully overwritten before each use.
  std::vector<nn::Matrix> xb_;
  nn::Matrix yb_;
  std::vector<std::size_t> order_;
};

}  // namespace pfdrl::forecast
