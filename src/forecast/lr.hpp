// Ridge-regularized linear regression forecaster (the paper's "LR"
// baseline). Fit is closed-form via the normal equations; the weight
// vector (plus intercept) is the flat parameter block exchanged in DFL.
#pragma once

#include <vector>

#include "forecast/forecaster.hpp"

namespace pfdrl::forecast {

class LrForecaster final : public Forecaster {
 public:
  LrForecaster(const data::WindowConfig& window, double ridge_lambda = 1e-4);

  [[nodiscard]] Method method() const noexcept override { return Method::kLr; }
  double train(const data::DeviceTrace& trace, std::size_t begin,
               std::size_t end, const TrainConfig& cfg,
               util::Rng& rng) override;
  [[nodiscard]] std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const override;
  [[nodiscard]] std::span<const double> parameters() const override {
    return weights_;
  }
  void set_parameters(std::span<const double> values) override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override {
    return std::make_unique<LrForecaster>(*this);
  }

 private:
  [[nodiscard]] std::size_t feature_count() const noexcept;

  double ridge_lambda_;
  /// [w_0 .. w_{F-1}, intercept].
  std::vector<double> weights_;
};

/// Solve the symmetric positive-definite system A x = b in place by
/// Cholesky decomposition; returns false if A is not SPD. Exposed for
/// unit tests.
bool cholesky_solve(std::vector<double>& a, std::size_t n,
                    std::vector<double>& b);

}  // namespace pfdrl::forecast
