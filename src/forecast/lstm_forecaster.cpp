#include "forecast/lstm_forecaster.hpp"

#include <numeric>

#include "forecast/adam_codec.hpp"

namespace pfdrl::forecast {

LstmForecaster::LstmForecaster(const data::WindowConfig& window,
                               std::uint64_t seed, std::size_t hidden)
    : Forecaster(window),
      net_([&] {
        util::Rng rng(seed);
        return nn::LstmRegressor(window.calendar_features ? 3 : 1, hidden, 1,
                                 rng);
      }()),
      opt_(1e-3) {}

double LstmForecaster::train(const data::DeviceTrace& trace, std::size_t begin,
                             std::size_t end, const TrainConfig& cfg,
                             util::Rng& rng) {
  const TrainConfig tcfg = resolve_train_config(Method::kLstm, cfg);
  data::WindowConfig wc = window_;
  wc.stride = tcfg.stride;
  const auto set = data::make_sequences(trace, wc, begin, end);
  if (set.size() == 0) return 0.0;
  opt_.set_learning_rate(tcfg.learning_rate);

  order_.resize(set.size());
  std::iota(order_.begin(), order_.end(), 0);

  const std::size_t steps = set.xs.size();
  const std::size_t feat = set.step_features();
  // resize (not clear+resize): surviving step matrices keep their heap
  // buffers, and the per-batch reshape below reuses them in place.
  xb_.resize(steps);

  double last_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < tcfg.epochs; ++epoch) {
    rng.shuffle(order_);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t ofs = 0; ofs < order_.size(); ofs += tcfg.batch_size) {
      const std::size_t bs = std::min(tcfg.batch_size, order_.size() - ofs);
      for (std::size_t t = 0; t < steps; ++t) xb_[t].reshape(bs, feat);
      yb_.reshape(bs, 1);
      for (std::size_t i = 0; i < bs; ++i) {
        const std::size_t src = order_[ofs + i];
        for (std::size_t t = 0; t < steps; ++t) {
          auto row = set.xs[t].row(src);
          std::copy(row.begin(), row.end(), xb_[t].row(i).begin());
        }
        yb_(i, 0) = set.y(src, 0);
      }
      loss_sum += net_.train_batch(xb_, yb_, nn::LossKind::kMae, opt_);
      ++batches;
    }
    last_epoch_loss = batches ? loss_sum / static_cast<double>(batches) : 0.0;
  }
  return last_epoch_loss;
}

std::vector<double> LstmForecaster::predict_series(
    const data::DeviceTrace& trace, std::size_t begin, std::size_t end) const {
  data::WindowConfig wc = window_;
  wc.stride = 1;
  const std::size_t hist = data::history_needed(wc);
  const std::size_t from = begin >= hist ? begin - hist : 0;
  const auto set = data::make_sequences(trace, wc, from, end);
  if (set.size() == 0) return {};
  const nn::Matrix pred = net_.predict(set.xs);
  std::vector<double> out;
  out.reserve(set.size());
  for (std::size_t r = 0; r < set.size(); ++r) {
    if (set.target_minute[r] < begin) continue;
    out.push_back(data::decode_watts(pred(r, 0), set.scale, wc.log_scale));
  }
  return out;
}

void LstmForecaster::set_parameters(std::span<const double> values) {
  net_.set_parameters(values);
  // Adam moments are intentionally kept: federated averaging moves the
  // weights only slightly (peers share init and are re-averaged every
  // round), and resetting the moments at every broadcast acted as a
  // repeated warm restart that measurably hurt DFL accuracy.
}

std::vector<double> LstmForecaster::train_state() const {
  return detail::encode_adam(opt_);
}

void LstmForecaster::set_train_state(std::span<const double> state) {
  detail::decode_adam(state, opt_);
}

std::unique_ptr<Forecaster> LstmForecaster::clone() const {
  return std::unique_ptr<Forecaster>(new LstmForecaster(*this));
}

}  // namespace pfdrl::forecast
