// Load-forecasting model interface. One forecaster instance predicts the
// next-minute power draw of one device from a sliding window of recent
// draw plus calendar features (paper §3.2: per-device models, trained
// locally, aggregated by parameter averaging across residences).
//
// All four methods the paper compares are provided:
//   LR   — ridge-regularized linear regression (closed form),
//   SVR  — linear epsilon-insensitive support vector regression (SGD),
//   BP   — back-propagation MLP,
//   LSTM — recurrent network over the window sequence.
//
// Every forecaster exposes its parameters as a flat vector so the DFL
// layer can average homologous models across residences (Alg. 1).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "data/trace.hpp"
#include "util/rng.hpp"

namespace pfdrl::forecast {

// The paper's four methods plus a GRU extension (see gru_forecaster.hpp).
enum class Method { kLr = 0, kSvr, kBp, kLstm, kGru };
constexpr std::size_t kNumMethods = 5;

const char* method_name(Method m) noexcept;

/// Training knobs shared by all methods. Zero values mean "use the
/// method's tuned default" (resolved by resolve_train_config); explicit
/// values always win, so sweeps can pin any knob.
struct TrainConfig {
  std::size_t epochs = 0;
  std::size_t batch_size = 32;
  double learning_rate = 0.0;
  /// Window subsampling stride during training (cost control; evaluation
  /// always runs on every minute).
  std::size_t stride = 0;
};

/// Fill zeroed TrainConfig fields with the per-method tuned defaults
/// (the values behind the reported figure shapes; see DESIGN.md).
TrainConfig resolve_train_config(Method m, TrainConfig base) noexcept;

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  [[nodiscard]] virtual Method method() const noexcept = 0;
  [[nodiscard]] std::string name() const { return method_name(method()); }

  /// Local training over trace minutes [begin, end). Returns mean
  /// training loss of the final epoch (scaled units).
  virtual double train(const data::DeviceTrace& trace, std::size_t begin,
                       std::size_t end, const TrainConfig& cfg,
                       util::Rng& rng) = 0;

  /// One-step-ahead predictions (watts) for target minutes [begin, end).
  /// Requires begin >= window (history must exist in the trace).
  [[nodiscard]] virtual std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const = 0;

  /// Flat parameters for federated averaging.
  [[nodiscard]] virtual std::span<const double> parameters() const = 0;
  virtual void set_parameters(std::span<const double> values) = 0;

  /// Training state beyond parameters() that a warm restart must carry to
  /// continue training bitwise — for the Adam-backed methods (BP, LSTM,
  /// GRU) the optimizer moments and step count, flat-encoded as
  /// [t, n, m[0..n), v[0..n)]. Stateless methods (LR, SVR) return empty.
  [[nodiscard]] virtual std::vector<double> train_state() const { return {}; }
  /// Restore an encoding produced by train_state(). Empty resets to a
  /// cold optimizer; malformed input throws std::invalid_argument.
  virtual void set_train_state(std::span<const double> state) {
    (void)state;
  }

  [[nodiscard]] virtual std::unique_ptr<Forecaster> clone() const = 0;

  [[nodiscard]] const data::WindowConfig& window_config() const noexcept {
    return window_;
  }

 protected:
  explicit Forecaster(data::WindowConfig window) noexcept : window_(window) {}
  data::WindowConfig window_;
};

/// Factory. `seed` controls weight initialization; two forecasters built
/// with the same (method, window, seed) start from identical parameters —
/// the paper's "same default training model initially" requirement.
std::unique_ptr<Forecaster> make_forecaster(Method method,
                                            const data::WindowConfig& window,
                                            std::uint64_t seed);

}  // namespace pfdrl::forecast
