// LSTM load forecaster (the paper's best method, after Sülo & Brown
// 2019): a single-layer LSTM over the window sequence with a linear
// head, trained by BPTT with Adam.
#pragma once

#include "forecast/forecaster.hpp"
#include "nn/lstm.hpp"
#include "nn/optimizer.hpp"

namespace pfdrl::forecast {

class LstmForecaster final : public Forecaster {
 public:
  LstmForecaster(const data::WindowConfig& window, std::uint64_t seed,
                 std::size_t hidden = 32);

  [[nodiscard]] Method method() const noexcept override {
    return Method::kLstm;
  }
  double train(const data::DeviceTrace& trace, std::size_t begin,
               std::size_t end, const TrainConfig& cfg,
               util::Rng& rng) override;
  [[nodiscard]] std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const override;
  [[nodiscard]] std::span<const double> parameters() const override {
    return net_.parameters();
  }
  void set_parameters(std::span<const double> values) override;
  [[nodiscard]] std::vector<double> train_state() const override;
  void set_train_state(std::span<const double> state) override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  // Fused cross-home training (forecast/fused.hpp) replays this class's
  // train loop against shared slabs; it needs net_ and opt_ only.
  friend struct FusedAccess;

  LstmForecaster(const LstmForecaster&) = default;

  nn::LstmRegressor net_;
  nn::Adam opt_;
  // Gather buffers for minibatch assembly, reshaped in place per batch so
  // the train loop stops re-allocating steps-many matrices every batch of
  // every epoch. Contents are fully overwritten before each use.
  std::vector<nn::Matrix> xb_;
  nn::Matrix yb_;
  std::vector<std::size_t> order_;
};

}  // namespace pfdrl::forecast
