// Shared flat encoding of nn::AdamState for the Adam-backed forecasters
// (BP, LSTM, GRU). Layout: [t, n, m[0..n), v[0..n)] — doubles carry the
// integer fields exactly for any realistic step count. Internal to the
// forecast library; the public surface is Forecaster::train_state().
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nn/optimizer.hpp"

namespace pfdrl::forecast::detail {

inline std::vector<double> encode_adam(const nn::Adam& opt) {
  const nn::AdamState s = opt.capture_state();
  std::vector<double> out;
  out.reserve(2 + 2 * s.m.size());
  out.push_back(static_cast<double>(s.t));
  out.push_back(static_cast<double>(s.m.size()));
  out.insert(out.end(), s.m.begin(), s.m.end());
  out.insert(out.end(), s.v.begin(), s.v.end());
  return out;
}

inline void decode_adam(std::span<const double> flat, nn::Adam& opt) {
  if (flat.empty()) {
    opt.reset();
    return;
  }
  if (flat.size() < 2 || flat[1] < 0.0) {
    throw std::invalid_argument("forecast: malformed train state");
  }
  const auto n = static_cast<std::size_t>(flat[1]);
  if (flat.size() != 2 + 2 * n) {
    throw std::invalid_argument("forecast: train state length mismatch");
  }
  nn::AdamState s;
  s.t = static_cast<long>(flat[0]);
  s.m.assign(flat.begin() + 2, flat.begin() + 2 + static_cast<std::ptrdiff_t>(n));
  s.v.assign(flat.begin() + 2 + static_cast<std::ptrdiff_t>(n), flat.end());
  opt.restore_state(std::move(s));
}

}  // namespace pfdrl::forecast::detail
