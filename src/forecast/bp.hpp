// Back-propagation neural-network forecaster (the paper's "BP"
// baseline, after Wang 2015): a feed-forward MLP on the flat window
// features, trained with mini-batch Adam.
#pragma once

#include "forecast/forecaster.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"

namespace pfdrl::forecast {

class BpForecaster final : public Forecaster {
 public:
  BpForecaster(const data::WindowConfig& window, std::uint64_t seed,
               std::vector<std::size_t> hidden = {64, 32});

  [[nodiscard]] Method method() const noexcept override { return Method::kBp; }
  double train(const data::DeviceTrace& trace, std::size_t begin,
               std::size_t end, const TrainConfig& cfg,
               util::Rng& rng) override;
  [[nodiscard]] std::vector<double> predict_series(
      const data::DeviceTrace& trace, std::size_t begin,
      std::size_t end) const override;
  [[nodiscard]] std::span<const double> parameters() const override {
    return net_.parameters();
  }
  void set_parameters(std::span<const double> values) override;
  [[nodiscard]] std::vector<double> train_state() const override;
  void set_train_state(std::span<const double> state) override;
  [[nodiscard]] std::unique_ptr<Forecaster> clone() const override;

 private:
  // Fused cross-home training (forecast/fused.hpp) replays this class's
  // train loop against shared slabs; it needs net_ and opt_ only.
  friend struct FusedAccess;

  BpForecaster(const BpForecaster&) = default;

  nn::Mlp net_;
  nn::Adam opt_;
  // Minibatch gather buffers, reshaped in place per batch (see
  // LstmForecaster). Contents fully overwritten before each use.
  nn::Matrix xb_, yb_;
  std::vector<std::size_t> order_;
};

}  // namespace pfdrl::forecast
